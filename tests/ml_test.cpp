// Tests for the classical ML substrate: decision tree, GA feature
// selection, k-fold splitting and metrics.
#include <gtest/gtest.h>

#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/genetic_selector.h"
#include "support/rng.h"

namespace irgnn::ml {
namespace {

TEST(DecisionTreeTest, LearnsAxisAlignedSplit) {
  std::vector<std::vector<float>> X;
  std::vector<int> y;
  for (int i = 0; i < 40; ++i) {
    float v = static_cast<float>(i);
    X.push_back({v, 0.0f});
    y.push_back(v < 20 ? 0 : 1);
  }
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_EQ(tree.predict({5.0f, 0.0f}), 0);
  EXPECT_EQ(tree.predict({35.0f, 0.0f}), 1);
  EXPECT_DOUBLE_EQ(tree.score(X, y), 1.0);
  EXPECT_LE(tree.depth(), 3);
}

TEST(DecisionTreeTest, XorNeedsDepthTwo) {
  std::vector<std::vector<float>> X{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<int> y{0, 1, 1, 0};
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_DOUBLE_EQ(tree.score(X, y), 1.0);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTreeTest, MaxDepthLimitsGrowth) {
  Rng rng(3);
  std::vector<std::vector<float>> X;
  std::vector<int> y;
  for (int i = 0; i < 200; ++i) {
    X.push_back({static_cast<float>(rng.uniform()),
                 static_cast<float>(rng.uniform())});
    y.push_back(static_cast<int>(rng.next_below(4)));
  }
  DecisionTree shallow(DecisionTreeOptions{.max_depth = 2});
  shallow.fit(X, y);
  EXPECT_LE(shallow.depth(), 2 + 1);  // root at depth 1
  EXPECT_LE(shallow.num_leaves(), 4);
}

TEST(DecisionTreeTest, MultiClassPurity) {
  std::vector<std::vector<float>> X;
  std::vector<int> y;
  for (int c = 0; c < 5; ++c)
    for (int i = 0; i < 10; ++i) {
      X.push_back({static_cast<float>(c * 10 + i % 3)});
      y.push_back(c);
    }
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_DOUBLE_EQ(tree.score(X, y), 1.0);
}

TEST(DecisionTreeTest, ConstantFeaturesFallBackToMajority) {
  std::vector<std::vector<float>> X(10, {1.0f, 1.0f});
  std::vector<int> y(10, 0);
  y[0] = 1;
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_EQ(tree.predict({1.0f, 1.0f}), 0);
  EXPECT_EQ(tree.num_leaves(), 1);
}

TEST(GeneticSelectorTest, FindsInformativeFeatures) {
  // Fitness rewards subsets containing features 3 and 7.
  GeneticSelectorOptions options;
  options.population_size = 30;
  options.generations = 12;
  options.subset_size = 4;
  options.seed = 11;
  auto result = select_features(
      20,
      [](const std::vector<int>& subset) {
        double score = 0;
        for (int f : subset) {
          if (f == 3) score += 1.0;
          if (f == 7) score += 1.0;
        }
        return score;
      },
      options);
  EXPECT_DOUBLE_EQ(result.best_fitness, 2.0);
  EXPECT_NE(std::find(result.best_subset.begin(), result.best_subset.end(), 3),
            result.best_subset.end());
  EXPECT_NE(std::find(result.best_subset.begin(), result.best_subset.end(), 7),
            result.best_subset.end());
}

TEST(GeneticSelectorTest, SubsetsHaveRequestedSizeAndUnique) {
  GeneticSelectorOptions options;
  options.population_size = 10;
  options.generations = 3;
  options.subset_size = 5;
  auto result = select_features(
      16, [](const std::vector<int>& subset) {
        return static_cast<double>(subset[0]);
      },
      options);
  EXPECT_EQ(result.best_subset.size(), 5u);
  for (std::size_t i = 1; i < result.best_subset.size(); ++i)
    EXPECT_LT(result.best_subset[i - 1], result.best_subset[i]);
}

TEST(GeneticSelectorTest, DeterministicForSeed) {
  GeneticSelectorOptions options;
  options.population_size = 20;
  options.generations = 5;
  options.subset_size = 3;
  options.seed = 99;
  auto fitness = [](const std::vector<int>& subset) {
    double s = 0;
    for (int f : subset) s += f % 5;
    return s;
  };
  auto a = select_features(32, fitness, options);
  auto b = select_features(32, fitness, options);
  EXPECT_EQ(a.best_subset, b.best_subset);
}

TEST(KFoldTest, PartitionIsCompleteAndDisjoint) {
  auto folds = k_fold(57, 10, 42);
  ASSERT_EQ(folds.size(), 10u);
  std::vector<int> seen(57, 0);
  for (const auto& fold : folds) {
    for (int i : fold.validation_indices) ++seen[i];
    EXPECT_EQ(fold.train_indices.size() + fold.validation_indices.size(),
              57u);
  }
  for (int count : seen) EXPECT_EQ(count, 1);
}

TEST(KFoldTest, BalancedSizes) {
  auto folds = k_fold(56, 10, 1);
  for (const auto& fold : folds) {
    EXPECT_GE(fold.validation_indices.size(), 5u);
    EXPECT_LE(fold.validation_indices.size(), 6u);
  }
}

TEST(KFoldTest, SeedChangesAssignment) {
  auto a = k_fold(30, 5, 1);
  auto b = k_fold(30, 5, 2);
  EXPECT_NE(a[0].validation_indices, b[0].validation_indices);
}

TEST(MetricsTest, AccuracyAndTally) {
  std::vector<int> pred{0, 1, 1, 2};
  std::vector<int> truth{0, 1, 2, 2};
  EXPECT_DOUBLE_EQ(accuracy(pred, truth), 0.75);
  LabelTally tally = tally_labels(pred, truth, 3);
  EXPECT_EQ(tally.oracle[2], 2);
  EXPECT_EQ(tally.predicted[1], 2);
  EXPECT_EQ(tally.correct[2], 1);
}

}  // namespace
}  // namespace irgnn::ml
