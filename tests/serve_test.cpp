// Inference-server tests: determinism of dynamically micro-batched
// concurrent serving against serial StaticModel::predict, the
// zero-allocation warm cache-hit contract (this binary counts global
// operator new, like arena_test), hot-swap under load, the model registry,
// and the sharded LRU prediction cache.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <future>
#include <memory>
#include <new>
#include <set>
#include <thread>
#include <vector>

#include "gnn/model.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/server.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "workloads/suite.h"

// --- Global allocation counter ---------------------------------------------

static std::atomic<std::uint64_t> g_heap_allocations{0};

static void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace irgnn {
namespace {

/// A dozen structurally distinct suite regions, built once.
const std::vector<graph::ProgramGraph>& test_graphs() {
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 3, 7, 12, 18, 23, 29, 34, 40, 45, 51, 55}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  return owned;
}

/// Settles the global pool before a heap-counting window: earlier tests'
/// cancelled background-loop tasks linger in the queue and would otherwise
/// run (touching the promise machinery, and so the allocator) mid-window.
/// The barrier occupies every worker at once, so when it releases, every
/// previously queued task has run AND been destroyed (workers destroy the
/// old task before popping the next).
void quiesce_pool() {
  auto& pool = irgnn::support::ThreadPool::global();
  const int n = pool.num_workers();
  if (n <= 0) return;
  std::atomic<int> arrived{0};
  std::vector<std::future<void>> sentinels;
  sentinels.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    sentinels.push_back(pool.submit([&arrived, n] {
      arrived.fetch_add(1);
      while (arrived.load() < n) std::this_thread::yield();
    }));
  for (auto& s : sentinels) s.wait();
}

gnn::ModelConfig small_config(std::uint64_t seed) {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 5;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = seed;
  cfg.num_threads = 1;
  return cfg;
}

std::vector<int> serial_predict(const gnn::StaticModel& model) {
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : test_graphs()) ptrs.push_back(&g);
  return model.predict(ptrs);
}

TEST(InferenceServerTest, ConcurrentSubmitBitIdenticalToSerialPredict) {
  // N concurrent clients over a repeated-graph stream, for every
  // combination of loop mode, batch size and batch window: each answer
  // must equal the serial predict of that graph — batching composition,
  // caching and client interleaving may never change a bit.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xA));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  for (bool background : {false, true}) {
    for (int max_batch : {1, 4, 64}) {
      for (int wait_us : {0, 200}) {
        serve::ServerConfig config;
        config.background_loop = background;
        config.max_batch = max_batch;
        config.max_wait_us = wait_us;
        config.cache_capacity = 64;
        serve::InferenceServer server(model, config);

        constexpr int kClients = 4;
        constexpr int kQueriesPerClient = 48;
        std::vector<std::vector<int>> got(kClients);
        std::vector<std::vector<std::size_t>> streams(kClients);
        std::vector<std::thread> clients;
        for (int c = 0; c < kClients; ++c) {
          clients.emplace_back([&, c] {
            Rng rng(hash_combine64(0xC11E, static_cast<std::uint64_t>(c)));
            for (int q = 0; q < kQueriesPerClient; ++q) {
              const std::size_t g = rng.next_below(graphs.size());
              streams[c].push_back(g);
              const serve::Response r = server.predict(graphs[g]);
              // An unbounded queue may never shed: every response is Ok.
              got[c].push_back(r.ok() ? r.label : -1);
            }
          });
        }
        for (auto& t : clients) t.join();
        for (int c = 0; c < kClients; ++c)
          for (int q = 0; q < kQueriesPerClient; ++q)
            EXPECT_EQ(got[c][q], expected[streams[c][q]])
                << "background=" << background << " max_batch=" << max_batch
                << " wait_us=" << wait_us << " client=" << c << " query=" << q;
        const serve::ServerStats stats = server.stats();
        EXPECT_EQ(stats.queries,
                  static_cast<std::uint64_t>(kClients * kQueriesPerClient));
        // Conservation: every query is exactly one of hit / miss /
        // coalesced, and every miss is answered by a forward.
        EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.coalesced,
                  stats.queries);
        EXPECT_EQ(stats.forwards + stats.cache.hits + stats.coalesced,
                  stats.queries);
        EXPECT_LE(stats.max_batch, static_cast<std::uint64_t>(max_batch));
        // 192 queries over 12 fingerprints: hits and coalesced waiters
        // together must absorb most (which of the two answers a duplicate
        // depends on whether the leader already resolved).
        EXPECT_GE(stats.cache.hits + stats.coalesced, stats.queries / 2);
      }
    }
  }
}

TEST(InferenceServerTest, FuturesResolveAndMixWithSyncClients) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xB));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.max_batch = 4;
  config.cache_capacity = 0;  // every query must take the batched path
  serve::InferenceServer server(model, config);

  std::vector<serve::InferenceServer::Future> futures;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    serve::StatusOr<serve::InferenceServer::Future> submitted =
        server.submit(serve::Request(graphs[g]));
    ASSERT_TRUE(submitted.ok()) << submitted.status().code_name();
    futures.push_back(std::move(submitted).value());
  }
  // A sync query while async work is queued: joins the same micro-batches.
  EXPECT_EQ(server.predict(graphs[0]).label, expected[0]);
  // A couple of suite regions are structurally identical (same
  // fingerprint), so with the cache off a later submit may coalesce onto
  // an earlier one still in flight — first submits always forward.
  std::vector<std::uint64_t> seen_fps;
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const std::uint64_t fp = graph::fingerprint(graphs[g]);
    const bool duplicate =
        std::find(seen_fps.begin(), seen_fps.end(), fp) != seen_fps.end();
    seen_fps.push_back(fp);
    const serve::Response r = futures[g].get();
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.label, expected[g]);
    if (duplicate)
      EXPECT_TRUE(r.source == serve::Source::Batch ||
                  r.source == serve::Source::Coalesced);
    else
      EXPECT_EQ(r.source, serve::Source::Batch);
    EXPECT_EQ(r.model_version, server.model_version());
    EXPECT_GE(r.queue_us, 0);
    EXPECT_GE(r.compute_us, 0);
  }
  const std::size_t distinct =
      std::set<std::uint64_t>(seen_fps.begin(), seen_fps.end()).size();
  const serve::ServerStats stats = server.stats();
  // Duplicates (including the sync predict of graphs[0]) either coalesced
  // onto a still-queued leader (one shared forward) or arrived after it
  // resolved and forwarded themselves (the cache is off) — both are
  // correct; the invariant is that forwards + coalesced covers all 13
  // queries and every distinct fingerprint forwarded at least once.
  EXPECT_EQ(stats.forwards + stats.coalesced, graphs.size() + 1);
  EXPECT_GE(stats.forwards, distinct);
  EXPECT_LE(stats.max_batch, 4u);
  EXPECT_GE(stats.batches, (distinct + 3) / 4);
}

TEST(InferenceServerTest, ThenContinuationRunsExactlyOnce) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xF));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.cache_capacity = 64;
  serve::InferenceServer server(model, config);

  // Async continuations on a cold stream: each runs once with the serial-
  // predict bits, on whichever thread pumps the resolving batch.
  std::atomic<int> fired{0};
  std::atomic<int> wrong{0};
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    serve::StatusOr<serve::InferenceServer::Future> submitted =
        server.submit(serve::Request(graphs[g]));
    ASSERT_TRUE(submitted.ok());
    submitted.value().then([&, g](const serve::Response& r) {
      if (!r.ok() || r.label != expected[g]) wrong.fetch_add(1);
      fired.fetch_add(1);
    });
  }
  // Drive the queue dry from this thread (predict pumps), then wait for
  // continuations attached to already-resolved slots to have fired inline.
  for (std::size_t g = 0; g < graphs.size(); ++g)
    EXPECT_EQ(server.predict(graphs[g]).label, expected[g]);
  while (fired.load() < static_cast<int>(graphs.size()))
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(fired.load(), static_cast<int>(graphs.size()));
  EXPECT_EQ(wrong.load(), 0);

  // A continuation on an already-resolved (cache-hit) future runs inline.
  bool inline_fired = false;
  serve::StatusOr<serve::InferenceServer::Future> hit =
      server.submit(serve::Request(graphs[0]));
  ASSERT_TRUE(hit.ok());
  hit.value().then([&](const serve::Response& r) {
    inline_fired = true;
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.label, expected[0]);
    EXPECT_EQ(r.source, serve::Source::Cache);
  });
  EXPECT_TRUE(inline_fired);
}

TEST(InferenceServerTest, ShutdownDrainsPendingContinuations) {
  // Continuations with no get()-waiter and no background loop: nothing
  // pumps until the server shuts down, whose drain must answer every
  // admitted query and fire each callback exactly once — a then() result
  // can never be silently dropped.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x13));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  std::atomic<int> fired{0};
  std::atomic<int> wrong{0};
  {
    serve::ServerConfig config;
    config.background_loop = false;
    config.cache_capacity = 0;
    serve::InferenceServer server(model, config);
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      serve::StatusOr<serve::InferenceServer::Future> submitted =
          server.submit(serve::Request(graphs[g]));
      ASSERT_TRUE(submitted.ok());
      submitted.value().then([&fired, &wrong, &expected,
                              g](const serve::Response& r) {
        if (!r.ok() || r.label != expected[g]) wrong.fetch_add(1);
        fired.fetch_add(1);
      });
    }
    EXPECT_EQ(fired.load(), 0);  // nobody has pumped yet
  }  // ~InferenceServer -> shutdown drain
  EXPECT_EQ(fired.load(), static_cast<int>(graphs.size()));
  EXPECT_EQ(wrong.load(), 0);
}

TEST(InferenceServerTest, AbandonedFutureDoesNotLoseOtherQueries) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xC));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.cache_capacity = 0;
  serve::InferenceServer server(model, config);
  {
    serve::InferenceServer::Future dropped =
        std::move(server.submit(serve::Request(graphs[1]))).value();
    // destroyed unresolved
  }
  EXPECT_EQ(server.predict(graphs[2]).label, expected[2]);
  EXPECT_EQ(server.predict(graphs[1]).label, expected[1]);
}

TEST(InferenceServerTest, WarmCacheHitPerformsZeroHeapAllocations) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xD));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;  // nothing may run concurrently with the
                                   // counter window below
  serve::InferenceServer server(model, config);
  std::vector<int> first;
  for (const auto& g : graphs) first.push_back(server.predict(g).label);
  const serve::ServerStats cold_stats = server.stats();

  quiesce_pool();
  const std::uint64_t heap_before = g_heap_allocations.load();
  for (int rep = 0; rep < 10; ++rep)
    for (std::size_t g = 0; g < graphs.size(); ++g)
      ASSERT_EQ(server.predict(graphs[g]).label, expected[g]);
  const std::uint64_t heap_delta = g_heap_allocations.load() - heap_before;
  EXPECT_EQ(heap_delta, 0u) << "a warm cache-hit query allocated";

  // Every warm query hit (the cold pass may contribute extra hits when two
  // suite regions happen to be structurally identical).
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.cache.hits - cold_stats.cache.hits,
            static_cast<std::uint64_t>(10 * graphs.size()));
  EXPECT_EQ(stats.forwards, cold_stats.forwards);
  EXPECT_EQ(first, expected);
}

TEST(InferenceServerTest, HotSwapUnderLoadNeverDropsOrMixesQueries) {
  auto model_a = std::make_shared<const gnn::StaticModel>(small_config(0xAA));
  auto model_b = std::make_shared<const gnn::StaticModel>(small_config(0xBB));
  const std::vector<int> expected_a = serial_predict(*model_a);
  const std::vector<int> expected_b = serial_predict(*model_b);
  const auto& graphs = test_graphs();
  // Differently seeded random models disagree somewhere; if this ever
  // flakes the seeds just need a nudge.
  ASSERT_NE(expected_a, expected_b);

  serve::ModelRegistry registry;
  registry.publish("static", model_a);
  serve::ServerConfig config;
  config.max_batch = 8;
  config.cache_capacity = 256;
  serve::InferenceServer server(registry.slot("static"), config);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 200;
  std::atomic<int> wrong{0};
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(hash_combine64(0x50AB, static_cast<std::uint64_t>(c)));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t g = rng.next_below(graphs.size());
        const serve::Response r = server.predict(graphs[g]);
        // Every answer is exactly one publication's serial-predict bits —
        // never dropped (the queue is unbounded, so r is always Ok) and
        // never a mix.
        if (!r.ok() || (r.label != expected_a[g] && r.label != expected_b[g]))
          wrong.fetch_add(1);
        answered.fetch_add(1);
      }
    });
  }
  // Swap mid-load.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t v2 = registry.publish("static", model_b);
  for (auto& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(answered.load(), kClients * kQueriesPerClient);
  EXPECT_EQ(server.model_version(), v2);

  // Quiesced post-swap queries must be the new model's bits — the
  // version-keyed cache can never serve the retired model's labels.
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    const serve::Response r = server.predict(graphs[g]);
    EXPECT_EQ(r.label, expected_b[g]);
    EXPECT_EQ(r.model_version, v2);
  }
}

TEST(InferenceServerTest, PredictBatchMatchesSerialAndHandlesEdgeCases) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xE));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::InferenceServer server(model);

  std::vector<const graph::ProgramGraph*> batch;
  std::vector<serve::Response> out;
  server.predict_batch(batch, out);  // empty
  EXPECT_TRUE(out.empty());

  batch.push_back(&graphs[4]);
  server.predict_batch(batch, out);  // single
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].ok());
  EXPECT_EQ(out[0].label, expected[4]);

  batch.clear();
  for (const auto& g : graphs) batch.push_back(&g);
  for (const auto& g : graphs) batch.push_back(&g);  // duplicates
  server.predict_batch(batch, out);
  ASSERT_EQ(out.size(), 2 * graphs.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].ok());
    EXPECT_EQ(out[i].label, expected[i % graphs.size()]);
  }
}

TEST(InferenceServerTest, PredictBatchDuplicatePointersShareOneForwardEach) {
  // The same graph pointer many times over: a submit-everything-then-wait
  // batch must stay correct when most entries alias a few fingerprints —
  // duplicates submitted before the first answer lands share the micro-
  // batch instead of hitting the cache, and every copy must still get the
  // serial-predict bits.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x11));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;  // deterministic pump ownership
  serve::InferenceServer server(model, config);

  std::vector<const graph::ProgramGraph*> batch;
  std::vector<serve::Response> out;
  for (int rep = 0; rep < 8; ++rep) batch.push_back(&graphs[3]);
  for (int rep = 0; rep < 8; ++rep) batch.push_back(&graphs[5]);
  server.predict_batch(batch, out);
  ASSERT_EQ(out.size(), 16u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_TRUE(out[i].ok());
    EXPECT_EQ(out[i].label, expected[i < 8 ? 3 : 5]);
  }
}

TEST(InferenceServerTest, PredictBatchAllCacheHitRunsNoForwardAndNoAlloc) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x12));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;  // nothing may run concurrently with the
                                   // counter window below
  serve::InferenceServer server(model, config);

  std::vector<const graph::ProgramGraph*> batch;
  for (const auto& g : graphs) batch.push_back(&g);
  std::vector<serve::Response> out;
  server.predict_batch(batch, out);  // cold: populates the cache
  const serve::ServerStats cold = server.stats();

  // Warm batch: every entry resolves from the cache — no forward, no
  // micro-batch, no heap allocation, Source::Cache on every response.
  quiesce_pool();
  const std::uint64_t heap_before = g_heap_allocations.load();
  server.predict_batch(batch, out);
  const std::uint64_t heap_delta = g_heap_allocations.load() - heap_before;
  EXPECT_EQ(heap_delta, 0u) << "an all-cache-hit predict_batch allocated";
  const serve::ServerStats warm = server.stats();
  EXPECT_EQ(warm.forwards, cold.forwards);
  EXPECT_EQ(warm.batches, cold.batches);
  EXPECT_EQ(warm.cache.hits - cold.cache.hits, graphs.size());
  ASSERT_EQ(out.size(), graphs.size());
  for (std::size_t g = 0; g < out.size(); ++g) {
    EXPECT_TRUE(out[g].ok());
    EXPECT_EQ(out[g].label, expected[g]);
    EXPECT_EQ(out[g].source, serve::Source::Cache);
    EXPECT_EQ(out[g].queue_us, 0);
    EXPECT_EQ(out[g].compute_us, 0);
  }
}

// --- In-flight coalescing ---------------------------------------------------

TEST(InferenceServerTest, DuplicateInFlightQueriesCoalesceOntoOneForward) {
  // A flash crowd on one cold fingerprint: with no background loop nothing
  // pumps until the first get(), so every duplicate submit must attach to
  // the leader — one forward answers all six.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x21));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  serve::InferenceServer server(model, config);

  std::vector<serve::InferenceServer::Future> futures;
  for (int i = 0; i < 6; ++i) {
    auto submitted = server.submit(serve::Request(graphs[2]));
    ASSERT_TRUE(submitted.ok());
    futures.push_back(std::move(submitted).value());
  }
  bool saw_batch = false;
  for (auto& f : futures) {
    const serve::Response r = f.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.label, expected[2]);  // bit-identical to serial predict
    EXPECT_EQ(r.model_version, server.model_version());
    EXPECT_GE(r.queue_us, 0);
    if (r.source == serve::Source::Batch)
      saw_batch = true;  // exactly the leader
    else
      EXPECT_EQ(r.source, serve::Source::Coalesced);
  }
  EXPECT_TRUE(saw_batch);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 6u);
  EXPECT_EQ(stats.forwards, 1u);
  EXPECT_EQ(stats.coalesced, 5u);
  EXPECT_EQ(stats.source_batch, 1u);
  EXPECT_EQ(stats.source_coalesced, 5u);
  EXPECT_EQ(stats.cache.misses, 1u);  // only the leader missed
  EXPECT_EQ(stats.cache.hits, 0u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.coalesced,
            stats.queries);
}

TEST(InferenceServerTest, AbandonedLeaderStillAnswersItsWaiters) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x22));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  serve::InferenceServer server(model, config);

  auto leader = server.submit(serve::Request(graphs[0]));
  ASSERT_TRUE(leader.ok());
  auto w1 = server.submit(serve::Request(graphs[0]));
  auto w2 = server.submit(serve::Request(graphs[0]));
  ASSERT_TRUE(w1.ok() && w2.ok());
  {
    serve::InferenceServer::Future dropped = std::move(leader).value();
    // destroyed unresolved: the leader is abandoned while its waiters live
  }
  serve::Response r1 = w1.value().get();  // this get() drives the pump
  serve::Response r2 = w2.value().get();
  EXPECT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(r1.label, expected[0]);
  EXPECT_EQ(r2.label, expected[0]);
  EXPECT_EQ(r1.source, serve::Source::Coalesced);
  EXPECT_EQ(r2.source, serve::Source::Coalesced);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.forwards, 1u);
  EXPECT_EQ(stats.coalesced, 2u);
}

TEST(InferenceServerTest, WaitersAcrossHotSwapReportTheAnsweringVersion) {
  // Leader and waiter admitted under v1, model swapped to v2 before
  // anything pumps: the batch snapshots v2, so both must carry v2's
  // serial-predict bits and report model_version == v2 — never a mix.
  auto model_a = std::make_shared<const gnn::StaticModel>(small_config(0x23));
  auto model_b = std::make_shared<const gnn::StaticModel>(small_config(0x24));
  const std::vector<int> expected_b = serial_predict(*model_b);
  const auto& graphs = test_graphs();
  serve::ModelRegistry registry;
  registry.publish("m", model_a);
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  serve::InferenceServer server(registry.slot("m"), config);

  auto leader = server.submit(serve::Request(graphs[1]));
  auto waiter = server.submit(serve::Request(graphs[1]));
  ASSERT_TRUE(leader.ok() && waiter.ok());
  const std::uint64_t v2 = registry.publish("m", model_b);

  serve::Response rw = waiter.value().get();
  serve::Response rl = leader.value().get();
  EXPECT_TRUE(rw.ok() && rl.ok());
  EXPECT_EQ(rl.label, expected_b[1]);
  EXPECT_EQ(rw.label, expected_b[1]);
  EXPECT_EQ(rl.model_version, v2);
  EXPECT_EQ(rw.model_version, v2);
  EXPECT_EQ(rl.source, serve::Source::Batch);
  EXPECT_EQ(rw.source, serve::Source::Coalesced);
  EXPECT_EQ(server.stats().forwards, 1u);
}

TEST(InferenceServerTest, ShutdownDrainAnswersPendingWaiters) {
  // then() continuations on a leader and two waiters, nothing pumping:
  // the destructor's drain must answer all three exactly once.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x25));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  std::atomic<int> fired{0};
  std::atomic<int> wrong{0};
  {
    serve::ServerConfig config;
    config.background_loop = false;
    config.cache_capacity = 64;
    serve::InferenceServer server(model, config);
    for (int i = 0; i < 3; ++i) {
      auto submitted = server.submit(serve::Request(graphs[4]));
      ASSERT_TRUE(submitted.ok());
      submitted.value().then([&fired, &wrong,
                              &expected](const serve::Response& r) {
        if (!r.ok() || r.label != expected[4]) wrong.fetch_add(1);
        fired.fetch_add(1);
      });
    }
    EXPECT_EQ(fired.load(), 0);  // nobody has pumped yet
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.coalesced, 2u);
  }  // ~InferenceServer -> shutdown drain
  EXPECT_EQ(fired.load(), 3);
  EXPECT_EQ(wrong.load(), 0);
}

TEST(InferenceServerTest, CoalescedWaiterPromotesItsLeaderPriority) {
  // A Low leader with a High waiter attached must be shed-protected as
  // High: a Normal newcomer into the full queue is rejected instead of
  // displacing it.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x26));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  config.max_queue = 1;
  config.shed_policy = serve::ShedPolicy::DropOldest;
  serve::InferenceServer server(model, config);

  serve::Request low(graphs[0]);
  low.priority = serve::Priority::Low;
  auto leader = server.submit(low);
  ASSERT_TRUE(leader.ok());
  serve::Request high(graphs[0]);
  high.priority = serve::Priority::High;
  auto waiter = server.submit(high);  // coalesces: bypasses the full queue
  ASSERT_TRUE(waiter.ok());

  auto newcomer = server.submit(serve::Request(graphs[1]));  // Normal
  EXPECT_FALSE(newcomer.ok());
  EXPECT_EQ(newcomer.status().code(), serve::StatusCode::kOverloaded);

  EXPECT_EQ(waiter.value().get().label, expected[0]);
  EXPECT_EQ(leader.value().get().label, expected[0]);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.forwards, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.shed, 0u);  // the promoted leader was never displaced
  EXPECT_EQ(stats.rejected, 1u);
}

// --- Predictive warming -----------------------------------------------------

TEST(InferenceServerTest, MissOnGroupMemberPrefetchesItsSiblings) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x27));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  serve::InferenceServer server(model, config);
  server.register_warm_group(
      {&graphs[0], &graphs[1], &graphs[2], &graphs[3]});

  // One client miss on a group member: the sibling prefetches join the
  // same micro-batch, so one predict warms the whole group.
  EXPECT_EQ(server.predict(graphs[0]).label, expected[0]);
  {
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.queries, 1u);  // warming is not client traffic
    EXPECT_EQ(stats.warm_enqueued, 3u);
    EXPECT_EQ(stats.warm_completed, 3u);
    EXPECT_EQ(stats.warm_shed, 0u);
    EXPECT_EQ(stats.forwards, 4u);       // honest model work
    EXPECT_EQ(stats.source_batch, 1u);   // client partition excludes warming
    EXPECT_EQ(stats.cache.misses, 1u);
  }
  // The siblings now hit without ever having been queried.
  for (int g : {1, 2, 3}) {
    const serve::Response r = server.predict(graphs[static_cast<size_t>(g)]);
    EXPECT_EQ(r.label, expected[static_cast<std::size_t>(g)]);
    EXPECT_EQ(r.source, serve::Source::Cache);
  }
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.queries, 4u);
  EXPECT_EQ(stats.cache.hits, 3u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.coalesced,
            stats.queries);
  // A warmed group does not re-warm: everything is cached or in flight.
  EXPECT_EQ(stats.warm_enqueued, 3u);
}

TEST(InferenceServerTest, WarmingIsFirstDropOldestVictimAndBacksOff) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x28));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  config.max_queue = 3;
  config.shed_policy = serve::ShedPolicy::DropOldest;
  serve::InferenceServer server(model, config);
  server.register_warm_group(
      {&graphs[0], &graphs[1], &graphs[2], &graphs[3]});

  // submit(g0) admits the leader (queue 1/3) and warms g1, g2 (3/3); the
  // prefetch for g3 finds the queue full and is suppressed, never shed.
  auto f0 = server.submit(serve::Request(graphs[0]));
  ASSERT_TRUE(f0.ok());
  {
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.warm_enqueued, 2u);
    EXPECT_EQ(stats.warm_suppressed, 1u);
  }
  // Two real queries into the full queue: each displaces the oldest Low
  // prefetch — warming is the first victim, client traffic is never shed.
  auto f4 = server.submit(serve::Request(graphs[4]));
  auto f5 = server.submit(serve::Request(graphs[5]));
  ASSERT_TRUE(f4.ok() && f5.ok());
  {
    const serve::ServerStats stats = server.stats();
    EXPECT_EQ(stats.warm_shed, 2u);
    EXPECT_EQ(stats.shed, 0u);
    EXPECT_EQ(stats.rejected, 0u);
  }
  EXPECT_EQ(f0.value().get().label, expected[0]);
  EXPECT_EQ(f4.value().get().label, expected[4]);
  EXPECT_EQ(f5.value().get().label, expected[5]);

  // g3 misses and would warm its siblings, but g0 is cached and the shed
  // prefetches (g1, g2) are inside their negative TTL: nothing enqueues —
  // shed-heavy keys are not retried hot.
  EXPECT_EQ(server.predict(graphs[3]).label, expected[3]);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.warm_enqueued, 2u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.coalesced,
            stats.queries);
}

TEST(InferenceServerTest, NegativeTtlZeroRetriesShedPrefetchesImmediately) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x29));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  config.max_queue = 3;
  config.shed_policy = serve::ShedPolicy::DropOldest;
  config.warm_negative_ttl_us = 0;  // back-off disabled
  serve::InferenceServer server(model, config);
  server.register_warm_group(
      {&graphs[0], &graphs[1], &graphs[2], &graphs[3]});

  auto f0 = server.submit(serve::Request(graphs[0]));  // warms g1, g2
  auto f4 = server.submit(serve::Request(graphs[4]));  // sheds warm g1
  auto f5 = server.submit(serve::Request(graphs[5]));  // sheds warm g2
  ASSERT_TRUE(f0.ok() && f4.ok() && f5.ok());
  EXPECT_EQ(f0.value().get().label, expected[0]);
  EXPECT_EQ(f4.value().get().label, expected[4]);
  EXPECT_EQ(f5.value().get().label, expected[5]);
  EXPECT_EQ(server.stats().warm_shed, 2u);

  // With no TTL the next group miss re-warms the shed siblings right away.
  EXPECT_EQ(server.predict(graphs[3]).label, expected[3]);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.warm_enqueued, 4u);  // g1, g2 warmed again
  EXPECT_EQ(stats.warm_completed, 2u);
}

TEST(InferenceServerTest, ClientQueryCoalescesOntoItsOwnPrefetch) {
  // A real query racing the warm-up of its fingerprint must attach to the
  // prefetch (one forward), not duplicate it.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x2A));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  serve::InferenceServer server(model, config);
  server.register_warm_group({&graphs[6], &graphs[7]});

  auto f6 = server.submit(serve::Request(graphs[6]));  // warms g7
  ASSERT_TRUE(f6.ok());
  auto f7 = server.submit(serve::Request(graphs[7]));  // coalesces onto it
  ASSERT_TRUE(f7.ok());
  const serve::Response r7 = f7.value().get();
  EXPECT_EQ(r7.label, expected[7]);
  EXPECT_EQ(r7.source, serve::Source::Coalesced);
  EXPECT_EQ(f6.value().get().label, expected[6]);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.warm_enqueued, 1u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.forwards, 2u);  // g6's leader + the shared g7 prefetch
  EXPECT_EQ(stats.cache.hits + stats.cache.misses + stats.coalesced,
            stats.queries);
}

// --- Future move semantics --------------------------------------------------

TEST(InferenceServerFutureTest, MoveFullyDisarmsTheSource) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x2B));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 64;
  serve::InferenceServer server(model, config);

  // Pending future: construct + assign moves leave the source invalid.
  auto submitted = server.submit(serve::Request(graphs[0]));
  ASSERT_TRUE(submitted.ok());
  serve::InferenceServer::Future a = std::move(submitted).value();
  EXPECT_TRUE(a.valid());
  serve::InferenceServer::Future b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_TRUE(b.valid());
  a = std::move(b);  // assign back into the moved-from handle
  EXPECT_FALSE(b.valid());
  ASSERT_TRUE(a.valid());
  EXPECT_EQ(a.get().label, expected[0]);

  // Ready (cache-hit) future: moving transfers the stored response once.
  auto hit = server.submit(serve::Request(graphs[0]));
  ASSERT_TRUE(hit.ok());
  serve::InferenceServer::Future c = std::move(hit).value();
  serve::InferenceServer::Future d = std::move(c);
  EXPECT_FALSE(c.valid());
  ASSERT_TRUE(d.valid());
  const serve::Response r = d.get();
  EXPECT_EQ(r.label, expected[0]);
  EXPECT_EQ(r.source, serve::Source::Cache);
}

TEST(InferenceServerFutureTest, AbandonAfterMoveReleasesTheRightSlot) {
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x2C));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 0;
  serve::InferenceServer server(model, config);

  auto submitted = server.submit(serve::Request(graphs[1]));
  ASSERT_TRUE(submitted.ok());
  {
    serve::InferenceServer::Future moved_from = std::move(submitted).value();
    serve::InferenceServer::Future owner = std::move(moved_from);
    // moved_from's destructor must be a no-op; owner's abandons the slot.
  }
  // The abandoned query is still answered by the next pump and its slot
  // recycles; later queries are unaffected.
  EXPECT_EQ(server.predict(graphs[2]).label, expected[2]);
  EXPECT_EQ(server.predict(graphs[1]).label, expected[1]);
}

TEST(ModelRegistryTest, PublishResolveRetireAndVersions) {
  auto model_a = std::make_shared<const gnn::StaticModel>(small_config(0x1));
  auto model_b = std::make_shared<const gnn::StaticModel>(small_config(0x2));
  serve::ModelRegistry registry;

  EXPECT_EQ(registry.resolve("gnn"), nullptr);
  EXPECT_EQ(registry.version("gnn"), 0u);

  EXPECT_EQ(registry.publish("gnn", model_a), 1u);
  EXPECT_EQ(registry.resolve("gnn").get(), model_a.get());
  EXPECT_EQ(registry.publish("gnn", model_b), 2u);
  EXPECT_EQ(registry.resolve("gnn").get(), model_b.get());
  EXPECT_EQ(registry.version("gnn"), 2u);
  EXPECT_EQ(registry.names(), std::vector<std::string>{"gnn"});

  // A server stays attached to the slot across retire: the name is gone
  // from the registry but the last publication keeps serving.
  auto slot = registry.slot("gnn");
  EXPECT_TRUE(registry.retire("gnn"));
  EXPECT_FALSE(registry.retire("gnn"));
  EXPECT_EQ(registry.resolve("gnn"), nullptr);
  EXPECT_EQ(slot->snapshot()->model.get(), model_b.get());
  EXPECT_EQ(slot->snapshot()->version, 2u);
}

TEST(PredictionCacheTest, LRUEvictionAndStats) {
  serve::PredictionCache cache(4, /*num_shards=*/1);
  int label = -1;
  EXPECT_FALSE(cache.lookup(10, &label));
  for (std::uint64_t k = 0; k < 4; ++k)
    cache.insert(k, static_cast<int>(k) + 100);
  for (std::uint64_t k = 0; k < 4; ++k) {
    EXPECT_TRUE(cache.lookup(k, &label));
    EXPECT_EQ(label, static_cast<int>(k) + 100);
  }
  // 0..3 were re-touched in order; inserting 4 must evict 0 (the LRU).
  cache.insert(4, 104);
  EXPECT_FALSE(cache.lookup(0, &label));
  EXPECT_TRUE(cache.lookup(4, &label));
  EXPECT_TRUE(cache.lookup(1, &label));
  // Touch 2 then insert again: 3 is now least recent.
  EXPECT_TRUE(cache.lookup(2, &label));
  cache.insert(5, 105);
  EXPECT_FALSE(cache.lookup(3, &label));

  serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 4u);
  EXPECT_EQ(stats.insertions, 6u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_FALSE(cache.lookup(4, &label));
}

TEST(PredictionCacheTest, ZeroCapacityDisables) {
  serve::PredictionCache cache(0);
  int label = -1;
  cache.insert(7, 1);
  EXPECT_FALSE(cache.lookup(7, &label));
}

TEST(PredictionCacheTest, ShardedCapacityHolds) {
  serve::PredictionCache cache(64, 8);
  EXPECT_EQ(cache.capacity(), 64u);
  for (std::uint64_t k = 0; k < 10000; ++k)
    cache.insert(hash_combine64(0x5EED, k), static_cast<int>(k % 7));
  EXPECT_LE(cache.stats().entries, 64u);
  EXPECT_EQ(cache.stats().insertions, 10000u);
  EXPECT_EQ(cache.stats().evictions, 10000u - cache.stats().entries);
}

TEST(PredictionCacheTest, ClearResetsStatsForANewEpoch) {
  serve::PredictionCache cache(4, /*num_shards=*/1);
  int label = -1;
  for (std::uint64_t k = 0; k < 6; ++k)
    cache.insert(k, static_cast<int>(k));
  cache.insert(5, 50);  // refresh
  EXPECT_TRUE(cache.lookup(5, &label));
  EXPECT_FALSE(cache.lookup(99, &label));
  const serve::CacheStats before = cache.stats();
  EXPECT_GT(before.hits, 0u);
  EXPECT_GT(before.misses, 0u);
  EXPECT_GT(before.insertions, 0u);
  EXPECT_GT(before.refreshes, 0u);
  EXPECT_GT(before.evictions, 0u);

  // clear() starts a new epoch: entries AND every counter go to zero, so a
  // hit-rate measured after the clear never blends the old epoch's traffic.
  cache.clear();
  const serve::CacheStats after = cache.stats();
  EXPECT_EQ(after.hits, 0u);
  EXPECT_EQ(after.misses, 0u);
  EXPECT_EQ(after.insertions, 0u);
  EXPECT_EQ(after.refreshes, 0u);
  EXPECT_EQ(after.evictions, 0u);
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.hit_rate(), 0.0);

  // The cleared cache is fully usable: capacity and slots were kept.
  cache.insert(1, 10);
  EXPECT_TRUE(cache.lookup(1, &label));
  EXPECT_EQ(label, 10);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(PredictionCacheTest, DuplicateInsertCountsARefreshNotAnInsertion) {
  serve::PredictionCache cache(4, /*num_shards=*/1);
  cache.insert(7, 1);
  cache.insert(7, 1);  // racing double-insert of the same fingerprint
  cache.insert(7, 2);  // refresh may also change the label (new epoch key)
  serve::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.refreshes, 2u);
  EXPECT_EQ(stats.entries, 1u);
  int label = -1;
  EXPECT_TRUE(cache.lookup(7, &label));
  EXPECT_EQ(label, 2);

  // The accounting identity the refresh counter exists to protect:
  // insertions - evictions == entries, under any insert/evict/refresh mix.
  for (std::uint64_t k = 0; k < 100; ++k) cache.insert(k % 10, 0);
  stats = cache.stats();
  EXPECT_EQ(stats.insertions - stats.evictions, stats.entries);
}

TEST(InferenceServerTest, EmptyGraphIsRejectedBeforeAdmission) {
  // A zero-node graph has nothing to predict for: it must be refused as
  // InvalidArgument BEFORE costing a queue slot, a cache probe or even the
  // query counter — validation failures appear in no conservation law.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xE0));
  serve::ServerConfig config;
  config.background_loop = false;
  serve::InferenceServer server(model, config);

  const graph::ProgramGraph empty;
  ASSERT_EQ(empty.num_nodes(), 0);

  serve::StatusOr<serve::InferenceServer::Future> submitted =
      server.submit(serve::Request(empty));
  ASSERT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), serve::StatusCode::kInvalidArgument);

  const serve::Response r = server.predict(empty);
  EXPECT_EQ(r.status.code(), serve::StatusCode::kInvalidArgument);
  EXPECT_EQ(r.source, serve::Source::Shed);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.invalid_arguments, 2u);
  EXPECT_EQ(stats.queries, 0u) << "invalid requests are not queries";
  EXPECT_EQ(stats.forwards, 0u);
  EXPECT_EQ(stats.cache.hits + stats.cache.misses, 0u)
      << "rejected before the cache probe";
  // A valid query afterwards is entirely unaffected.
  EXPECT_TRUE(server.predict(test_graphs()[0]).ok());
}

TEST(PredictionCacheTest, ShardIndexMixesTheFullKey) {
  // The old shard choice used only the top 8 bits ((key >> 56) % shards):
  // sequential keys — and any key population with a constant high byte,
  // like small counters or version-mixed fingerprints with few versions —
  // all collapsed into one shard, shrinking the effective capacity to a
  // single shard's and serializing every lookup on one mutex. The fixed
  // mix must reach every shard from low-entropy keys.
  constexpr std::size_t kShards = 300;  // > 256: unreachable in the old scheme
  std::vector<bool> seen(kShards, false);
  std::size_t distinct = 0;
  for (std::uint64_t k = 0; k < 20000 && distinct < kShards; ++k) {
    const std::size_t s = serve::PredictionCache::shard_index(k, kShards);
    ASSERT_LT(s, kShards);
    if (!seen[s]) {
      seen[s] = true;
      ++distinct;
    }
  }
  EXPECT_EQ(distinct, kShards);

  // End to end: sequential keys must fill the whole sharded capacity, not
  // one shard's slice (3000/300 = 10 entries under the old scheme).
  serve::PredictionCache cache(3000, 300);
  for (std::uint64_t k = 0; k < 20000; ++k)
    cache.insert(k, static_cast<int>(k & 3));
  EXPECT_EQ(cache.stats().entries, cache.capacity());
  EXPECT_EQ(cache.stats().insertions - cache.stats().evictions,
            cache.stats().entries);
}

}  // namespace
}  // namespace irgnn
