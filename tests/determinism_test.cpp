// The parallel execution engine's determinism contract: every result —
// training losses, predictions, embeddings, exploration tables, reduced
// labels — is bit-identical no matter how many threads execute it.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gnn/model.h"
#include "gnn/quantize.h"
#include "graph/graph_builder.h"
#include "ml/cross_validation.h"
#include "sim/exploration.h"
#include "tensor/tensor.h"
#include "workloads/suite.h"

namespace irgnn {
namespace {

struct TrainOutcome {
  std::vector<double> epoch_loss;
  std::vector<int> predictions;
  std::vector<float> embedding;
};

TrainOutcome train_with_threads(int num_threads) {
  static const std::vector<graph::ProgramGraph> graphs_owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 3, 7, 12, 21, 30, 41, 50}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  std::vector<const graph::ProgramGraph*> graphs;
  std::vector<int> labels;
  for (std::size_t i = 0; i < graphs_owned.size(); ++i) {
    graphs.push_back(&graphs_owned[i]);
    labels.push_back(static_cast<int>(i) % 3);
  }

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 3;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.epochs = 4;
  cfg.batch_size = 4;  // several minibatches and gradient shards per epoch
  cfg.dropout = 0.2f;  // exercises the per-shard seeded dropout streams
  cfg.seed = 0xD5EED;
  cfg.num_threads = num_threads;

  tensor::set_kernel_parallelism(num_threads);
  gnn::StaticModel model(cfg);
  gnn::TrainStats stats = model.train(graphs, labels);
  TrainOutcome out;
  out.epoch_loss = stats.epoch_loss;
  out.predictions = model.predict(graphs);
  out.embedding = model.embed(graphs)[0];
  tensor::set_kernel_parallelism(0);
  return out;
}

/// Bitwise equality — EXPECT_EQ on doubles would accept mere closeness
/// through -0.0 vs 0.0, and hides nothing else anyway; the contract is
/// "identical bits", so compare the representation.
template <typename T>
bool bits_equal(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0;
}

TEST(DeterminismTest, TrainingIsBitIdenticalAcrossThreadCounts) {
  TrainOutcome t1 = train_with_threads(1);
  TrainOutcome t2 = train_with_threads(2);
  TrainOutcome t8 = train_with_threads(8);

  ASSERT_EQ(t1.epoch_loss.size(), t2.epoch_loss.size());
  EXPECT_TRUE(bits_equal(t1.epoch_loss, t2.epoch_loss));
  EXPECT_TRUE(bits_equal(t1.epoch_loss, t8.epoch_loss));
  EXPECT_EQ(t1.predictions, t2.predictions);
  EXPECT_EQ(t1.predictions, t8.predictions);
  EXPECT_TRUE(bits_equal(t1.embedding, t2.embedding));
  EXPECT_TRUE(bits_equal(t1.embedding, t8.embedding));
}

TEST(DeterminismTest, ExplorationIsBitIdenticalAcrossThreadCounts) {
  sim::MachineDesc machine = sim::MachineDesc::skylake();
  std::vector<sim::WorkloadTraits> traits;
  for (int r : {2, 9, 17, 28, 39})
    traits.push_back(workloads::benchmark_suite()[r].traits);

  sim::ExplorationTable serial = sim::explore(machine, traits, 1.0, 1);
  sim::ExplorationTable parallel4 = sim::explore(machine, traits, 1.0, 4);
  sim::ExplorationTable parallel8 = sim::explore(machine, traits, 1.0, 8);

  ASSERT_EQ(serial.time.size(), parallel4.time.size());
  for (std::size_t r = 0; r < serial.time.size(); ++r) {
    EXPECT_TRUE(bits_equal(serial.time[r], parallel4.time[r])) << "row " << r;
    EXPECT_TRUE(bits_equal(serial.time[r], parallel8.time[r])) << "row " << r;
  }
  // Downstream label selection sees identical inputs, so it must agree too.
  auto labels1 = sim::reduce_labels(serial, 6);
  auto labels8 = sim::reduce_labels(parallel8, 6);
  EXPECT_EQ(labels1, labels8);
  EXPECT_EQ(sim::best_labels(serial, labels1),
            sim::best_labels(parallel8, labels8));
}

TEST(DeterminismTest, MatmulIdenticalForEveryKernelParallelism) {
  Rng rng(42);
  tensor::Tensor a = tensor::Tensor::xavier({95, 70}, rng);
  tensor::Tensor b = tensor::Tensor::xavier({70, 63}, rng);
  tensor::set_kernel_parallelism(1);
  tensor::Tensor serial = tensor::matmul(a, b);
  tensor::set_kernel_parallelism(8);
  tensor::Tensor parallel = tensor::matmul(a, b);
  tensor::set_kernel_parallelism(0);
  for (int i = 0; i < serial.numel(); ++i)
    ASSERT_EQ(serial.data()[i], parallel.data()[i]) << "entry " << i;
}

// --- Int8 quantization leg --------------------------------------------------

/// Distinct suite regions for the quantization tests, built once.
const std::vector<graph::ProgramGraph>& quant_graphs() {
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 3, 7, 12, 21, 30, 41, 50, 2, 9, 17, 28}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  return owned;
}

/// Shared trained float model for the quantization determinism tests:
/// trained once (single-threaded, fixed seed) so every test below
/// quantizes the same parameters.
const gnn::StaticModel& quant_source_model() {
  static const gnn::StaticModel* model = [] {
    tensor::set_kernel_parallelism(1);
    gnn::ModelConfig cfg;
    cfg.vocab_size = graph::vocabulary_size();
    cfg.num_labels = 3;
    cfg.hidden_dim = 16;
    cfg.num_layers = 2;
    cfg.epochs = 4;
    cfg.batch_size = 4;
    cfg.seed = 0xD5EED;
    cfg.num_threads = 1;
    auto* m = new gnn::StaticModel(cfg);
    std::vector<const graph::ProgramGraph*> graphs;
    std::vector<int> labels;
    const auto& owned = quant_graphs();
    for (std::size_t i = 0; i < owned.size(); ++i) {
      graphs.push_back(&owned[i]);
      labels.push_back(static_cast<int>(i) % 3);
    }
    m->train(graphs, labels);
    tensor::set_kernel_parallelism(0);
    return m;
  }();
  return *model;
}

TEST(DeterminismTest, QuantizationScalesIdenticalAcrossThreadCounts) {
  // Calibration is a min/max reduction over fixed 16-graph shards; the
  // derived scales and zero points must not depend on how many workers ran
  // the shards. 19 graphs = two shards, so the parallel path is real.
  const gnn::StaticModel& model = quant_source_model();
  std::vector<const graph::ProgramGraph*> fold;
  const auto& owned = quant_graphs();
  for (std::size_t i = 0; i < 19; ++i)
    fold.push_back(&owned[i % owned.size()]);

  auto quantize_with_threads = [&](int t) {
    tensor::set_kernel_parallelism(t);
    auto q = model.quantize(fold);
    tensor::set_kernel_parallelism(0);
    EXPECT_TRUE(q.ok()) << q.status().message();
    return std::move(q).value();
  };
  auto q1 = quantize_with_threads(1);
  auto q8 = quantize_with_threads(8);
  EXPECT_TRUE(bits_equal(q1->scales(), q8->scales()));
  EXPECT_EQ(q1->zero_points(), q8->zero_points());
}

TEST(DeterminismTest, QuantizationScalesIdenticalForEveryCalibrationOrder) {
  // min/max is commutative: permuting or reversing the calibration fold
  // (different shard compositions entirely) must reproduce the exact same
  // scales, hence the same published model bits.
  const gnn::StaticModel& model = quant_source_model();
  const auto& owned = quant_graphs();
  std::vector<const graph::ProgramGraph*> fold;
  for (const auto& g : owned) fold.push_back(&g);

  std::vector<const graph::ProgramGraph*> reversed(fold.rbegin(), fold.rend());
  std::vector<const graph::ProgramGraph*> rotated(fold.begin() + 3, fold.end());
  rotated.insert(rotated.end(), fold.begin(), fold.begin() + 3);

  auto qa = model.quantize(fold);
  auto qb = model.quantize(reversed);
  auto qc = model.quantize(rotated);
  ASSERT_TRUE(qa.ok() && qb.ok() && qc.ok());
  EXPECT_TRUE(bits_equal(qa.value()->scales(), qb.value()->scales()));
  EXPECT_TRUE(bits_equal(qa.value()->scales(), qc.value()->scales()));
  EXPECT_EQ(qa.value()->zero_points(), qb.value()->zero_points());
  EXPECT_EQ(qa.value()->zero_points(), qc.value()->zero_points());
}

TEST(DeterminismTest, QuantizedPredictionsBitIdenticalAcrossThreadCounts) {
  const gnn::StaticModel& model = quant_source_model();
  const auto& owned = quant_graphs();
  std::vector<const graph::ProgramGraph*> graphs;
  // 40 pointers cycling the owned graphs: several inference shards.
  for (std::size_t i = 0; i < 40; ++i) graphs.push_back(&owned[i % owned.size()]);

  auto q = model.quantize(graphs);
  ASSERT_TRUE(q.ok());
  const auto quantized = std::move(q).value();

  auto predict_with_threads = [&](int t) {
    tensor::set_kernel_parallelism(t);
    gnn::Evaluation eval;
    quantized->evaluate(graphs, eval, /*want_embeddings=*/true);
    tensor::set_kernel_parallelism(0);
    return eval;
  };
  gnn::Evaluation e1 = predict_with_threads(1);
  gnn::Evaluation e8 = predict_with_threads(8);
  EXPECT_EQ(e1.predictions, e8.predictions);
  EXPECT_TRUE(bits_equal(e1.log_probs, e8.log_probs));
  EXPECT_TRUE(bits_equal(e1.embeddings, e8.embeddings));
}

TEST(DeterminismTest, QuantizedPredictionsIndependentOfBatchComposition) {
  // One query over the whole set vs one query per graph: per-graph rows
  // must match bitwise (the batch a graph shares changes nothing).
  const gnn::StaticModel& model = quant_source_model();
  const auto& owned = quant_graphs();
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& g : owned) graphs.push_back(&g);

  auto q = model.quantize(graphs);
  ASSERT_TRUE(q.ok());
  const auto quantized = std::move(q).value();

  gnn::Evaluation all;
  quantized->evaluate(graphs, all, /*want_embeddings=*/true);
  const int labels = quantized->num_labels();
  const int hidden = quantized->hidden_dim();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    gnn::Evaluation one;
    quantized->evaluate({graphs[i]}, one, /*want_embeddings=*/true);
    ASSERT_EQ(one.predictions.size(), 1u);
    EXPECT_EQ(one.predictions[0], all.predictions[i]) << "graph " << i;
    for (int j = 0; j < labels; ++j)
      ASSERT_EQ(one.log_probs[j], all.log_probs[i * labels + j])
          << "graph " << i << " label " << j;
    for (int j = 0; j < hidden; ++j)
      ASSERT_EQ(one.embeddings[j], all.embeddings[i * hidden + j])
          << "graph " << i << " dim " << j;
  }
}

TEST(DeterminismTest, ForEachFoldRunsEveryFoldOnce) {
  auto folds = ml::k_fold(57, 10, 0x5EED);
  std::vector<int> visits(folds.size(), 0);
  ml::for_each_fold(folds.size(), 4,
                    [&](std::size_t f) { ++visits[f]; });
  for (std::size_t f = 0; f < folds.size(); ++f) EXPECT_EQ(visits[f], 1);
  // Same seed, same folds.
  auto again = ml::k_fold(57, 10, 0x5EED);
  for (std::size_t f = 0; f < folds.size(); ++f) {
    EXPECT_EQ(folds[f].train_indices, again[f].train_indices);
    EXPECT_EQ(folds[f].validation_indices, again[f].validation_indices);
  }
}

}  // namespace
}  // namespace irgnn
