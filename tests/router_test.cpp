// serve::Router tests: the determinism contract under the typed front door
// — every *admitted* response is bit-identical to a serial
// StaticModel::predict of the named model, for every shed policy, queue
// bound, model mix and client count — plus routing failures
// (ModelNotFound), shedding under overload never corrupting admitted
// results, hot-swap during shedding, the Block policy's queue bound, and
// queue-time deadlines. Runs under TSan in CI with the other serve
// binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "serve/router.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace irgnn {
namespace {

/// A dozen structurally distinct suite regions, built once.
const std::vector<graph::ProgramGraph>& test_graphs() {
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 3, 7, 12, 18, 23, 29, 34, 40, 45, 51, 55}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  return owned;
}

gnn::ModelConfig small_config(std::uint64_t seed) {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 5;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = seed;
  cfg.num_threads = 1;
  return cfg;
}

serve::ModelPtr make_model(std::uint64_t seed) {
  return std::make_shared<const gnn::StaticModel>(small_config(seed));
}

std::vector<int> serial_predict(const gnn::InferenceModel& model) {
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : test_graphs()) ptrs.push_back(&g);
  return model.predict(ptrs);
}

TEST(RouterTest, RoutesByNameAndReportsModelNotFound) {
  auto model_a = make_model(0xA);
  auto model_b = make_model(0xB);
  const std::vector<int> expected_a = serial_predict(*model_a);
  const std::vector<int> expected_b = serial_predict(*model_b);
  ASSERT_NE(expected_a, expected_b);  // nudge the seeds if this ever flakes
  const auto& graphs = test_graphs();

  serve::Router router;

  // Nothing published yet: everything is ModelNotFound, never a throw.
  serve::Response none = router.predict(serve::Request(graphs[0], "snb"));
  EXPECT_EQ(none.status.code(), serve::StatusCode::kModelNotFound);
  EXPECT_EQ(none.source, serve::Source::Shed);

  EXPECT_EQ(router.publish("snb", model_a), 1u);
  // One model: an unnamed request routes to it.
  EXPECT_TRUE(router.predict(serve::Request(graphs[0])).ok());

  EXPECT_EQ(router.publish("skl", model_b), 1u);
  EXPECT_EQ(router.models(), (std::vector<std::string>{"skl", "snb"}));

  // Two models: each name gets its own model's serial bits, for every
  // graph, including repeats from each model's own version-keyed cache.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      const serve::Response a =
          router.predict(serve::Request(graphs[g], "snb"));
      const serve::Response b =
          router.predict(serve::Request(graphs[g], "skl"));
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.label, expected_a[g]);
      EXPECT_EQ(b.label, expected_b[g]);
    }
  }

  // Unknown and ambiguous names are typed failures; submit() reports them
  // before a Future ever exists.
  EXPECT_EQ(router.predict(serve::Request(graphs[0], "haswell")).status.code(),
            serve::StatusCode::kModelNotFound);
  EXPECT_EQ(router.predict(serve::Request(graphs[0])).status.code(),
            serve::StatusCode::kModelNotFound);
  serve::StatusOr<serve::InferenceServer::Future> submitted =
      router.submit(serve::Request(graphs[0], "haswell"));
  EXPECT_FALSE(submitted.ok());
  EXPECT_EQ(submitted.status().code(), serve::StatusCode::kModelNotFound);

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.model_not_found, 4u);
  EXPECT_EQ(stats.models.size(), 2u);
  EXPECT_EQ(stats.shed + stats.rejected + stats.deadline_exceeded, 0u);

  // Retire stops routing; the other model keeps serving.
  EXPECT_TRUE(router.retire("snb"));
  EXPECT_FALSE(router.retire("snb"));
  EXPECT_EQ(router.predict(serve::Request(graphs[0], "snb")).status.code(),
            serve::StatusCode::kModelNotFound);
  EXPECT_EQ(router.predict(serve::Request(graphs[0], "skl")).label,
            expected_b[0]);
  // Retired traffic stays in the totals.
  EXPECT_GE(router.stats().queries, 4 * graphs.size());
}

TEST(RouterTest, AdmittedResponsesBitIdenticalForEveryPolicyAndBound) {
  // The pinned determinism contract: N concurrent clients over two models
  // behind one router, for every shed policy and several queue bounds —
  // every response that comes back Ok must equal the named model's serial
  // predict of that graph. Shedding may remove answers, never change them.
  auto model_a = make_model(0x1A);
  auto model_b = make_model(0x1B);
  const std::vector<int> expected_a = serial_predict(*model_a);
  const std::vector<int> expected_b = serial_predict(*model_b);
  const auto& graphs = test_graphs();

  for (serve::ShedPolicy policy :
       {serve::ShedPolicy::Reject, serve::ShedPolicy::DropOldest,
        serve::ShedPolicy::Block}) {
    for (std::size_t max_queue : {std::size_t{0}, std::size_t{2},
                                  std::size_t{16}}) {
      serve::RouterConfig config;
      config.max_queue = max_queue;
      config.shed_policy = policy;
      config.server.max_batch = 4;
      config.server.cache_capacity = 16;
      serve::Router router(config);
      router.publish("a", model_a);
      router.publish("b", model_b);

      constexpr int kClients = 4;
      constexpr int kQueriesPerClient = 64;
      std::atomic<int> wrong{0};
      std::atomic<int> ok_answers{0};
      std::atomic<int> shed_answers{0};
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          Rng rng(hash_combine64(0x2071E, static_cast<std::uint64_t>(c)));
          for (int q = 0; q < kQueriesPerClient; ++q) {
            const std::size_t g = rng.next_below(graphs.size());
            const bool use_a = (rng.next_below(2) == 0);
            const serve::Response r = router.predict(
                serve::Request(graphs[g], use_a ? "a" : "b"));
            if (r.ok()) {
              ok_answers.fetch_add(1);
              const int want = use_a ? expected_a[g] : expected_b[g];
              if (r.label != want) wrong.fetch_add(1);
            } else {
              shed_answers.fetch_add(1);
              if (r.status.code() != serve::StatusCode::kOverloaded)
                wrong.fetch_add(1);
            }
          }
        });
      }
      for (auto& t : clients) t.join();
      EXPECT_EQ(wrong.load(), 0)
          << "policy=" << serve::shed_policy_name(policy)
          << " max_queue=" << max_queue;
      EXPECT_EQ(ok_answers.load() + shed_answers.load(),
                kClients * kQueriesPerClient);
      if (max_queue == 0 || policy == serve::ShedPolicy::Block) {
        // Unbounded or blocking admission: nothing may be shed.
        EXPECT_EQ(shed_answers.load(), 0)
            << "policy=" << serve::shed_policy_name(policy)
            << " max_queue=" << max_queue;
      }
      const serve::RouterStats stats = router.stats();
      EXPECT_EQ(stats.shed + stats.rejected,
                static_cast<std::uint64_t>(shed_answers.load()));
    }
  }
}

TEST(RouterTest, SheddingUnderOverloadNeverCorruptsAdmittedResults) {
  // An async burst far beyond the bound: admitted answers must stay serial-
  // predict bits, everything must resolve (answered or shed), and the
  // admitted queue depth must never exceed the bound.
  auto model = make_model(0x2A);
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  for (serve::ShedPolicy policy :
       {serve::ShedPolicy::Reject, serve::ShedPolicy::DropOldest}) {
    serve::RouterConfig config;
    config.max_queue = 4;
    config.shed_policy = policy;
    config.server.max_batch = 2;
    config.server.cache_capacity = 0;  // every admitted query = a forward
    config.server.background_loop = false;  // this thread drives the pump
    serve::Router router(config);
    router.publish("m", model);

    constexpr int kBurst = 96;
    int rejected = 0;
    std::vector<std::pair<std::size_t, serve::InferenceServer::Future>>
        admitted;
    for (int q = 0; q < kBurst; ++q) {
      const std::size_t g =
          static_cast<std::size_t>(q) % graphs.size();
      serve::StatusOr<serve::InferenceServer::Future> submitted =
          router.submit(serve::Request(graphs[g], "m"));
      if (!submitted.ok()) {
        EXPECT_EQ(submitted.status().code(),
                  serve::StatusCode::kOverloaded);
        ++rejected;
        continue;
      }
      admitted.emplace_back(g, std::move(submitted).value());
    }
    int answered = 0, shed = 0, corrupted = 0;
    for (auto& [g, future] : admitted) {
      const serve::Response r = future.get();
      if (r.ok()) {
        ++answered;
        if (r.label != expected[g]) ++corrupted;
      } else {
        EXPECT_EQ(r.status.code(), serve::StatusCode::kOverloaded);
        EXPECT_EQ(r.source, serve::Source::Shed);
        ++shed;
      }
    }
    EXPECT_EQ(corrupted, 0) << serve::shed_policy_name(policy);
    EXPECT_EQ(answered + shed + rejected, kBurst);
    EXPECT_GT(answered, 0);
    // With nobody pumping during the burst, a bound of 4 must have shed
    // (DropOldest admits the newcomer and drops a victim) or rejected
    // (Reject refuses the newcomer) most of it.
    if (policy == serve::ShedPolicy::Reject) {
      EXPECT_EQ(shed, 0);
      EXPECT_GT(rejected, 0);
    }
    if (policy == serve::ShedPolicy::DropOldest) {
      EXPECT_EQ(rejected, 0);
      EXPECT_GT(shed, 0);
    }
    const serve::RouterStats stats = router.stats();
    EXPECT_LE(stats.models[0].stats.peak_queue, config.max_queue);
    EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
    EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(rejected));
  }
}

TEST(RouterTest, HotSwapDuringSheddingKeepsEveryAnswerOnePublication) {
  auto model_a = make_model(0x3A);
  auto model_b = make_model(0x3B);
  const std::vector<int> expected_a = serial_predict(*model_a);
  const std::vector<int> expected_b = serial_predict(*model_b);
  ASSERT_NE(expected_a, expected_b);
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.max_queue = 3;
  config.shed_policy = serve::ShedPolicy::DropOldest;
  config.server.max_batch = 4;
  config.server.cache_capacity = 64;
  serve::Router router(config);
  router.publish("m", model_a);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 150;
  std::atomic<int> wrong{0};
  std::atomic<int> resolved{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(hash_combine64(0x50AB, static_cast<std::uint64_t>(c)));
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t g = rng.next_below(graphs.size());
        const serve::Response r =
            router.predict(serve::Request(graphs[g], "m"));
        if (r.ok()) {
          // Exactly one publication's serial bits — never a mix, even
          // while the queue is shedding around the swap.
          if (r.label != expected_a[g] && r.label != expected_b[g])
            wrong.fetch_add(1);
        } else if (r.status.code() != serve::StatusCode::kOverloaded) {
          wrong.fetch_add(1);
        }
        resolved.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t v2 = router.publish("m", model_b);
  EXPECT_EQ(v2, 2u);
  for (auto& t : clients) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(resolved.load(), kClients * kQueriesPerClient);

  // Quiesced: the new model answers, never the retired publication's cache.
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    serve::Response r = router.predict(serve::Request(graphs[g], "m"));
    // Drain any shedding backwash: retry the rare Overloaded result.
    while (!r.ok()) r = router.predict(serve::Request(graphs[g], "m"));
    EXPECT_EQ(r.label, expected_b[g]);
    EXPECT_EQ(r.model_version, v2);
  }
}

TEST(RouterTest, DropOldestShedsLowestPriorityAndRejectsOutrankedNewcomers) {
  // Deterministic single-threaded shedding: background_loop off and nobody
  // pumping, so the queue evolves exactly as admission control dictates.
  auto model = make_model(0x6A);
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::ServerConfig config;
  config.background_loop = false;
  config.cache_capacity = 0;
  config.max_queue = 3;
  config.shed_policy = serve::ShedPolicy::DropOldest;
  serve::InferenceServer server(model, config);

  auto submit_with = [&](std::size_t g, serve::Priority priority) {
    serve::Request request(graphs[g]);
    request.priority = priority;
    return server.submit(request);
  };

  // Fill the queue: [High(0), Low(1), High(2)].
  auto high1 = submit_with(0, serve::Priority::High);
  auto low1 = submit_with(1, serve::Priority::Low);
  auto high2 = submit_with(2, serve::Priority::High);
  ASSERT_TRUE(high1.ok());
  ASSERT_TRUE(low1.ok());
  ASSERT_TRUE(high2.ok());

  // A Normal newcomer sheds the oldest of the LOWEST priority class — the
  // Low request, not the older High one.
  auto normal1 = submit_with(3, serve::Priority::Normal);
  ASSERT_TRUE(normal1.ok());
  const serve::Response dropped = low1.value().get();
  EXPECT_EQ(dropped.status.code(), serve::StatusCode::kOverloaded);
  EXPECT_EQ(dropped.source, serve::Source::Shed);

  // A Low newcomer is outranked by everything queued (High, High, Normal):
  // it is rejected instead of promoting itself over admitted work.
  auto low2 = submit_with(4, serve::Priority::Low);
  EXPECT_FALSE(low2.ok());
  EXPECT_EQ(low2.status().code(), serve::StatusCode::kOverloaded);

  // The survivors answer with their serial bits.
  EXPECT_EQ(high1.value().get().label, expected[0]);
  EXPECT_EQ(high2.value().get().label, expected[2]);
  EXPECT_EQ(normal1.value().get().label, expected[3]);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.forwards, 3u);
  EXPECT_EQ(stats.peak_queue, 3u);
  EXPECT_EQ(stats.source_shed, 2u);
}

TEST(RouterTest, BlockPolicyBoundsQueueAndAnswersEverything) {
  auto model = make_model(0x4A);
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.max_queue = 3;
  config.shed_policy = serve::ShedPolicy::Block;
  config.server.max_batch = 2;
  config.server.cache_capacity = 0;
  config.server.background_loop = false;  // the submitter must self-pump
  serve::Router router(config);
  router.publish("m", model);

  // A single thread async-submitting past the bound: Block admits
  // everything (pumping while it waits for space) and nothing is shed.
  std::vector<std::pair<std::size_t, serve::InferenceServer::Future>> futures;
  for (int q = 0; q < 40; ++q) {
    const std::size_t g = static_cast<std::size_t>(q) % graphs.size();
    serve::StatusOr<serve::InferenceServer::Future> submitted =
        router.submit(serve::Request(graphs[g], "m"));
    ASSERT_TRUE(submitted.ok()) << submitted.status().code_name();
    futures.emplace_back(g, std::move(submitted).value());
  }
  for (auto& [g, future] : futures) {
    const serve::Response r = future.get();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.label, expected[g]);
  }
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.shed + stats.rejected, 0u);
  EXPECT_LE(stats.models[0].stats.peak_queue, config.max_queue);
  // A few suite regions share a fingerprint, so a submit whose twin is
  // still queued coalesces instead of forwarding (the cache is off);
  // either way every query is answered by exactly one of the two.
  EXPECT_EQ(stats.forwards + stats.coalesced, 40u);
}

TEST(RouterTest, CoalescingAndWarmingFoldIntoRouterStats) {
  auto model = make_model(0x7A);
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.max_queue = 0;  // nothing may shed in this test
  config.server.background_loop = false;
  config.server.cache_capacity = 64;
  serve::Router router(config);
  router.publish("m", model);

  // Warm-group registration resolves names like routing does, but is
  // configuration: it must not count as routed traffic.
  EXPECT_EQ(router
                .register_warm_group("haswell", {&graphs[0], &graphs[1]})
                .code(),
            serve::StatusCode::kModelNotFound);
  ASSERT_TRUE(router.register_warm_group("m", {&graphs[0], &graphs[1]}).ok());
  EXPECT_EQ(router.stats().routed, 0u);

  // Duplicate in-flight submits through the router coalesce on the routed
  // server: one forward answers both.
  auto leader = router.submit(serve::Request(graphs[2], "m"));
  auto waiter = router.submit(serve::Request(graphs[2], "m"));
  ASSERT_TRUE(leader.ok() && waiter.ok());
  const serve::Response rw = waiter.value().get();
  EXPECT_EQ(rw.label, expected[2]);
  EXPECT_EQ(rw.source, serve::Source::Coalesced);
  EXPECT_EQ(leader.value().get().label, expected[2]);

  // A miss on a group member prefetches its sibling; the sibling then hits
  // without ever forwarding on the client's behalf.
  EXPECT_EQ(router.predict(serve::Request(graphs[0], "m")).label,
            expected[0]);
  const serve::Response warmed =
      router.predict(serve::Request(graphs[1], "m"));
  EXPECT_EQ(warmed.label, expected[1]);
  EXPECT_EQ(warmed.source, serve::Source::Cache);

  const serve::RouterStats live = router.stats();
  EXPECT_EQ(live.queries, 4u);
  EXPECT_EQ(live.coalesced, 1u);
  EXPECT_EQ(live.source_coalesced, 1u);
  EXPECT_EQ(live.warm_enqueued, 1u);
  EXPECT_EQ(live.warm_completed, 1u);
  EXPECT_EQ(live.cache_hits, 1u);

  // Retiring the model folds its coalescing/warming traffic into the
  // retained totals — router stats survive the server they came from.
  ASSERT_TRUE(router.retire("m"));
  const serve::RouterStats folded = router.stats();
  EXPECT_TRUE(folded.models.empty());
  EXPECT_EQ(folded.coalesced, 1u);
  EXPECT_EQ(folded.source_coalesced, 1u);
  EXPECT_EQ(folded.warm_enqueued, 1u);
  EXPECT_EQ(folded.warm_completed, 1u);
  EXPECT_EQ(folded.queries, 4u);
}

TEST(RouterTest, QueueTimeDeadlineExpiresToDeadlineExceeded) {
  auto model = make_model(0x5A);
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::ServerConfig config;
  config.background_loop = false;  // nothing pumps until we ask
  config.cache_capacity = 0;
  serve::InferenceServer server(model, config);

  serve::Request patient(graphs[0]);
  serve::Request hurried(graphs[1]);
  hurried.deadline_us = 1;  // expires while nobody is pumping
  serve::StatusOr<serve::InferenceServer::Future> first =
      server.submit(patient);
  serve::StatusOr<serve::InferenceServer::Future> second =
      server.submit(hurried);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  // Collecting the patient request pumps the queue; the hurried one is
  // picked up by the same pump, found expired, and shed instead of
  // forwarded.
  const serve::Response r1 = first.value().get();
  const serve::Response r2 = second.value().get();
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.label, expected[0]);
  EXPECT_EQ(r2.status.code(), serve::StatusCode::kDeadlineExceeded);
  EXPECT_EQ(r2.source, serve::Source::Shed);
  EXPECT_GE(r2.queue_us, 1);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.forwards, 1u);
}

TEST(RouterTest, RetireDuringWarmingNeverResurrectsTheOldModel) {
  // Predictive warming keeps self-issued prefetch leaders in flight; a
  // retire() racing those leaders must drain them with the dying server —
  // and a fresh publish under the SAME name must answer with the new
  // model's bits and version, never a warmed-up leftover of the old one.
  auto old_model = make_model(0x01D);
  auto new_model = make_model(0x2E11);
  const std::vector<int> expected_old = serial_predict(*old_model);
  const std::vector<int> expected_new = serial_predict(*new_model);
  ASSERT_NE(expected_old, expected_new);  // nudge the seeds if this flakes
  const auto& graphs = test_graphs();

  for (int round = 0; round < 8; ++round) {
    serve::RouterConfig config;
    config.server.max_wait_us = 0;
    config.server.cache_capacity = 64;
    serve::Router router(config);
    router.publish("m", old_model);
    // Every graph warms every other: one miss fans out eleven prefetches.
    std::vector<const graph::ProgramGraph*> siblings;
    for (const auto& g : graphs) siblings.push_back(&g);
    ASSERT_TRUE(router.register_warm_group("m", siblings).ok());

    std::thread client([&] {
      // Touch a few graphs: each miss triggers a storm of warm leaders on
      // the background loop, in flight while the main thread retires.
      for (int q = 0; q < 4; ++q)
        (void)router.predict(
            serve::Request(graphs[static_cast<std::size_t>(q) * 3]));
    });
    router.retire("m");  // races the client AND its warming storm
    client.join();

    const std::uint64_t v = router.publish("m", new_model);
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      const serve::Response r = router.predict(serve::Request(graphs[g]));
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.label, expected_new[g]) << "stale answer, round " << round;
      EXPECT_EQ(r.model_version, v);
    }
    router.shutdown();
  }
}

TEST(RouterTest, RetryPolicyNeverRetriesDeterministicFailures) {
  // The retry layer in the default build (no fault injection): failures
  // that retrying cannot fix must come back immediately, with zero retries
  // spent — Overloaded above all (retrying a shed amplifies the overload
  // the shed was shedding), and ModelNotFound (deterministic).
  auto model = make_model(0x0F);
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.max_queue = 1;
  config.shed_policy = serve::ShedPolicy::Reject;
  config.server.background_loop = false;
  config.server.max_wait_us = 0;
  config.server.cache_capacity = 0;
  config.server.coalesce = false;
  serve::Router router(config);
  router.publish("m", model);

  serve::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.base_backoff_us = 0;  // a retry would be instant — and visible

  // Unknown model: one attempt, ModelNotFound, no retries.
  const serve::Response missing =
      router.predict(serve::Request(graphs[0], "nope"), policy);
  EXPECT_EQ(missing.status.code(), serve::StatusCode::kModelNotFound);
  EXPECT_EQ(router.stats().retries, 0u);

  // Fill the 1-deep queue with an unpumped future (background_loop off:
  // nothing drains until we collect it), then predict with retries armed:
  // the Overloaded shed must NOT be retried.
  serve::StatusOr<serve::InferenceServer::Future> parked =
      router.submit(serve::Request(graphs[1]));
  ASSERT_TRUE(parked.ok());
  const serve::Response shed =
      router.predict(serve::Request(graphs[2]), policy);
  EXPECT_EQ(shed.status.code(), serve::StatusCode::kOverloaded);
  EXPECT_EQ(shed.source, serve::Source::Shed);

  const serve::Response parked_answer = parked.value().get();
  EXPECT_TRUE(parked_answer.ok());

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.retry_requests, 2u);
  EXPECT_EQ(stats.retries, 0u)
      << "a deterministic failure was retried — wasted forwards";
  EXPECT_EQ(stats.retry_successes, 0u);
  EXPECT_EQ(stats.rejected, 1u) << "exactly one admission attempt was made";
}

}  // namespace
}  // namespace irgnn
