// Tests for the benchmark suite: completeness (56 regions as the paper
// evaluates), IR validity of every region under every pipeline (a
// parameterized sweep), trait sanity, and the static/dynamic coupling.
#include <gtest/gtest.h>

#include <set>

#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/verifier.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "workloads/suite.h"

namespace irgnn::workloads {
namespace {

TEST(SuiteTest, Has56RegionsLikeThePaper) {
  EXPECT_EQ(benchmark_suite().size(), 56u);
}

TEST(SuiteTest, NamesAreUniqueAndFamiliesPopulated) {
  std::set<std::string> names;
  std::set<std::string> families;
  for (const auto& spec : benchmark_suite()) {
    EXPECT_TRUE(names.insert(spec.name).second) << spec.name;
    families.insert(spec.family);
  }
  EXPECT_TRUE(families.count("nas"));
  EXPECT_TRUE(families.count("rodinia"));
  EXPECT_TRUE(families.count("lulesh"));
  EXPECT_TRUE(families.count("clomp"));
}

TEST(SuiteTest, ExpectedRegionCounts) {
  std::map<std::string, int> counts;
  for (const auto& spec : benchmark_suite()) ++counts[spec.family];
  EXPECT_EQ(counts["clomp"], 11);
  EXPECT_EQ(counts["lulesh"], 8);
  EXPECT_EQ(counts["nas"], 18);
  EXPECT_EQ(counts["rodinia"], 16);
  EXPECT_EQ(counts["misc"], 3);
}

TEST(SuiteTest, TraitsAreSane) {
  for (const auto& spec : benchmark_suite()) {
    ASSERT_FALSE(spec.traits.phases.empty()) << spec.name;
    for (const auto& phase : spec.traits.phases) {
      ASSERT_FALSE(phase.streams.empty()) << spec.name;
      EXPECT_GT(phase.accesses_per_call, 0u) << spec.name;
      for (const auto& stream : phase.streams) {
        EXPECT_GT(stream.footprint_bytes, 0u) << spec.name;
        EXPECT_GE(stream.irregularity, 0.0) << spec.name;
        EXPECT_LE(stream.irregularity, 1.0) << spec.name;
      }
    }
    EXPECT_GE(spec.traits.size2_scale, 1.0) << spec.name;
    EXPECT_GE(spec.traits.call_variability, 0.0) << spec.name;
  }
}

TEST(SuiteTest, DynamicRegionsMatchThePaperNarrative) {
  // The regions the paper's Fig. 12 singles out must carry per-call drift.
  for (const char* name : {"kmeans", "mg residual", "bfs 135", "cfd 347"})
    EXPECT_GT(find_region(name)->traits.call_variability, 0.0) << name;
  // The SP reference is stable.
  EXPECT_DOUBLE_EQ(find_region("sp rhs")->traits.call_variability, 0.0);
}

TEST(SuiteTest, FindRegion) {
  EXPECT_NE(find_region("lulesh 2104"), nullptr);
  EXPECT_EQ(find_region("nonexistent"), nullptr);
  EXPECT_EQ(find_region("b+tree 86")->family, "rodinia");
}

TEST(SuiteTest, InputSizeSubsetIsValid) {
  auto subset = input_size_subset();
  EXPECT_EQ(subset.size(), 20u);
  for (const auto& name : subset)
    EXPECT_NE(find_region(name), nullptr) << name;
}

TEST(SuiteTest, KernelSpecsCoupleWithTraits) {
  // Regions with indirection in their traits expose it in the IR knobs and
  // vice versa — the coupling premise.
  EXPECT_TRUE(find_region("cg 405")->kernel.indirect_gather);
  EXPECT_TRUE(find_region("b+tree 86")->kernel.pointer_chase);
  EXPECT_GT(find_region("clomp 1036")->kernel.barrier_calls, 0);
  EXPECT_GT(find_region("blackscholes")->kernel.math_calls, 0);
  EXPECT_TRUE(find_region("is rank")->kernel.atomic_reduction);
}

TEST(SuiteTest, ModulesCarryOutlinedRegions) {
  for (const auto& spec : benchmark_suite()) {
    auto module = build_region_module(spec);
    auto regions = graph::find_omp_regions(*module);
    ASSERT_EQ(regions.size(), 1u) << spec.name;
    EXPECT_EQ(regions[0], outlined_name(spec.kernel.name));
  }
}

TEST(SuiteTest, GraphsDifferAcrossRegions) {
  // Structural fingerprints should be (mostly) distinct across the suite —
  // otherwise the GNN has nothing to work with.
  std::set<std::pair<std::size_t, std::size_t>> fingerprints;
  for (const auto& spec : benchmark_suite()) {
    auto module = build_region_module(spec);
    auto pg = graph::build_graph(*module);
    fingerprints.insert({pg.num_nodes(), pg.num_edges()});
  }
  EXPECT_GE(fingerprints.size(), benchmark_suite().size() / 2);
}

// Parameterized: every region must verify before and after every pipeline.
class RegionIrSweep : public ::testing::TestWithParam<int> {};

TEST_P(RegionIrSweep, ValidBeforeAndAfterPipelines) {
  const RegionSpec& spec = benchmark_suite()[GetParam()];
  auto module = build_region_module(spec);
  std::string errors;
  ASSERT_TRUE(ir::verify(*module, &errors)) << spec.name << "\n" << errors;

  // The full -O3 pipeline.
  auto o3 = module->clone();
  passes::PassManager pm(passes::o3_pipeline());
  pm.run(*o3);
  EXPECT_TRUE(ir::verify(*o3, &errors)) << spec.name << "\n" << errors;

  // A handful of sampled flag sequences.
  for (const auto& seq : passes::sample_flag_sequences(4, 1234 + GetParam())) {
    auto variant = module->clone();
    passes::PassManager vm(seq.passes);
    vm.run(*variant);
    EXPECT_TRUE(ir::verify(*variant, &errors))
        << spec.name << " under " << seq.to_string() << "\n"
        << errors;
    // Region extraction still finds the kernel afterwards.
    auto region =
        graph::extract_region(*variant, outlined_name(spec.kernel.name));
    ASSERT_NE(region, nullptr) << spec.name;
    auto pg = graph::build_graph(*region);
    EXPECT_GT(pg.num_nodes(), 10u) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllRegions, RegionIrSweep,
                         ::testing::Range(0, 56));

}  // namespace
}  // namespace irgnn::workloads
