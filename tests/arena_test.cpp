// Buffer-arena and zero-allocation tests.
//
// This binary replaces the global operator new/delete with counting
// wrappers, so the strictest test below can assert that a warmed-up
// training step — forward, backward, optimizer — touches the heap exactly
// zero times. Everything in the hot path (tape nodes, data/grad buffers,
// per-op aux vectors, backward closures, pack scratch, traversal stacks,
// optimizer state) must come from the arena or live inline for that to
// hold.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "support/arena.h"
#include "support/inline_function.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"
#include "workloads/suite.h"

// --- Global allocation counter ---------------------------------------------

static std::atomic<std::uint64_t> g_heap_allocations{0};

static void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace irgnn {
namespace {

using support::BufferPool;
using tensor::Act;
using tensor::Tensor;

TEST(BufferPoolTest, RecyclesSameBucket) {
  BufferPool& pool = BufferPool::global();
  // Round 1 may allocate; round 2 with identical sizes must not.
  { support::PoolVector<float> v(1000, 1.0f); }
  BufferPool::Stats before = pool.stats();
  { support::PoolVector<float> v(1000, 2.0f); }
  BufferPool::Stats after = pool.stats();
  EXPECT_EQ(after.malloc_calls, before.malloc_calls);
  EXPECT_GT(after.pool_hits, before.pool_hits);
}

TEST(BufferPoolTest, DifferentSizesShareBucketClass) {
  BufferPool& pool = BufferPool::global();
  // 900 and 1000 floats round to the same power-of-two bucket, so the
  // second allocation reuses the first one's block.
  { support::PoolVector<float> v(900); }
  BufferPool::Stats before = pool.stats();
  { support::PoolVector<float> v(1000); }
  EXPECT_EQ(pool.stats().malloc_calls, before.malloc_calls);
}

TEST(BufferPoolTest, MakePooledRecyclesControlBlocks) {
  auto first = support::make_pooled<support::PoolVector<int>>(64, 7);
  first.reset();
  BufferPool::Stats before = BufferPool::global().stats();
  auto second = support::make_pooled<support::PoolVector<int>>(64, 9);
  EXPECT_EQ(BufferPool::global().stats().malloc_calls, before.malloc_calls);
  EXPECT_EQ((*second)[0], 9);
}

TEST(InlineFunctionTest, InvokesAndMoves) {
  auto token = std::make_shared<int>(41);
  support::InlineFunction<int(int), 64> fn =
      [token](int x) { return *token + x; };
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(1), 42);
  EXPECT_EQ(token.use_count(), 2);

  support::InlineFunction<int(int), 64> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(moved(2), 43);
  EXPECT_EQ(token.use_count(), 2);  // capture moved, not copied

  moved.reset();
  EXPECT_EQ(token.use_count(), 1);  // capture destroyed with the function
}

TEST(FunctionRefTest, BorrowsCallable) {
  int hits = 0;
  auto bump = [&hits](int by) { hits += by; };
  support::FunctionRef<void(int)> ref = bump;
  ref(3);
  ref(4);
  EXPECT_EQ(hits, 7);
}

// One representative training step over every vectorized kernel: two linear
// layers, layer norm, segment pooling, an index_add scatter, NLL loss,
// backward, Adam. Sizes are small enough that kernels stay on the serial
// path (the strict heap assertion needs the in-thread path; the pooled
// multi-thread dispatch is covered by the model test below).
struct StepFixture {
  Rng rng{123};
  Tensor x = Tensor::xavier({24, 32}, rng);
  Tensor w1 = Tensor::xavier({32, 48}, rng);
  Tensor b1 = Tensor::zeros({1, 48}, true);
  Tensor gamma = Tensor::full({1, 48}, 1.0f, true);
  Tensor beta = Tensor::zeros({1, 48}, true);
  Tensor w2 = Tensor::xavier({48, 5}, rng);
  Tensor b2 = Tensor::zeros({1, 5}, true);
  std::vector<int> seg = [] {
    std::vector<int> s(24);
    for (int i = 0; i < 24; ++i) s[i] = i / 6;
    return s;
  }();
  std::vector<int> scatter_dst = [] {
    std::vector<int> d(24);
    for (int i = 0; i < 24; ++i) d[i] = i % 24;
    return d;
  }();
  std::vector<float> scatter_coeff = std::vector<float>(24, 0.5f);
  std::vector<int> targets{0, 2, 4, 1};
  tensor::Adam adam{{w1, b1, gamma, beta, w2, b2}, {.lr = 1e-3f}};

  float step() {
    adam.zero_grad();
    Tensor h = tensor::add_bias_act(tensor::matmul(x, w1), b1, Act::Relu);
    h = tensor::layer_norm(h, gamma, beta);
    h = tensor::index_add_rows(h, scatter_dst, scatter_coeff, 24);
    Tensor pooled = tensor::segment_mean(h, seg, 4);
    Tensor logits = tensor::add_bias_act(tensor::matmul(pooled, w2), b2,
                                         Act::Tanh);
    Tensor loss = tensor::nll_loss(tensor::log_softmax(logits), targets);
    loss.backward();
    adam.step();
    return loss.item();
  }
};

TEST(ZeroAllocationTest, WarmTrainStepNeverTouchesHeap) {
  tensor::set_kernel_parallelism(1);
  StepFixture fix;
  for (int i = 0; i < 5; ++i) fix.step();  // warm the arena

  const std::uint64_t heap_before = g_heap_allocations.load();
  const BufferPool::Stats pool_before = BufferPool::global().stats();
  float last = 0.0f;
  for (int i = 0; i < 20; ++i) last = fix.step();
  const std::uint64_t heap_delta = g_heap_allocations.load() - heap_before;
  const BufferPool::Stats pool_after = BufferPool::global().stats();
  tensor::set_kernel_parallelism(0);

  EXPECT_EQ(heap_delta, 0u) << "a warmed-up train step allocated";
  EXPECT_EQ(pool_after.malloc_calls, pool_before.malloc_calls);
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits);
  EXPECT_TRUE(std::isfinite(last));
}

TEST(ZeroAllocationTest, WarmBatchedPredictNeverTouchesHeap) {
  // The inference fast path: once the model's persistent inference context
  // and the arena are warm, a batched predict/evaluate into caller-reused
  // storage must touch the heap exactly zero times — no tape nodes, no
  // batch rebuilds, no output reallocation. 40 graph pointers across 12
  // distinct graphs force multiple inference shards.
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 2, 4, 8, 13, 17, 22, 28, 33, 39, 44, 50}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  std::vector<const graph::ProgramGraph*> graphs;
  for (int i = 0; i < 40; ++i) graphs.push_back(&owned[i % owned.size()]);

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 4;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = 0xFA57;
  cfg.num_threads = 1;
  tensor::set_kernel_parallelism(1);
  gnn::StaticModel model(cfg);

  std::vector<int> preds;
  gnn::Evaluation eval;
  model.predict_into(graphs, preds);  // warm the context and the arena
  model.evaluate(graphs, eval, /*want_embeddings=*/true);
  const std::vector<int> cold_preds = preds;

  const std::uint64_t heap_before = g_heap_allocations.load();
  const BufferPool::Stats pool_before = BufferPool::global().stats();
  for (int rep = 0; rep < 10; ++rep) {
    model.predict_into(graphs, preds);
    model.evaluate(graphs, eval, /*want_embeddings=*/true);
  }
  const std::uint64_t heap_delta = g_heap_allocations.load() - heap_before;
  const BufferPool::Stats pool_after = BufferPool::global().stats();
  tensor::set_kernel_parallelism(0);

  EXPECT_EQ(heap_delta, 0u) << "a warm batched predict allocated";
  EXPECT_EQ(pool_after.malloc_calls, pool_before.malloc_calls);
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits);
  // Recycling storage must never change the answer.
  EXPECT_EQ(preds, cold_preds);
  EXPECT_EQ(eval.predictions, cold_preds);
}

TEST(ZeroAllocationTest, RepeatedModelTrainingIsServedFromArena) {
  // Identical single-threaded training runs: the first warms the arena, the
  // second must draw every tape node, buffer and scratch from it — zero new
  // system allocations through the pool — and (a free cross-check) produce
  // bit-identical losses, since recycling storage must never change bits.
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {1, 5, 11, 19, 27, 36}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  std::vector<const graph::ProgramGraph*> graphs;
  std::vector<int> labels;
  for (std::size_t i = 0; i < owned.size(); ++i) {
    graphs.push_back(&owned[i]);
    labels.push_back(static_cast<int>(i) % 2);
  }

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 2;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.epochs = 3;
  cfg.batch_size = 3;
  cfg.dropout = 0.1f;
  cfg.seed = 0xA7E7A;
  cfg.num_threads = 1;

  tensor::set_kernel_parallelism(1);
  auto run = [&] {
    gnn::StaticModel model(cfg);
    return model.train(graphs, labels).epoch_loss;
  };
  std::vector<double> first = run();
  const BufferPool::Stats before = BufferPool::global().stats();
  std::vector<double> second = run();
  const BufferPool::Stats after = BufferPool::global().stats();
  tensor::set_kernel_parallelism(0);

  EXPECT_EQ(after.malloc_calls, before.malloc_calls)
      << "second training run should be fully served by the arena";
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t e = 0; e < first.size(); ++e)
    EXPECT_EQ(first[e], second[e]) << "epoch " << e;
}

}  // namespace
}  // namespace irgnn
