// Tests for the machine simulator: cache/LRU behaviour, each prefetcher,
// the configuration space enumeration (320 / 288), NUMA timing properties,
// counters, label reduction and cross-architecture translation. The
// parameterized sweeps check mechanistic invariants across the whole
// configuration space.
#include <algorithm>
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "support/rng.h"

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/exploration.h"
#include "sim/simulator.h"
#include "sim/workload_model.h"
#include "workloads/suite.h"

namespace irgnn::sim {
namespace {

TEST(CacheTest, LruEviction) {
  // 2 sets x 2 ways of 64B lines = 256 bytes.
  SetAssociativeCache cache(256, 2, 64);
  ASSERT_EQ(cache.num_sets(), 2);
  // Lines 0, 2, 4 map to set 0; two fit, the third evicts the LRU (0).
  cache.insert(0, false);
  cache.insert(2, false);
  EXPECT_TRUE(cache.access(0));  // touch 0: now 2 is LRU
  cache.insert(4, false);
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
}

TEST(CacheTest, PrefetchTagClearedByDemand) {
  SetAssociativeCache cache(1024, 4, 64);
  cache.insert(7, /*prefetched=*/true);
  EXPECT_TRUE(cache.is_prefetched(7));
  EXPECT_TRUE(cache.access(7));
  EXPECT_FALSE(cache.is_prefetched(7));
}

MemoryAccess make_access(std::uint64_t address, std::uint32_t pc = 1) {
  MemoryAccess access;
  access.address = address;
  access.pc = pc;
  return access;
}

TEST(PrefetcherTest, NextLineTurnsStreamIntoHits) {
  MachineDesc machine = MachineDesc::skylake();
  PrefetcherConfig off = PrefetcherConfig::from_msr_mask(0xF);
  PrefetcherConfig next_only = off;
  next_only.dcu_next_line = true;

  auto run = [&](const PrefetcherConfig& pf) {
    CoreCacheModel core(machine, pf);
    for (std::uint64_t i = 0; i < 4000; ++i)
      core.access(make_access(i * 64));  // unit-line stride
    return core.stats();
  };
  CacheStats off_stats = run(off);
  CacheStats on_stats = run(next_only);
  EXPECT_GT(on_stats.l1_hit_rate(), off_stats.l1_hit_rate() + 0.3);
  EXPECT_GT(on_stats.prefetch_hits, 0u);
}

TEST(PrefetcherTest, IpStrideCoversLargeStrides) {
  MachineDesc machine = MachineDesc::skylake();
  PrefetcherConfig off = PrefetcherConfig::from_msr_mask(0xF);
  PrefetcherConfig ip_only = off;
  ip_only.dcu_ip = true;

  auto run = [&](const PrefetcherConfig& pf) {
    CoreCacheModel core(machine, pf);
    for (std::uint64_t i = 0; i < 4000; ++i)
      core.access(make_access(i * 1024, /*pc=*/5));  // 1KB stride
    return core.stats();
  };
  EXPECT_GT(run(ip_only).l1_hit_rate(), run(off).l1_hit_rate() + 0.3);
}

TEST(PrefetcherTest, StreamerHelpsL2OnLineStreams) {
  MachineDesc machine = MachineDesc::skylake();
  PrefetcherConfig off = PrefetcherConfig::from_msr_mask(0xF);
  PrefetcherConfig streamer_only = off;
  streamer_only.l2_streamer = true;

  auto run = [&](const PrefetcherConfig& pf) {
    CoreCacheModel core(machine, pf);
    // Footprint larger than L1 so L2 matters; forward stream.
    for (std::uint64_t i = 0; i < 6000; ++i)
      core.access(make_access(i * 64 * 2));
    return core.stats();
  };
  EXPECT_GT(run(streamer_only).l2_local_hit_rate(),
            run(off).l2_local_hit_rate() + 0.2);
}

TEST(PrefetcherTest, RandomAccessMakesPrefetchingWasteful) {
  MachineDesc machine = MachineDesc::skylake();
  PrefetcherConfig all_on;  // default: everything enabled
  CoreCacheModel core(machine, all_on);
  irgnn::Rng rng(3);
  for (int i = 0; i < 6000; ++i)
    core.access(make_access(rng.next_below(1ull << 26)));
  EXPECT_LT(core.stats().prefetch_accuracy(), 0.2);
  EXPECT_GT(core.stats().prefetches_issued, 1000u);
}

TEST(ConfigTest, SpaceSizesMatchPaper) {
  EXPECT_EQ(enumerate_configurations(MachineDesc::sandy_bridge()).size(),
            320u);
  EXPECT_EQ(enumerate_configurations(MachineDesc::skylake()).size(), 288u);
}

TEST(ConfigTest, DefaultIsInsideTheSpace) {
  for (const auto& machine :
       {MachineDesc::sandy_bridge(), MachineDesc::skylake()}) {
    auto configs = enumerate_configurations(machine);
    Configuration def = default_configuration(machine);
    EXPECT_NE(std::find(configs.begin(), configs.end(), def), configs.end())
        << machine.name;
  }
}

TEST(ConfigTest, MsrMaskRoundTrip) {
  for (int mask = 0; mask < 16; ++mask)
    EXPECT_EQ(PrefetcherConfig::from_msr_mask(mask).msr_mask(), mask);
}

TEST(ConfigTest, TranslationSnapsToLegalPoints) {
  MachineDesc snb = MachineDesc::sandy_bridge();
  MachineDesc skl = MachineDesc::skylake();
  Configuration c = default_configuration(skl);  // 48T/2N
  Configuration t = translate_configuration(c, skl, snb);
  EXPECT_EQ(t.threads, 32);  // saturation maps 48 -> 32
  EXPECT_EQ(t.nodes, 4);
  // And back.
  Configuration back = translate_configuration(t, snb, skl);
  EXPECT_EQ(back.threads, 48);
  // Prefetch settings carry over unchanged.
  EXPECT_EQ(back.prefetch, c.prefetch);
}

TEST(ConfigTest, TranslatedConfigsAlwaysExistOnTarget) {
  MachineDesc snb = MachineDesc::sandy_bridge();
  MachineDesc skl = MachineDesc::skylake();
  auto skl_configs = enumerate_configurations(skl);
  for (const auto& c : enumerate_configurations(snb)) {
    Configuration t = translate_configuration(c, snb, skl);
    EXPECT_NE(std::find(skl_configs.begin(), skl_configs.end(), t),
              skl_configs.end())
        << c.to_string() << " -> " << t.to_string();
  }
}

WorkloadTraits streaming_traits() {
  WorkloadTraits traits;
  traits.region = "test stream";
  Phase phase;
  MemoryStream s;
  s.stride_bytes = 8;
  s.footprint_bytes = 64ull << 20;
  s.shared = true;
  phase.streams = {s};
  phase.accesses_per_call = 1'000'000;
  traits.phases = {phase};
  return traits;
}

TEST(SimulatorTest, DeterministicResults) {
  MachineDesc machine = MachineDesc::skylake();
  Simulator a(machine);
  Simulator b(machine);
  Configuration config = default_configuration(machine);
  EXPECT_DOUBLE_EQ(a.simulate(streaming_traits(), config).cycles,
                   b.simulate(streaming_traits(), config).cycles);
}

TEST(SimulatorTest, InterleaveBeatsLocalityForSharedBandwidthBound) {
  MachineDesc machine = MachineDesc::sandy_bridge();
  Simulator simulator(machine);
  Configuration locality = default_configuration(machine);
  Configuration interleave = locality;
  interleave.page_mapping = PageMapping::Interleave;
  double t_loc = simulator.simulate(streaming_traits(), locality).cycles;
  double t_int = simulator.simulate(streaming_traits(), interleave).cycles;
  EXPECT_LT(t_int, t_loc * 0.7);  // spreading controllers wins big
}

TEST(SimulatorTest, SyncBoundRegionPrefersFewerThreads) {
  const workloads::RegionSpec* clomp = workloads::find_region("clomp 1036");
  ASSERT_NE(clomp, nullptr);
  MachineDesc machine = MachineDesc::sandy_bridge();
  Simulator simulator(machine);
  Configuration wide = default_configuration(machine);
  Configuration narrow;
  narrow.threads = 4;
  narrow.nodes = 1;
  double t_wide = simulator.simulate(clomp->traits, wide).cycles;
  double t_narrow = simulator.simulate(clomp->traits, narrow).cycles;
  EXPECT_LT(t_narrow, t_wide);
}

TEST(SimulatorTest, CountersAreSane) {
  MachineDesc machine = MachineDesc::skylake();
  Simulator simulator(machine);
  SimResult result =
      simulator.simulate(streaming_traits(), default_configuration(machine));
  const PerfCounters& c = result.counters;
  EXPECT_GT(c.cycles, 0);
  EXPECT_GT(c.instructions, 0);
  EXPECT_GE(c.l3_miss_ratio, 0);
  EXPECT_LE(c.l3_miss_ratio, 1.0 + 1e-9);
  EXPECT_GE(c.remote_access_ratio, 0);
  EXPECT_LE(c.remote_access_ratio, 1.0 + 1e-9);
  EXPECT_GT(c.package_power, 0);
}

TEST(SimulatorTest, PerCallStabilityMatchesVariability) {
  MachineDesc machine = MachineDesc::skylake();
  Simulator simulator(machine);
  Configuration config = default_configuration(machine);
  const auto* stable = workloads::find_region("sp rhs");
  const auto* dynamic = workloads::find_region("kmeans");
  auto spread = [&](const workloads::RegionSpec* spec) {
    auto series = simulator.per_call_cycles(spec->traits, config);
    double lo = *std::min_element(series.begin(), series.end());
    double hi = *std::max_element(series.begin(), series.end());
    return hi / lo;
  };
  EXPECT_NEAR(spread(stable), 1.0, 1e-9);
  EXPECT_GT(spread(dynamic), 1.15);
}

// --- Property sweeps over the whole configuration space --------------------

class ConfigSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConfigSweep, EveryConfigurationProducesPositiveFiniteTime) {
  MachineDesc machine = MachineDesc::skylake();
  auto configs = enumerate_configurations(machine);
  Simulator simulator(machine);
  const auto& spec = workloads::benchmark_suite()[GetParam()];
  for (const auto& config : configs) {
    double cycles = simulator.simulate(spec.traits, config).cycles;
    EXPECT_GT(cycles, 0) << spec.name << " @ " << config.to_string();
    EXPECT_TRUE(std::isfinite(cycles));
  }
}

INSTANTIATE_TEST_SUITE_P(SampledRegions, ConfigSweep,
                         ::testing::Values(0, 10, 21, 33, 45, 55));

TEST(ExplorationTest, TablesAndLabelReduction) {
  MachineDesc machine = MachineDesc::skylake();
  std::vector<WorkloadTraits> traits;
  for (int r : {0, 5, 12, 20, 30, 44, 50})
    traits.push_back(workloads::benchmark_suite()[r].traits);
  ExplorationTable table = explore(machine, traits);
  EXPECT_EQ(table.time.size(), traits.size());
  EXPECT_GE(table.default_index, 0);
  EXPECT_EQ(table.probe_counters[0].size(), table.probe_indices.size());
  EXPECT_GE(table.full_exploration_speedup(), 1.0);

  auto labels = reduce_labels(table, 6);
  EXPECT_LE(labels.size(), 6u);
  // The default configuration is always a member.
  EXPECT_NE(std::find(labels.begin(), labels.end(), table.default_index),
            labels.end());
  // Monotonicity: more labels never reduce the attainable gains.
  auto l2 = reduce_labels(table, 2);
  auto l13 = reduce_labels(table, 13);
  double s2 = label_assignment_speedup(table, l2, best_labels(table, l2));
  double s6 =
      label_assignment_speedup(table, labels, best_labels(table, labels));
  double s13 = label_assignment_speedup(table, l13, best_labels(table, l13));
  EXPECT_LE(s2, s6 + 1e-9);
  EXPECT_LE(s6, s13 + 1e-9);
  // Label subsets never lose to the baseline.
  EXPECT_GE(s2, 1.0);
}

TEST(TraceTest, DeterministicAndBounded) {
  const auto& spec = workloads::benchmark_suite()[7];
  Trace a = generate_trace(spec.traits, 0, 8, 1.0, 0);
  Trace b = generate_trace(spec.traits, 0, 8, 1.0, 0);
  ASSERT_EQ(a.accesses.size(), b.accesses.size());
  for (std::size_t i = 0; i < a.accesses.size(); ++i)
    EXPECT_EQ(a.accesses[i].address, b.accesses[i].address);
  EXPECT_LE(a.accesses.size(), TraceOptions{}.max_length);
}

TEST(TraceTest, ThreadsPartitionFootprint) {
  // With more threads, a private stream's per-thread footprint shrinks, so
  // the same-length trace wraps around fewer distinct lines.
  WorkloadTraits traits;
  traits.region = "partition test";
  Phase phase;
  MemoryStream s;
  s.stride_bytes = 64;
  s.footprint_bytes = 256 * 1024;  // 4096 lines at T=1, 128 lines at T=32
  phase.streams = {s};
  phase.accesses_per_call = 600'000;
  traits.phases = {phase};
  auto distinct_lines = [&](int threads) {
    Trace trace = generate_trace(traits, 0, threads, 1.0, 0);
    std::set<std::uint64_t> lines;
    for (const auto& a : trace.accesses) lines.insert(a.address / 64);
    return lines.size();
  };
  EXPECT_GT(distinct_lines(1), 4 * distinct_lines(32));
}

}  // namespace
}  // namespace irgnn::sim
