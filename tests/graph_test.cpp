// Unit tests for the ProGraML-style graph builder, the structural
// fingerprint and the region extractor.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/parser.h"
#include "ir/verifier.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "tests/test_helpers.h"
#include "workloads/suite.h"

namespace irgnn {
namespace {

using graph::EdgeKind;
using graph::NodeKind;

TEST(GraphBuilderTest, NodeAndEdgeCounts) {
  auto module = testing::make_sum_loop_module();
  auto g = graph::build_graph(*module);
  // 8 instructions: br, 2 phis, 2 adds, icmp, condbr, ret.
  std::size_t inst_nodes = 0;
  for (const auto& n : g.nodes) inst_nodes += (n.kind == NodeKind::Instruction);
  EXPECT_EQ(inst_nodes, 8u);
  EXPECT_GT(g.count_edges(EdgeKind::Control), 0u);
  EXPECT_GT(g.count_edges(EdgeKind::Data), 0u);
  EXPECT_EQ(g.count_edges(EdgeKind::Call), 0u);
}

TEST(GraphBuilderTest, ControlEdgesFollowBranches) {
  auto module = testing::make_sum_loop_module();
  auto g = graph::build_graph(*module);
  // Block-internal chains: entry(1 inst): 0, loop(6): 5, exit(1): 0.
  // Terminator edges: entry->loop 1, loop->loop + loop->exit 2.
  EXPECT_EQ(g.count_edges(EdgeKind::Control), 5u + 3u);
}

TEST(GraphBuilderTest, DataEdgesCarryOperandPositions) {
  const char* text = R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %d = sub i64 %a, %b
  ret i64 %d
}
)";
  auto module = ir::parse_module(text);
  auto g = graph::build_graph(*module);
  // Positions 0 and 1 must both appear on data edges into the sub.
  bool pos0 = false;
  bool pos1 = false;
  for (const auto& e : g.edges) {
    if (e.kind != EdgeKind::Data) continue;
    if (g.nodes[e.dst].kind == NodeKind::Instruction) {
      pos0 |= (e.position == 0);
      pos1 |= (e.position == 1);
    }
  }
  EXPECT_TRUE(pos0);
  EXPECT_TRUE(pos1);
}

TEST(GraphBuilderTest, CallEdgesLinkCallSitesAndCallees) {
  const char* text = R"(
declare double @sqrt(double) "pure"="true"
define double @helper(double %x) {
entry:
  %y = fmul double %x, 2.0
  ret double %y
}
define double @main(double %v) {
entry:
  %a = call double @helper(double %v)
  %b = call double @sqrt(double %a)
  ret double %b
}
)";
  auto module = ir::parse_module(text);
  ASSERT_NE(module, nullptr);
  auto g = graph::build_graph(*module);
  // helper: call->entry + ret->call = 2; sqrt (external): 2.
  EXPECT_EQ(g.count_edges(EdgeKind::Call), 4u);
}

TEST(GraphBuilderTest, ConstantsShareNodes) {
  const char* text = R"(
define i64 @f(i64 %a) {
entry:
  %x = add i64 %a, 7
  %y = mul i64 %x, 7
  ret i64 %y
}
)";
  auto module = ir::parse_module(text);
  auto g = graph::build_graph(*module);
  std::size_t const_nodes = 0;
  for (const auto& n : g.nodes) const_nodes += (n.kind == NodeKind::Constant);
  EXPECT_EQ(const_nodes, 1u);  // the interned 7 appears once
}

TEST(GraphBuilderTest, FeaturesWithinVocabulary) {
  auto module = testing::make_alloca_loop_module();
  auto g = graph::build_graph(*module);
  for (const auto& n : g.nodes) {
    EXPECT_GE(n.feature, 0);
    EXPECT_LT(n.feature, graph::vocabulary_size());
  }
}

TEST(GraphBuilderTest, EdgeKindsCanBeDisabled) {
  auto module = testing::make_sum_loop_module();
  graph::GraphBuilderOptions options;
  options.data_edges = false;
  auto g = graph::build_graph(*module, options);
  EXPECT_EQ(g.count_edges(EdgeKind::Data), 0u);
  EXPECT_GT(g.count_edges(EdgeKind::Control), 0u);
}

TEST(GraphTextTest, RoundTrip) {
  auto module = testing::make_sum_loop_module();
  auto g = graph::build_graph(*module);
  std::string text = g.to_text();
  graph::ProgramGraph back;
  ASSERT_TRUE(graph::ProgramGraph::from_text(text, &back));
  EXPECT_EQ(back.num_nodes(), g.num_nodes());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.to_text(), text);
}

TEST(GraphDotTest, ProducesGraphvizOutput) {
  auto module = testing::make_sum_loop_module();
  auto g = graph::build_graph(*module);
  std::string dot = g.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("color=blue"), std::string::npos);   // control
  EXPECT_NE(dot.find("color=black"), std::string::npos);  // data
}


// --- graph::fingerprint -----------------------------------------------------

TEST(FingerprintTest, EqualGraphsHashEqual) {
  auto module_a = testing::make_sum_loop_module();
  auto module_b = testing::make_sum_loop_module();
  auto g_a = graph::build_graph(*module_a);
  auto g_b = graph::build_graph(*module_b);
  EXPECT_EQ(graph::fingerprint(g_a), graph::fingerprint(g_b));
  graph::ProgramGraph copy = g_a;
  EXPECT_EQ(graph::fingerprint(copy), graph::fingerprint(g_a));
}

TEST(FingerprintTest, DebugOnlyFieldsDoNotParticipate) {
  // The graph name and node text never reach the model, so they must not
  // split cache entries for identical queries.
  auto module = testing::make_sum_loop_module();
  auto g = graph::build_graph(*module);
  graph::ProgramGraph renamed = g;
  renamed.name = "something else";
  renamed.nodes[0].text = "different debug text";
  EXPECT_EQ(graph::fingerprint(renamed), graph::fingerprint(g));
}

TEST(FingerprintTest, StructuralPerturbationsChangeTheHash) {
  auto module = testing::make_sum_loop_module();
  const graph::ProgramGraph base = graph::build_graph(*module);
  const std::uint64_t fp = graph::fingerprint(base);

  {
    graph::ProgramGraph g = base;  // node kind
    g.nodes[0].kind = g.nodes[0].kind == graph::NodeKind::Variable
                          ? graph::NodeKind::Constant
                          : graph::NodeKind::Variable;
    EXPECT_NE(graph::fingerprint(g), fp);
  }
  {
    graph::ProgramGraph g = base;  // node feature
    g.nodes[1].feature += 1;
    EXPECT_NE(graph::fingerprint(g), fp);
  }
  {
    graph::ProgramGraph g = base;  // edge endpoint
    g.edges[0].dst = g.edges[0].dst == 0 ? 1 : 0;
    EXPECT_NE(graph::fingerprint(g), fp);
  }
  {
    graph::ProgramGraph g = base;  // edge relation
    g.edges[0].kind = g.edges[0].kind == graph::EdgeKind::Data
                          ? graph::EdgeKind::Control
                          : graph::EdgeKind::Data;
    EXPECT_NE(graph::fingerprint(g), fp);
  }
  {
    graph::ProgramGraph g = base;  // operand position
    g.edges[0].position += 1;
    EXPECT_NE(graph::fingerprint(g), fp);
  }
  {
    graph::ProgramGraph g = base;  // added node
    g.nodes.push_back(g.nodes.back());
    EXPECT_NE(graph::fingerprint(g), fp);
  }
  {
    graph::ProgramGraph g = base;  // removed edge
    g.edges.pop_back();
    EXPECT_NE(graph::fingerprint(g), fp);
  }
}

TEST(FingerprintTest, EmptyAndSingleNodeGraphs) {
  graph::ProgramGraph empty;
  graph::ProgramGraph single;
  single.nodes.push_back({graph::NodeKind::Instruction, 3, "add"});
  graph::ProgramGraph other_single;
  other_single.nodes.push_back({graph::NodeKind::Instruction, 4, "sub"});
  EXPECT_EQ(graph::fingerprint(empty), graph::fingerprint(empty));
  EXPECT_NE(graph::fingerprint(empty), graph::fingerprint(single));
  EXPECT_NE(graph::fingerprint(single), graph::fingerprint(other_single));
}

TEST(FingerprintTest, CollisionSmokeOverWorkloadSuiteAndFlagVariants) {
  // Structurally distinct graphs must get distinct fingerprints across the
  // whole suite plus a handful of flag variants per region. "Structurally
  // distinct" is judged on exactly the fields the fingerprint covers, so a
  // collision here is a real hash failure, not a text difference.
  auto structural_key = [](const graph::ProgramGraph& g) {
    std::ostringstream key;
    for (const auto& n : g.nodes)
      key << static_cast<int>(n.kind) << ':' << n.feature << ';';
    key << '|';
    for (const auto& e : g.edges)
      key << e.src << ',' << e.dst << ',' << static_cast<int>(e.kind) << ','
          << e.position << ';';
    return key.str();
  };

  std::map<std::uint64_t, std::string> by_fingerprint;
  auto check = [&](const graph::ProgramGraph& g) {
    const std::uint64_t fp = graph::fingerprint(g);
    const std::string key = structural_key(g);
    auto [it, inserted] = by_fingerprint.emplace(fp, key);
    if (!inserted)
      EXPECT_EQ(it->second, key)
          << "fingerprint collision between structurally distinct graphs";
  };

  auto sequences = passes::sample_flag_sequences(3, 0xF1);
  for (const auto& spec : workloads::benchmark_suite()) {
    auto module = workloads::build_region_module(spec);
    check(graph::build_graph(*module));
    for (const auto& seq : sequences) {
      auto variant = module->clone();
      passes::PassManager pm(seq.passes);
      pm.run(*variant);
      check(graph::build_graph(*variant));
    }
  }
  EXPECT_GT(by_fingerprint.size(), workloads::benchmark_suite().size());
}

TEST(RegionExtractorTest, FindsOutlinedRegions) {
  const char* text = R"(
define void @main.omp_outlined(double* %a, i64 %n) "omp.outlined"="true" {
entry:
  ret void
}
define void @main() {
entry:
  ret void
}
)";
  auto module = ir::parse_module(text);
  auto regions = graph::find_omp_regions(*module);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], "main.omp_outlined");
}

TEST(RegionExtractorTest, ExtractsTransitiveClosure) {
  const char* text = R"(
declare double @sqrt(double) "pure"="true"
define double @util(double %x) {
entry:
  %r = call double @sqrt(double %x)
  ret double %r
}
define void @region(double* %p) "omp.outlined"="true" {
entry:
  %v = load double, double* %p
  %u = call double @util(double %v)
  store double %u, double* %p
  ret void
}
define void @unrelated() {
entry:
  ret void
}
)";
  auto module = ir::parse_module(text);
  ASSERT_NE(module, nullptr);
  auto extracted = graph::extract_region(*module, "region");
  ASSERT_NE(extracted, nullptr);
  EXPECT_TRUE(ir::verify(*extracted));
  EXPECT_NE(extracted->get_function("region"), nullptr);
  EXPECT_NE(extracted->get_function("util"), nullptr);
  EXPECT_NE(extracted->get_function("sqrt"), nullptr);
  EXPECT_EQ(extracted->get_function("unrelated"), nullptr);
  // The original module is untouched.
  EXPECT_NE(module->get_function("unrelated"), nullptr);
}

TEST(RegionExtractorTest, UnknownFunctionReturnsNull) {
  auto module = testing::make_sum_loop_module();
  EXPECT_EQ(graph::extract_region(*module, "nope"), nullptr);
}

}  // namespace
}  // namespace irgnn
