// Unit tests for the IR substrate: types, values/use-lists, builder,
// printer/parser round-trip, verifier, dominators and loop info.
#include <gtest/gtest.h>

#include "ir/cfg.h"
#include "ir/dominators.h"
#include "ir/loop_info.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "support/rng.h"
#include "tests/test_helpers.h"
#include "workloads/suite.h"

namespace irgnn {
namespace {

using ir::Opcode;

TEST(TypeTest, InterningGivesPointerEquality) {
  ir::TypeContext ctx;
  EXPECT_EQ(ctx.pointer_to(ctx.double_ty()), ctx.pointer_to(ctx.double_ty()));
  EXPECT_EQ(ctx.array_of(ctx.int32_ty(), 8), ctx.array_of(ctx.int32_ty(), 8));
  EXPECT_NE(ctx.array_of(ctx.int32_ty(), 8), ctx.array_of(ctx.int32_ty(), 9));
  EXPECT_EQ(ctx.function(ctx.void_ty(), {ctx.int64_ty()}),
            ctx.function(ctx.void_ty(), {ctx.int64_ty()}));
}

TEST(TypeTest, ToStringAndParseRoundTrip) {
  ir::TypeContext ctx;
  ir::Type* cases[] = {
      ctx.int1_ty(),
      ctx.double_ty(),
      ctx.pointer_to(ctx.float_ty()),
      ctx.array_of(ctx.double_ty(), 1024),
      ctx.pointer_to(ctx.array_of(ctx.pointer_to(ctx.int64_ty()), 4)),
  };
  for (ir::Type* ty : cases) EXPECT_EQ(ctx.parse(ty->to_string()), ty);
}

TEST(TypeTest, SizeInBytes) {
  ir::TypeContext ctx;
  EXPECT_EQ(ctx.int32_ty()->size_in_bytes(), 4u);
  EXPECT_EQ(ctx.double_ty()->size_in_bytes(), 8u);
  EXPECT_EQ(ctx.pointer_to(ctx.int8_ty())->size_in_bytes(), 8u);
  EXPECT_EQ(ctx.array_of(ctx.double_ty(), 10)->size_in_bytes(), 80u);
}

TEST(ValueTest, UseListsTrackOperands) {
  auto module = testing::make_sum_loop_module();
  ir::Function* fn = module->get_function("sum");
  ASSERT_NE(fn, nullptr);
  // %inc is used by the icmp, by the phi and nothing else.
  ir::Instruction* inc = nullptr;
  for (ir::Instruction* inst : fn->blocks()[1]->instructions())
    if (inst->name() == "inc") inc = inst;
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->num_uses(), 2u);
}

TEST(ValueTest, ReplaceAllUsesWith) {
  auto module = testing::make_foldable_module();
  ir::Function* fn = module->get_function("fold");
  auto insts = fn->entry()->instructions();
  ir::Instruction* a = insts[0];
  EXPECT_EQ(a->num_uses(), 1u);
  a->replace_all_uses_with(module->get_i64(5));
  EXPECT_EQ(a->num_uses(), 0u);
}

TEST(VerifierTest, AcceptsWellFormedModules) {
  std::string errors;
  EXPECT_TRUE(ir::verify(*testing::make_sum_loop_module(), &errors)) << errors;
  EXPECT_TRUE(ir::verify(*testing::make_alloca_loop_module(), &errors))
      << errors;
}

TEST(VerifierTest, DetectsMissingTerminator) {
  auto module = std::make_unique<ir::Module>("bad");
  auto& ctx = module->types();
  ir::Function* fn =
      module->add_function(ctx.function(ctx.void_ty(), {}), "f");
  fn->add_block("entry");  // left empty
  EXPECT_FALSE(ir::verify(*module));
}

TEST(VerifierTest, DetectsUseBeforeDef) {
  // %x uses %y which is defined later in the same block.
  const char* text = R"(
define i64 @f(i64 %a) {
entry:
  %x = add i64 %y, 1
  %y = add i64 %a, 1
  ret i64 %x
}
)";
  auto module = ir::parse_module(text);
  ASSERT_NE(module, nullptr);
  EXPECT_FALSE(ir::verify(*module));
}

TEST(PrinterParserTest, RoundTripPreservesStructure) {
  auto module = testing::make_sum_loop_module();
  std::string once = ir::print_module(*module);
  std::string error;
  auto reparsed = ir::parse_module(once, &error);
  ASSERT_NE(reparsed, nullptr) << error;
  EXPECT_EQ(ir::print_module(*reparsed), once);
  EXPECT_TRUE(ir::verify(*reparsed));
  EXPECT_EQ(reparsed->instruction_count(), module->instruction_count());
}

TEST(PrinterParserTest, RoundTripAllocaModule) {
  auto module = testing::make_alloca_loop_module();
  std::string once = ir::print_module(*module);
  std::string error;
  auto reparsed = ir::parse_module(once, &error);
  ASSERT_NE(reparsed, nullptr) << error;
  EXPECT_EQ(ir::print_module(*reparsed), once);
}

TEST(PrinterParserTest, ParsesDeclarationsAttributesAndGlobals) {
  const char* text = R"(
@table = global [256 x double]
declare double @sqrt(double) "pure"="true"
define void @kernel(double* %a, i64 %n) "omp.outlined"="true" {
entry:
  %g = getelementptr [256 x double], [256 x double]* @table, i64 0, i64 5
  %v = load double, double* %g
  %r = call double @sqrt(double %v)
  store double %r, double* %a
  ret void
}
)";
  std::string error;
  auto module = ir::parse_module(text, &error);
  ASSERT_NE(module, nullptr) << error;
  EXPECT_TRUE(ir::verify(*module));
  EXPECT_NE(module->get_global("table"), nullptr);
  EXPECT_TRUE(module->get_function("sqrt")->is_pure());
  EXPECT_TRUE(module->get_function("kernel")->is_omp_outlined());
}

TEST(PrinterParserTest, RejectsMalformedInput) {
  EXPECT_EQ(ir::parse_module("define bogus"), nullptr);
  EXPECT_EQ(ir::parse_module("define void @f() { entry: frobnicate }"),
            nullptr);
  EXPECT_EQ(ir::parse_module("define void @f() {\nentry:\n  ret void\n"),
            nullptr);
  // Unknown local.
  EXPECT_EQ(ir::parse_module(
                "define i64 @f() {\nentry:\n  ret i64 %nope\n}\n"),
            nullptr);
}

TEST(CfgTest, ReversePostOrderStartsAtEntry) {
  auto module = testing::make_alloca_loop_module();
  ir::Function* fn = module->get_function("asum");
  auto rpo = ir::reverse_post_order(*fn);
  ASSERT_EQ(rpo.size(), 4u);
  EXPECT_EQ(rpo.front(), fn->entry());
}

TEST(DominatorsTest, EntryDominatesEverything) {
  auto module = testing::make_alloca_loop_module();
  ir::Function* fn = module->get_function("asum");
  ir::DominatorTree dt(*fn);
  for (ir::BasicBlock* block : fn->blocks())
    EXPECT_TRUE(dt.dominates(fn->entry(), block));
}

TEST(DominatorsTest, IdomChain) {
  auto module = testing::make_alloca_loop_module();
  ir::Function* fn = module->get_function("asum");
  auto blocks = fn->blocks();  // entry, header, body, exit
  ir::DominatorTree dt(*fn);
  EXPECT_EQ(dt.idom(blocks[1]), blocks[0]);
  EXPECT_EQ(dt.idom(blocks[2]), blocks[1]);
  EXPECT_EQ(dt.idom(blocks[3]), blocks[1]);
  EXPECT_FALSE(dt.dominates(blocks[2], blocks[3]));
}

TEST(DominatorsTest, FrontierOfLoopBody) {
  auto module = testing::make_alloca_loop_module();
  ir::Function* fn = module->get_function("asum");
  auto blocks = fn->blocks();
  ir::DominatorTree dt(*fn);
  // body's frontier is the header (it closes the loop).
  auto df = dt.frontier(blocks[2]);
  ASSERT_EQ(df.size(), 1u);
  EXPECT_EQ(df[0], blocks[1]);
}

TEST(LoopInfoTest, FindsNaturalLoop) {
  auto module = testing::make_alloca_loop_module();
  ir::Function* fn = module->get_function("asum");
  ir::DominatorTree dt(*fn);
  ir::LoopInfo li(*fn, dt);
  ASSERT_EQ(li.top_level().size(), 1u);
  ir::Loop* loop = li.top_level()[0];
  EXPECT_EQ(loop->header(), fn->blocks()[1]);
  EXPECT_EQ(loop->blocks().size(), 2u);
  EXPECT_EQ(loop->preheader(), fn->entry());
  EXPECT_EQ(loop->depth(), 1u);
}

TEST(LoopInfoTest, SingleBlockLoopCanonicalInduction) {
  auto module = testing::make_sum_loop_module();
  ir::Function* fn = module->get_function("sum");
  ir::DominatorTree dt(*fn);
  ir::LoopInfo li(*fn, dt);
  ASSERT_EQ(li.top_level().size(), 1u);
  ir::Instruction* ind = li.top_level()[0]->canonical_induction();
  ASSERT_NE(ind, nullptr);
  EXPECT_EQ(ind->name(), "i");
}

TEST(CloneTest, DeepCloneIsStructurallyIdentical) {
  auto module = testing::make_sum_loop_module();
  auto clone = module->clone();
  EXPECT_EQ(ir::print_module(*clone), ir::print_module(*module));
  EXPECT_TRUE(ir::verify(*clone));
  // Mutating the clone leaves the original untouched.
  ir::Function* fn = clone->get_function("sum");
  fn->set_attribute("omp.outlined", "true");
  EXPECT_FALSE(module->get_function("sum")->is_omp_outlined());
}

TEST(PredecessorsTest, PhiReferenceIsNotAnEdge) {
  auto module = testing::make_sum_loop_module();
  ir::Function* fn = module->get_function("sum");
  auto blocks = fn->blocks();  // entry, loop, exit
  auto preds = blocks[1]->predecessors();
  EXPECT_EQ(preds.size(), 2u);  // entry and loop itself, despite phi refs
  auto exit_preds = blocks[2]->predecessors();
  ASSERT_EQ(exit_preds.size(), 1u);
  EXPECT_EQ(exit_preds[0], blocks[1]);
}

TEST(PrinterParserTest, DiagnosticsCarryLineAndColumn) {
  std::string error;
  EXPECT_EQ(ir::parse_module("define void @f() {\nentry:\n  frobnicate\n}\n",
                             &error),
            nullptr);
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
  EXPECT_NE(error.find("col "), std::string::npos) << error;
}

TEST(PrinterParserTest, SuiteRoundTripIsBitIdentical) {
  // Print → parse → print must be the identity on every region of the
  // synthetic suite — the property the corpus frontend's bit-identity gate
  // (corpus_test) builds on.
  for (const auto& spec : workloads::benchmark_suite()) {
    const auto module = workloads::build_region_module(spec);
    const std::string printed = ir::print_module(*module);
    std::string error;
    const auto reparsed = ir::parse_module(printed, &error);
    ASSERT_NE(reparsed, nullptr) << spec.name << ": " << error;
    EXPECT_EQ(ir::print_module(*reparsed), printed) << spec.name;
  }
}

TEST(PrinterParserTest, TruncationAtEveryByteNeverCrashes) {
  // The net_test discipline applied to the parser: chop a real printed
  // module at every byte boundary; each prefix either parses (only the
  // full text should) or yields nullptr + a diagnostic — never a crash.
  const auto& suite = workloads::benchmark_suite();
  const std::string printed =
      ir::print_module(*workloads::build_region_module(suite[0]));
  for (std::size_t n = 0; n < printed.size(); ++n) {
    std::string error;
    const auto module = ir::parse_module(printed.substr(0, n), &error);
    if (!module)
      EXPECT_FALSE(error.empty()) << "silent failure at byte " << n;
  }
  std::string error;
  EXPECT_NE(ir::parse_module(printed, &error), nullptr) << error;
}

TEST(PrinterParserTest, MutationFuzzNeverCrashes) {
  const auto& suite = workloads::benchmark_suite();
  const std::string printed =
      ir::print_module(*workloads::build_region_module(suite[1]));
  std::uint64_t state = 0xF1222;
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = printed;
    const int flips = 1 + static_cast<int>(splitmix64(state) % 4);
    for (int f = 0; f < flips; ++f)
      mutated[splitmix64(state) % mutated.size()] =
          static_cast<char>(splitmix64(state));
    std::string error;
    const auto module = ir::parse_module(mutated, &error);
    if (!module) EXPECT_FALSE(error.empty()) << "round " << round;
  }
}

TEST(PrinterParserTest, DeepTypeNestingIsADiagnosticNotAnOverflow) {
  std::string ty(100, '[');
  std::string text = "define void @f(" + ty + "i64";
  std::string error;
  EXPECT_EQ(ir::parse_module(text, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace irgnn
