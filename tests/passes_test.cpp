// Unit tests for the transformation passes: each pass individually on
// hand-built IR, then pipelines + verifier, then flag-sequence sampling.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "ir/parser.h"
#include "ir/printer.h"
#include "ir/verifier.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "tests/test_helpers.h"

namespace irgnn {
namespace {

using passes::PassManager;

std::size_t count_opcode(const ir::Module& module, ir::Opcode op) {
  std::size_t n = 0;
  for (ir::Function* fn : module.functions())
    for (ir::BasicBlock* block : fn->blocks())
      for (ir::Instruction* inst : block->instructions())
        n += (inst->opcode() == op);
  return n;
}

void expect_valid(const ir::Module& module, const std::string& context) {
  std::string errors;
  EXPECT_TRUE(ir::verify(module, &errors))
      << context << ":\n"
      << errors << ir::print_module(module);
}

TEST(Mem2RegTest, PromotesAllocasAndInsertsPhis) {
  auto module = testing::make_alloca_loop_module();
  PassManager pm({"mem2reg"});
  EXPECT_EQ(pm.run(*module), 1u);
  expect_valid(*module, "after mem2reg");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Alloca), 0u);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Load), 0u);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Store), 0u);
  EXPECT_GE(count_opcode(*module, ir::Opcode::Phi), 2u);  // i and acc
}

TEST(Mem2RegTest, LeavesEscapingAllocasAlone) {
  const char* text = R"(
declare void @use(i64*)
define void @f() {
entry:
  %p = alloca i64, i64 1
  call void @use(i64* %p)
  ret void
}
)";
  auto module = ir::parse_module(text);
  ASSERT_NE(module, nullptr);
  PassManager pm({"mem2reg"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Alloca), 1u);
}

TEST(Mem2RegTest, LoadBeforeStoreBecomesUndef) {
  const char* text = R"(
define i64 @f() {
entry:
  %p = alloca i64, i64 1
  %v = load i64, i64* %p
  ret i64 %v
}
)";
  auto module = ir::parse_module(text);
  ASSERT_NE(module, nullptr);
  PassManager pm({"mem2reg"});
  pm.run(*module);
  expect_valid(*module, "after mem2reg undef case");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Load), 0u);
}

TEST(InstCombineTest, FoldsConstantChains) {
  auto module = testing::make_foldable_module();
  PassManager pm({"instcombine"});
  pm.run(*module);
  expect_valid(*module, "after instcombine");
  // Everything folds into ret (arg + 20).
  ir::Function* fn = module->get_function("fold");
  EXPECT_LE(fn->instruction_count(), 2u);
}

TEST(InstCombineTest, StrengthReducesMulToShift) {
  const char* text = R"(
define i64 @f(i64 %x) {
entry:
  %m = mul i64 %x, 8
  ret i64 %m
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"instcombine"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Mul), 0u);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Shl), 1u);
}

TEST(InstCombineTest, FoldsSelectAndCasts) {
  const char* text = R"(
define i64 @f(i64 %x) {
entry:
  %c = icmp slt i64 3, 5
  %s = select i1 %c, i64 %x, i64 0
  %t = trunc i64 300 to i8
  %z = sext i8 %t to i64
  %r = add i64 %s, %z
  ret i64 %r
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"instcombine"});
  pm.run(*module);
  expect_valid(*module, "after instcombine select/cast");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Select), 0u);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::ICmp), 0u);
  // 300 wraps to 44 as i8; %r = %x + 44 remains a single add.
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Add), 1u);
}

TEST(DceTest, RemovesDeadChains) {
  const char* text = R"(
define i64 @f(i64 %x) {
entry:
  %dead1 = add i64 %x, 1
  %dead2 = mul i64 %dead1, 3
  %live = add i64 %x, 2
  ret i64 %live
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"dce"});
  pm.run(*module);
  EXPECT_EQ(module->get_function("f")->instruction_count(), 2u);
}

TEST(DceTest, KeepsSideEffects) {
  const char* text = R"(
define void @f(i64* %p) {
entry:
  store i64 1, i64* %p
  %unused = load i64, i64* %p
  %rmw = atomicrmw add i64* %p, i64 2
  ret void
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"dce"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Store), 1u);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::AtomicRMW), 1u);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Load), 0u);  // unused load dies
}

TEST(DseTest, RemovesOverwrittenStore) {
  const char* text = R"(
define void @f(i64* %p) {
entry:
  store i64 1, i64* %p
  store i64 2, i64* %p
  ret void
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"dse"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Store), 1u);
}

TEST(DseTest, InterveningLoadBlocksElimination) {
  const char* text = R"(
define i64 @f(i64* %p) {
entry:
  store i64 1, i64* %p
  %v = load i64, i64* %p
  store i64 2, i64* %p
  ret i64 %v
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"dse"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Store), 2u);
}

TEST(EarlyCseTest, DeduplicatesPureExpressions) {
  const char* text = R"(
define i64 @f(i64 %a, i64 %b) {
entry:
  %x = add i64 %a, %b
  %y = add i64 %b, %a
  %z = add i64 %x, %y
  ret i64 %z
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"earlycse"});
  pm.run(*module);
  // Commutative canonicalization merges x and y.
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Add), 2u);
}

TEST(EarlyCseTest, ForwardsLoadAfterStore) {
  const char* text = R"(
define i64 @f(i64* %p, i64 %v) {
entry:
  store i64 %v, i64* %p
  %r = load i64, i64* %p
  ret i64 %r
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"earlycse"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Load), 0u);
}

TEST(GvnTest, EliminatesAcrossBlocks) {
  const char* text = R"(
define i64 @f(i64 %a, i1 %c) {
entry:
  %x = mul i64 %a, %a
  br i1 %c, label %then, label %join
then:
  %y = mul i64 %a, %a
  br label %join
join:
  %p = phi i64 [ %y, %then ], [ 0, %entry ]
  %z = mul i64 %a, %a
  %r = add i64 %p, %z
  ret i64 %r
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"gvn"});
  pm.run(*module);
  expect_valid(*module, "after gvn");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Mul), 1u);
}

TEST(SimplifyCfgTest, FoldsConstantBranchAndRemovesDeadBlock) {
  const char* text = R"(
define i64 @f(i64 %x) {
entry:
  br i1 1, label %a, label %b
a:
  ret i64 %x
b:
  ret i64 0
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"simplifycfg"});
  pm.run(*module);
  expect_valid(*module, "after simplifycfg");
  // entry+a merge; b unreachable -> single block remains.
  EXPECT_EQ(module->get_function("f")->num_blocks(), 1u);
}

TEST(SimplifyCfgTest, MergesStraightLineAndFixesPhis) {
  const char* text = R"(
define i64 @f(i64 %x, i1 %c) {
entry:
  br i1 %c, label %t, label %e
t:
  %a = add i64 %x, 1
  br label %join
e:
  %b = add i64 %x, 2
  br label %join
join:
  %p = phi i64 [ %a, %t ], [ %b, %e ]
  ret i64 %p
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"simplifycfg"});
  pm.run(*module);
  expect_valid(*module, "after simplifycfg diamond");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Phi), 1u);
}

TEST(LicmTest, HoistsInvariantComputation) {
  const char* text = R"(
define i64 @f(i64 %n, i64 %k) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %inc, %loop ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %loop ]
  %inv = mul i64 %k, %k
  %acc2 = add i64 %acc, %inv
  %inc = add i64 %i, 1
  %c = icmp slt i64 %inc, %n
  br i1 %c, label %loop, label %exit
exit:
  ret i64 %acc2
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"licm"});
  pm.run(*module);
  expect_valid(*module, "after licm");
  // %inv must have left the loop body.
  ir::Function* fn = module->get_function("f");
  ir::BasicBlock* loop = nullptr;
  for (ir::BasicBlock* block : fn->blocks())
    if (block->name() == "loop") loop = block;
  ASSERT_NE(loop, nullptr);
  for (ir::Instruction* inst : loop->instructions())
    EXPECT_NE(inst->name(), "inv");
}

TEST(LicmTest, DoesNotHoistLoadPastStores) {
  const char* text = R"(
define void @f(i64 %n, i64* %p, i64* %q) {
entry:
  br label %loop
loop:
  %i = phi i64 [ 0, %entry ], [ %inc, %loop ]
  %v = load i64, i64* %p
  store i64 %v, i64* %q
  %inc = add i64 %i, 1
  %c = icmp slt i64 %inc, %n
  br i1 %c, label %loop, label %exit
exit:
  ret void
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"licm"});
  pm.run(*module);
  expect_valid(*module, "after licm load");
  ir::Function* fn = module->get_function("f");
  ir::BasicBlock* loop = nullptr;
  for (ir::BasicBlock* block : fn->blocks())
    if (block->name() == "loop") loop = block;
  bool load_in_loop = false;
  for (ir::Instruction* inst : loop->instructions())
    load_in_loop |= (inst->opcode() == ir::Opcode::Load);
  EXPECT_TRUE(load_in_loop);
}

TEST(LoopUnrollTest, FullyUnrollsConstantTripLoop) {
  auto module = testing::make_sum_loop_module(/*bound=*/4);
  PassManager pm({"loop-unroll"});
  EXPECT_EQ(pm.run(*module), 1u);
  expect_valid(*module, "after unroll");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Phi), 0u);
  // Constant-fold the unrolled chain: sum 0..3 = 6.
  PassManager cleanup({"instcombine", "dce", "simplifycfg"});
  cleanup.run(*module);
  std::string text = ir::print_module(*module);
  EXPECT_NE(text.find("ret i64 6"), std::string::npos) << text;
}

TEST(LoopUnrollTest, LeavesDynamicLoopsAlone) {
  auto module = testing::make_sum_loop_module();  // bound = %n
  PassManager pm({"loop-unroll"});
  EXPECT_EQ(pm.run(*module), 0u);
}

TEST(InlineTest, InlinesSmallCalleeWithBranches) {
  const char* text = R"(
define i64 @abs(i64 %x) {
entry:
  %neg = icmp slt i64 %x, 0
  br i1 %neg, label %flip, label %done
flip:
  %m = sub i64 0, %x
  br label %done
done:
  %r = phi i64 [ %m, %flip ], [ %x, %entry ]
  ret i64 %r
}
define i64 @caller(i64 %a, i64 %b) {
entry:
  %x = call i64 @abs(i64 %a)
  %y = call i64 @abs(i64 %b)
  %s = add i64 %x, %y
  ret i64 %s
}
)";
  auto module = ir::parse_module(text);
  ASSERT_NE(module, nullptr);
  PassManager pm({"inline"});
  EXPECT_EQ(pm.run(*module), 1u);
  expect_valid(*module, "after inline");
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Call), 0u);
}

TEST(InlineTest, SkipsRecursionAndDeclarations) {
  const char* text = R"(
declare i64 @ext(i64)
define i64 @rec(i64 %x) {
entry:
  %r = call i64 @rec(i64 %x)
  %e = call i64 @ext(i64 %r)
  ret i64 %e
}
)";
  auto module = ir::parse_module(text);
  PassManager pm({"inline"});
  pm.run(*module);
  EXPECT_EQ(count_opcode(*module, ir::Opcode::Call), 2u);
}

TEST(PipelineTest, O3PipelineKeepsModulesValid) {
  std::vector<std::function<std::unique_ptr<ir::Module>()>> makers = {
      [] { return testing::make_sum_loop_module(); },
      [] { return testing::make_alloca_loop_module(); },
  };
  for (auto& maker : makers) {
    auto module = maker();
    PassManager pm(passes::o3_pipeline());
    pm.run(*module);
    expect_valid(*module, "after O3");
  }
}

TEST(PipelineTest, UnknownPassNameThrows) {
  EXPECT_THROW(PassManager({"not-a-pass"}), std::invalid_argument);
}

TEST(FlagSequenceTest, DeterministicForSeed) {
  auto a = passes::sample_flag_sequences(20, 42);
  auto b = passes::sample_flag_sequences(20, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].passes, b[i].passes);
}

TEST(FlagSequenceTest, PrefixStableWhenCountGrows) {
  auto small = passes::sample_flag_sequences(5, 7);
  auto large = passes::sample_flag_sequences(50, 7);
  for (std::size_t i = 0; i < small.size(); ++i)
    EXPECT_EQ(small[i].passes, large[i].passes);
}

TEST(FlagSequenceTest, SampledSequencesRunAndKeepIrValid) {
  auto sequences = passes::sample_flag_sequences(25, 11);
  for (const auto& seq : sequences) {
    auto module = testing::make_alloca_loop_module();
    PassManager pm(seq.passes);
    pm.run(*module);
    expect_valid(*module, "after flag sequence " + seq.to_string());
  }
}

TEST(FlagSequenceTest, KeepProbabilityShapesLength) {
  // Expected kept passes per sequence: rounds * |O3| * keep_p.
  auto sequences = passes::sample_flag_sequences(300, 3);
  double total = 0;
  for (const auto& seq : sequences) total += seq.passes.size();
  double avg = total / sequences.size();
  double expected = 4 * passes::o3_pipeline().size() * 0.2;
  EXPECT_NEAR(avg, expected, expected * 0.25);
}

}  // namespace
}  // namespace irgnn
