// Shared IR-construction helpers for the test suite.
#pragma once

#include <memory>
#include <string>

#include "ir/irbuilder.h"
#include "ir/module.h"

namespace irgnn::testing {

/// Builds:
///   define i64 @sum(i64 %n) {          ; sum of 0..n-1 with a counted loop
///   entry: br loop
///   loop:  %i = phi [0,entry],[%inc,loop]
///          %acc = phi [0,entry],[%acc2,loop]
///          %acc2 = add %acc, %i
///          %inc = add %i, 1
///          %c = icmp slt %inc, %n
///          br %c, loop, exit
///   exit:  ret %acc2
///   }
inline std::unique_ptr<ir::Module> make_sum_loop_module(
    std::int64_t bound = -1) {
  auto module = std::make_unique<ir::Module>("sum_loop");
  auto& ctx = module->types();
  auto* fn_type = ctx.function(ctx.int64_ty(), {ctx.int64_ty()});
  ir::Function* fn = module->add_function(fn_type, "sum");
  fn->set_arg_name(0, "n");
  ir::IRBuilder b(module.get());

  auto* entry = fn->add_block("entry");
  auto* loop = fn->add_block("loop");
  auto* exit = fn->add_block("exit");

  b.set_insert_point(entry);
  b.create_br(loop);

  b.set_insert_point(loop);
  auto* i = b.create_phi(ctx.int64_ty(), "i");
  auto* acc = b.create_phi(ctx.int64_ty(), "acc");
  auto* acc2 = b.create_add(acc, i, "acc2");
  auto* inc = b.create_add(i, module->get_i64(1), "inc");
  ir::Value* limit = bound >= 0
                         ? static_cast<ir::Value*>(module->get_i64(bound))
                         : fn->arg(0);
  auto* cond = b.create_icmp(ir::ICmpPred::SLT, inc, limit, "c");
  b.create_cond_br(cond, loop, exit);
  i->phi_add_incoming(module->get_i64(0), entry);
  i->phi_add_incoming(inc, loop);
  acc->phi_add_incoming(module->get_i64(0), entry);
  acc->phi_add_incoming(acc2, loop);

  b.set_insert_point(exit);
  b.create_ret(acc2);
  return module;
}

/// Builds a function that uses allocas for i/acc the way a frontend would,
/// exercising mem2reg:
///   define i64 @asum(i64 %n) { alloca-based loop summing 2*i }
inline std::unique_ptr<ir::Module> make_alloca_loop_module() {
  auto module = std::make_unique<ir::Module>("alloca_loop");
  auto& ctx = module->types();
  auto* fn_type = ctx.function(ctx.int64_ty(), {ctx.int64_ty()});
  ir::Function* fn = module->add_function(fn_type, "asum");
  fn->set_arg_name(0, "n");
  ir::IRBuilder b(module.get());

  auto* entry = fn->add_block("entry");
  auto* header = fn->add_block("header");
  auto* body = fn->add_block("body");
  auto* exit = fn->add_block("exit");

  b.set_insert_point(entry);
  auto* iv = b.create_alloca(ctx.int64_ty(), nullptr, "iv");
  auto* accv = b.create_alloca(ctx.int64_ty(), nullptr, "accv");
  b.create_store(module->get_i64(0), iv);
  b.create_store(module->get_i64(0), accv);
  b.create_br(header);

  b.set_insert_point(header);
  auto* i0 = b.create_load(iv, "i0");
  auto* c = b.create_icmp(ir::ICmpPred::SLT, i0, fn->arg(0), "c");
  b.create_cond_br(c, body, exit);

  b.set_insert_point(body);
  auto* i1 = b.create_load(iv, "i1");
  auto* twice = b.create_mul(i1, module->get_i64(2), "twice");
  auto* a0 = b.create_load(accv, "a0");
  auto* a1 = b.create_add(a0, twice, "a1");
  b.create_store(a1, accv);
  auto* i2 = b.create_add(i1, module->get_i64(1), "i2");
  b.create_store(i2, iv);
  b.create_br(header);

  b.set_insert_point(exit);
  auto* result = b.create_load(accv, "result");
  b.create_ret(result);
  return module;
}

/// A straight-line function full of foldable arithmetic.
inline std::unique_ptr<ir::Module> make_foldable_module() {
  auto module = std::make_unique<ir::Module>("foldable");
  auto& ctx = module->types();
  auto* fn_type = ctx.function(ctx.int64_ty(), {ctx.int64_ty()});
  ir::Function* fn = module->add_function(fn_type, "fold");
  ir::IRBuilder b(module.get());
  auto* entry = fn->add_block("entry");
  b.set_insert_point(entry);
  auto* a = b.create_add(module->get_i64(2), module->get_i64(3), "a");  // 5
  auto* m = b.create_mul(a, module->get_i64(4), "m");                   // 20
  auto* x = b.create_add(fn->arg(0), module->get_i64(0), "x");  // arg
  auto* y = b.create_mul(x, module->get_i64(1), "y");           // arg
  auto* z = b.create_add(y, m, "z");                            // arg+20
  b.create_ret(z);
  return module;
}

}  // namespace irgnn::testing
