// Int8 quantization pipeline tests — the CI accuracy-delta gate plus the
// serving-layer contracts of ISSUE 8:
//
//   * StaticModel::quantize rejects an empty calibration fold with
//     InvalidArgument and produces nothing servable.
//   * The quantized model's fold accuracy stays within a fixed epsilon of
//     the float model's, and the two agree on the vast majority of graphs
//     (this test IS the CI gate: the `quantize` job runs it under Release
//     and ASan/UBSan and fails the build on regression).
//   * A warm quantized predict_into performs zero heap allocations — same
//     counting-operator-new harness as tests/arena_test.cpp.
//   * A Router serves the float and int8 versions side by side: answers
//     are bitwise the named model's own serial predictions, per-model
//     cache accounting conserves (hits + misses + coalesced == queries),
//     and no cache entry ever crosses versions.
#include <atomic>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gnn/model.h"
#include "gnn/quantize.h"
#include "graph/graph_builder.h"
#include "graph/program_graph.h"
#include "serve/router.h"
#include "support/arena.h"
#include "tensor/tensor.h"
#include "workloads/suite.h"

// --- Counting allocator hooks (same pattern as arena_test.cpp) --------------

namespace {
std::atomic<std::uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace irgnn {
namespace {

/// Structurally distinct suite regions, built once.
const std::vector<graph::ProgramGraph>& test_graphs() {
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 2, 4, 8, 13, 17, 22, 28, 33, 39, 44, 50, 3, 7, 12, 18,
                  23, 29}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  return owned;
}

std::vector<const graph::ProgramGraph*> graph_ptrs() {
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : test_graphs()) ptrs.push_back(&g);
  return ptrs;
}

gnn::ModelConfig small_config(std::uint64_t seed) {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 3;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.epochs = 12;
  cfg.batch_size = 8;
  cfg.dropout = 0.1f;
  cfg.seed = seed;
  cfg.num_threads = 1;
  return cfg;
}

std::vector<int> synthetic_labels(std::size_t n, int num_labels) {
  std::vector<int> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = static_cast<int>(i) % num_labels;
  return labels;
}

double accuracy(const std::vector<int>& pred, const std::vector<int>& truth) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < pred.size(); ++i)
    if (pred[i] == truth[i]) ++correct;
  return pred.empty() ? 0.0 : static_cast<double>(correct) / pred.size();
}

/// A trained float model plus its quantized snapshot, built once: training
/// is the expensive part and every test below reads the same pair.
struct TrainedPair {
  std::unique_ptr<gnn::StaticModel> model;
  std::shared_ptr<const gnn::QuantizedModel> quantized;
  std::vector<int> labels;
};

const TrainedPair& trained_pair() {
  static const TrainedPair pair = [] {
    tensor::set_kernel_parallelism(1);
    TrainedPair p;
    p.model = std::make_unique<gnn::StaticModel>(small_config(0x1A78));
    const auto ptrs = graph_ptrs();
    p.labels = synthetic_labels(ptrs.size(), p.model->config().num_labels);
    p.model->train(ptrs, p.labels);
    auto quantized = p.model->quantize(ptrs);
    EXPECT_TRUE(quantized.ok()) << quantized.status().message();
    p.quantized = std::move(quantized).value();
    return p;
  }();
  return pair;
}

// --- Failure containment ----------------------------------------------------

TEST(QuantizeTest, EmptyCalibrationFoldIsInvalidArgument) {
  gnn::StaticModel model(small_config(0xE33));
  auto result = model.quantize({});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), support::StatusCode::kInvalidArgument);
}

// --- The CI accuracy-delta gate ---------------------------------------------

/// Quantized fold accuracy must stay within this fixed epsilon of float
/// accuracy. The `quantize` CI job fails the build when this regresses.
constexpr double kAccuracyEpsilon = 0.12;

/// Minimum per-query agreement rate between the float and int8 models on
/// the calibration fold.
constexpr double kMinAgreement = 0.85;

TEST(QuantizeTest, QuantizedFoldAccuracyWithinEpsilonOfFloat) {
  const TrainedPair& p = trained_pair();
  const auto ptrs = graph_ptrs();

  const std::vector<int> float_pred = p.model->predict(ptrs);
  const std::vector<int> quant_pred = p.quantized->predict(ptrs);
  ASSERT_EQ(float_pred.size(), ptrs.size());
  ASSERT_EQ(quant_pred.size(), ptrs.size());

  const double float_acc = accuracy(float_pred, p.labels);
  const double quant_acc = accuracy(quant_pred, p.labels);
  EXPECT_GE(quant_acc, float_acc - kAccuracyEpsilon)
      << "int8 accuracy " << quant_acc << " fell more than "
      << kAccuracyEpsilon << " below float accuracy " << float_acc;

  std::size_t agree = 0;
  for (std::size_t i = 0; i < ptrs.size(); ++i)
    if (float_pred[i] == quant_pred[i]) ++agree;
  const double agreement = static_cast<double>(agree) / ptrs.size();
  EXPECT_GE(agreement, kMinAgreement)
      << "float/int8 per-query agreement " << agreement << " below floor";
}

TEST(QuantizeTest, EvaluateMatchesPredictIntoAndEmitsFiniteEmbeddings) {
  const TrainedPair& p = trained_pair();
  const auto ptrs = graph_ptrs();

  std::vector<int> direct;
  p.quantized->predict_into(ptrs, direct);

  gnn::Evaluation eval;
  p.quantized->evaluate(ptrs, eval, /*want_embeddings=*/true);
  ASSERT_EQ(eval.predictions, direct);
  ASSERT_EQ(eval.embeddings.size(),
            ptrs.size() * static_cast<std::size_t>(p.quantized->hidden_dim()));
  for (float v : eval.embeddings) ASSERT_TRUE(std::isfinite(v));
  ASSERT_EQ(eval.log_probs.size(),
            ptrs.size() * static_cast<std::size_t>(p.quantized->num_labels()));
  for (float v : eval.log_probs) ASSERT_LE(v, 0.0f);
}

// --- Zero allocations on the warm quantized path ----------------------------

TEST(QuantizeTest, WarmQuantizedPredictNeverTouchesHeap) {
  tensor::set_kernel_parallelism(1);
  const TrainedPair& p = trained_pair();
  const auto base = graph_ptrs();

  // 40 pointers cycling over the owned graphs: several 16-graph shards,
  // exactly like arena_test's float twin of this test.
  std::vector<const graph::ProgramGraph*> ptrs;
  for (std::size_t i = 0; i < 40; ++i) ptrs.push_back(base[i % base.size()]);

  std::vector<int> preds;
  gnn::Evaluation eval;
  // Warm-up: first call sizes every per-shard scratch buffer.
  p.quantized->predict_into(ptrs, preds);
  p.quantized->evaluate(ptrs, eval, /*want_embeddings=*/false);
  const std::vector<int> expected = preds;

  const auto pool_before = support::BufferPool::global().stats();
  const std::uint64_t heap_before =
      g_heap_allocations.load(std::memory_order_relaxed);

  for (int rep = 0; rep < 10; ++rep) {
    p.quantized->predict_into(ptrs, preds);
    ASSERT_EQ(preds, expected);
  }

  const std::uint64_t heap_delta =
      g_heap_allocations.load(std::memory_order_relaxed) - heap_before;
  const auto pool_after = support::BufferPool::global().stats();
  EXPECT_EQ(heap_delta, 0u)
      << "warm quantized predict_into touched the heap " << heap_delta
      << " times";
  EXPECT_EQ(pool_after.malloc_calls, pool_before.malloc_calls)
      << "warm quantized predict grew the buffer pool";
  EXPECT_GT(pool_after.pool_hits, pool_before.pool_hits)
      << "warm quantized predict should recycle pooled buffers";
}

// --- Side-by-side float/int8 serving ----------------------------------------

TEST(QuantizeTest, RouterServesFloatAndInt8SideBySide) {
  const TrainedPair& p = trained_pair();
  const auto ptrs = graph_ptrs();

  // Each model's own serial answers are the ground truth per version.
  const std::vector<int> float_pred = p.model->predict(ptrs);
  const std::vector<int> quant_pred = p.quantized->predict(ptrs);

  serve::RouterConfig config;
  config.server.background_loop = false;
  serve::Router router(config);
  const std::uint64_t float_version =
      router.publish("static", serve::borrow_model(*p.model));
  const std::uint64_t int8_version = router.publish("static.int8", p.quantized);
  EXPECT_NE(float_version, 0u);
  EXPECT_NE(int8_version, 0u);
  ASSERT_EQ(router.models(),
            (std::vector<std::string>{"static", "static.int8"}));

  // Two passes: the second must be answered from each model's own cache —
  // the (version, fingerprint) key means a hit can never cross versions,
  // which the bitwise-equality assertions below would catch instantly.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < ptrs.size(); ++i) {
      serve::Response rf = router.predict(serve::Request(*ptrs[i], "static"));
      ASSERT_TRUE(rf.ok()) << rf.status.message();
      EXPECT_EQ(rf.label, float_pred[i]);
      EXPECT_EQ(rf.model_version, float_version);

      serve::Response rq =
          router.predict(serve::Request(*ptrs[i], "static.int8"));
      ASSERT_TRUE(rq.ok()) << rq.status.message();
      EXPECT_EQ(rq.label, quant_pred[i]);
      EXPECT_EQ(rq.model_version, int8_version);
    }
  }

  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.routed, 4 * ptrs.size());
  EXPECT_EQ(stats.model_not_found, 0u);
  ASSERT_EQ(stats.models.size(), 2u);
  for (const serve::RouterModelStats& m : stats.models) {
    const serve::ServerStats& s = m.stats;
    EXPECT_EQ(s.cache.hits + s.cache.misses + s.coalesced, s.queries)
        << "conservation law broken for model " << m.model;
    EXPECT_EQ(s.queries, 2 * ptrs.size()) << m.model;
    // Pass two repeats every graph: each model's cache must answer it.
    EXPECT_GE(s.cache.hits, ptrs.size()) << m.model;
  }
}

}  // namespace
}  // namespace irgnn
