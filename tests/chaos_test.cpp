// Seeded chaos harness for the failure-containment layer.
//
// Two kinds of test live here:
//
//   Deterministic scripted runs (one driver thread): the failpoint schedule
//   is a pure function of the seed, the breaker is configured time-free
//   (probe interval 0, or far beyond the test), and the ENTIRE final stats
//   snapshot — queries, forwards, trips, probes, short-circuits, cache
//   counters — must reproduce bit-for-bit across runs and across model
//   thread counts.
//
//   Concurrent chaos (free-running clients against a Router, faults firing
//   mid-flight): interleavings vary, so these assert invariants instead of
//   exact counts — every Ok answer bit-identical to a serial predict by the
//   version that reports it, hits + misses + coalesced == queries, every
//   future resolved exactly once by shutdown, retries never amplify sheds.
//
// The binary builds and passes in BOTH library configurations: with
// IRGNN_FAILPOINTS compiled out, fault-dependent tests GTEST_SKIP and the
// healthy-mode harness still runs every structural invariant.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "gnn/model.h"
#include "gnn/quantize.h"
#include "graph/graph_builder.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/router.h"
#include "serve/server.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace irgnn {
namespace {

namespace failpoints = support::failpoints;

/// A dozen structurally distinct suite regions, built once (same picks as
/// serve_test, so expectations carry over mentally between the suites).
const std::vector<graph::ProgramGraph>& test_graphs() {
  static const std::vector<graph::ProgramGraph> owned = [] {
    std::vector<graph::ProgramGraph> graphs;
    for (int r : {0, 3, 7, 12, 18, 23, 29, 34, 40, 45, 51, 55}) {
      auto module =
          workloads::build_region_module(workloads::benchmark_suite()[r]);
      graphs.push_back(graph::build_graph(*module));
    }
    return graphs;
  }();
  return owned;
}

gnn::ModelConfig small_config(std::uint64_t seed, int num_threads = 1) {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 5;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = seed;
  cfg.num_threads = num_threads;
  return cfg;
}

std::vector<int> serial_predict(const gnn::StaticModel& model) {
  std::vector<const graph::ProgramGraph*> ptrs;
  for (const auto& g : test_graphs()) ptrs.push_back(&g);
  return model.predict(ptrs);
}

/// Every test disarms every failpoint on both ends: an armed site leaking
/// across tests is the classic cross-test heisenbug.
class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoints::disable_all(); }
  void TearDown() override { failpoints::disable_all(); }
};

// --- Failpoint schedule determinism -----------------------------------------

/// A local failpoint site: returns 1 when the error action ran.
int hit_unit_site() {
  int fired = 0;
  IRGNN_FAILPOINT("chaos.unit", fired = 1);
  return fired;
}

TEST_F(ChaosTest, FailpointScheduleIsAPureFunctionOfTheSeed) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto run = [](std::uint64_t seed) {
    failpoints::set_seed(seed);
    failpoints::FailpointSpec spec;
    spec.probability = 0.4;
    failpoints::configure("chaos.unit", spec);
    std::vector<int> pattern;
    for (int i = 0; i < 200; ++i) pattern.push_back(hit_unit_site());
    return pattern;
  };
  const std::vector<int> a = run(0xC4A05);
  const std::uint64_t fires_a = failpoints::fires("chaos.unit");
  const std::vector<int> b = run(0xC4A05);
  EXPECT_EQ(a, b) << "same seed must reproduce the same fault schedule";
  EXPECT_EQ(fires_a, failpoints::fires("chaos.unit"));
  EXPECT_EQ(failpoints::hits("chaos.unit"), 200u);
  // Sanity on the Bernoulli: p=0.4 over 200 hits lands well inside (40,120)
  // for any reasonable mixer — and the count is exact per seed anyway.
  EXPECT_GT(fires_a, 40u);
  EXPECT_LT(fires_a, 120u);
  // A different seed draws a different schedule.
  const std::vector<int> c = run(0x5EED);
  EXPECT_NE(a, c);
}

TEST_F(ChaosTest, FailpointTriggerModes) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  failpoints::set_seed(1);

  // every_nth: hits 3, 6, 9 fire out of 1..10.
  failpoints::FailpointSpec nth;
  nth.every_nth = 3;
  failpoints::configure("chaos.unit", nth);
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) fired.push_back(hit_unit_site());
  EXPECT_EQ(fired, (std::vector<int>{0, 0, 1, 0, 0, 1, 0, 0, 1, 0}));
  EXPECT_EQ(failpoints::fires("chaos.unit"), 3u);

  // one_shot: exactly hit 4 fires; configure() restarts the count.
  failpoints::FailpointSpec once;
  once.one_shot_hit = 4;
  failpoints::configure("chaos.unit", once);
  fired.clear();
  for (int i = 0; i < 10; ++i) fired.push_back(hit_unit_site());
  EXPECT_EQ(fired, (std::vector<int>{0, 0, 0, 1, 0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(failpoints::fires("chaos.unit"), 1u);

  // max_fires caps an otherwise-unbounded trigger.
  failpoints::FailpointSpec capped;
  capped.every_nth = 1;
  capped.max_fires = 2;
  failpoints::configure("chaos.unit", capped);
  int total = 0;
  for (int i = 0; i < 10; ++i) total += hit_unit_site();
  EXPECT_EQ(total, 2);
  EXPECT_EQ(failpoints::hits("chaos.unit"), 10u);

  // inject_error = false: the site fires (counts, delays) but the error
  // action must not run — pure latency injection.
  failpoints::FailpointSpec stall;
  stall.every_nth = 1;
  stall.inject_error = false;
  failpoints::configure("chaos.unit", stall);
  EXPECT_EQ(hit_unit_site(), 0);
  EXPECT_EQ(failpoints::fires("chaos.unit"), 1u);

  // disable(): counters stop mattering, nothing fires.
  failpoints::disable("chaos.unit");
  EXPECT_EQ(hit_unit_site(), 0);
}

// --- Circuit breaker --------------------------------------------------------

TEST_F(ChaosTest, BreakerTripsServesCacheShortCircuitsMissesAndRecovers) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xB1));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::ServerConfig config;
  config.background_loop = false;
  config.max_wait_us = 0;
  config.cache_capacity = 64;
  config.breaker_trip_threshold = 3;
  config.breaker_probe_interval_us = 1000;
  serve::InferenceServer server(model, config);

  // Healthy warm-up: graph 0 lands in the cache.
  ASSERT_EQ(server.predict(graphs[0]).label, expected[0]);

  // 100% forward failure: three distinct misses trip the breaker.
  failpoints::set_seed(7);
  failpoints::FailpointSpec always;
  always.every_nth = 1;
  failpoints::configure("serve.forward", always);
  for (int g = 1; g <= 3; ++g) {
    const serve::Response r = server.predict(graphs[static_cast<std::size_t>(g)]);
    EXPECT_EQ(r.status.code(), support::StatusCode::kInternal);
  }
  serve::ServerStats tripped = server.stats();
  EXPECT_EQ(tripped.breaker_trips, 1u);
  EXPECT_TRUE(tripped.breaker_open);
  EXPECT_EQ(tripped.internal_errors, 3u);
  const std::uint64_t forwards_at_trip = tripped.forwards;

  // Degraded mode, within the probe interval: new misses answer Unavailable
  // WITHOUT spending a forward; cached traffic keeps flowing bit-identically.
  int short_circuited = 0;
  for (int i = 0; i < 8; ++i) {
    const serve::Response miss =
        server.predict(graphs[static_cast<std::size_t>(4 + (i % 3))]);
    if (miss.status.code() == support::StatusCode::kUnavailable)
      ++short_circuited;
    const serve::Response hit = server.predict(graphs[0]);
    EXPECT_TRUE(hit.ok());
    EXPECT_EQ(hit.label, expected[0]);
    EXPECT_EQ(hit.source, serve::Source::Cache);
  }
  serve::ServerStats degraded = server.stats();
  EXPECT_GT(degraded.breaker_short_circuits, 0u);
  EXPECT_EQ(static_cast<int>(degraded.breaker_short_circuits),
            short_circuited);
  // Zero forwards were burned on short-circuited misses; the only extra
  // forwards (if any) are failed half-open probes, which count no forward
  // either (a failed forward never increments forwards_). So: none at all.
  EXPECT_EQ(degraded.forwards, forwards_at_trip);
  // Conservation holds under degradation: a short-circuited miss is still
  // a miss.
  EXPECT_EQ(degraded.cache.hits + degraded.cache.misses + degraded.coalesced,
            degraded.queries);

  // Recovery: heal the model, wait out the probe interval; the next miss is
  // admitted as the half-open probe, succeeds, and closes the breaker.
  failpoints::disable("serve.forward");
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  const serve::Response probe = server.predict(graphs[7]);
  EXPECT_TRUE(probe.ok());
  EXPECT_EQ(probe.label, expected[7]);
  serve::ServerStats recovered = server.stats();
  EXPECT_FALSE(recovered.breaker_open);
  EXPECT_GE(recovered.breaker_probes, 1u);
  // Full service: a fresh miss forwards normally again.
  const serve::Response after = server.predict(graphs[8]);
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(after.label, expected[8]);
  EXPECT_EQ(server.stats().cache.hits + server.stats().cache.misses +
                server.stats().coalesced,
            server.stats().queries);
}

TEST_F(ChaosTest, AllocationFailureIsContainedToAnInternalResponse) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xA110));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::ServerConfig config;
  config.background_loop = false;
  config.max_wait_us = 0;
  config.cache_capacity = 0;  // every predict forwards
  config.coalesce = false;    // no in-flight map nodes on the submit path
  serve::InferenceServer server(model, config);

  // Warm up: steady-state containers stop allocating, so once armed, the
  // first BufferPool::allocate call is the forward's own scratch.
  for (int i = 0; i < 4; ++i)
    ASSERT_EQ(server.predict(graphs[1]).label, expected[1]);

  failpoints::set_seed(3);
  failpoints::FailpointSpec one;
  one.probability = 1.0;
  one.max_fires = 1;
  failpoints::configure("arena.allocate", one);
  // The injected bad_alloc takes the exact path of real allocation
  // pressure: caught by the pump, resolved Internal — never thrown at us.
  const serve::Response r = server.predict(graphs[1]);
  EXPECT_EQ(r.status.code(), support::StatusCode::kInternal);
  EXPECT_GE(failpoints::fires("arena.allocate"), 1u);
  failpoints::disable("arena.allocate");
  // The server survived and serves on.
  EXPECT_EQ(server.predict(graphs[1]).label, expected[1]);
}

TEST_F(ChaosTest, FailedQuantizationNeverPublishesAPartialModel) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  // A quantization fault must be containment-complete: the Status comes
  // back Internal, the router keeps serving the float model bit-for-bit,
  // and no partially-built int8 model is ever visible under any name.
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x0A57));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();
  std::vector<const graph::ProgramGraph*> fold;
  for (const auto& g : graphs) fold.push_back(&g);

  serve::RouterConfig config;
  config.server.background_loop = false;
  serve::Router router(config);
  router.publish("static", model);

  failpoints::set_seed(11);
  failpoints::FailpointSpec one;
  one.probability = 1.0;
  one.max_fires = 1;
  failpoints::configure("gnn.quantize", one);

  auto failed = model->quantize(fold);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), support::StatusCode::kInternal);
  EXPECT_GE(failpoints::fires("gnn.quantize"), 1u);
  failpoints::disable("gnn.quantize");

  // Nothing new was published: the failure produced no servable object, so
  // there is nothing a caller could even hand to the router.
  EXPECT_EQ(router.models(), std::vector<std::string>{"static"});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const serve::Response r = router.predict(graphs[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.label, expected[i]);
  }

  // The same call succeeds once the fault clears, and only then does an
  // int8 version appear.
  auto ok = model->quantize(fold);
  ASSERT_TRUE(ok.ok()) << ok.status().message();
  router.publish("static.int8", ok.value());
  EXPECT_EQ(router.models(),
            (std::vector<std::string>{"static", "static.int8"}));
  const std::vector<int> quant_expected = ok.value()->predict(fold);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const serve::Response r =
        router.predict(serve::Request(graphs[i], "static.int8"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.label, quant_expected[i]);
  }
}

// --- Scripted deterministic fault window ------------------------------------

struct ScriptedRun {
  std::vector<int> answers;  // label, or -(int)code for failures
  serve::ServerStats stats;
};

bool operator==(const serve::ServerStats& a, const serve::ServerStats& b) {
  auto key = [](const serve::ServerStats& s) {
    return std::make_tuple(
        s.queries, s.forwards, s.batches, s.max_batch, s.model_swaps,
        s.coalesced, s.warm_enqueued, s.warm_completed, s.warm_shed,
        s.warm_suppressed, s.shed, s.rejected, s.deadline_exceeded,
        s.internal_errors, s.peak_queue, s.invalid_arguments,
        s.breaker_trips, s.breaker_probes, s.breaker_short_circuits,
        s.breaker_open, s.source_cache, s.source_batch, s.source_coalesced,
        s.source_shed, s.cache.hits, s.cache.misses);
  };
  return key(a) == key(b);
}

/// One driver thread, three phases (healthy -> 35% forward failure ->
/// healed), breaker configured time-free: with probe_interval_us == 0 every
/// open-breaker miss immediately probes (recovery path, no short-circuits);
/// with a probe interval far beyond the test, every open-breaker miss
/// short-circuits (degraded path, no recovery). Either way no decision
/// depends on a clock, so the whole run — answers AND stats — is a pure
/// function of (seed, probe_interval).
ScriptedRun run_scripted(int model_threads, std::uint64_t seed,
                         std::int64_t probe_interval_us) {
  failpoints::disable_all();
  failpoints::set_seed(seed);
  auto model = std::make_shared<const gnn::StaticModel>(
      small_config(0x5C21, model_threads));

  serve::ServerConfig config;
  config.background_loop = false;
  config.max_wait_us = 0;
  config.cache_capacity = 16;
  config.breaker_trip_threshold = 2;
  config.breaker_probe_interval_us = probe_interval_us;
  serve::InferenceServer server(model, config);

  const auto& graphs = test_graphs();
  Rng rng(hash_combine64(seed, 0x57A));
  ScriptedRun out;
  auto drive = [&](int queries) {
    for (int q = 0; q < queries; ++q) {
      const std::size_t g = rng.next_below(graphs.size());
      const serve::Response r = server.predict(graphs[g]);
      out.answers.push_back(r.ok()
                                ? r.label
                                : -static_cast<int>(r.status.code()));
    }
  };

  drive(60);  // healthy
  failpoints::FailpointSpec flaky;
  flaky.probability = 0.35;
  failpoints::configure("serve.forward", flaky);
  drive(120);  // fault window
  failpoints::disable("serve.forward");
  drive(60);  // healed (recovery only reachable when probes are allowed)

  out.stats = server.stats();
  failpoints::disable_all();
  return out;
}

TEST_F(ChaosTest, ScriptedFaultWindowReproducesBitForBit) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  // probe_interval 0: open-breaker misses probe immediately (recovery
  // exercised). probe_interval 10 minutes: they short-circuit for the rest
  // of the run (degraded mode exercised). Both must be pure functions of
  // the seed — across reruns AND across model thread counts.
  for (std::int64_t interval_us : {std::int64_t{0}, std::int64_t{600000000}}) {
    const ScriptedRun once = run_scripted(1, 0xD1CE, interval_us);
    const ScriptedRun again = run_scripted(1, 0xD1CE, interval_us);
    const ScriptedRun threaded = run_scripted(4, 0xD1CE, interval_us);
    EXPECT_EQ(once.answers, again.answers) << "interval " << interval_us;
    EXPECT_TRUE(once.stats == again.stats) << "interval " << interval_us;
    EXPECT_EQ(once.answers, threaded.answers)
        << "model threads changed the fault schedule, interval "
        << interval_us;
    EXPECT_TRUE(once.stats == threaded.stats)
        << "model threads changed the final stats, interval " << interval_us;
    // The window actually exercised the machinery.
    EXPECT_GT(once.stats.internal_errors, 0u) << "interval " << interval_us;
    EXPECT_GT(once.stats.breaker_trips, 0u) << "interval " << interval_us;
    if (interval_us == 0) {
      EXPECT_GT(once.stats.breaker_probes, 0u);
      EXPECT_FALSE(once.stats.breaker_open) << "probes should have closed it";
    } else {
      EXPECT_GT(once.stats.breaker_short_circuits, 0u);
    }
    // Conservation, under injection, exactly.
    EXPECT_EQ(once.stats.cache.hits + once.stats.cache.misses +
                  once.stats.coalesced,
              once.stats.queries);
    // Different seed, different run (schedule or traffic or both).
    const ScriptedRun other = run_scripted(1, 0xFACE, interval_us);
    EXPECT_NE(once.answers, other.answers);
  }
}

// --- Concurrent chaos against a Router --------------------------------------

/// Free-running clients, optional fault injection, a mid-run hot swap, and
/// a mix of sync predicts (with retries) and submit+then futures. Asserts
/// invariants that hold under EVERY interleaving.
void run_concurrent_chaos(bool with_faults) {
  auto model_v1 =
      std::make_shared<const gnn::StaticModel>(small_config(0xC0C0A));
  auto model_v2 =
      std::make_shared<const gnn::StaticModel>(small_config(0xFACADE));
  const std::vector<int> expected_v1 = serial_predict(*model_v1);
  const std::vector<int> expected_v2 = serial_predict(*model_v2);
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.max_queue = 16;
  config.shed_policy = serve::ShedPolicy::DropOldest;
  config.server.max_batch = 8;
  config.server.max_wait_us = 100;
  config.server.cache_capacity = 64;
  config.server.breaker_trip_threshold = 4;
  config.server.breaker_probe_interval_us = 500;
  serve::Router router(config);
  const std::uint64_t v1 = router.publish("m", model_v1);

  if (with_faults) {
    failpoints::set_seed(0xBAD5EED);
    failpoints::FailpointSpec flaky_forward;
    flaky_forward.probability = 0.2;
    flaky_forward.delay_us = 200;  // fail AND stall: 20% of forwards
    failpoints::configure("serve.forward", flaky_forward);
    failpoints::FailpointSpec flaky_admit;
    flaky_admit.probability = 0.05;
    failpoints::configure("serve.admit", flaky_admit);
  }

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 120;
  std::atomic<std::uint64_t> ok_answers{0};
  std::atomic<std::uint64_t> failed_answers{0};
  std::atomic<std::uint64_t> callbacks_fired{0};
  std::atomic<std::uint64_t> futures_submitted{0};
  std::atomic<bool> wrong_bits{false};

  // Every Ok answer must be the serial predict of its graph BY THE VERSION
  // THAT REPORTS IT — a degraded/failing server may refuse, never lie, and
  // never answer from a version it does not name.
  auto check = [&](std::size_t g, const serve::Response& r) {
    if (!r.ok()) {
      failed_answers.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ok_answers.fetch_add(1, std::memory_order_relaxed);
    const std::vector<int>* expected = nullptr;
    if (r.model_version == v1)
      expected = &expected_v1;
    else if (r.model_version == v1 + 1)
      expected = &expected_v2;
    if (!expected || (*expected)[g] != r.label)
      wrong_bits.store(true, std::memory_order_relaxed);
  };

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(hash_combine64(0xC11E27, static_cast<std::uint64_t>(c)));
      serve::RetryPolicy policy;
      policy.max_attempts = 2;
      policy.base_backoff_us = 50;
      policy.jitter_seed = static_cast<std::uint64_t>(c);
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const std::size_t g = rng.next_below(graphs.size());
        if (rng.next_below(5) == 0) {
          // Async path: future + continuation; resolution may come from any
          // pumping thread, or from the shutdown drain.
          serve::StatusOr<serve::InferenceServer::Future> submitted =
              router.submit(serve::Request(graphs[g]));
          if (!submitted.ok()) {
            failed_answers.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          futures_submitted.fetch_add(1, std::memory_order_relaxed);
          std::move(submitted).value().then(
              [&, g](const serve::Response& r) {
                callbacks_fired.fetch_add(1, std::memory_order_relaxed);
                check(g, r);
              });
        } else {
          check(g, router.predict(serve::Request(graphs[g]), policy));
        }
      }
    });
  }
  // Hot swap mid-storm: in-flight batches finish on v1, later ones serve
  // v2; version-keyed caching makes stale answers structurally impossible,
  // and check() would catch one anyway.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const std::uint64_t v2 = router.publish("m", model_v2);
  EXPECT_EQ(v2, v1 + 1);
  for (auto& t : clients) t.join();

  // Shutdown drains every admitted query: all continuations fire exactly
  // once (callbacks_fired counts each firing, so a double fire would
  // overshoot futures_submitted, a dropped one undershoot).
  router.shutdown();
  EXPECT_EQ(callbacks_fired.load(), futures_submitted.load());
  EXPECT_FALSE(wrong_bits.load())
      << "an admitted answer differed from serial predict by its version";

  // Post-shutdown stats fold every server, live and retired.
  const serve::RouterStats stats = router.stats();
  // Conservation under injection, concurrency and hot swap:
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.coalesced,
            stats.queries);
  // Sources partition resolved client queries exactly.
  EXPECT_EQ(stats.source_cache + stats.source_batch + stats.source_coalesced +
                stats.source_shed,
            stats.queries);
  // Every issued query got exactly one answer (retries issue extra queries
  // at the router level but each returns exactly one Response to check()).
  EXPECT_EQ(ok_answers.load() + failed_answers.load() -
                callbacks_fired.load(),
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient -
                futures_submitted.load());
  if (with_faults) {
    EXPECT_GT(stats.internal_errors, 0u) << "faults were armed but never hit";
  } else {
    EXPECT_EQ(stats.internal_errors, 0u);
    EXPECT_EQ(stats.breaker_trips, 0u);
  }
  failpoints::disable_all();
}

TEST_F(ChaosTest, ConcurrentHealthyRunHoldsEveryInvariant) {
  // Runs in every build — the harness itself must not depend on failpoints.
  run_concurrent_chaos(/*with_faults=*/false);
}

TEST_F(ChaosTest, ConcurrentFaultStormHoldsEveryInvariant) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  run_concurrent_chaos(/*with_faults=*/true);
}

TEST_F(ChaosTest, ShutdownDrainsEveryFutureUnderTotalForwardFailure) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xD2A1));
  const auto& graphs = test_graphs();

  serve::ServerConfig config;
  config.background_loop = false;  // nothing pumps until shutdown drains
  config.max_wait_us = 0;
  config.cache_capacity = 0;
  serve::InferenceServer server(model, config);

  failpoints::set_seed(11);
  failpoints::FailpointSpec always;
  always.every_nth = 1;
  failpoints::configure("serve.forward", always);

  std::atomic<int> fired{0};
  constexpr int kFutures = 24;
  for (int i = 0; i < kFutures; ++i) {
    serve::StatusOr<serve::InferenceServer::Future> submitted =
        server.submit(serve::Request(graphs[i % graphs.size()]));
    ASSERT_TRUE(submitted.ok());
    std::move(submitted).value().then([&fired](const serve::Response& r) {
      // With a 100%-failing model, every drained answer is Internal —
      // but it IS an answer; no future may be dropped.
      EXPECT_EQ(r.status.code(), support::StatusCode::kInternal);
      fired.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(fired.load(), 0) << "nothing should resolve before the drain";
  server.shutdown();
  EXPECT_EQ(fired.load(), kFutures);
}

// --- Retry policy under injected faults -------------------------------------

TEST_F(ChaosTest, RetryRecoversFromATransientFault) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x27E));
  const std::vector<int> expected = serial_predict(*model);
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.server.background_loop = false;
  config.server.max_wait_us = 0;
  config.server.cache_capacity = 0;
  serve::Router router(config);
  router.publish("m", model);

  // Exactly one failure: the first attempt dies, the retry answers.
  failpoints::set_seed(5);
  failpoints::FailpointSpec one;
  one.every_nth = 1;
  one.max_fires = 1;
  failpoints::configure("serve.forward", one);

  serve::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_us = 10;
  const serve::Response r = router.predict(serve::Request(graphs[2]), policy);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.label, expected[2]);
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.retry_requests, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retry_successes, 1u);
  EXPECT_EQ(stats.internal_errors, 1u);
}

TEST_F(ChaosTest, RetryBudgetCapsAmplification) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0xB4D));
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.server.background_loop = false;
  config.server.max_wait_us = 0;
  config.server.cache_capacity = 0;
  serve::Router router(config);
  router.publish("m", model);

  failpoints::set_seed(6);
  failpoints::FailpointSpec always;
  always.every_nth = 1;
  failpoints::configure("serve.forward", always);

  // Zero budget: the retryable failure comes back after exactly ONE
  // attempt — the budget, not max_attempts, bounds amplification.
  serve::RetryPolicy none;
  none.max_attempts = 5;
  none.base_backoff_us = 0;
  none.budget_ratio = 0.0;
  none.budget_floor = 0;
  const serve::Response r = router.predict(serve::Request(graphs[1]), none);
  EXPECT_EQ(r.status.code(), support::StatusCode::kInternal);
  serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.retry_budget_exhausted, 1u);
  EXPECT_EQ(stats.internal_errors, 1u) << "exactly one forward was spent";
}

TEST_F(ChaosTest, RetryNeverRetriesAnOverloadedShed) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  auto model = std::make_shared<const gnn::StaticModel>(small_config(0x0E2));
  const auto& graphs = test_graphs();

  serve::RouterConfig config;
  config.server.background_loop = false;
  config.server.max_wait_us = 0;
  config.server.cache_capacity = 0;
  serve::Router router(config);
  router.publish("m", model);

  // Every admission sheds: the server is screaming "back off".
  failpoints::set_seed(8);
  failpoints::FailpointSpec always;
  always.every_nth = 1;
  failpoints::configure("serve.admit", always);

  serve::RetryPolicy eager;
  eager.max_attempts = 5;
  eager.base_backoff_us = 0;
  eager.budget_floor = 100;  // budget permits — the CODE must refuse
  const serve::Response r = router.predict(serve::Request(graphs[3]), eager);
  EXPECT_EQ(r.status.code(), support::StatusCode::kOverloaded);
  const serve::RouterStats stats = router.stats();
  EXPECT_EQ(stats.retries, 0u)
      << "a shed retried is an overload amplified — never";
  EXPECT_EQ(stats.rejected, 1u) << "exactly one admission attempt";
}

// --- Wire-layer chaos (src/net/) --------------------------------------------
//
// Same philosophy as the router chaos above, one layer further out: a TCP
// connection dying mid-frame, a read fault, a dribbling write path or an
// injected decode failure must never crash the server, leak a connection
// slot, or corrupt ANOTHER connection's stream. Mid-frame disconnect needs
// no failpoints and runs in every build; the injected-fault legs are gated
// on IRGNN_FAILPOINTS like the rest of this file.

/// Shared scaffolding: a small router + net server on an ephemeral port.
struct NetChaosRig {
  NetChaosRig() : router() {
    router.publish("static",
                   std::make_shared<const gnn::StaticModel>(small_config(42)));
    server.emplace(router, net::NetServerConfig{});
    start_ok = server->start().ok();
  }
  /// Shuts down and asserts the one invariant every leg shares: no leaked
  /// slots, loop finished.
  void finish() {
    server->shutdown();
    const net::NetServerStats stats = server->stats();
    EXPECT_TRUE(stats.finished);
    EXPECT_EQ(stats.open_slots, 0u) << "a chaos leg leaked a connection slot";
    router.shutdown();
  }
  serve::Router router;
  std::optional<net::NetServer> server;
  bool start_ok = false;
};

TEST_F(ChaosTest, MidFrameDisconnectNeverLeaksOrCorrupts) {
  NetChaosRig rig;
  ASSERT_TRUE(rig.start_ok);
  const auto& graphs = test_graphs();
  const int expected = rig.router.predict(graphs[0]).label;

  // An innocent client stays connected across every abuse below; its
  // answers must stay correct throughout.
  net::NetClient innocent;
  ASSERT_TRUE(innocent.connect("127.0.0.1", rig.server->port()).ok());

  net::FrameBytes frame;
  net::encode_request_into(9, serve::Request(graphs[0]), frame);
  for (std::size_t cut : {std::size_t{1}, std::size_t{4},
                          net::kHeaderBytes, net::kHeaderBytes + 3,
                          frame.size() - 1}) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(rig.server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    ASSERT_GT(::send(fd, frame.data(), cut, MSG_NOSIGNAL), 0);
    ::close(fd);  // vanish mid-frame

    auto alive = innocent.predict(serve::Request(graphs[0]));
    ASSERT_TRUE(alive.ok()) << "innocent connection broken by a disconnect "
                               "at byte " << cut;
    EXPECT_EQ(alive->label, expected);
  }
  innocent.close();
  rig.finish();
}

TEST_F(ChaosTest, NetReadFaultClosesOnlyTheFaultedConnection) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  NetChaosRig rig;
  ASSERT_TRUE(rig.start_ok);
  const auto& graphs = test_graphs();

  failpoints::set_seed(21);
  failpoints::FailpointSpec one;
  one.every_nth = 1;
  one.max_fires = 1;
  failpoints::configure("net.read", one);

  // The faulted victim loses its connection; the server survives and the
  // next connection (budget spent) works.
  net::NetClient victim;
  ASSERT_TRUE(victim.connect("127.0.0.1", rig.server->port()).ok());
  EXPECT_FALSE(victim.predict(serve::Request(graphs[1])).ok());

  net::NetClient after;
  ASSERT_TRUE(after.connect("127.0.0.1", rig.server->port()).ok());
  auto r = after.predict(serve::Request(graphs[1]));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, rig.router.predict(graphs[1]).label);
  after.close();

  EXPECT_GE(rig.server->stats().read_faults, 1u);
  rig.finish();
}

TEST_F(ChaosTest, ShortWritesDribbleFramesOutIntact) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  NetChaosRig rig;
  ASSERT_TRUE(rig.start_ok);
  const auto& graphs = test_graphs();
  std::vector<int> expected;
  for (int g = 0; g < 4; ++g)
    expected.push_back(rig.router.predict(graphs[g]).label);

  // EVERY server write truncated to one byte: responses leave one byte per
  // epoll wakeup. Framing must survive — the client still reassembles
  // byte-identical responses, just slowly.
  failpoints::set_seed(22);
  failpoints::FailpointSpec always;
  always.every_nth = 1;
  failpoints::configure("net.write", always);

  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", rig.server->port()).ok());
  for (int g = 0; g < 4; ++g) {
    auto r = client.predict(serve::Request(graphs[g]));
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(r->ok());
    EXPECT_EQ(r->label, expected[g]);
  }
  client.close();
  failpoints::disable_all();
  rig.finish();
}

TEST_F(ChaosTest, InjectedDecodeFaultAnswersAndKeepsTheConnection) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  NetChaosRig rig;
  ASSERT_TRUE(rig.start_ok);
  const auto& graphs = test_graphs();

  failpoints::set_seed(23);
  failpoints::FailpointSpec once;
  once.one_shot_hit = 1;
  failpoints::configure("net.decode", once);

  // The injected decode failure is well-framed: the server answers
  // InvalidArgument to the right tag and the SAME connection keeps working.
  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", rig.server->port()).ok());
  auto faulted = client.predict(serve::Request(graphs[2]));
  ASSERT_TRUE(faulted.ok()) << "transport must survive a decode fault";
  EXPECT_EQ(faulted->status.code(), support::StatusCode::kInvalidArgument);

  auto healthy = client.predict(serve::Request(graphs[2]));
  ASSERT_TRUE(healthy.ok());
  ASSERT_TRUE(healthy->ok());
  EXPECT_EQ(healthy->label, rig.router.predict(graphs[2]).label);
  client.close();

  EXPECT_GE(rig.server->stats().decode_errors, 1u);
  rig.finish();
}

TEST_F(ChaosTest, AcceptFaultDropsOneConnectionServerSurvives) {
  if (!failpoints::enabled()) GTEST_SKIP() << "failpoints compiled out";
  NetChaosRig rig;
  ASSERT_TRUE(rig.start_ok);
  const auto& graphs = test_graphs();

  failpoints::set_seed(24);
  failpoints::FailpointSpec once;
  once.one_shot_hit = 1;
  failpoints::configure("net.accept", once);

  // The kernel completes the handshake, then the fault closes the fd: the
  // victim sees a connection that dies before any reply.
  net::NetClient victim;
  ASSERT_TRUE(victim.connect("127.0.0.1", rig.server->port()).ok());
  EXPECT_FALSE(victim.predict(serve::Request(graphs[3])).ok());

  net::NetClient after;
  ASSERT_TRUE(after.connect("127.0.0.1", rig.server->port()).ok());
  auto r = after.predict(serve::Request(graphs[3]));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->label, rig.router.predict(graphs[3]).label);
  after.close();

  EXPECT_GE(rig.server->stats().accept_failures, 1u);
  rig.finish();
}

}  // namespace
}  // namespace irgnn
