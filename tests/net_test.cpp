// Wire codec and TCP server tests (src/net/).
//
// This binary replaces the global operator new/delete with counting
// wrappers (same scheme as arena_test) so the steady-state test can pin the
// codec's zero-allocation contract: once buffers are warm, encoding and
// decoding the same frame shapes touches the heap exactly zero times.
//
// The other codec contract — malformed input is a Status, never a crash —
// is driven by a seeded mutation fuzz: every truncation of every frame type
// must come back InvalidArgument, and random bit flips may change meaning
// but must never crash, read out of bounds, or produce an out-of-limits
// graph.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "gnn/model.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "net/client.h"
#include "net/codec.h"
#include "net/server.h"
#include "serve/router.h"
#include "support/rng.h"
#include "workloads/suite.h"

// --- Global allocation counter ---------------------------------------------

static std::atomic<std::uint64_t> g_heap_allocations{0};

static void* counted_alloc(std::size_t size) {
  ++g_heap_allocations;
  if (void* ptr = std::malloc(size ? size : 1)) return ptr;
  throw std::bad_alloc();
}

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_heap_allocations;
  return std::malloc(size ? size : 1);
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}

namespace irgnn {
namespace {

using net::DecodedRequest;
using net::DecodedResponse;
using net::FrameBytes;
using net::FrameHeader;
using net::FrameType;
using net::WireStats;
using support::Status;
using support::StatusCode;

graph::ProgramGraph suite_graph(int region) {
  auto module =
      workloads::build_region_module(workloads::benchmark_suite()[region]);
  return graph::build_graph(*module);
}

/// A synthetic graph larger than any suite region, with every node/edge
/// kind and position values exercised.
graph::ProgramGraph big_graph(int nodes, std::uint64_t seed) {
  graph::ProgramGraph g;
  g.name = "synthetic";  // must NOT survive the wire
  Rng rng(seed);
  const int vocab = graph::vocabulary_size();
  for (int i = 0; i < nodes; ++i) {
    graph::Node node;
    node.kind = static_cast<graph::NodeKind>(rng.next_below(3));
    node.feature = static_cast<int>(rng.next_below(vocab));
    node.text = "dropped-on-the-wire";
    g.nodes.push_back(node);
  }
  for (int i = 0; i < nodes * 3; ++i) {
    graph::Edge e;
    e.src = static_cast<std::int32_t>(rng.next_below(nodes));
    e.dst = static_cast<std::int32_t>(rng.next_below(nodes));
    e.kind = static_cast<graph::EdgeKind>(rng.next_below(3));
    e.position = static_cast<std::int32_t>(rng.next_below(8));
    g.edges.push_back(e);
  }
  return g;
}

void expect_same_structure(const graph::ProgramGraph& a,
                           const graph::ProgramGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].kind, b.nodes[i].kind);
    EXPECT_EQ(a.nodes[i].feature, b.nodes[i].feature);
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].src, b.edges[i].src);
    EXPECT_EQ(a.edges[i].dst, b.edges[i].dst);
    EXPECT_EQ(a.edges[i].kind, b.edges[i].kind);
    EXPECT_EQ(a.edges[i].position, b.edges[i].position);
  }
  EXPECT_EQ(graph::fingerprint(a), graph::fingerprint(b));
}

// --- Codec round trips ------------------------------------------------------

TEST(NetCodecTest, GraphRoundTripEmptySingleAndLarge) {
  std::vector<graph::ProgramGraph> cases;
  cases.emplace_back();  // empty: 0 nodes, 0 edges
  {
    graph::ProgramGraph one;
    one.nodes.push_back({graph::NodeKind::Instruction, 7, "add"});
    cases.push_back(std::move(one));
  }
  cases.push_back(suite_graph(0));
  cases.push_back(big_graph(5000, 0xB16));

  for (const auto& original : cases) {
    FrameBytes frame;
    net::encode_graph_into(original, frame);
    FrameHeader header;
    ASSERT_TRUE(net::decode_header(frame.data(), frame.size(), &header).ok());
    EXPECT_EQ(header.type, FrameType::kGraph);
    ASSERT_EQ(net::kHeaderBytes + header.payload_bytes, frame.size());

    graph::ProgramGraph decoded;
    decoded.name = "stale";  // decode must fully overwrite reused storage
    ASSERT_TRUE(net::decode_graph(frame.data() + net::kHeaderBytes,
                                  header.payload_bytes, &decoded)
                    .ok());
    expect_same_structure(original, decoded);
    // Debug strings deliberately do not cross the wire.
    EXPECT_TRUE(decoded.name.empty());
    for (const auto& node : decoded.nodes) EXPECT_TRUE(node.text.empty());
  }
}

TEST(NetCodecTest, RequestRoundTripCarriesEveryField) {
  const graph::ProgramGraph g = suite_graph(3);
  serve::Request request(g, "Skylake");
  request.deadline_us = 12345678;
  request.priority = serve::Priority::High;

  FrameBytes frame;
  net::encode_request_into(0xDEADBEEFCAFEull, request, frame);
  FrameHeader header;
  ASSERT_TRUE(net::decode_header(frame.data(), frame.size(), &header).ok());
  EXPECT_EQ(header.type, FrameType::kRequest);

  DecodedRequest decoded;
  graph::ProgramGraph storage;
  ASSERT_TRUE(net::decode_request(frame.data() + net::kHeaderBytes,
                                  header.payload_bytes, &decoded, &storage)
                  .ok());
  EXPECT_EQ(decoded.tag, 0xDEADBEEFCAFEull);
  EXPECT_EQ(decoded.deadline_us, 12345678);
  EXPECT_EQ(decoded.priority, serve::Priority::High);
  EXPECT_EQ(decoded.model, "Skylake");
  expect_same_structure(g, storage);

  std::uint64_t tag = 0;
  ASSERT_TRUE(net::peek_request_tag(frame.data() + net::kHeaderBytes,
                                    header.payload_bytes, &tag));
  EXPECT_EQ(tag, 0xDEADBEEFCAFEull);
}

TEST(NetCodecTest, ResponseRoundTripEveryStatusCode) {
  for (std::uint8_t code = 0; code < support::kNumStatusCodes; ++code) {
    bool valid = false;
    serve::Response response;
    response.status = net::status_from_wire(code, &valid);
    ASSERT_TRUE(valid) << "pinned code " << int(code);
    response.label = 3 + code;
    response.model_version = 40 + code;
    response.source = serve::Source::Coalesced;
    response.queue_us = 17;
    response.compute_us = 23;

    FrameBytes frame;
    net::encode_response_into(0x7A6ull + code, response, frame);
    FrameHeader header;
    ASSERT_TRUE(net::decode_header(frame.data(), frame.size(), &header).ok());
    EXPECT_EQ(header.type, FrameType::kResponse);

    DecodedResponse decoded;
    ASSERT_TRUE(net::decode_response(frame.data() + net::kHeaderBytes,
                                     header.payload_bytes, &decoded)
                    .ok());
    EXPECT_EQ(decoded.tag, 0x7A6ull + code);
    EXPECT_EQ(static_cast<std::uint8_t>(decoded.response.status.code()), code);
    EXPECT_EQ(decoded.response.label, 3 + code);
    EXPECT_EQ(decoded.response.model_version, 40u + code);
    EXPECT_EQ(decoded.response.source, serve::Source::Coalesced);
    EXPECT_EQ(decoded.response.queue_us, 17);
    EXPECT_EQ(decoded.response.compute_us, 23);
  }
  bool valid = true;
  net::status_from_wire(support::kNumStatusCodes, &valid);
  EXPECT_FALSE(valid) << "bytes beyond the pinned range must flag invalid";
}

TEST(NetCodecTest, StatsRoundTripEveryField) {
  WireStats stats;
  // The static_assert in codec.h pins WireStats as a flat u64 array; fill
  // every field with a distinct value through that layout so a field the
  // codec forgets cannot hide.
  auto* fields = reinterpret_cast<std::uint64_t*>(&stats);
  for (std::size_t i = 0; i < net::kWireStatsFields; ++i)
    fields[i] = 1000 + i;

  FrameBytes frame;
  net::encode_stats_reply_into(stats, frame);
  FrameHeader header;
  ASSERT_TRUE(net::decode_header(frame.data(), frame.size(), &header).ok());
  EXPECT_EQ(header.type, FrameType::kStatsReply);

  WireStats decoded;
  ASSERT_TRUE(net::decode_stats_reply(frame.data() + net::kHeaderBytes,
                                      header.payload_bytes, &decoded)
                  .ok());
  const auto* out = reinterpret_cast<const std::uint64_t*>(&decoded);
  for (std::size_t i = 0; i < net::kWireStatsFields; ++i)
    EXPECT_EQ(out[i], 1000 + i) << "WireStats field " << i;

  FrameBytes stats_request;
  net::encode_stats_request_into(stats_request);
  ASSERT_TRUE(
      net::decode_header(stats_request.data(), stats_request.size(), &header)
          .ok());
  EXPECT_EQ(header.type, FrameType::kStatsRequest);
  EXPECT_EQ(header.payload_bytes, 0u);
}

// --- Malformed input --------------------------------------------------------

TEST(NetCodecTest, HeaderRejectsEveryCorruption) {
  FrameBytes frame;
  net::encode_graph_into(suite_graph(0), frame);
  FrameHeader header;
  ASSERT_TRUE(net::decode_header(frame.data(), frame.size(), &header).ok());

  auto corrupted = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> copy(frame.data(), frame.data() + frame.size());
    copy[offset] = value;
    return copy;
  };
  // Bad magic (both bytes), unknown version, unknown frame type.
  for (const auto& bad :
       {corrupted(0, 0x00), corrupted(1, 0xFF), corrupted(2, 99),
        corrupted(3, 0), corrupted(3, 200)}) {
    const Status status = net::decode_header(bad.data(), bad.size(), &header);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  }
  // Oversized length field: rejected before any allocation happens.
  {
    std::vector<std::uint8_t> bad(frame.data(), frame.data() + frame.size());
    const std::uint32_t huge = net::kMaxPayloadBytes + 1;
    std::memcpy(bad.data() + 4, &huge, sizeof(huge));
    EXPECT_EQ(net::decode_header(bad.data(), bad.size(), &header).code(),
              StatusCode::kInvalidArgument);
  }
  // Short buffer.
  EXPECT_FALSE(net::decode_header(frame.data(), 3, &header).ok());
}

TEST(NetCodecTest, EveryTruncationIsInvalidArgumentNeverACrash) {
  // Truncating a payload at ANY byte boundary must produce a clean
  // InvalidArgument from every decoder. This sweeps all of them.
  const graph::ProgramGraph g = suite_graph(7);

  FrameBytes graph_frame;
  net::encode_graph_into(g, graph_frame);
  FrameBytes request_frame;
  net::encode_request_into(42, serve::Request(g, "m"), request_frame);
  FrameBytes response_frame;
  serve::Response response;
  response.label = 4;
  net::encode_response_into(42, response, response_frame);
  FrameBytes stats_frame;
  net::encode_stats_reply_into(WireStats{}, stats_frame);

  auto sweep = [&](const FrameBytes& frame, auto decode) {
    const std::uint8_t* payload = frame.data() + net::kHeaderBytes;
    const std::size_t full = frame.size() - net::kHeaderBytes;
    for (std::size_t cut = 0; cut < full; ++cut) {
      const Status status = decode(payload, cut);
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
          << "truncation at " << cut << "/" << full;
    }
    EXPECT_TRUE(decode(payload, full).ok());
  };

  graph::ProgramGraph graph_storage;
  sweep(graph_frame, [&](const std::uint8_t* p, std::size_t n) {
    return net::decode_graph(p, n, &graph_storage);
  });
  DecodedRequest request_storage;
  sweep(request_frame, [&](const std::uint8_t* p, std::size_t n) {
    return net::decode_request(p, n, &request_storage, &graph_storage);
  });
  DecodedResponse response_storage;
  sweep(response_frame, [&](const std::uint8_t* p, std::size_t n) {
    return net::decode_response(p, n, &response_storage);
  });
  WireStats stats_storage;
  sweep(stats_frame, [&](const std::uint8_t* p, std::size_t n) {
    return net::decode_stats_reply(p, n, &stats_storage);
  });
}

TEST(NetCodecTest, SeededMutationFuzzNeverCrashes) {
  // Random bit flips and size lies against the request decoder (the one
  // facing untrusted bytes in production). A flip may legitimately still
  // decode — to a different graph — so the gate is: never crash, and
  // whatever decodes respects DecodeLimits.
  const graph::ProgramGraph g = suite_graph(12);
  FrameBytes frame;
  net::encode_request_into(7, serve::Request(g), frame);
  const std::uint8_t* payload = frame.data() + net::kHeaderBytes;
  const std::size_t size = frame.size() - net::kHeaderBytes;

  net::DecodeLimits limits;
  limits.max_feature = graph::vocabulary_size() - 1;
  limits.max_nodes = 1u << 20;
  limits.max_edges = 1u << 20;

  Rng rng(0xF022);
  std::vector<std::uint8_t> mutant(payload, payload + size);
  graph::ProgramGraph storage;
  for (int round = 0; round < 3000; ++round) {
    mutant.assign(payload, payload + size);
    const int flips = 1 + static_cast<int>(rng.next_below(8));
    for (int f = 0; f < flips; ++f)
      mutant[rng.next_below(mutant.size())] ^=
          static_cast<std::uint8_t>(1u << rng.next_below(8));
    // Also lie about the size sometimes (the stream layer can deliver any
    // length the header claimed).
    std::size_t claimed = mutant.size();
    if (rng.next_below(4) == 0) claimed = rng.next_below(mutant.size() + 1);

    DecodedRequest decoded;
    const Status status =
        net::decode_request(mutant.data(), claimed, &decoded, &storage, limits);
    if (status.ok()) {
      for (const auto& node : storage.nodes) {
        ASSERT_GE(node.feature, 0);
        ASSERT_LE(node.feature, limits.max_feature);
      }
      for (const auto& edge : storage.edges) {
        ASSERT_GE(edge.src, 0);
        ASSERT_LT(static_cast<std::size_t>(edge.src), storage.num_nodes());
        ASSERT_GE(edge.dst, 0);
        ASSERT_LT(static_cast<std::size_t>(edge.dst), storage.num_nodes());
      }
    } else {
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    }
  }
}

TEST(NetCodecTest, DecodeLimitsBoundHostileGraphs) {
  graph::ProgramGraph g;
  g.nodes.push_back({graph::NodeKind::Instruction, 5, ""});
  g.nodes.push_back({graph::NodeKind::Variable, 2, ""});
  g.edges.push_back({0, 1, graph::EdgeKind::Data, 0});

  FrameBytes frame;
  net::encode_graph_into(g, frame);
  const std::uint8_t* payload = frame.data() + net::kHeaderBytes;
  const std::size_t size = frame.size() - net::kHeaderBytes;
  graph::ProgramGraph storage;

  net::DecodeLimits tight;
  tight.max_feature = 4;  // node 0 carries feature 5
  EXPECT_EQ(net::decode_graph(payload, size, &storage, tight).code(),
            StatusCode::kInvalidArgument);
  tight = {};
  tight.max_nodes = 1;
  EXPECT_EQ(net::decode_graph(payload, size, &storage, tight).code(),
            StatusCode::kInvalidArgument);
  tight = {};
  tight.max_edges = 0;
  EXPECT_EQ(net::decode_graph(payload, size, &storage, tight).code(),
            StatusCode::kInvalidArgument);
}

// --- Zero allocation in steady state ----------------------------------------

TEST(NetCodecTest, SteadyStateEncodeDecodeIsAllocationFree) {
  const graph::ProgramGraph g = suite_graph(18);
  serve::Response response;
  response.label = 9;

  FrameBytes request_frame;
  FrameBytes response_frame;
  graph::ProgramGraph storage;
  DecodedRequest decoded_request;
  DecodedResponse decoded_response;
  FrameHeader header;

  auto round_trip = [&](std::uint64_t tag) {
    request_frame.clear();
    net::encode_request_into(tag, serve::Request(g), request_frame);
    ASSERT_TRUE(net::decode_header(request_frame.data(), request_frame.size(),
                                   &header)
                    .ok());
    ASSERT_TRUE(net::decode_request(request_frame.data() + net::kHeaderBytes,
                                    header.payload_bytes, &decoded_request,
                                    &storage)
                    .ok());
    response_frame.clear();
    net::encode_response_into(tag, response, response_frame);
    ASSERT_TRUE(net::decode_response(response_frame.data() + net::kHeaderBytes,
                                     response_frame.size() - net::kHeaderBytes,
                                     &decoded_response)
                    .ok());
  };

  for (std::uint64_t warm = 0; warm < 4; ++warm) round_trip(warm);

  const std::uint64_t before = g_heap_allocations.load();
  for (std::uint64_t hot = 0; hot < 64; ++hot) round_trip(100 + hot);
  const std::uint64_t after = g_heap_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "warm encode/decode round trips must never touch the heap";
}

// --- Loopback end to end ----------------------------------------------------

gnn::ModelConfig small_config() {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 5;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.seed = 913;
  cfg.num_threads = 1;
  return cfg;
}

TEST(NetServerTest, LoopbackAnswersAreBitIdenticalToTheRouter) {
  serve::Router router;
  router.publish("static", std::make_shared<const gnn::StaticModel>(
                               small_config()));
  net::NetServer server(router, {});
  ASSERT_TRUE(server.start().ok());
  ASSERT_NE(server.port(), 0);

  std::vector<graph::ProgramGraph> graphs;
  for (int r : {0, 3, 7, 12, 18, 23}) graphs.push_back(suite_graph(r));

  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  for (int pass = 0; pass < 3; ++pass) {  // pass 1 misses, later passes hit
    for (const auto& g : graphs) {
      const serve::Response reference = router.predict(g);
      auto wire = client.predict(serve::Request(g));
      ASSERT_TRUE(wire.ok());
      ASSERT_TRUE(wire->ok());
      EXPECT_EQ(wire->label, reference.label);
      EXPECT_EQ(wire->model_version, reference.model_version);
    }
  }

  net::WireStats stats{};
  ASSERT_TRUE(client.get_stats(&stats).ok());
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.coalesced,
            stats.queries);
  EXPECT_EQ(stats.net_requests, graphs.size() * 3);
  EXPECT_EQ(stats.net_decode_errors, 0u);
  EXPECT_EQ(stats.net_protocol_errors, 0u);

  client.close();
  server.shutdown();
  const net::NetServerStats net_stats = server.stats();
  EXPECT_TRUE(net_stats.finished);
  EXPECT_EQ(net_stats.open_slots, 0u);
  router.shutdown();
}

TEST(NetServerTest, PipelinedTagsMatchOutOfOrderCompletions) {
  serve::Router router;
  router.publish("static", std::make_shared<const gnn::StaticModel>(
                               small_config()));
  net::NetServer server(router, {});
  ASSERT_TRUE(server.start().ok());

  std::vector<graph::ProgramGraph> graphs;
  for (int r : {0, 3, 7, 12}) graphs.push_back(suite_graph(r));
  std::vector<int> expected;
  for (const auto& g : graphs) expected.push_back(router.predict(g).label);

  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  const int kBurst = 40;
  for (int q = 0; q < kBurst; ++q)
    ASSERT_TRUE(client
                    .send(serve::Request(graphs[q % graphs.size()]),
                          static_cast<std::uint64_t>(q))
                    .ok());
  std::vector<bool> seen(kBurst, false);
  for (int q = 0; q < kBurst; ++q) {
    auto decoded = client.recv();
    ASSERT_TRUE(decoded.ok());
    ASSERT_LT(decoded->tag, static_cast<std::uint64_t>(kBurst));
    EXPECT_FALSE(seen[decoded->tag]) << "tag answered twice";
    seen[decoded->tag] = true;
    ASSERT_TRUE(decoded->response.ok());
    EXPECT_EQ(decoded->response.label, expected[decoded->tag % graphs.size()]);
  }

  client.close();
  server.shutdown();
  EXPECT_EQ(server.stats().open_slots, 0u);
  router.shutdown();
}

TEST(NetServerTest, GarbageBytesCloseOnlyTheGuiltyConnection) {
  serve::Router router;
  router.publish("static", std::make_shared<const gnn::StaticModel>(
                               small_config()));
  net::NetServer server(router, {});
  ASSERT_TRUE(server.start().ok());
  const graph::ProgramGraph g = suite_graph(0);
  const int expected = router.predict(g).label;

  // An innocent connection with a query in flight on either side of the
  // garbage must be unaffected.
  net::NetClient innocent;
  ASSERT_TRUE(innocent.connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(innocent.predict(serve::Request(g)).ok());

  {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_GT(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 0);
    // The server must close us (bad magic = unrecoverable stream) — read
    // blocks until EOF rather than data, because no reply is owed.
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
    ::close(fd);
  }

  auto after = innocent.predict(serve::Request(g));
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->label, expected);

  innocent.close();
  server.shutdown();
  const net::NetServerStats stats = server.stats();
  EXPECT_GE(stats.protocol_errors, 1u);
  EXPECT_EQ(stats.open_slots, 0u);
  router.shutdown();
}

TEST(NetServerTest, WellFramedMalformedPayloadAnswersInvalidArgument) {
  serve::Router router;
  router.publish("static", std::make_shared<const gnn::StaticModel>(
                               small_config()));
  net::NetServer server(router, {});
  ASSERT_TRUE(server.start().ok());

  // A request frame whose graph body is truncated, but whose header and tag
  // are intact: the server must answer InvalidArgument to that tag and keep
  // the connection (framing is still sound).
  FrameBytes frame;
  const graph::ProgramGraph g = suite_graph(3);
  net::encode_request_into(77, serve::Request(g), frame);
  std::vector<std::uint8_t> cut(frame.data(), frame.data() + frame.size());
  const std::uint32_t shorter =
      static_cast<std::uint32_t>(cut.size() - net::kHeaderBytes - 4);
  std::memcpy(cut.data() + 4, &shorter, sizeof(shorter));
  cut.resize(net::kHeaderBytes + shorter);

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::size_t sent = 0;
  while (sent < cut.size()) {
    ssize_t n = ::send(fd, cut.data() + sent, cut.size() - sent, MSG_NOSIGNAL);
    ASSERT_GT(n, 0);
    sent += static_cast<std::size_t>(n);
  }
  // Read the full reply frame back.
  std::uint8_t reply[net::kHeaderBytes];
  std::size_t got = 0;
  while (got < net::kHeaderBytes) {
    ssize_t n = ::recv(fd, reply + got, net::kHeaderBytes - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  FrameHeader header;
  ASSERT_TRUE(net::decode_header(reply, net::kHeaderBytes, &header).ok());
  ASSERT_EQ(header.type, FrameType::kResponse);
  std::vector<std::uint8_t> payload(header.payload_bytes);
  got = 0;
  while (got < payload.size()) {
    ssize_t n = ::recv(fd, payload.data() + got, payload.size() - got, 0);
    ASSERT_GT(n, 0);
    got += static_cast<std::size_t>(n);
  }
  DecodedResponse decoded;
  ASSERT_TRUE(
      net::decode_response(payload.data(), payload.size(), &decoded).ok());
  EXPECT_EQ(decoded.tag, 77u);
  EXPECT_EQ(decoded.response.status.code(), StatusCode::kInvalidArgument);
  ::close(fd);

  server.shutdown();
  const net::NetServerStats stats = server.stats();
  EXPECT_GE(stats.decode_errors, 1u);
  EXPECT_EQ(stats.open_slots, 0u);
  router.shutdown();
}

TEST(NetServerTest, DrainAnswersInFlightThenExitsCleanly) {
  serve::Router router;
  router.publish("static", std::make_shared<const gnn::StaticModel>(
                               small_config()));
  net::NetServer server(router, {});
  ASSERT_TRUE(server.start().ok());

  const graph::ProgramGraph g = suite_graph(7);
  const int expected = router.predict(g).label;
  net::NetClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", server.port()).ok());
  const int kBurst = 16;
  for (int q = 0; q < kBurst; ++q)
    ASSERT_TRUE(
        client.send(serve::Request(g), static_cast<std::uint64_t>(q)).ok());

  server.request_drain();
  // Everything admitted before the drain saw it must come back correct;
  // then the server closes the connection (clean EOF on recv).
  int received = 0;
  for (;;) {
    auto decoded = client.recv();
    if (!decoded.ok()) break;
    ++received;
    ASSERT_TRUE(decoded->response.ok());
    EXPECT_EQ(decoded->response.label, expected);
  }
  EXPECT_LE(received, kBurst);
  server.wait();
  const net::NetServerStats stats = server.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.open_slots, 0u);
  // Double drain is idempotent and wait() after finish returns immediately.
  server.request_drain();
  server.wait();
  router.shutdown();
}

TEST(NetServerTest, StartFailsCleanlyOnABadHost) {
  serve::Router router;
  net::NetServerConfig config;
  config.host = "not-an-ipv4-address";
  net::NetServer server(router, config);
  const Status status = server.start();
  EXPECT_FALSE(status.ok());
  server.shutdown();  // must be safe after a failed start
  router.shutdown();
}

}  // namespace
}  // namespace irgnn
