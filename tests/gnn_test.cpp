// Tests for the GNN stack: graph batching, RGCN layers, and the static
// model's ability to fit / generalize on controlled graph data.
#include <gtest/gtest.h>

#include <cmath>

#include "gnn/graph_batch.h"
#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "workloads/suite.h"

namespace irgnn::gnn {
namespace {

graph::ProgramGraph tiny_graph(int feature) {
  graph::ProgramGraph g;
  g.name = "tiny";
  g.nodes.push_back({graph::NodeKind::Instruction, feature, "a"});
  g.nodes.push_back({graph::NodeKind::Instruction, feature, "b"});
  g.nodes.push_back({graph::NodeKind::Variable, 40, "v"});
  g.edges.push_back({0, 1, graph::EdgeKind::Control, 0});
  g.edges.push_back({0, 2, graph::EdgeKind::Data, 0});
  g.edges.push_back({2, 1, graph::EdgeKind::Data, 0});
  return g;
}

TEST(GraphBatchTest, OffsetsAndSegments) {
  graph::ProgramGraph a = tiny_graph(1);
  graph::ProgramGraph b = tiny_graph(2);
  GraphBatch batch = make_batch({&a, &b});
  EXPECT_EQ(batch.num_nodes(), 6);
  EXPECT_EQ(batch.num_graphs, 2);
  EXPECT_EQ(batch.segment[0], 0);
  EXPECT_EQ(batch.segment[5], 1);
  // Second graph's edges are offset by 3 nodes.
  const RelationEdges& control =
      batch.relations[static_cast<int>(graph::EdgeKind::Control)];
  ASSERT_EQ(control.src.size(), 2u);
  EXPECT_EQ(control.src[1], 3);
  EXPECT_EQ(control.dst[1], 4);
}

TEST(GraphBatchTest, RgcnNormalizationCoefficients) {
  graph::ProgramGraph g = tiny_graph(1);
  // Node 1 receives one control and one data edge; coefficients are the
  // inverse per-relation in-degree (1.0 here). Add a second data edge into
  // node 1 to get 0.5.
  g.edges.push_back({0, 1, graph::EdgeKind::Data, 1});
  GraphBatch batch = make_batch({&g});
  const RelationEdges& data =
      batch.relations[static_cast<int>(graph::EdgeKind::Data)];
  for (std::size_t e = 0; e < data.dst.size(); ++e) {
    if (data.dst[e] == 1) EXPECT_FLOAT_EQ(data.coeff[e], 0.5f);
  }
}

TEST(GraphBatchTest, EmptyInput) {
  GraphBatch batch = make_batch({});
  EXPECT_EQ(batch.num_graphs, 0);
  EXPECT_EQ(batch.num_nodes(), 0);
  ASSERT_EQ(batch.relations.size(),
            static_cast<std::size_t>(graph::kNumEdgeKinds));
  for (const RelationEdges& rel : batch.relations) {
    EXPECT_TRUE(rel.src.empty());
    EXPECT_TRUE(rel.dst.empty());
    EXPECT_TRUE(rel.coeff.empty());
  }
}

TEST(GraphBatchTest, SingleGraphKeepsLocalIndices) {
  graph::ProgramGraph g = tiny_graph(5);
  GraphBatch batch = make_batch({&g});
  EXPECT_EQ(batch.num_graphs, 1);
  EXPECT_EQ(batch.num_nodes(), 3);
  for (int s : batch.segment) EXPECT_EQ(s, 0);
  const RelationEdges& data =
      batch.relations[static_cast<int>(graph::EdgeKind::Data)];
  ASSERT_EQ(data.src.size(), 2u);
  EXPECT_EQ(data.src[0], 0);  // no offset applied to a lone graph
  EXPECT_EQ(data.dst[0], 2);
}

TEST(GraphBatchTest, NodeWithoutInEdgesGetsNoCoefficient) {
  // Node 0 of tiny_graph has out-edges only; every coefficient must belong
  // to a node with in-degree >= 1 and equal its inverse in-degree exactly.
  graph::ProgramGraph g = tiny_graph(1);
  GraphBatch batch = make_batch({&g});
  for (const RelationEdges& rel : batch.relations) {
    ASSERT_EQ(rel.coeff.size(), rel.dst.size());
    std::vector<int> in_degree(batch.num_nodes(), 0);
    for (int dst : rel.dst) ++in_degree[dst];
    for (std::size_t e = 0; e < rel.dst.size(); ++e)
      EXPECT_FLOAT_EQ(rel.coeff[e], 1.0f / in_degree[rel.dst[e]]);
  }
}

TEST(GraphBatchTest, ParallelAssemblyMatchesSerial) {
  // Enough graphs to cross the parallel-assembly threshold; the batch must
  // equal the serial concatenation element for element.
  std::vector<graph::ProgramGraph> owned;
  for (int i = 0; i < 24; ++i) owned.push_back(tiny_graph(i % 7));
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& g : owned) graphs.push_back(&g);

  GraphBatch serial = make_batch(graphs, /*num_threads=*/1);
  GraphBatch parallel = make_batch(graphs, /*num_threads=*/8);
  EXPECT_EQ(serial.features, parallel.features);
  EXPECT_EQ(serial.segment, parallel.segment);
  ASSERT_EQ(serial.relations.size(), parallel.relations.size());
  for (std::size_t r = 0; r < serial.relations.size(); ++r) {
    EXPECT_EQ(serial.relations[r].src, parallel.relations[r].src);
    EXPECT_EQ(serial.relations[r].dst, parallel.relations[r].dst);
    EXPECT_EQ(serial.relations[r].coeff, parallel.relations[r].coeff);
  }
}

TEST(RgcnLayerTest, MessagePassingChangesNodeStates) {
  Rng rng(5);
  RGCNLayer layer(8, graph::kNumEdgeKinds, rng);
  graph::ProgramGraph g = tiny_graph(1);
  GraphBatch batch = make_batch({&g});
  tensor::Tensor h = tensor::Tensor::xavier({3, 8}, rng);
  tensor::Tensor out = layer.forward(h, batch.relations);
  EXPECT_EQ(out.rows(), 3);
  EXPECT_EQ(out.cols(), 8);
  // Node 1 has in-edges; with and without them its state must differ.
  GraphBatch no_edges = batch;
  for (auto& rel : no_edges.relations) rel = RelationEdges{};
  tensor::Tensor out_isolated = layer.forward(h, no_edges.relations);
  bool differs = false;
  for (int j = 0; j < 8; ++j)
    differs |= std::abs(out.at(1, j) - out_isolated.at(1, j)) > 1e-7f;
  EXPECT_TRUE(differs);
}

TEST(StaticModelTest, OverfitsSmallDataset) {
  // Two structurally different graph families with distinct labels; the
  // model must reach 100% training accuracy quickly.
  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 8; ++i) {
    owned.push_back(tiny_graph(i % 2 ? 3 : 9));
    labels.push_back(i % 2);
  }
  for (const auto& g : owned) graphs.push_back(&g);

  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 2;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.epochs = 40;
  cfg.dropout = 0.0f;
  StaticModel model(cfg);
  TrainStats stats = model.train(graphs, labels);
  EXPECT_DOUBLE_EQ(stats.final_train_accuracy, 1.0);
  // Loss decreased.
  EXPECT_LT(stats.epoch_loss.back(), stats.epoch_loss.front());
}

TEST(StaticModelTest, PartialMinibatchKeepsLossFinite) {
  // 41 graphs with batch_size 32 leave a trailing batch of 9: shard sizing
  // must not produce empty shards, whose nll_loss would be 0/0 = NaN.
  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> graphs;
  std::vector<int> labels;
  for (int i = 0; i < 41; ++i) {
    owned.push_back(tiny_graph(i % 5));
    labels.push_back(i % 2);
  }
  for (const auto& g : owned) graphs.push_back(&g);

  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 2;
  cfg.hidden_dim = 8;
  cfg.num_layers = 1;
  cfg.epochs = 2;
  StaticModel model(cfg);
  TrainStats stats = model.train(graphs, labels);
  for (double loss : stats.epoch_loss) EXPECT_TRUE(std::isfinite(loss));
}

TEST(StaticModelTest, DeterministicForSeed) {
  auto module =
      workloads::build_region_module(workloads::benchmark_suite()[0]);
  auto pg = graph::build_graph(*module);
  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 4;
  cfg.hidden_dim = 16;
  cfg.seed = 77;
  StaticModel a(cfg);
  StaticModel b(cfg);
  auto ea = a.embed({&pg});
  auto eb = b.embed({&pg});
  EXPECT_EQ(ea[0], eb[0]);
}

TEST(StaticModelTest, BatchingInvariance) {
  // Predicting a graph alone or inside a batch must agree (no cross-graph
  // leakage through pooling or message passing).
  auto m0 = workloads::build_region_module(workloads::benchmark_suite()[0]);
  auto m1 = workloads::build_region_module(workloads::benchmark_suite()[20]);
  auto g0 = graph::build_graph(*m0);
  auto g1 = graph::build_graph(*m1);
  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 5;
  cfg.hidden_dim = 16;
  StaticModel model(cfg);
  auto solo = model.predict_log_probs({&g0});
  auto batched = model.predict_log_probs({&g0, &g1});
  for (int j = 0; j < 5; ++j)
    EXPECT_NEAR(solo[0][j], batched[0][j], 1e-4f);
}

TEST(StaticModelTest, EmbeddingsHaveConfiguredWidth) {
  auto module =
      workloads::build_region_module(workloads::benchmark_suite()[5]);
  auto pg = graph::build_graph(*module);
  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 13;
  cfg.hidden_dim = 24;
  StaticModel model(cfg);
  auto embedding = model.embed({&pg});
  EXPECT_EQ(embedding[0].size(), 24u);
}

TEST(StaticModelTest, ShardedInferenceBitIdenticalToPerGraphQueries) {
  // The inference engine shards graph sets in fixed 16-graph chunks; per
  // graph results must be bit-identical to querying each graph alone (no
  // leakage through shard composition) and to each other for every thread
  // count.
  std::vector<graph::ProgramGraph> owned;
  for (int i = 0; i < 40; ++i) {
    graph::ProgramGraph g = tiny_graph(i % 7);
    if (i % 3 == 0)  // structural variety across shards
      g.edges.push_back({1, 2, graph::EdgeKind::Data, 0});
    owned.push_back(std::move(g));
  }
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& g : owned) graphs.push_back(&g);

  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 3;
  cfg.hidden_dim = 16;
  cfg.seed = 0xBEE;
  cfg.num_threads = 1;
  StaticModel serial(cfg);
  cfg.num_threads = 8;
  StaticModel parallel(cfg);

  auto batched = serial.predict_log_probs(graphs);
  auto batched_mt = parallel.predict_log_probs(graphs);
  ASSERT_EQ(batched.size(), graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    auto solo = serial.predict_log_probs({graphs[g]});
    EXPECT_EQ(batched[g], solo[0]) << "graph " << g;
    EXPECT_EQ(batched[g], batched_mt[g]) << "graph " << g;
  }
  EXPECT_EQ(serial.predict(graphs), parallel.predict(graphs));
}

TEST(StaticModelTest, EvaluateMatchesSeparateQueries) {
  // evaluate() derives predictions, log-probs and embeddings from one batch
  // build + forward per shard; each slice must equal the dedicated query.
  std::vector<graph::ProgramGraph> owned;
  for (int i = 0; i < 21; ++i) owned.push_back(tiny_graph(i % 5));
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& g : owned) graphs.push_back(&g);

  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 4;
  cfg.hidden_dim = 12;
  cfg.seed = 0xE7A1;
  StaticModel model(cfg);

  Evaluation eval;
  model.evaluate(graphs, eval, /*want_embeddings=*/true);
  ASSERT_EQ(eval.predictions.size(), graphs.size());
  ASSERT_EQ(eval.log_probs.size(), graphs.size() * 4);
  ASSERT_EQ(eval.embeddings.size(), graphs.size() * 12);

  EXPECT_EQ(eval.predictions, model.predict(graphs));
  auto log_probs = model.predict_log_probs(graphs);
  auto embeddings = model.embed(graphs);
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(eval.log_probs[g * 4 + j], log_probs[g][j])
          << "log_prob (" << g << "," << j << ")";
    for (int j = 0; j < 12; ++j)
      EXPECT_EQ(eval.embeddings[g * 12 + j], embeddings[g][j])
          << "embedding (" << g << "," << j << ")";
  }
  // Without embeddings the buffer empties rather than keeping stale data.
  model.evaluate(graphs, eval, /*want_embeddings=*/false);
  EXPECT_TRUE(eval.embeddings.empty());
}

TEST(StaticModelTest, LearnsToSeparateSuiteFamilies) {
  // Distinguish CLOMP-style regions from NAS sweeps by structure: a proxy
  // for the real task that runs in seconds.
  std::vector<std::unique_ptr<ir::Module>> modules;
  std::vector<graph::ProgramGraph> graphs_owned;
  std::vector<int> labels;
  for (const auto& spec : workloads::benchmark_suite()) {
    if (spec.family != "clomp" && spec.family != "nas") continue;
    modules.push_back(workloads::build_region_module(spec));
    graphs_owned.push_back(graph::build_graph(*modules.back()));
    labels.push_back(spec.family == "clomp" ? 1 : 0);
  }
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& g : graphs_owned) graphs.push_back(&g);

  ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 2;
  cfg.hidden_dim = 16;
  cfg.num_layers = 2;
  cfg.epochs = 30;
  cfg.dropout = 0.0f;
  StaticModel model(cfg);
  TrainStats stats = model.train(graphs, labels);
  EXPECT_GE(stats.final_train_accuracy, 0.95);
}

}  // namespace
}  // namespace irgnn::gnn
