// Integration tests over the core pipeline: dataset augmentation, the
// end-to-end experiment (scaled down), cross-architecture transfer and the
// input-size study. These exercise every module in concert.
#include <gtest/gtest.h>

#include "core/dataset.h"
#include "core/experiment.h"

namespace irgnn::core {
namespace {

ExperimentOptions tiny_options() {
  ExperimentOptions options;
  options.num_sequences = 2;
  options.folds = 4;
  options.epochs = 4;
  options.hidden_dim = 16;
  options.num_layers = 2;
  options.ga_population = 10;
  options.ga_generations = 2;
  options.seed = 33;
  return options;
}

TEST(DatasetTest, BuildsGraphsForAllRegionsAndSequences) {
  Dataset dataset = build_dataset({3, 7});
  EXPECT_EQ(dataset.num_regions(), 56u);
  EXPECT_EQ(dataset.num_sequences(), 3u);
  for (std::size_t r = 0; r < dataset.num_regions(); ++r)
    for (std::size_t s = 0; s < 3; ++s)
      EXPECT_GT(dataset.graph(r, s).num_nodes(), 0u);
}

TEST(DatasetTest, DeterministicForSeed) {
  Dataset a = build_dataset({2, 9});
  Dataset b = build_dataset({2, 9});
  for (std::size_t r = 0; r < a.num_regions(); ++r)
    for (std::size_t s = 0; s < 2; ++s)
      EXPECT_EQ(a.graph(r, s).to_text(), b.graph(r, s).to_text());
}

TEST(DatasetTest, SharedBuildsArePooledPerOptions) {
  // Identical options must return the same pooled instance — repeated
  // build_dataset calls in one process reuse graph storage instead of
  // re-running the compile/extract/build pipeline.
  auto a = build_dataset_shared({2, 9});
  auto b = build_dataset_shared({2, 9});
  EXPECT_EQ(a.get(), b.get());
  // Any differing option field is a different dataset.
  auto other_seed = build_dataset_shared({2, 10});
  EXPECT_NE(a.get(), other_seed.get());
  auto other_threads = build_dataset_shared({2, 9, 1});
  EXPECT_NE(a.get(), other_threads.get());
  // The copying wrapper draws from the same pool.
  Dataset copy = build_dataset({2, 9});
  EXPECT_EQ(copy.num_regions(), a->num_regions());
  for (std::size_t r = 0; r < copy.num_regions(); ++r)
    for (std::size_t s = 0; s < copy.num_sequences(); ++s)
      EXPECT_EQ(copy.graph(r, s).to_text(), a->graph(r, s).to_text());
}

TEST(DatasetTest, SequencesReshapeGraphs) {
  Dataset dataset = build_dataset({6, 21});
  // At least one region must have structurally different variants across
  // sequences (otherwise augmentation would be a no-op).
  bool any_differs = false;
  for (std::size_t r = 0; r < dataset.num_regions(); ++r) {
    for (std::size_t s = 1; s < dataset.num_sequences(); ++s)
      any_differs |= dataset.graph(r, s).num_nodes() !=
                     dataset.graph(r, 0).num_nodes();
  }
  EXPECT_TRUE(any_differs);
}

TEST(ExperimentTest, EndToEndShapeAndInvariants) {
  ExperimentResult res =
      run_experiment(sim::MachineDesc::skylake(), tiny_options());
  EXPECT_EQ(res.regions.size(), 56u);
  EXPECT_EQ(res.fold_static_error.size(), 4u);

  // Ordering invariants that must hold regardless of model quality.
  EXPECT_GE(res.full_speedup, res.label_oracle_speedup - 1e-9);
  EXPECT_GE(res.label_oracle_speedup, res.static_speedup - 1e-9);
  EXPECT_GE(res.label_oracle_speedup, res.dynamic_speedup - 1e-9);
  EXPECT_GE(res.oracle_seq_speedup, res.overall_speedup - 1e-9);
  EXPECT_GT(res.full_speedup, 1.5);  // the space is worth exploring

  for (const auto& region : res.regions) {
    EXPECT_GE(region.fold, 0);
    EXPECT_GE(region.static_label, 0);
    EXPECT_LT(region.static_label, static_cast<int>(res.labels.size()));
    EXPECT_GE(region.static_error, 0.0);
    EXPECT_LE(region.static_error, 1.0);
    EXPECT_GE(region.oracle_speedup, 1.0 - 1e-9);  // default is a label
    EXPECT_EQ(region.embedding.size(),
              static_cast<std::size_t>(tiny_options().hidden_dim));
    // Hybrid picks one of the two models' labels.
    double hybrid_vs_members =
        std::min(std::abs(region.hybrid_speedup - region.static_speedup),
                 std::abs(region.hybrid_speedup - region.dynamic_speedup));
    EXPECT_LT(hybrid_vs_members, 1e-9);
  }
}

TEST(ExperimentTest, DeterministicForSeed) {
  ExperimentOptions options = tiny_options();
  options.folds = 3;
  options.epochs = 2;
  ExperimentResult a =
      run_experiment(sim::MachineDesc::sandy_bridge(), options);
  ExperimentResult b =
      run_experiment(sim::MachineDesc::sandy_bridge(), options);
  EXPECT_DOUBLE_EQ(a.static_speedup, b.static_speedup);
  EXPECT_DOUBLE_EQ(a.hybrid_speedup, b.hybrid_speedup);
  for (std::size_t r = 0; r < a.regions.size(); ++r)
    EXPECT_EQ(a.regions[r].static_label, b.regions[r].static_label);
}

TEST(ExperimentTest, LabelBudgetCapsGains) {
  ExperimentOptions two = tiny_options();
  two.num_labels = 2;
  ExperimentOptions thirteen = tiny_options();
  thirteen.num_labels = 13;
  ExperimentResult r2 = run_experiment(sim::MachineDesc::skylake(), two);
  ExperimentResult r13 =
      run_experiment(sim::MachineDesc::skylake(), thirteen);
  EXPECT_LE(r2.label_oracle_speedup, r13.label_oracle_speedup + 1e-9);
  EXPECT_LE(r2.labels.size(), 2u);
}

TEST(CrossArchTest, TransferKeepsMostGains) {
  ExperimentOptions options = tiny_options();
  options.folds = 3;
  options.epochs = 3;
  CrossArchResult res = run_cross_architecture(
      sim::MachineDesc::sandy_bridge(), sim::MachineDesc::skylake(), options);
  EXPECT_GT(res.cross_static_speedup, 1.0);
  EXPECT_GT(res.cross_dynamic_speedup, 1.0);
  // Native runs at least match cross runs on average (paper Fig. 8).
  EXPECT_GE(res.native_static_speedup, res.cross_static_speedup - 0.35);
}

TEST(InputSizeTest, LossesAreBoundedAndMostlySmall) {
  InputSizeResult res = run_input_size_study(sim::MachineDesc::skylake(),
                                             tiny_options());
  EXPECT_EQ(res.regions.size(), res.speedup_loss.size());
  EXPECT_GE(res.native_speedup, res.transferred_speedup - 1e-9);
  for (double loss : res.speedup_loss) EXPECT_GE(loss, -1e-9);
  // The average loss stays a small fraction of the native gains.
  EXPECT_LT(res.native_speedup - res.transferred_speedup,
            0.35 * (res.native_speedup - 1.0) + 0.05);
}

}  // namespace
}  // namespace irgnn::core
