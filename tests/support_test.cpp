// Support-layer unit tests: the thread pool (task completion, exception
// propagation, exact index coverage of parallel_for, nested
// submission/parallelism safety, determinism of the seeded per-index
// random streams), the exception-free Status/StatusOr error model of the
// serving query path, and the strict flag parser.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "support/argparse.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace irgnn::support {
namespace {

TEST(ThreadPoolTest, SubmittedTasksComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::atomic<int> hits{0};
  pool.parallel_for(0, 10, 0, [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits.load(), 10);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000, 0,
                                 [](std::int64_t i) {
                                   if (i == 517)
                                     throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int parallelism : {1, 2, 3, 8, 64}) {
    const std::int64_t n = 1537;  // deliberately not a multiple of anything
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, n, parallelism,
                      [&](std::int64_t i) { hits[i].fetch_add(1); });
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with parallelism "
                                   << parallelism;
  }
}

TEST(ThreadPoolTest, ParallelForHonoursNonZeroBegin) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(40, 100, 0, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 40; ++i) ASSERT_EQ(hits[i].load(), 0);
  for (int i = 40; i < 100; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    return pool.submit([] { return 21; });  // submitted from a worker
  });
  EXPECT_EQ(outer.get().get(), 21);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer index runs an inner parallel_for on the same (small) pool:
  // only caller participation keeps this from deadlocking.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  pool.parallel_for(0, 16, 0, [&](std::int64_t) {
    pool.parallel_for(0, 64, 0, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16 * 64);
}

TEST(ThreadPoolTest, PoolSurvivesThrowingParallelForBodies) {
  // One chunk throwing must not wedge the pool or leak the failure into
  // sibling chunks' bookkeeping: the same pool runs clean work before,
  // between and after repeated failures, with exact index coverage.
  ThreadPool pool(4);
  for (int round = 0; round < 8; ++round) {
    EXPECT_THROW(pool.parallel_for(0, 512, 0,
                                   [round](std::int64_t i) {
                                     if (i % 97 == static_cast<std::int64_t>(
                                                       round % 7))
                                       throw std::runtime_error("chunk died");
                                   }),
                 std::runtime_error);
    const std::int64_t n = 301;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, n, 0, [&](std::int64_t i) { hits[i].fetch_add(1); });
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
  }
  // submit() still works too: the queue machinery was not poisoned.
  EXPECT_EQ(pool.submit([] { return 13; }).get(), 13);
}

TEST(ThreadPoolTest, ConcurrentThrowingParallelForsDoNotDeadlock) {
  // Two caller threads each drive a throwing parallel_for on the same
  // 2-worker pool: every caller must get its own exception back; no chunk
  // may be dropped un-run on the clean follow-up pass.
  ThreadPool pool(2);
  std::atomic<int> exceptions{0};
  std::atomic<long> clean_work{0};
  std::vector<std::thread> callers;
  for (int c = 0; c < 3; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 16; ++round) {
        try {
          pool.parallel_for(0, 256, 0, [&](std::int64_t i) {
            if (i == 128 + c) throw std::runtime_error("boom");
          });
        } catch (const std::runtime_error&) {
          exceptions.fetch_add(1);
        }
        pool.parallel_for(0, 64, 0,
                          [&](std::int64_t) { clean_work.fetch_add(1); });
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(exceptions.load(), 3 * 16)
      << "a thrown body failed to reach its own caller";
  EXPECT_EQ(clean_work.load(), 3 * 16 * 64);
}

TEST(ThreadPoolTest, SeededStreamsIndependentOfParallelism) {
  ThreadPool pool(4);
  const std::int64_t n = 257;
  const std::uint64_t seed = 0xFEEDFACE;
  auto draw = [&](int parallelism) {
    std::vector<std::uint64_t> first(n);
    pool.parallel_for_seeded(0, n, parallelism, seed,
                             [&](std::int64_t i, Rng& rng) {
                               first[i] = rng();
                             });
    return first;
  };
  auto serial = draw(1);
  auto parallel = draw(8);
  EXPECT_EQ(serial, parallel);
  // Distinct indices get distinct streams.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> hits{0};
  ThreadPool::global().parallel_for(0, 100, 0,
                                    [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference output of the public-domain splitmix64 with state 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
}

TEST(FailpointTest, MacroBehavesInWhicheverBuildThisIs) {
  // This test compiles and passes in BOTH library configurations — that is
  // the point: configuration calls are always legal (no-ops when compiled
  // out), and the macro either follows its spec or expands to nothing.
  failpoints::set_seed(99);
  failpoints::FailpointSpec spec;
  spec.every_nth = 1;
  failpoints::configure("support.unit", spec);
  int fired = 0;
  for (int i = 0; i < 5; ++i)
    IRGNN_FAILPOINT("support.unit", ++fired);
  if (failpoints::enabled()) {
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(failpoints::hits("support.unit"), 5u);
    EXPECT_EQ(failpoints::fires("support.unit"), 5u);
  } else {
    // Compiled out: the site does not exist, nothing counts, nothing fires.
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(failpoints::hits("support.unit"), 0u);
    EXPECT_EQ(failpoints::fires("support.unit"), 0u);
  }
  failpoints::disable_all();
}

TEST(StatusTest, CodesNamesAndEquality) {
  const Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok, Status::Ok());
  EXPECT_STREQ(ok.code_name(), "Ok");

  const Status overloaded = Status::Overloaded();
  EXPECT_FALSE(overloaded.ok());
  EXPECT_EQ(overloaded.code(), StatusCode::kOverloaded);
  EXPECT_STREQ(overloaded.code_name(), "Overloaded");
  EXPECT_NE(overloaded, ok);
  // Messages are detail; identity is the code.
  EXPECT_EQ(overloaded, Status::Overloaded("another message"));
  EXPECT_STREQ(Status::Overloaded("queue full at 32").message(),
               "queue full at 32");

  EXPECT_STREQ(Status::DeadlineExceeded().code_name(), "DeadlineExceeded");
  EXPECT_STREQ(Status::ModelNotFound().code_name(), "ModelNotFound");
  EXPECT_STREQ(Status::ShuttingDown().code_name(), "ShuttingDown");
  EXPECT_STREQ(Status::Internal().code_name(), "Internal");
  EXPECT_STREQ(Status::Unavailable().code_name(), "Unavailable");
  EXPECT_STREQ(Status::InvalidArgument().code_name(), "InvalidArgument");
}

TEST(StatusTest, StatusOrHoldsValueOrError) {
  StatusOr<int> value(42);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(value.value(), 42);

  StatusOr<int> error(Status::ModelNotFound());
  EXPECT_FALSE(error.ok());
  EXPECT_EQ(error.status().code(), StatusCode::kModelNotFound);

  // Move semantics carry the engaged state, including move-only payloads.
  StatusOr<int> moved = std::move(value);
  EXPECT_TRUE(moved.ok());
  EXPECT_EQ(*moved, 42);
  moved = std::move(error);
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kModelNotFound);

  StatusOr<std::unique_ptr<int>> owner(std::make_unique<int>(7));
  ASSERT_TRUE(owner.ok());
  std::unique_ptr<int> taken = std::move(owner).value();
  EXPECT_EQ(*taken, 7);
}

TEST(ArgParserTest, RejectsUnknownFlagsAndMalformedValues) {
  auto make = [] {
    ArgParser parser("test", "strictness");
    parser.add("threads", "0", "int flag")
        .add("scale", "1.5", "double flag")
        .add("quick", "false", "bool flag")
        .add("csv", "", "string flag");
    return parser;
  };
  auto parse = [&](std::vector<const char*> args) {
    args.insert(args.begin(), "test");
    ArgParser parser = make();
    return parser.parse(static_cast<int>(args.size()), args.data());
  };

  // The happy paths.
  EXPECT_TRUE(parse({"--threads", "4", "--scale", "2.25", "--quick",
                     "--csv", "out.csv"}));
  EXPECT_TRUE(parse({"--threads=8", "--quick=true"}));
  EXPECT_TRUE(parse({"--threads", "-1"}));  // negatives are values

  // Typos in the flag name are errors, not silently ignored knobs.
  EXPECT_FALSE(parse({"--thread", "4"}));
  EXPECT_FALSE(parse({"positional"}));

  // Malformed values are errors, not silent zeros.
  EXPECT_FALSE(parse({"--threads", "abc"}));
  EXPECT_FALSE(parse({"--threads", "4x"}));
  EXPECT_FALSE(parse({"--scale", "fast"}));
  EXPECT_FALSE(parse({"--quick", "maybe"}));

  // A value flag never swallows the next flag.
  EXPECT_FALSE(parse({"--threads", "--csv", "out.csv"}));
  EXPECT_FALSE(parse({"--threads"}));

  // Values that merely look exotic still parse by shape.
  EXPECT_TRUE(parse({"--scale", "3"}));       // int is a fine double
  EXPECT_TRUE(parse({"--quick", "1"}));
  EXPECT_FALSE(parse({"--csv", "--looks-like-a-flag"}));
  EXPECT_TRUE(parse({"--csv=--weird-but-explicit"}));

  ArgParser parser = make();
  const char* argv[] = {"test", "--threads", "6", "--scale", "0.5"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_EQ(parser.get_int("threads"), 6);
  EXPECT_DOUBLE_EQ(parser.get_double("scale"), 0.5);
  EXPECT_FALSE(parser.get_bool("quick"));
}

}  // namespace
}  // namespace irgnn::support
