// Thread-pool unit tests: task completion, exception propagation, exact
// index coverage of parallel_for, nested submission/parallelism safety, and
// the determinism of the seeded per-index random streams.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/rng.h"
#include "support/thread_pool.h"

namespace irgnn::support {
namespace {

TEST(ThreadPoolTest, SubmittedTasksComplete) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0);
  std::atomic<int> hits{0};
  pool.parallel_for(0, 10, 0, [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits.load(), 10);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForPropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 1000, 0,
                                 [](std::int64_t i) {
                                   if (i == 517)
                                     throw std::logic_error("bad index");
                                 }),
               std::logic_error);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int parallelism : {1, 2, 3, 8, 64}) {
    const std::int64_t n = 1537;  // deliberately not a multiple of anything
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, n, parallelism,
                      [&](std::int64_t i) { hits[i].fetch_add(1); });
    for (std::int64_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with parallelism "
                                   << parallelism;
  }
}

TEST(ThreadPoolTest, ParallelForHonoursNonZeroBegin) {
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(40, 100, 0, [&](std::int64_t i) { hits[i].fetch_add(1); });
  for (int i = 0; i < 40; ++i) ASSERT_EQ(hits[i].load(), 0);
  for (int i = 40; i < 100; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, NestedSubmissionCompletes) {
  ThreadPool pool(2);
  auto outer = pool.submit([&pool] {
    return pool.submit([] { return 21; });  // submitted from a worker
  });
  EXPECT_EQ(outer.get().get(), 21);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every outer index runs an inner parallel_for on the same (small) pool:
  // only caller participation keeps this from deadlocking.
  ThreadPool pool(2);
  std::atomic<long> total{0};
  pool.parallel_for(0, 16, 0, [&](std::int64_t) {
    pool.parallel_for(0, 64, 0, [&](std::int64_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16 * 64);
}

TEST(ThreadPoolTest, SeededStreamsIndependentOfParallelism) {
  ThreadPool pool(4);
  const std::int64_t n = 257;
  const std::uint64_t seed = 0xFEEDFACE;
  auto draw = [&](int parallelism) {
    std::vector<std::uint64_t> first(n);
    pool.parallel_for_seeded(0, n, parallelism, seed,
                             [&](std::int64_t i, Rng& rng) {
                               first[i] = rng();
                             });
    return first;
  };
  auto serial = draw(1);
  auto parallel = draw(8);
  EXPECT_EQ(serial, parallel);
  // Distinct indices get distinct streams.
  EXPECT_NE(serial[0], serial[1]);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> hits{0};
  ThreadPool::global().parallel_for(0, 100, 0,
                                    [&](std::int64_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference output of the public-domain splitmix64 with state 0.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64(state), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(splitmix64(state), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace irgnn::support
