// Tests for the corpus ingestion frontend and the .irds dataset cache:
// thread-count invariance, bit-identity against core::build_dataset,
// malformed-file containment, dedup semantics, byte-deterministic cache
// writes, warm loads with zero graph rebuilds, and hostile-input sweeps
// (every-byte truncation + seeded mutation fuzz) over the cache loader.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "corpus/dataset_cache.h"
#include "corpus/ingest.h"
#include "corpus/suite_dump.h"
#include "graph/fingerprint.h"
#include "ir/printer.h"
#include "support/rng.h"
#include "workloads/suite.h"

namespace irgnn {
namespace {

namespace fs = std::filesystem;

std::string region_text(std::size_t index) {
  const auto& suite = workloads::benchmark_suite();
  return ir::print_module(
      *workloads::build_region_module(suite[index % suite.size()]));
}

/// A small mixed corpus: three real modules, one duplicate, two malformed.
void small_corpus(std::vector<std::string>* names,
                  std::vector<std::string>* contents) {
  // Sorted by name, like a directory walk would present them.
  names->assign({"a.ir", "b.ir", "bad1.ir", "bad2.ir", "c.ir",
                 "dup_of_a.ir"});
  contents->assign({region_text(0), region_text(1), "module {{{ nonsense",
                    "", region_text(2), region_text(0)});
}

bool same_graph(const graph::ProgramGraph& a, const graph::ProgramGraph& b,
                bool with_text) {
  if (a.nodes.size() != b.nodes.size() || a.edges.size() != b.edges.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    if (a.nodes[i].kind != b.nodes[i].kind ||
        a.nodes[i].feature != b.nodes[i].feature)
      return false;
    if (with_text && a.nodes[i].text != b.nodes[i].text) return false;
  }
  for (std::size_t i = 0; i < a.edges.size(); ++i)
    if (a.edges[i].src != b.edges[i].src || a.edges[i].dst != b.edges[i].dst ||
        a.edges[i].kind != b.edges[i].kind ||
        a.edges[i].position != b.edges[i].position)
      return false;
  return true;
}

std::string temp_dir(const char* tag) {
  fs::path dir = fs::temp_directory_path() / (std::string("irgnn_corpus_") +
                                              tag + "_" +
                                              std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

TEST(IngestTest, DeterministicAtEveryThreadCount) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);

  corpus::IngestResult baseline;
  corpus::IngestOptions options;
  options.num_threads = 1;
  ASSERT_TRUE(
      corpus::ingest_buffers(names, contents, options, &baseline).ok());

  for (int threads : {2, 4, 8}) {
    options.num_threads = threads;
    corpus::IngestResult result;
    ASSERT_TRUE(
        corpus::ingest_buffers(names, contents, options, &result).ok());
    ASSERT_EQ(result.graphs.size(), baseline.graphs.size());
    EXPECT_EQ(result.fingerprints, baseline.fingerprints);
    EXPECT_EQ(result.corpus_hash, baseline.corpus_hash);
    EXPECT_EQ(result.options_hash, baseline.options_hash);
    for (std::size_t i = 0; i < result.graphs.size(); ++i)
      EXPECT_TRUE(
          same_graph(result.graphs[i], baseline.graphs[i], /*with_text=*/true))
          << "graph " << i << " differs at " << threads << " threads";
    ASSERT_EQ(result.entries.size(), baseline.entries.size());
    for (std::size_t i = 0; i < result.entries.size(); ++i) {
      EXPECT_EQ(result.entries[i].name, baseline.entries[i].name);
      EXPECT_EQ(result.entries[i].graph_index, baseline.entries[i].graph_index);
      EXPECT_EQ(result.entries[i].duplicate, baseline.entries[i].duplicate);
    }
    ASSERT_EQ(result.files.size(), baseline.files.size());
    for (std::size_t i = 0; i < result.files.size(); ++i) {
      EXPECT_EQ(result.files[i].status.code(), baseline.files[i].status.code());
      EXPECT_EQ(result.files[i].detail, baseline.files[i].detail);
    }
  }
}

TEST(IngestTest, MalformedFilesAreRecordsNotCrashes) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);

  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());
  EXPECT_EQ(result.stats.files_scanned, 6u);
  EXPECT_EQ(result.stats.files_failed, 2u);
  EXPECT_EQ(result.stats.files_ok, 4u);
  // bad1.ir / bad2.ir carry diagnostics; the run still ingested the rest.
  for (const auto& file : result.files) {
    if (file.path.rfind("bad", 0) == 0) {
      EXPECT_FALSE(file.status.ok()) << file.path;
      EXPECT_FALSE(file.detail.empty()) << file.path;
    } else {
      EXPECT_TRUE(file.status.ok()) << file.path;
    }
  }
  EXPECT_GT(result.graphs.size(), 0u);
}

TEST(IngestTest, DedupFirstOccurrenceWins) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);

  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());
  // dup_of_a.ir's region must resolve to a.ir's graph (file index 0 wins:
  // names sort as given and a.ir precedes dup_of_a.ir).
  bool saw_duplicate = false;
  for (const auto& entry : result.entries)
    if (entry.duplicate) {
      saw_duplicate = true;
      EXPECT_LT(entry.graph_index, result.graphs.size());
      EXPECT_EQ(result.fingerprints[entry.graph_index], entry.fingerprint);
    }
  EXPECT_TRUE(saw_duplicate);
  EXPECT_EQ(result.stats.duplicates, 1u);

  corpus::IngestOptions keep_all;
  keep_all.dedup = false;
  corpus::IngestResult undeduped;
  ASSERT_TRUE(
      corpus::ingest_buffers(names, contents, keep_all, &undeduped).ok());
  EXPECT_EQ(undeduped.graphs.size(),
            result.graphs.size() + result.stats.duplicates);
  EXPECT_NE(undeduped.options_hash, result.options_hash);
  EXPECT_EQ(undeduped.corpus_hash, result.corpus_hash);
}

TEST(IngestTest, DumpedSuiteMatchesBuildDatasetBitForBit) {
  const std::string dir = temp_dir("dump");
  corpus::SuiteDumpOptions dump_options;
  dump_options.num_sequences = 2;
  dump_options.seed = 0xDA7A;
  std::size_t files = 0;
  ASSERT_TRUE(corpus::dump_suite(dir, dump_options, &files).ok());
  const std::size_t S = dump_options.num_sequences;
  ASSERT_EQ(files, workloads::benchmark_suite().size() * S);

  const core::Dataset dataset =
      core::build_dataset({S, dump_options.seed, 0});

  for (int threads : {1, 4}) {
    corpus::IngestOptions options;
    options.num_threads = threads;
    corpus::IngestResult result;
    ASSERT_TRUE(corpus::ingest_directory(dir, options, &result).ok());
    ASSERT_EQ(result.stats.files_failed, 0u);
    // Entry k is file k in sorted order = (region k/S, sequence k%S): the
    // dump names sort by (region, sequence) construction.
    ASSERT_EQ(result.entries.size(), files);
    for (std::size_t k = 0; k < result.entries.size(); ++k) {
      const graph::ProgramGraph& got =
          result.graphs[result.entries[k].graph_index];
      const graph::ProgramGraph& want = dataset.graph(k / S, k % S);
      EXPECT_TRUE(same_graph(got, want, /*with_text=*/true))
          << "entry " << k << " (" << result.entries[k].name << ") vs "
          << want.name;
      EXPECT_EQ(result.entries[k].fingerprint, graph::fingerprint(want));
    }
  }
  fs::remove_all(dir);
}

TEST(DatasetCacheTest, RepeatedWritesAreByteIdentical) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);
  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());

  const std::string dir = temp_dir("bytes");
  const std::string path_a = dir + "/a.irds";
  const std::string path_b = dir + "/b.irds";
  ASSERT_TRUE(corpus::write_dataset_cache(path_a, result.graphs,
                                          result.fingerprints,
                                          result.corpus_hash,
                                          result.options_hash)
                  .ok());
  ASSERT_TRUE(corpus::write_dataset_cache(path_b, result.graphs,
                                          result.fingerprints,
                                          result.corpus_hash,
                                          result.options_hash)
                  .ok());
  EXPECT_EQ(read_file(path_a), read_file(path_b));
  EXPECT_GT(read_file(path_a).size(), corpus::kCacheHeaderBytes);
  fs::remove_all(dir);
}

TEST(DatasetCacheTest, WarmLoadRebuildsNothingAndRoundTrips) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);
  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());

  const std::string dir = temp_dir("warm");
  const std::string path = dir + "/d.irds";
  ASSERT_TRUE(corpus::write_dataset_cache(path, result.graphs,
                                          result.fingerprints,
                                          result.corpus_hash,
                                          result.options_hash)
                  .ok());

  const std::uint64_t built_before = corpus::graphs_built();
  corpus::DatasetCacheReader reader;
  ASSERT_TRUE(reader.open(path).ok());
  EXPECT_TRUE(reader.verify_payload_hash().ok());
  EXPECT_EQ(reader.num_graphs(), result.graphs.size());
  EXPECT_EQ(reader.corpus_hash(), result.corpus_hash);
  EXPECT_EQ(reader.options_hash(), result.options_hash);

  graph::ProgramGraph scratch;
  for (std::uint64_t i = 0; i < reader.num_graphs(); ++i) {
    reader.materialize(i, &scratch);
    // Node text does not persist (by design); everything structural does.
    EXPECT_TRUE(same_graph(scratch, result.graphs[i], /*with_text=*/false));
    EXPECT_EQ(graph::fingerprint(scratch), result.fingerprints[i]);
    EXPECT_EQ(reader.fingerprint(i), result.fingerprints[i]);
    EXPECT_EQ(scratch.name, result.graphs[i].name);
    for (const auto& node : scratch.nodes) EXPECT_TRUE(node.text.empty());
  }
  // The whole load touched zero graph builds — the warm-path contract.
  EXPECT_EQ(corpus::graphs_built(), built_before);

  // core::load_corpus_dataset wraps the same path as a flat Dataset.
  core::Dataset flat;
  ASSERT_TRUE(core::load_corpus_dataset(path, &flat).ok());
  EXPECT_EQ(flat.num_regions(), result.graphs.size());
  EXPECT_EQ(flat.num_sequences(), 1u);
  for (std::size_t r = 0; r < flat.num_regions(); ++r)
    EXPECT_TRUE(
        same_graph(flat.graph(r, 0), result.graphs[r], /*with_text=*/false));
  EXPECT_EQ(corpus::graphs_built(), built_before);
  fs::remove_all(dir);
}

TEST(DatasetCacheTest, HashKeysDetectStaleCaches) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);
  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());

  // Same bytes on disk hash to the same corpus key the fold computed.
  const std::string dir = temp_dir("hash");
  for (std::size_t i = 0; i < names.size(); ++i) {
    std::ofstream out(dir + "/" + names[i], std::ios::binary);
    out << contents[i];
  }
  corpus::IngestResult from_disk;
  ASSERT_TRUE(corpus::ingest_directory(dir, {}, &from_disk).ok());
  EXPECT_EQ(from_disk.corpus_hash, result.corpus_hash);
  std::uint64_t dir_hash = 0;
  ASSERT_TRUE(
      corpus::hash_corpus_dir(dir, 64ull << 20, &dir_hash).ok());
  EXPECT_EQ(dir_hash, result.corpus_hash);

  // Touching one byte of one file changes the key.
  { std::ofstream out(dir + "/a.ir", std::ios::binary); out << "x"; }
  ASSERT_TRUE(corpus::hash_corpus_dir(dir, 64ull << 20, &dir_hash).ok());
  EXPECT_NE(dir_hash, result.corpus_hash);
  fs::remove_all(dir);
}

TEST(DatasetCacheTest, TruncationAtEveryByteIsContained) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);
  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());

  const std::string dir = temp_dir("trunc");
  const std::string path = dir + "/t.irds";
  ASSERT_TRUE(corpus::write_dataset_cache(path, result.graphs,
                                          result.fingerprints,
                                          result.corpus_hash,
                                          result.options_hash)
                  .ok());
  const std::vector<std::uint8_t> bytes = read_file(path);
  ASSERT_GT(bytes.size(), corpus::kCacheHeaderBytes);

  corpus::DatasetCacheReader reader;
  ASSERT_TRUE(reader.attach(bytes.data(), bytes.size()).ok());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    corpus::DatasetCacheReader truncated;
    EXPECT_FALSE(truncated.attach(bytes.data(), n).ok())
        << "truncation to " << n << " bytes was accepted";
  }
  fs::remove_all(dir);
}

TEST(DatasetCacheTest, MutationFuzzNeverCrashesTheLoader) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);
  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());

  const std::string dir = temp_dir("fuzz");
  const std::string path = dir + "/f.irds";
  ASSERT_TRUE(corpus::write_dataset_cache(path, result.graphs,
                                          result.fingerprints,
                                          result.corpus_hash,
                                          result.options_hash)
                  .ok());
  const std::vector<std::uint8_t> pristine = read_file(path);
  fs::remove_all(dir);

  std::uint64_t state = 0xF022;
  graph::ProgramGraph scratch;
  for (int round = 0; round < 4000; ++round) {
    std::vector<std::uint8_t> bytes = pristine;
    const int flips = 1 + static_cast<int>(splitmix64(state) % 8);
    for (int f = 0; f < flips; ++f)
      bytes[splitmix64(state) % bytes.size()] =
          static_cast<std::uint8_t>(splitmix64(state));
    corpus::DatasetCacheReader reader;
    if (reader.attach(bytes.data(), bytes.size()).ok()) {
      // Structurally valid mutants (e.g. name-blob or hash-field flips)
      // must still be safe to walk end to end.
      for (std::uint64_t i = 0; i < reader.num_graphs(); ++i) {
        reader.materialize(i, &scratch);
        (void)reader.graph_name(i);
      }
      (void)reader.verify_payload_hash();
    }
  }
}

TEST(DatasetCacheTest, LimitsBoundFeaturesBeforeMaterialization) {
  std::vector<std::string> names, contents;
  small_corpus(&names, &contents);
  corpus::IngestResult result;
  ASSERT_TRUE(corpus::ingest_buffers(names, contents, {}, &result).ok());
  const std::string dir = temp_dir("limits");
  const std::string path = dir + "/l.irds";
  ASSERT_TRUE(corpus::write_dataset_cache(path, result.graphs,
                                          result.fingerprints,
                                          result.corpus_hash,
                                          result.options_hash)
                  .ok());

  corpus::CacheLimits tight;
  tight.max_feature = 0;  // no real corpus fits: reject before any walk
  corpus::DatasetCacheReader reader;
  EXPECT_FALSE(reader.open(path, tight).ok());

  corpus::CacheLimits vocab;
  vocab.max_feature =
      static_cast<std::int32_t>(graph::vocabulary_size()) - 1;
  EXPECT_TRUE(reader.open(path, vocab).ok());

  corpus::CacheLimits few_graphs;
  few_graphs.max_graphs = 0;
  EXPECT_FALSE(reader.open(path, few_graphs).ok());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace irgnn
