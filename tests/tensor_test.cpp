// Tensor/autograd tests. The core of the suite is numerical gradient
// checking: for every differentiable op we compare the analytic gradient to
// central finite differences on random inputs. A second block pins the SIMD
// determinism contract: every vectorized kernel must be bit-identical to an
// unrolled scalar reference that performs the same fixed 8-lane accumulation
// tree, across odd sizes, tail lanes and empty segments.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "support/simd.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace irgnn::tensor {
namespace {

/// Central-difference gradient check of `loss_fn` wrt `input`'s entries.
/// loss_fn must rebuild the graph from scratch at each call.
void grad_check(Tensor input,
                const std::function<Tensor()>& loss_fn,
                float tolerance = 2e-2f) {
  input.zero_grad();  // leaf grads persist across checks; start clean
  Tensor loss = loss_fn();
  loss.backward();
  std::vector<float> analytic(input.grad(), input.grad() + input.numel());

  const float eps = 1e-2f;
  for (int i = 0; i < input.numel(); ++i) {
    float saved = input.data()[i];
    input.data()[i] = saved + eps;
    float up = loss_fn().item();
    input.data()[i] = saved - eps;
    float down = loss_fn().item();
    input.data()[i] = saved;
    float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "entry " << i;
  }
}

Tensor sum_all(const Tensor& t) {
  // Reduce to scalar via segment_mean + scale (mean * n == sum).
  std::vector<int> seg(t.rows(), 0);
  Tensor pooled = segment_mean(t, seg, 1);
  Tensor ones = Tensor::full({t.cols(), 1}, 1.0f);
  return scale(matmul(pooled, ones), static_cast<float>(t.rows()));
}

TEST(TensorTest, ConstructorsAndAccessors) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.at(1, 2), 0.0f);
  Tensor f = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(f.at(0, 1), 3.5f);
  Tensor d = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.at(1, 0), 3.0f);
}

TEST(TensorTest, MatmulForward) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, BlockedMatmulMatchesNaiveReference) {
  // The blocked/transposed kernel against a straight triple loop, on shapes
  // deliberately not multiples of any block size (1, primes, pow2 +/- 1).
  struct Case {
    int m, k, n;
  };
  for (const Case& c : {Case{1, 1, 1}, Case{3, 5, 2}, Case{17, 31, 13},
                        Case{64, 64, 64}, Case{65, 33, 17}, Case{128, 1, 9},
                        Case{1, 200, 1}, Case{47, 16, 129}}) {
    Rng rng(1000 + c.m + c.k + c.n);
    Tensor a = Tensor::xavier({c.m, c.k}, rng);
    Tensor b = Tensor::xavier({c.k, c.n}, rng);
    Tensor prod = matmul(a, b);
    for (int i = 0; i < c.m; ++i)
      for (int j = 0; j < c.n; ++j) {
        float ref = 0.0f;
        for (int l = 0; l < c.k; ++l) ref += a.at(i, l) * b.at(l, j);
        ASSERT_NEAR(prod.at(i, j), ref, 1e-5f)
            << c.m << "x" << c.k << "x" << c.n << " at (" << i << "," << j
            << ")";
      }
  }
}

TEST(TensorTest, MatmulGradient) {
  Rng rng(1);
  Tensor a = Tensor::xavier({3, 4}, rng);
  Tensor b = Tensor::xavier({4, 2}, rng);
  grad_check(a, [&] { return sum_all(matmul(a, b)); });
  grad_check(b, [&] { return sum_all(matmul(a, b)); });
}

TEST(TensorTest, ElementwiseGradients) {
  Rng rng(2);
  Tensor a = Tensor::xavier({3, 3}, rng);
  Tensor b = Tensor::xavier({3, 3}, rng);
  grad_check(a, [&] { return sum_all(add(a, b)); });
  grad_check(a, [&] { return sum_all(sub(a, b)); });
  grad_check(a, [&] { return sum_all(mul(a, b)); });
  grad_check(b, [&] { return sum_all(mul(a, b)); });
}

TEST(TensorTest, ActivationGradients) {
  Rng rng(3);
  Tensor a = Tensor::xavier({4, 4}, rng);
  grad_check(a, [&] { return sum_all(tanh_t(a)); });
  grad_check(a, [&] { return sum_all(sigmoid(a)); });
  // relu is non-differentiable at 0; nudge values away from it.
  for (int i = 0; i < a.numel(); ++i)
    if (std::fabs(a.data()[i]) < 0.1f) a.data()[i] = 0.5f;
  grad_check(a, [&] { return sum_all(relu(a)); });
}

TEST(TensorTest, AddBiasGradient) {
  Rng rng(4);
  Tensor a = Tensor::xavier({3, 4}, rng);
  Tensor b = Tensor::xavier({1, 4}, rng);
  grad_check(b, [&] { return sum_all(add_bias(a, b)); });
}

TEST(TensorTest, FusedBiasActivationMatchesUnfused) {
  Rng rng(11);
  Tensor a = Tensor::xavier({5, 6}, rng);
  Tensor b = Tensor::xavier({1, 6}, rng);
  Tensor fused_relu = add_bias_act(a, b, Act::Relu);
  Tensor unfused_relu = relu(add_bias_act(a, b, Act::None));
  Tensor fused_tanh = add_bias_act(a, b, Act::Tanh);
  Tensor unfused_tanh = tanh_t(add_bias_act(a, b, Act::None));
  Tensor fused_sig = add_bias_act(a, b, Act::Sigmoid);
  Tensor unfused_sig = sigmoid(add_bias_act(a, b, Act::None));
  for (int i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(fused_relu.node()->data[i], unfused_relu.node()->data[i]);
    EXPECT_NEAR(fused_tanh.node()->data[i], unfused_tanh.node()->data[i],
                1e-7f);
    EXPECT_NEAR(fused_sig.node()->data[i], unfused_sig.node()->data[i],
                1e-7f);
  }
}

TEST(TensorTest, FusedBiasActivationGradients) {
  Rng rng(12);
  Tensor a = Tensor::xavier({4, 5}, rng);
  Tensor b = Tensor::xavier({1, 5}, rng);
  // relu is non-differentiable at 0; nudge pre-activations away from it.
  for (int i = 0; i < a.numel(); ++i)
    if (std::fabs(a.data()[i]) < 0.1f) a.data()[i] = 0.4f;
  grad_check(a, [&] { return sum_all(add_bias_act(a, b, Act::Tanh)); });
  grad_check(b, [&] { return sum_all(add_bias_act(a, b, Act::Tanh)); });
  grad_check(a, [&] { return sum_all(add_bias_act(a, b, Act::Sigmoid)); });
  grad_check(a, [&] { return sum_all(mul(add_bias_act(a, b, Act::Relu),
                                         add_bias_act(a, b, Act::Relu))); });
}

TEST(TensorTest, LayerNormGradient) {
  Rng rng(5);
  Tensor x = Tensor::xavier({3, 6}, rng);
  Tensor gamma = Tensor::full({1, 6}, 1.0f, true);
  Tensor beta = Tensor::zeros({1, 6}, true);
  grad_check(x, [&] { return sum_all(mul(layer_norm(x, gamma, beta),
                                         layer_norm(x, gamma, beta))); });
  grad_check(gamma,
             [&] { return sum_all(mul(layer_norm(x, gamma, beta),
                                      layer_norm(x, gamma, beta))); });
}

TEST(TensorTest, LayerNormNormalizes) {
  Rng rng(6);
  Tensor x = Tensor::xavier({2, 8}, rng);
  Tensor gamma = Tensor::full({1, 8}, 1.0f);
  Tensor beta = Tensor::zeros({1, 8});
  Tensor y = layer_norm(x, gamma, beta);
  for (int i = 0; i < 2; ++i) {
    float mean = 0;
    for (int j = 0; j < 8; ++j) mean += y.at(i, j);
    EXPECT_NEAR(mean / 8, 0.0f, 1e-5f);
  }
}

TEST(TensorTest, EmbeddingGradientAccumulates) {
  Tensor table = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6}, true);
  Tensor out = embedding(table, {0, 2, 0});
  EXPECT_FLOAT_EQ(out.at(2, 1), 2);
  Tensor loss = sum_all(out);
  loss.backward();
  EXPECT_FLOAT_EQ(table.grad()[0], 2);  // row 0 used twice
  EXPECT_FLOAT_EQ(table.grad()[4], 1);  // row 2 used once
  EXPECT_FLOAT_EQ(table.grad()[2], 0);  // row 1 unused
}

TEST(TensorTest, IndexAddRowsForwardAndGradient) {
  Rng rng(7);
  Tensor x = Tensor::xavier({4, 3}, rng);
  std::vector<int> dst{0, 1, 0, 1};
  std::vector<float> coeff{0.5f, 1.0f, 0.5f, 1.0f};
  Tensor out = index_add_rows(x, dst, coeff, 2);
  EXPECT_NEAR(out.at(0, 0), 0.5f * (x.at(0, 0) + x.at(2, 0)), 1e-5f);
  grad_check(x, [&] { return sum_all(mul(index_add_rows(x, dst, coeff, 2),
                                         index_add_rows(x, dst, coeff, 2))); });
}

TEST(TensorTest, SegmentMeanForward) {
  Tensor x = Tensor::from_data({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out = segment_mean(x, {0, 0, 1, 1}, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2);
  EXPECT_FLOAT_EQ(out.at(1, 1), 7);
}

TEST(TensorTest, LogSoftmaxRowsSumToOne) {
  Rng rng(8);
  Tensor x = Tensor::xavier({3, 5}, rng);
  Tensor lp = log_softmax(x);
  for (int i = 0; i < 3; ++i) {
    float sum = 0;
    for (int j = 0; j < 5; ++j) sum += std::exp(lp.at(i, j));
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, NllLossGradient) {
  Rng rng(9);
  Tensor x = Tensor::xavier({4, 3}, rng);
  std::vector<int> targets{0, 2, 1, 2};
  grad_check(x, [&] { return nll_loss(log_softmax(x), targets); });
}

TEST(TensorTest, DropoutIdentityInEval) {
  Rng rng(10);
  Tensor x = Tensor::full({2, 2}, 3.0f);
  Tensor y = dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.at(0, 0), 3.0f);
}

TEST(TensorTest, ArgmaxRows) {
  Tensor x = Tensor::from_data({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = argmax_rows(x);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  // minimize ||w - target||^2
  Tensor w = Tensor::zeros({1, 4}, true);
  Tensor target = Tensor::from_data({1, 4}, {1, -2, 3, -4});
  Adam adam({w}, {.lr = 0.1f});
  for (int step = 0; step < 300; ++step) {
    adam.zero_grad();
    Tensor diff = sub(w, target);
    Tensor loss = sum_all(mul(diff, diff));
    loss.backward();
    adam.step();
  }
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(w.data()[i], target.data()[i], 0.05f);
}

TEST(OptimizerTest, SgdMomentumMinimizes) {
  Tensor w = Tensor::full({1, 2}, 5.0f, true);
  Sgd sgd({w}, 0.05f, 0.9f);
  for (int step = 0; step < 200; ++step) {
    sgd.zero_grad();
    Tensor loss = sum_all(mul(w, w));
    loss.backward();
    sgd.step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 0.05f);
}

// --- SIMD bit-identity ------------------------------------------------------
// Unrolled scalar references for the canonical reductions of
// support/simd.h: 8 lane accumulators fed block by block, folded with the
// fixed pairing ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7)), tail elements in
// order. The vectorized helpers must match these bit for bit.

float ref_tree_fold(const float lane[8]) {
  float a04 = lane[0] + lane[4];
  float a15 = lane[1] + lane[5];
  float a26 = lane[2] + lane[6];
  float a37 = lane[3] + lane[7];
  return (a04 + a26) + (a15 + a37);
}

float ref_dot(const float* a, const float* b, std::int64_t n) {
  float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int l = 0; l < 8; ++l) lane[l] += a[i + l] * b[i + l];
  float s = ref_tree_fold(lane);
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

float ref_sum(const float* a, std::int64_t n) {
  float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int l = 0; l < 8; ++l) lane[l] += a[i + l];
  float s = ref_tree_fold(lane);
  for (; i < n; ++i) s += a[i];
  return s;
}

float ref_sum_sq_diff(const float* a, float mean, std::int64_t n) {
  float lane[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::int64_t i = 0;
  for (; i + 8 <= n; i += 8)
    for (int l = 0; l < 8; ++l) {
      float d = a[i + l] - mean;
      lane[l] += d * d;
    }
  float s = ref_tree_fold(lane);
  for (; i < n; ++i) {
    float d = a[i] - mean;
    s += d * d;
  }
  return s;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = static_cast<float>(rng.uniform(-2.0, 2.0));
  return v;
}

// Sizes straddling every tail case: empty, sub-lane, exact lanes, lanes+tail.
const std::int64_t kSimdSizes[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64,
                                   100, 129};

TEST(SimdTest, ReductionsBitIdenticalToScalarTree) {
  for (std::int64_t n : kSimdSizes) {
    std::vector<float> a = random_vec(n, 100 + n);
    std::vector<float> b = random_vec(n, 200 + n);
    EXPECT_EQ(simd::dot(a.data(), b.data(), n), ref_dot(a.data(), b.data(), n))
        << "dot n=" << n;
    EXPECT_EQ(simd::sum(a.data(), n), ref_sum(a.data(), n)) << "sum n=" << n;
    EXPECT_EQ(simd::sum_sq_diff(a.data(), 0.375f, n),
              ref_sum_sq_diff(a.data(), 0.375f, n))
        << "sum_sq_diff n=" << n;
  }
}

TEST(SimdTest, ElementwiseHelpersBitIdenticalToScalar) {
  for (std::int64_t n : kSimdSizes) {
    std::vector<float> x = random_vec(n, 300 + n);
    std::vector<float> dst_v = random_vec(n, 400 + n);
    std::vector<float> dst_s = dst_v;
    simd::axpy(dst_v.data(), 1.25f, x.data(), n);
    for (std::int64_t i = 0; i < n; ++i) dst_s[i] += 1.25f * x.data()[i];
    EXPECT_EQ(dst_v, dst_s) << "axpy n=" << n;

    dst_v = random_vec(n, 500 + n);
    dst_s = dst_v;
    simd::add_inplace(dst_v.data(), x.data(), n);
    for (std::int64_t i = 0; i < n; ++i) dst_s[i] += x.data()[i];
    EXPECT_EQ(dst_v, dst_s) << "add_inplace n=" << n;
  }
}

TEST(SimdTest, MatmulForwardBitIdenticalToTreeReference) {
  struct Case {
    int m, k, n;
  };
  for (const Case& c : {Case{1, 1, 1}, Case{3, 7, 2}, Case{5, 9, 13},
                        Case{17, 33, 8}, Case{16, 64, 31}, Case{2, 200, 3},
                        // block-shape edges for the register-blocked kernel:
                        // exact 4x2 multiples, rows/cols below one block
                        Case{4, 8, 2}, Case{8, 16, 4}, Case{3, 5, 1},
                        Case{2, 9, 5}, Case{5, 24, 2}}) {
    Rng rng(7000 + c.m + c.k + c.n);
    Tensor a = Tensor::xavier({c.m, c.k}, rng);
    Tensor b = Tensor::xavier({c.k, c.n}, rng);
    Tensor prod = matmul(a, b);
    // Reference: same packed-transpose layout, same per-entry tree dot.
    std::vector<float> bt(static_cast<std::size_t>(c.k) * c.n);
    for (int l = 0; l < c.k; ++l)
      for (int j = 0; j < c.n; ++j) bt[j * c.k + l] = b.at(l, j);
    for (int i = 0; i < c.m; ++i)
      for (int j = 0; j < c.n; ++j)
        ASSERT_EQ(prod.at(i, j),
                  ref_dot(a.data() + static_cast<std::int64_t>(i) * c.k,
                          bt.data() + static_cast<std::int64_t>(j) * c.k, c.k))
            << c.m << "x" << c.k << "x" << c.n << " at (" << i << "," << j
            << ")";
  }
}

TEST(SimdTest, RegisterBlockedGemmBitIdenticalToRowwise) {
  // The register-blocked micro-kernel against the PR 2 one-dot-per-element
  // kernel, raw buffers, no tape. Shapes cover: empty m/n/k, tails smaller
  // than the 4x2 block, exact block multiples, odd everything.
  struct Case {
    int m, n, k;
  };
  for (const Case& c :
       {Case{0, 0, 0}, Case{0, 3, 5}, Case{3, 0, 5}, Case{2, 5, 0},
        Case{1, 1, 1}, Case{3, 1, 7}, Case{2, 2, 9}, Case{4, 2, 8},
        Case{5, 3, 19}, Case{7, 2, 16}, Case{8, 6, 24}, Case{17, 13, 33},
        Case{12, 7, 65}, Case{33, 31, 64}}) {
    std::vector<float> a =
        random_vec(static_cast<std::size_t>(c.m) * c.k, 9000 + c.m);
    std::vector<float> bt =
        random_vec(static_cast<std::size_t>(c.n) * c.k, 9100 + c.n);
    std::vector<float> c_row(static_cast<std::size_t>(c.m) * c.n, 0.0f);
    std::vector<float> c_blk = c_row;
    tensor::detail::gemm_dot_rowwise<false>(a.data(), c.k, bt.data(), c.k,
                                            c.m, c.n, c.k, c_row.data(), c.n);
    tensor::detail::gemm_dot_panels<false>(a.data(), c.k, bt.data(), c.k,
                                           c.m, c.n, c.k, c_blk.data(), c.n);
    EXPECT_EQ(c_row, c_blk) << "assign " << c.m << "x" << c.n << "x" << c.k;

    // Accumulate variant (the dA backward form) onto a non-zero C.
    std::vector<float> acc_row =
        random_vec(static_cast<std::size_t>(c.m) * c.n, 9200 + c.k);
    std::vector<float> acc_blk = acc_row;
    tensor::detail::gemm_dot_rowwise<true>(a.data(), c.k, bt.data(), c.k,
                                           c.m, c.n, c.k, acc_row.data(),
                                           c.n);
    tensor::detail::gemm_dot_panels<true>(a.data(), c.k, bt.data(), c.k, c.m,
                                          c.n, c.k, acc_blk.data(), c.n);
    EXPECT_EQ(acc_row, acc_blk)
        << "accumulate " << c.m << "x" << c.n << "x" << c.k;
  }
}

TEST(SimdTest, RegisterBlockedAxpyPanelsBitIdenticalToRowwiseAxpy) {
  // gemm_axpy_panels (dB backward) against the PR 2 per-row axpy loop,
  // including the A[i,l]==0 skip (zeros planted explicitly) and row/column
  // tails smaller than the 4-row / 16-float blocks.
  struct Case {
    int rows, m, n;
  };
  for (const Case& c :
       {Case{0, 3, 5}, Case{1, 1, 1}, Case{3, 4, 7}, Case{4, 5, 16},
        Case{5, 9, 19}, Case{7, 3, 8}, Case{8, 6, 33}, Case{13, 11, 40},
        Case{16, 2, 0}, Case{19, 7, 23}}) {
    std::vector<float> at =
        random_vec(static_cast<std::size_t>(c.rows) * c.m, 9300 + c.rows);
    for (std::size_t i = 0; i < at.size(); i += 3) at[i] = 0.0f;  // skips
    std::vector<float> g =
        random_vec(static_cast<std::size_t>(c.m) * c.n, 9400 + c.n);
    std::vector<float> d_ref =
        random_vec(static_cast<std::size_t>(c.rows) * c.n, 9500 + c.m);
    std::vector<float> d_blk = d_ref;
    for (int l = 0; l < c.rows; ++l) {  // the PR 2 loop, verbatim
      const float* trow = at.data() + static_cast<std::int64_t>(l) * c.m;
      float* drow = d_ref.data() + static_cast<std::int64_t>(l) * c.n;
      for (int i = 0; i < c.m; ++i) {
        float ail = trow[i];
        if (ail == 0.0f) continue;
        simd::axpy(drow, ail, g.data() + static_cast<std::int64_t>(i) * c.n,
                   c.n);
      }
    }
    tensor::detail::gemm_axpy_panels(at.data(), c.m, g.data(), c.n, c.rows,
                                     c.m, c.n, d_blk.data(), c.n);
    EXPECT_EQ(d_ref, d_blk) << c.rows << "x" << c.m << "x" << c.n;
  }
}

TEST(SimdTest, Int8GemmBitIdenticalToScalarReferenceOnEdgeShapes) {
  // The int8 kernels (tensor/gemm_int8.h) against a naive dot_s8_ref
  // reference, over the same edge shapes as the float GEMM tests: empty
  // m/n/k, single row/column/depth, tails below the 4x2 block and below one
  // SIMD lane group. Inputs span the full contract domain — activations in
  // [0, 127], weights in [-127, 127] — so this also exercises the widening
  // paths where a saturating kernel would differ. The comparison is exact
  // (integer accumulation), never approximate.
  auto random_u8 = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::uint8_t> v(n);
    for (auto& x : v)
      x = static_cast<std::uint8_t>(rng.uniform(0.0, 127.999));
    return v;
  };
  auto random_s8 = [](std::size_t n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::int8_t> v(n);
    for (auto& x : v)
      x = static_cast<std::int8_t>(rng.uniform(-127.0, 127.999));
    return v;
  };
  struct Case {
    int m, n, k;
  };
  for (const Case& c :
       {Case{0, 0, 0}, Case{0, 3, 5}, Case{3, 0, 5}, Case{2, 5, 0},
        Case{1, 1, 1}, Case{1, 7, 3}, Case{3, 1, 7}, Case{2, 2, 5},
        Case{4, 2, 32}, Case{5, 3, 19}, Case{7, 2, 31}, Case{8, 6, 33},
        Case{17, 13, 40}, Case{12, 7, 65}, Case{33, 31, 64}}) {
    const std::vector<std::uint8_t> a =
        random_u8(static_cast<std::size_t>(c.m) * c.k, 9600 + c.m);
    const std::vector<std::int8_t> bt =
        random_s8(static_cast<std::size_t>(c.n) * c.k, 9700 + c.n);

    // Naive reference: one always-scalar dot per output element.
    std::vector<std::int32_t> ref(static_cast<std::size_t>(c.m) * c.n, 0);
    for (int i = 0; i < c.m; ++i)
      for (int j = 0; j < c.n; ++j)
        ref[static_cast<std::size_t>(i) * c.n + j] = tensor::detail::dot_s8_ref(
            a.data() + static_cast<std::int64_t>(i) * c.k,
            bt.data() + static_cast<std::int64_t>(j) * c.k, c.k);

    std::vector<std::int32_t> rowwise(ref.size(), 0);
    std::vector<std::int32_t> panels(ref.size(), 0);
    tensor::detail::gemm_s8_rowwise<false>(a.data(), c.k, bt.data(), c.k, c.m,
                                           c.n, c.k, rowwise.data(), c.n);
    tensor::detail::gemm_s8_panels<false>(a.data(), c.k, bt.data(), c.k, c.m,
                                          c.n, c.k, panels.data(), c.n);
    EXPECT_EQ(rowwise, ref) << "rowwise " << c.m << "x" << c.n << "x" << c.k;
    EXPECT_EQ(panels, ref) << "panels " << c.m << "x" << c.n << "x" << c.k;

    // Accumulate variant onto a non-zero C (the repeated-relation form).
    std::vector<std::int32_t> base(ref.size());
    {
      Rng rng(9800 + c.k);
      for (auto& x : base)
        x = static_cast<std::int32_t>(rng.uniform(-1000.0, 1000.0));
    }
    std::vector<std::int32_t> acc_ref = base;
    for (std::size_t i = 0; i < ref.size(); ++i) acc_ref[i] += ref[i];
    std::vector<std::int32_t> acc_row = base;
    std::vector<std::int32_t> acc_blk = base;
    tensor::detail::gemm_s8_rowwise<true>(a.data(), c.k, bt.data(), c.k, c.m,
                                          c.n, c.k, acc_row.data(), c.n);
    tensor::detail::gemm_s8_panels<true>(a.data(), c.k, bt.data(), c.k, c.m,
                                         c.n, c.k, acc_blk.data(), c.n);
    EXPECT_EQ(acc_row, acc_ref)
        << "accumulate rowwise " << c.m << "x" << c.n << "x" << c.k;
    EXPECT_EQ(acc_blk, acc_ref)
        << "accumulate panels " << c.m << "x" << c.n << "x" << c.k;
  }
}

TEST(SimdTest, MatmulBackwardBitIdenticalToTreeReference) {
  const int m = 5, k = 19, n = 11;  // odd sizes: tails in every direction
  Rng rng(81);
  Tensor a = Tensor::xavier({m, k}, rng);
  Tensor b = Tensor::xavier({k, n}, rng);
  Tensor c = matmul(a, b);
  // Drive the backward closure directly with a known upstream gradient.
  auto node = c.node();
  node->ensure_grad();
  std::vector<float> g = random_vec(static_cast<std::size_t>(m) * n, 9);
  std::copy(g.begin(), g.end(), node->grad.begin());
  a.grad();  // materialize
  b.grad();
  node->backward_fn(*node);

  // dA[i,l] = tree_dot(g[i,:], B[l,:]).
  for (int i = 0; i < m; ++i)
    for (int l = 0; l < k; ++l)
      ASSERT_EQ(a.grad()[i * k + l],
                ref_dot(g.data() + static_cast<std::int64_t>(i) * n,
                        b.data() + static_cast<std::int64_t>(l) * n, n))
          << "dA(" << i << "," << l << ")";
  // dB[l,:] = sum_i A[i,l] * g[i,:], i ascending, element-wise adds.
  std::vector<float> db(static_cast<std::size_t>(k) * n, 0.0f);
  for (int l = 0; l < k; ++l)
    for (int i = 0; i < m; ++i) {
      float ail = a.at(i, l);
      if (ail == 0.0f) continue;
      for (int j = 0; j < n; ++j) db[l * n + j] += ail * g[i * n + j];
    }
  for (int l = 0; l < k; ++l)
    for (int j = 0; j < n; ++j)
      ASSERT_EQ(b.grad()[l * n + j], db[l * n + j])
          << "dB(" << l << "," << j << ")";
}

TEST(SimdTest, AddBiasActBitIdenticalToScalar) {
  for (int n : {1, 7, 8, 19, 32, 45}) {
    const int m = 3;
    Rng rng(600 + n);
    Tensor a = Tensor::xavier({m, n}, rng);
    Tensor b = Tensor::xavier({1, n}, rng);
    for (Act act : {Act::None, Act::Relu, Act::Tanh, Act::Sigmoid}) {
      Tensor y = add_bias_act(a, b, act);
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j) {
          float pre = a.at(i, j) + b.at(0, j);
          float ref = pre;
          switch (act) {
            case Act::Relu:
              ref = pre > 0.0f ? pre : 0.0f;
              break;
            case Act::Tanh:
              ref = std::tanh(pre);
              break;
            case Act::Sigmoid:
              ref = 1.0f / (1.0f + std::exp(-pre));
              break;
            case Act::None:
              break;
          }
          ASSERT_EQ(y.at(i, j), ref)
              << "act " << static_cast<int>(act) << " n=" << n << " (" << i
              << "," << j << ")";
        }
    }
  }
}

TEST(SimdTest, LayerNormForwardBitIdenticalToTreeReference) {
  for (int n : {1, 5, 8, 13, 24, 37}) {
    const int m = 4;
    Rng rng(700 + n);
    Tensor x = Tensor::xavier({m, n}, rng);
    Tensor gamma = Tensor::xavier({1, n}, rng);
    Tensor beta = Tensor::xavier({1, n}, rng);
    Tensor y = layer_norm(x, gamma, beta);
    for (int i = 0; i < m; ++i) {
      const float* row = x.data() + static_cast<std::int64_t>(i) * n;
      float mean = ref_sum(row, n) / static_cast<float>(n);
      float var = ref_sum_sq_diff(row, mean, n) / static_cast<float>(n);
      float inv_std = 1.0f / std::sqrt(var + 1e-5f);
      for (int j = 0; j < n; ++j) {
        float xhat = (row[j] - mean) * inv_std;
        ASSERT_EQ(y.at(i, j), gamma.at(0, j) * xhat + beta.at(0, j))
            << "n=" << n << " (" << i << "," << j << ")";
      }
    }
  }
}

TEST(SimdTest, ScatterKernelsBitIdenticalWithEmptySegments) {
  for (int d : {1, 6, 8, 21, 40}) {
    const int rows = 7;
    Rng rng(800 + d);
    Tensor x = Tensor::xavier({rows, d}, rng);
    // Segment 1 is empty; segment 3 collects most rows.
    std::vector<int> seg{0, 3, 3, 2, 3, 0, 3};
    Tensor pooled = segment_mean(x, seg, 4);
    std::vector<float> ref(static_cast<std::size_t>(4) * d, 0.0f);
    std::vector<float> count(4, 0.0f);
    for (int i = 0; i < rows; ++i) count[seg[i]] += 1.0f;
    for (int i = 0; i < rows; ++i)
      for (int j = 0; j < d; ++j)
        ref[seg[i] * d + j] += (1.0f / count[seg[i]]) * x.at(i, j);
    for (int s = 0; s < 4; ++s)
      for (int j = 0; j < d; ++j)
        ASSERT_EQ(pooled.at(s, j), ref[s * d + j])
            << "segment_mean d=" << d << " (" << s << "," << j << ")";
    for (int j = 0; j < d; ++j)
      ASSERT_EQ(pooled.at(1, j), 0.0f) << "empty segment must stay zero";

    std::vector<int> dst{2, 0, 2, 1, 2, 0, 1};
    std::vector<float> coeff{0.5f, 1.0f, 0.25f, 2.0f, 1.5f, 1.0f, 0.75f};
    Tensor scattered = index_add_rows(x, dst, coeff, 3);
    std::vector<float> ref2(static_cast<std::size_t>(3) * d, 0.0f);
    for (int i = 0; i < rows; ++i)
      for (int j = 0; j < d; ++j)
        ref2[dst[i] * d + j] += coeff[i] * x.at(i, j);
    for (int r = 0; r < 3; ++r)
      for (int j = 0; j < d; ++j)
        ASSERT_EQ(scattered.at(r, j), ref2[r * d + j])
            << "index_add_rows d=" << d << " (" << r << "," << j << ")";
  }
}

TEST(TensorTest, NumelIsInt64ForHugeShapes) {
  // 100000 * 30000 = 3e9 overflows int32; numel must report it exactly.
  Shape huge{100000, 30000};
  EXPECT_EQ(huge.numel(), static_cast<std::int64_t>(3000000000LL));
  Shape negative_check{46341, 46341};  // 2147488281 > 2^31 - 1
  EXPECT_GT(negative_check.numel(), 0);
}

TEST(TensorTest, ConstGradAccessDoesNotAllocate) {
  Tensor t = Tensor::zeros({2, 3}, /*requires_grad=*/true);
  const Tensor& ct = t;
  EXPECT_FALSE(t.grad_allocated());
  EXPECT_EQ(ct.grad(), nullptr);       // const read must not materialize
  EXPECT_FALSE(t.grad_allocated());    // ... and must leave no trace
  float* g = t.grad();                 // mutable access materializes zeros
  ASSERT_NE(g, nullptr);
  EXPECT_TRUE(t.grad_allocated());
  EXPECT_EQ(ct.grad(), g);
  EXPECT_EQ(ct.grad()[0], 0.0f);
}

// --- Inference mode (tape-free forward) -------------------------------------

TEST(TensorTest, InferenceModeBitIdenticalToTrainModeForward) {
  // A forward chain exercising every op the GNN inference path uses:
  // embedding gather, matmul, fused bias+act, scatter add, layer norm,
  // segment pooling, log-softmax. The guard must change no bits.
  Rng rng(9001);
  Tensor table = Tensor::xavier({10, 16}, rng);
  Tensor w = Tensor::xavier({16, 16}, rng);
  Tensor b = Tensor::zeros({1, 16}, true);
  Tensor gamma = Tensor::full({1, 16}, 1.0f, true);
  Tensor beta = Tensor::zeros({1, 16}, true);
  Tensor head = Tensor::xavier({16, 5}, rng);
  Tensor head_b = Tensor::zeros({1, 5}, true);
  std::vector<int> idx{0, 3, 7, 2, 9, 5};
  std::vector<int> dst{0, 1, 2, 3, 4, 5};
  std::vector<float> coeff{1.0f, 0.5f, 1.0f, 0.25f, 1.0f, 2.0f};
  std::vector<int> seg{0, 0, 0, 1, 1, 1};

  auto run = [&] {
    Tensor h = embedding(table, idx);
    h = add_bias_act(matmul(h, w), b, Act::Relu);
    h = index_add_rows(h, dst, coeff, 6);
    h = layer_norm(h, gamma, beta);
    Tensor pooled = segment_mean(h, seg, 2);
    return log_softmax(add_bias_act(matmul(pooled, head), head_b, Act::None));
  };

  Tensor train_mode = run();
  EXPECT_TRUE(train_mode.requires_grad());
  Tensor infer_mode;
  {
    EXPECT_FALSE(inference_mode());
    InferenceGuard guard;
    EXPECT_TRUE(inference_mode());
    infer_mode = run();
  }
  EXPECT_FALSE(inference_mode());

  ASSERT_EQ(train_mode.numel(), infer_mode.numel());
  for (std::int64_t i = 0; i < train_mode.numel(); ++i)
    ASSERT_EQ(train_mode.data()[i], infer_mode.data()[i]) << "entry " << i;

  // Tape-free means exactly that: no parents, no closure, no grad state.
  auto node = infer_mode.node();
  EXPECT_FALSE(node->requires_grad);
  EXPECT_EQ(node->num_parents, 0);
  EXPECT_FALSE(static_cast<bool>(node->backward_fn));
  EXPECT_FALSE(infer_mode.grad_allocated());
  // And the parameters' gradient buffers were never materialized by it.
  EXPECT_FALSE(w.grad_allocated());
  EXPECT_FALSE(table.grad_allocated());
}

TEST(TensorTest, InferenceGuardNestsAndRestoresRecording) {
  Tensor a = Tensor::full({1, 1}, 2.0f, true);
  {
    InferenceGuard outer;
    {
      InferenceGuard inner;
      EXPECT_TRUE(inference_mode());
    }
    EXPECT_TRUE(inference_mode());  // inner exit restores outer, not "off"
    Tensor y = mul(a, a);
    EXPECT_FALSE(y.requires_grad());
  }
  // Recording resumes after the scope: backward works again.
  Tensor y = mul(a, a);
  ASSERT_TRUE(y.requires_grad());
  y.backward();
  EXPECT_NEAR(a.grad()[0], 4.0f, 1e-6f);
}

TEST(TensorTest, BackwardThroughSharedSubgraph) {
  // y = a*a used twice: gradients must accumulate once per use.
  Tensor a = Tensor::full({1, 1}, 3.0f, true);
  Tensor sq = mul(a, a);
  Tensor loss = add(sq, sq);  // d/da = 2 * 2a = 12
  loss.backward();
  EXPECT_NEAR(a.grad()[0], 12.0f, 1e-4f);
}

}  // namespace
}  // namespace irgnn::tensor
