// Tensor/autograd tests. The core of the suite is numerical gradient
// checking: for every differentiable op we compare the analytic gradient to
// central finite differences on random inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/optimizer.h"
#include "tensor/tensor.h"

namespace irgnn::tensor {
namespace {

/// Central-difference gradient check of `loss_fn` wrt `input`'s entries.
/// loss_fn must rebuild the graph from scratch at each call.
void grad_check(Tensor input,
                const std::function<Tensor()>& loss_fn,
                float tolerance = 2e-2f) {
  input.zero_grad();  // leaf grads persist across checks; start clean
  Tensor loss = loss_fn();
  loss.backward();
  std::vector<float> analytic(input.grad(), input.grad() + input.numel());

  const float eps = 1e-2f;
  for (int i = 0; i < input.numel(); ++i) {
    float saved = input.data()[i];
    input.data()[i] = saved + eps;
    float up = loss_fn().item();
    input.data()[i] = saved - eps;
    float down = loss_fn().item();
    input.data()[i] = saved;
    float numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric,
                tolerance * std::max(1.0f, std::fabs(numeric)))
        << "entry " << i;
  }
}

Tensor sum_all(const Tensor& t) {
  // Reduce to scalar via segment_mean + scale (mean * n == sum).
  std::vector<int> seg(t.rows(), 0);
  Tensor pooled = segment_mean(t, seg, 1);
  Tensor ones = Tensor::full({t.cols(), 1}, 1.0f);
  return scale(matmul(pooled, ones), static_cast<float>(t.rows()));
}

TEST(TensorTest, ConstructorsAndAccessors) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.at(1, 2), 0.0f);
  Tensor f = Tensor::full({2, 2}, 3.5f);
  EXPECT_EQ(f.at(0, 1), 3.5f);
  Tensor d = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(d.at(1, 0), 3.0f);
}

TEST(TensorTest, MatmulForward) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154);
}

TEST(TensorTest, BlockedMatmulMatchesNaiveReference) {
  // The blocked/transposed kernel against a straight triple loop, on shapes
  // deliberately not multiples of any block size (1, primes, pow2 +/- 1).
  struct Case {
    int m, k, n;
  };
  for (const Case& c : {Case{1, 1, 1}, Case{3, 5, 2}, Case{17, 31, 13},
                        Case{64, 64, 64}, Case{65, 33, 17}, Case{128, 1, 9},
                        Case{1, 200, 1}, Case{47, 16, 129}}) {
    Rng rng(1000 + c.m + c.k + c.n);
    Tensor a = Tensor::xavier({c.m, c.k}, rng);
    Tensor b = Tensor::xavier({c.k, c.n}, rng);
    Tensor prod = matmul(a, b);
    for (int i = 0; i < c.m; ++i)
      for (int j = 0; j < c.n; ++j) {
        float ref = 0.0f;
        for (int l = 0; l < c.k; ++l) ref += a.at(i, l) * b.at(l, j);
        ASSERT_NEAR(prod.at(i, j), ref, 1e-5f)
            << c.m << "x" << c.k << "x" << c.n << " at (" << i << "," << j
            << ")";
      }
  }
}

TEST(TensorTest, MatmulGradient) {
  Rng rng(1);
  Tensor a = Tensor::xavier({3, 4}, rng);
  Tensor b = Tensor::xavier({4, 2}, rng);
  grad_check(a, [&] { return sum_all(matmul(a, b)); });
  grad_check(b, [&] { return sum_all(matmul(a, b)); });
}

TEST(TensorTest, ElementwiseGradients) {
  Rng rng(2);
  Tensor a = Tensor::xavier({3, 3}, rng);
  Tensor b = Tensor::xavier({3, 3}, rng);
  grad_check(a, [&] { return sum_all(add(a, b)); });
  grad_check(a, [&] { return sum_all(sub(a, b)); });
  grad_check(a, [&] { return sum_all(mul(a, b)); });
  grad_check(b, [&] { return sum_all(mul(a, b)); });
}

TEST(TensorTest, ActivationGradients) {
  Rng rng(3);
  Tensor a = Tensor::xavier({4, 4}, rng);
  grad_check(a, [&] { return sum_all(tanh_t(a)); });
  grad_check(a, [&] { return sum_all(sigmoid(a)); });
  // relu is non-differentiable at 0; nudge values away from it.
  for (int i = 0; i < a.numel(); ++i)
    if (std::fabs(a.data()[i]) < 0.1f) a.data()[i] = 0.5f;
  grad_check(a, [&] { return sum_all(relu(a)); });
}

TEST(TensorTest, AddBiasGradient) {
  Rng rng(4);
  Tensor a = Tensor::xavier({3, 4}, rng);
  Tensor b = Tensor::xavier({1, 4}, rng);
  grad_check(b, [&] { return sum_all(add_bias(a, b)); });
}

TEST(TensorTest, FusedBiasActivationMatchesUnfused) {
  Rng rng(11);
  Tensor a = Tensor::xavier({5, 6}, rng);
  Tensor b = Tensor::xavier({1, 6}, rng);
  Tensor fused_relu = add_bias_act(a, b, Act::Relu);
  Tensor unfused_relu = relu(add_bias_act(a, b, Act::None));
  Tensor fused_tanh = add_bias_act(a, b, Act::Tanh);
  Tensor unfused_tanh = tanh_t(add_bias_act(a, b, Act::None));
  Tensor fused_sig = add_bias_act(a, b, Act::Sigmoid);
  Tensor unfused_sig = sigmoid(add_bias_act(a, b, Act::None));
  for (int i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(fused_relu.node()->data[i], unfused_relu.node()->data[i]);
    EXPECT_NEAR(fused_tanh.node()->data[i], unfused_tanh.node()->data[i],
                1e-7f);
    EXPECT_NEAR(fused_sig.node()->data[i], unfused_sig.node()->data[i],
                1e-7f);
  }
}

TEST(TensorTest, FusedBiasActivationGradients) {
  Rng rng(12);
  Tensor a = Tensor::xavier({4, 5}, rng);
  Tensor b = Tensor::xavier({1, 5}, rng);
  // relu is non-differentiable at 0; nudge pre-activations away from it.
  for (int i = 0; i < a.numel(); ++i)
    if (std::fabs(a.data()[i]) < 0.1f) a.data()[i] = 0.4f;
  grad_check(a, [&] { return sum_all(add_bias_act(a, b, Act::Tanh)); });
  grad_check(b, [&] { return sum_all(add_bias_act(a, b, Act::Tanh)); });
  grad_check(a, [&] { return sum_all(add_bias_act(a, b, Act::Sigmoid)); });
  grad_check(a, [&] { return sum_all(mul(add_bias_act(a, b, Act::Relu),
                                         add_bias_act(a, b, Act::Relu))); });
}

TEST(TensorTest, LayerNormGradient) {
  Rng rng(5);
  Tensor x = Tensor::xavier({3, 6}, rng);
  Tensor gamma = Tensor::full({1, 6}, 1.0f, true);
  Tensor beta = Tensor::zeros({1, 6}, true);
  grad_check(x, [&] { return sum_all(mul(layer_norm(x, gamma, beta),
                                         layer_norm(x, gamma, beta))); });
  grad_check(gamma,
             [&] { return sum_all(mul(layer_norm(x, gamma, beta),
                                      layer_norm(x, gamma, beta))); });
}

TEST(TensorTest, LayerNormNormalizes) {
  Rng rng(6);
  Tensor x = Tensor::xavier({2, 8}, rng);
  Tensor gamma = Tensor::full({1, 8}, 1.0f);
  Tensor beta = Tensor::zeros({1, 8});
  Tensor y = layer_norm(x, gamma, beta);
  for (int i = 0; i < 2; ++i) {
    float mean = 0;
    for (int j = 0; j < 8; ++j) mean += y.at(i, j);
    EXPECT_NEAR(mean / 8, 0.0f, 1e-5f);
  }
}

TEST(TensorTest, EmbeddingGradientAccumulates) {
  Tensor table = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6}, true);
  Tensor out = embedding(table, {0, 2, 0});
  EXPECT_FLOAT_EQ(out.at(2, 1), 2);
  Tensor loss = sum_all(out);
  loss.backward();
  EXPECT_FLOAT_EQ(table.grad()[0], 2);  // row 0 used twice
  EXPECT_FLOAT_EQ(table.grad()[4], 1);  // row 2 used once
  EXPECT_FLOAT_EQ(table.grad()[2], 0);  // row 1 unused
}

TEST(TensorTest, IndexAddRowsForwardAndGradient) {
  Rng rng(7);
  Tensor x = Tensor::xavier({4, 3}, rng);
  std::vector<int> dst{0, 1, 0, 1};
  std::vector<float> coeff{0.5f, 1.0f, 0.5f, 1.0f};
  Tensor out = index_add_rows(x, dst, coeff, 2);
  EXPECT_NEAR(out.at(0, 0), 0.5f * (x.at(0, 0) + x.at(2, 0)), 1e-5f);
  grad_check(x, [&] { return sum_all(mul(index_add_rows(x, dst, coeff, 2),
                                         index_add_rows(x, dst, coeff, 2))); });
}

TEST(TensorTest, SegmentMeanForward) {
  Tensor x = Tensor::from_data({4, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
  Tensor out = segment_mean(x, {0, 0, 1, 1}, 2);
  EXPECT_FLOAT_EQ(out.at(0, 0), 2);
  EXPECT_FLOAT_EQ(out.at(1, 1), 7);
}

TEST(TensorTest, LogSoftmaxRowsSumToOne) {
  Rng rng(8);
  Tensor x = Tensor::xavier({3, 5}, rng);
  Tensor lp = log_softmax(x);
  for (int i = 0; i < 3; ++i) {
    float sum = 0;
    for (int j = 0; j < 5; ++j) sum += std::exp(lp.at(i, j));
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TensorTest, NllLossGradient) {
  Rng rng(9);
  Tensor x = Tensor::xavier({4, 3}, rng);
  std::vector<int> targets{0, 2, 1, 2};
  grad_check(x, [&] { return nll_loss(log_softmax(x), targets); });
}

TEST(TensorTest, DropoutIdentityInEval) {
  Rng rng(10);
  Tensor x = Tensor::full({2, 2}, 3.0f);
  Tensor y = dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_EQ(y.at(0, 0), 3.0f);
}

TEST(TensorTest, ArgmaxRows) {
  Tensor x = Tensor::from_data({2, 3}, {1, 5, 2, 9, 0, 3});
  auto idx = argmax_rows(x);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 0);
}

TEST(OptimizerTest, AdamMinimizesQuadratic) {
  // minimize ||w - target||^2
  Tensor w = Tensor::zeros({1, 4}, true);
  Tensor target = Tensor::from_data({1, 4}, {1, -2, 3, -4});
  Adam adam({w}, {.lr = 0.1f});
  for (int step = 0; step < 300; ++step) {
    adam.zero_grad();
    Tensor diff = sub(w, target);
    Tensor loss = sum_all(mul(diff, diff));
    loss.backward();
    adam.step();
  }
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(w.data()[i], target.data()[i], 0.05f);
}

TEST(OptimizerTest, SgdMomentumMinimizes) {
  Tensor w = Tensor::full({1, 2}, 5.0f, true);
  Sgd sgd({w}, 0.05f, 0.9f);
  for (int step = 0; step < 200; ++step) {
    sgd.zero_grad();
    Tensor loss = sum_all(mul(w, w));
    loss.backward();
    sgd.step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 0.05f);
}

TEST(TensorTest, BackwardThroughSharedSubgraph) {
  // y = a*a used twice: gradients must accumulate once per use.
  Tensor a = Tensor::full({1, 1}, 3.0f, true);
  Tensor sq = mul(a, a);
  Tensor loss = add(sq, sq);  // d/da = 2 * 2a = 12
  loss.backward();
  EXPECT_NEAR(a.grad()[0], 12.0f, 1e-4f);
}

}  // namespace
}  // namespace irgnn::tensor
