// Fig. 7 — Number of predictions per label for Skylake trained natively
// with 6 labels: how often each label is the oracle, how often the model
// predicted it, and how many predictions were correct. Rare labels are hard
// to predict; mispredictions correlate with oracle frequency.
#include "bench/bench_common.h"
#include "ml/cross_validation.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig7_label_breakdown",
      "Fig. 7: oracle / predicted / correct counts per label (Skylake, 6 "
      "labels)");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);
  options.num_labels = 6;

  core::ExperimentResult res =
      core::run_experiment(sim::MachineDesc::skylake(), options);
  std::vector<int> predictions;
  std::vector<int> truth;
  for (const auto& r : res.regions) {
    predictions.push_back(r.static_label);
    truth.push_back(r.oracle_label);
  }
  ml::LabelTally tally =
      ml::tally_labels(predictions, truth, static_cast<int>(res.labels.size()));

  Table table({"label", "configuration", "oracle", "predicted", "correct"});
  for (std::size_t l = 0; l < res.labels.size(); ++l)
    table.add_row({std::to_string(l + 1),
                   res.table.configurations[res.labels[l]].to_string(),
                   std::to_string(tally.oracle[l]),
                   std::to_string(tally.predicted[l]),
                   std::to_string(tally.correct[l])});
  std::printf("\n=== Fig. 7 [Skylake, 6 labels] predictions per label ===\n");
  bench::finish(table, parser);
  return 0;
}
