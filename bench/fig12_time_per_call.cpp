// Fig. 12 — Execution time per call (in cycles) of four regions with
// dynamic behaviour (the ones static models mispredict) alongside SP as a
// stable reference, at the default configuration on Skylake. The unstable
// per-call profiles are the behaviour static information cannot capture.
//
// A second section benchmarks the parallel execution engine itself: GNN
// training and inference wall-clock at num_threads=1 vs =4, asserting that
// the outputs stay bit-identical while only the wall-clock changes.
//
// A third section times the SIMD matmul kernel at one thread against the
// recorded pre-SIMD scalar baseline (measured on the same shapes before the
// kernels were vectorized), plus the arena's malloc-vs-pool counters — the
// before/after of the "SIMD kernels + zero-allocation hot path" engine
// work. See bench/microbench_kernels.cpp for the full per-kernel breakdown.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "bench/bench_common.h"
#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "sim/simulator.h"
#include "workloads/suite.h"

using namespace irgnn;

namespace {

struct EngineRun {
  double train_seconds = 0;
  double infer_seconds = 0;
  std::vector<double> epoch_loss;
  std::vector<int> predictions;
};

EngineRun run_engine(const std::vector<const graph::ProgramGraph*>& graphs,
                     const std::vector<int>& labels, int epochs,
                     int num_threads, int restore_threads) {
  tensor::set_kernel_parallelism(num_threads);
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 4;
  cfg.hidden_dim = 64;
  cfg.num_layers = 3;
  cfg.epochs = epochs;
  cfg.dropout = 0.1f;
  cfg.seed = 0xF16;
  cfg.num_threads = num_threads;
  gnn::StaticModel model(cfg);

  EngineRun run;
  auto t0 = std::chrono::steady_clock::now();
  gnn::TrainStats stats = model.train(graphs, labels);
  auto t1 = std::chrono::steady_clock::now();
  for (int rep = 0; rep < 8; ++rep) run.predictions = model.predict(graphs);
  auto t2 = std::chrono::steady_clock::now();

  run.train_seconds = std::chrono::duration<double>(t1 - t0).count();
  run.infer_seconds = std::chrono::duration<double>(t2 - t1).count();
  run.epoch_loss = stats.epoch_loss;
  // Reinstate the --threads cap the user asked for, not "all cores".
  tensor::set_kernel_parallelism(restore_threads);
  return run;
}

bool bit_identical(const EngineRun& a, const EngineRun& b) {
  return a.epoch_loss.size() == b.epoch_loss.size() &&
         std::memcmp(a.epoch_loss.data(), b.epoch_loss.data(),
                     a.epoch_loss.size() * sizeof(double)) == 0 &&
         a.predictions == b.predictions;
}

void engine_scaling_section(const ArgParser& parser) {
  // A training set heavy enough to occupy several workers: every suite
  // region graph, labelled by a structural proxy.
  const auto& suite = workloads::benchmark_suite();
  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> graphs;
  std::vector<int> labels;
  for (std::size_t r = 0; r < suite.size(); ++r) {
    auto module = workloads::build_region_module(suite[r]);
    owned.push_back(graph::build_graph(*module));
    labels.push_back(static_cast<int>(r) % 4);
  }
  for (const auto& g : owned) graphs.push_back(&g);

  const int epochs = static_cast<int>(parser.get_int("epochs"));
  const int base_threads = static_cast<int>(parser.get_int("threads"));
  EngineRun serial = run_engine(graphs, labels, epochs, 1, base_threads);
  EngineRun parallel = run_engine(graphs, labels, epochs, 4, base_threads);

  Table table({"stage", "num_threads=1 [s]", "num_threads=4 [s]", "speedup",
               "bit-identical"});
  const char* identical = bit_identical(serial, parallel) ? "yes" : "NO";
  table.add_row({"training", Table::fmt(serial.train_seconds, 3),
                 Table::fmt(parallel.train_seconds, 3),
                 Table::fmt(serial.train_seconds / parallel.train_seconds, 2),
                 identical});
  table.add_row({"inference", Table::fmt(serial.infer_seconds, 3),
                 Table::fmt(parallel.infer_seconds, 3),
                 Table::fmt(serial.infer_seconds / parallel.infer_seconds, 2),
                 identical});
  std::printf("\n=== Parallel engine scaling (GNN training/inference, %zu "
              "region graphs) ===\n",
              graphs.size());
  table.print();
  std::printf("(hardware_concurrency=%u; speedups need real cores)\n",
              std::thread::hardware_concurrency());
}

void kernel_engine_section(const ArgParser& parser) {
  // Recorded baselines, both measured with this harness at 1 thread on the
  // same machine class (Release): the pre-SIMD scalar kernels (before PR 2)
  // and the PR 2 single-dot SIMD kernels (before the PR 3 register-blocked
  // micro-kernel). The point of the table is the shape of the win, not the
  // exact host.
  struct Case {
    int m, k, n;
    double scalar_ms;  // pre-SIMD (PR 1)
    double simd_ms;    // PR 2 one-dot-per-element kernel
  };
  const Case cases[] = {{256, 256, 256, 8.70, 2.36},
                        {2048, 64, 64, 2.88, 0.82},
                        {512, 128, 512, 15.07, 4.70}};

  const int restore = static_cast<int>(parser.get_int("threads"));
  tensor::set_kernel_parallelism(1);
  Table table({"matmul fwd shape", "pre-SIMD [ms]", "PR2 SIMD [ms]",
               "now [ms]", "vs scalar", "vs PR2", "GFLOP/s now"});
  Rng rng(0xF12);
  for (const Case& c : cases) {
    tensor::Tensor a = tensor::Tensor::xavier({c.m, c.k}, rng);
    tensor::Tensor b = tensor::Tensor::xavier({c.k, c.n}, rng);
    for (int i = 0; i < 3; ++i) tensor::matmul(a, b);  // warm arena + cache
    std::vector<double> times;
    for (int i = 0; i < 9; ++i) {
      auto t0 = std::chrono::steady_clock::now();
      tensor::matmul(a, b);
      auto t1 = std::chrono::steady_clock::now();
      times.push_back(
          std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    std::sort(times.begin(), times.end());
    const double ms = times[times.size() / 2];
    const double flops = 2.0 * c.m * c.k * c.n;
    table.add_row({std::to_string(c.m) + "x" + std::to_string(c.k) + "x" +
                       std::to_string(c.n),
                   Table::fmt(c.scalar_ms, 2), Table::fmt(c.simd_ms, 2),
                   Table::fmt(ms, 2), Table::fmt(c.scalar_ms / ms, 2),
                   Table::fmt(c.simd_ms / ms, 2),
                   Table::fmt(flops / (ms * 1e-3) / 1e9, 2)});
  }
  tensor::set_kernel_parallelism(restore);
  std::printf("\n=== Kernel engine (matmul fwd, 1 thread, vs recorded "
              "pre-SIMD and PR 2 baselines) ===\n");
  table.print();
  support::BufferPool::Stats stats = support::BufferPool::global().stats();
  std::printf("arena: %llu mallocs total vs %llu pool hits (warm kernels "
              "allocate nothing; see microbench_kernels)\n",
              static_cast<unsigned long long>(stats.malloc_calls),
              static_cast<unsigned long long>(stats.pool_hits));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig12_time_per_call", "Fig. 12: execution time per call (cycles)");
  if (!parser.parse(argc, argv)) return 1;

  const sim::MachineDesc machine = sim::MachineDesc::skylake();
  sim::Simulator simulator(machine);
  sim::Configuration config = sim::default_configuration(machine);

  const std::vector<std::string> regions = {
      "kmeans", "mg residual", "bfs 135", "cfd 347", "sp rhs"};

  Table table({"call", "kmeans", "mg residual", "bfs 135", "cfd 347",
               "sp rhs (reference)"});
  std::vector<std::vector<double>> series;
  for (const auto& name : regions) {
    const workloads::RegionSpec* spec = workloads::find_region(name);
    series.push_back(simulator.per_call_cycles(spec->traits, config));
  }
  for (std::size_t call = 0; call < series[0].size(); ++call) {
    std::vector<std::string> row{std::to_string(call)};
    for (const auto& s : series)
      row.push_back(Table::fmt(s[call] / 1e6, 2));
    table.add_row(row);
  }
  std::printf("\n=== Fig. 12 [Skylake] cycles per call (millions) at the "
              "default configuration ===\n");
  bench::finish(table, parser);

  for (std::size_t i = 0; i < regions.size(); ++i) {
    double lo = *std::min_element(series[i].begin(), series[i].end());
    double hi = *std::max_element(series[i].begin(), series[i].end());
    std::printf("variation[%s]: max/min = %.2fx %s\n", regions[i].c_str(),
                hi / lo, i + 1 == regions.size() ? "(stable reference)" : "");
  }

  engine_scaling_section(parser);
  kernel_engine_section(parser);
  return 0;
}
