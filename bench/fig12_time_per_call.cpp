// Fig. 12 — Execution time per call (in cycles) of four regions with
// dynamic behaviour (the ones static models mispredict) alongside SP as a
// stable reference, at the default configuration on Skylake. The unstable
// per-call profiles are the behaviour static information cannot capture.
#include "bench/bench_common.h"
#include "sim/simulator.h"
#include "workloads/suite.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig12_time_per_call", "Fig. 12: execution time per call (cycles)");
  if (!parser.parse(argc, argv)) return 1;

  const sim::MachineDesc machine = sim::MachineDesc::skylake();
  sim::Simulator simulator(machine);
  sim::Configuration config = sim::default_configuration(machine);

  const std::vector<std::string> regions = {
      "kmeans", "mg residual", "bfs 135", "cfd 347", "sp rhs"};

  Table table({"call", "kmeans", "mg residual", "bfs 135", "cfd 347",
               "sp rhs (reference)"});
  std::vector<std::vector<double>> series;
  for (const auto& name : regions) {
    const workloads::RegionSpec* spec = workloads::find_region(name);
    series.push_back(simulator.per_call_cycles(spec->traits, config));
  }
  for (std::size_t call = 0; call < series[0].size(); ++call) {
    std::vector<std::string> row{std::to_string(call)};
    for (const auto& s : series)
      row.push_back(Table::fmt(s[call] / 1e6, 2));
    table.add_row(row);
  }
  std::printf("\n=== Fig. 12 [Skylake] cycles per call (millions) at the "
              "default configuration ===\n");
  bench::finish(table, parser);

  for (std::size_t i = 0; i < regions.size(); ++i) {
    double lo = *std::min_element(series[i].begin(), series[i].end());
    double hi = *std::max_element(series[i].begin(), series[i].end());
    std::printf("variation[%s]: max/min = %.2fx %s\n", regions[i].c_str(),
                hi / lo, i + 1 == regions.size() ? "(stable reference)" : "");
  }
  return 0;
}
