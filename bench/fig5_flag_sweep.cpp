// Fig. 5 — Arithmetic-average speedup achieved per flag sequence, with the
// explored-flag-sequence choice marked, on Skylake and Sandy Bridge.
// Higher is better; selecting sequences matters (the paper reports a
// 1.6x..1.9x spread on Sandy Bridge).
#include <algorithm>

#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig5_flag_sweep", "Fig. 5: performance gain per flag sequence");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);
  // This figure is about the sequence landscape; widen the sweep (the paper
  // used 1000 sequences — scale with --sequences).
  options.num_sequences = std::max<std::size_t>(options.num_sequences, 10);

  for (const auto& machine :
       {sim::MachineDesc::skylake(), sim::MachineDesc::sandy_bridge()}) {
    core::ExperimentResult res = core::run_experiment(machine, options);
    Table table({"sequence", "avg_speedup", "marker"});
    for (std::size_t s = 0; s < res.sequence_speedup.size(); ++s) {
      table.add_row({std::to_string(s), Table::fmt(res.sequence_speedup[s]),
                     static_cast<int>(s) == res.explored_sequence
                         ? "<- explored flag seq"
                         : ""});
    }
    std::printf("\n=== Fig. 5 [%s] average speedup per flag sequence ===\n",
                machine.name.c_str());
    bench::finish(table, parser);
    double lo = *std::min_element(res.sequence_speedup.begin(),
                                  res.sequence_speedup.end());
    double hi = *std::max_element(res.sequence_speedup.begin(),
                                  res.sequence_speedup.end());
    std::printf("spread[%s]: %.3fx .. %.3fx across %zu sequences\n",
                machine.name.c_str(), lo, hi, res.sequence_speedup.size());
  }
  return 0;
}
