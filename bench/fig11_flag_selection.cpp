// Fig. 11 — Average speedup across all validation regions using the four
// flag-sequence selection strategies: explored (best sequence on training
// regions), overall (best single sequence a posteriori), predicted (the
// per-program flag-prediction decision tree) and oracle (best sequence per
// region). Higher is better.
#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig11_flag_selection", "Fig. 11: flag-sequence selection strategies");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  Table table({"machine", "explored_flag_seq", "overall_flag_seq",
               "predicted_flag_seq", "oracle_flag_seq"});
  Table serve_table({"machine", "serve_queries", "forwards", "batches",
                     "cache_hits", "hit_rate", "shed", "rejected",
                     "deadline_exceeded"});
  for (const auto& machine :
       {sim::MachineDesc::skylake(), sim::MachineDesc::sandy_bridge()}) {
    core::ExperimentResult res = core::run_experiment(machine, options);
    table.add_row({machine.name, Table::fmt(res.explored_speedup),
                   Table::fmt(res.overall_speedup),
                   Table::fmt(res.predicted_speedup),
                   Table::fmt(res.oracle_seq_speedup)});
    serve_table.add_row(
        {machine.name, std::to_string(res.serve_queries),
         std::to_string(res.serve_forwards), std::to_string(res.serve_batches),
         std::to_string(res.serve_cache_hits),
         Table::fmt(res.serve_queries
                        ? static_cast<double>(res.serve_cache_hits) /
                              static_cast<double>(res.serve_queries)
                        : 0.0,
                    3),
         std::to_string(res.serve_shed), std::to_string(res.serve_rejected),
         std::to_string(res.serve_deadline_exceeded)});
  }
  std::printf("\n=== Fig. 11 flag-selection strategies (higher is better) "
              "===\n");
  bench::finish(table, parser);
  std::printf("\n=== Serving-layer traffic from the fold query loops "
              "(cache hits = flag variants that optimized to structurally "
              "identical graphs; the fold servers are unbounded, so the "
              "shed/rejected/deadline columns pin that no experiment query "
              "was ever dropped) ===\n");
  serve_table.print();
  const std::string csv = parser.get_string("csv");
  if (!csv.empty() && serve_table.write_csv(csv + ".serve.csv"))
    std::printf("(serve traffic csv written to %s.serve.csv)\n", csv.c_str());
  return 0;
}
