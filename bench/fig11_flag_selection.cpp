// Fig. 11 — Average speedup across all validation regions using the four
// flag-sequence selection strategies: explored (best sequence on training
// regions), overall (best single sequence a posteriori), predicted (the
// per-program flag-prediction decision tree) and oracle (best sequence per
// region). Higher is better.
#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig11_flag_selection", "Fig. 11: flag-sequence selection strategies");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  Table table({"machine", "explored_flag_seq", "overall_flag_seq",
               "predicted_flag_seq", "oracle_flag_seq"});
  for (const auto& machine :
       {sim::MachineDesc::skylake(), sim::MachineDesc::sandy_bridge()}) {
    core::ExperimentResult res = core::run_experiment(machine, options);
    table.add_row({machine.name, Table::fmt(res.explored_speedup),
                   Table::fmt(res.overall_speedup),
                   Table::fmt(res.predicted_speedup),
                   Table::fmt(res.oracle_seq_speedup)});
  }
  std::printf("\n=== Fig. 11 flag-selection strategies (higher is better) "
              "===\n");
  bench::finish(table, parser);
  return 0;
}
