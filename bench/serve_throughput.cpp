// Load generator for serve::InferenceServer: closed-loop latency/throughput
// at 1 and 4 client threads, an open-loop burst showing micro-batch
// amortization, a cache hit-vs-miss section, a flash-crowd section gating
// in-flight coalescing, a Zipf-distributed fingerprint workload, a
// predictive-warming before/after comparison, the buffer arena's high-water
// mark + idle-trim behaviour, and (--overload) an admission-control section
// that slams a bounded queue with a burst and gates the shedding contract.
// Results also land in a machine-readable JSON file (--json, uploaded as a
// CI artifact) with qps, p99 and hit-rate per section.
//
// Like microbench_kernels, contract violations are a nonzero exit so the CI
// smoke runs (--quick, --quick --overload) are real gates:
//   - every served label must equal the pinned model's serial predict
//     (determinism under batching/caching/coalescing/warming/shedding),
//   - a warm single-client pass must pull zero bytes from malloc through
//     the pool,
//   - a warm cache hit must be at least 10x faster than a miss,
//   - a flash crowd of N clients on one cold fingerprint performs exactly
//     one model forward (everyone else coalesces or hits),
//   - coalescing conservation: cache hits + misses + coalesced == queries,
//     on the flash-crowd and Zipf sections,
//   - predictive warming must beat the no-warming baseline's hit+coalesced
//     rate on the same sibling-group sweep,
//   - the idle grace period must trigger an arena trim,
//   - under --overload: the bounded queue actually sheds (Overloaded within
//     the bound, conservation of answered+shed+rejected), the admitted
//     queue depth never exceeds max_queue, admitted answers stay
//     bit-identical, and p99 latency of admitted requests stays bounded.
//   - under --faults (needs a library built with -DIRGNN_FAILPOINTS=ON;
//     skipped, not failed, otherwise): a scripted outage — healthy window,
//     100% forward-failure window, recovery window — must trip the circuit
//     breaker exactly once, short-circuit misses without spending a single
//     forward on the failing model, keep answering whatever the cache
//     holds, close the breaker on the first half-open probe after the
//     fault clears, and return to a zero-error healthy state; p99 and
//     error rate per window land in the JSON artifact.
//
//   ./serve_throughput --threads 1 --queries 5000
//   ./serve_throughput --quick              (CI smoke)
//   ./serve_throughput --quick --overload   (CI admission-control smoke)
//   ./serve_throughput --quick --faults     (CI failure-containment smoke)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "gnn/model.h"
#include "gnn/quantize.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "serve/router.h"
#include "serve/server.h"
#include "support/arena.h"
#include "support/argparse.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;
using Clock = std::chrono::steady_clock;

namespace {

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles percentiles(std::vector<double>& latencies_us) {
  Percentiles out;
  if (latencies_us.empty()) return out;
  std::sort(latencies_us.begin(), latencies_us.end());
  auto at = [&](double q) {
    std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[i];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  return out;
}

std::string fmt_bytes(std::uint64_t bytes) {
  return Table::fmt(static_cast<double>(bytes) / 1024.0, 1) + " KiB";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("serve_throughput",
                   "open/closed-loop load generator for the inference "
                   "server (latency percentiles, qps, cache hit rate, "
                   "malloc bytes per query, admission control)");
  parser.add("queries", "5000", "closed-loop queries per client thread")
      .add("hidden", "64", "served model hidden dimension")
      .add("layers", "3", "served model RGCN layers")
      .add("max-batch", "64", "micro-batch flush size")
      .add("wait-us", "200", "micro-batch window in microseconds")
      .add("cache", "4096", "prediction cache entries (0 disables)")
      .add("max-queue", "32", "admission bound for the --overload section")
      .add("overload", "false",
           "also slam a bounded queue with an async burst and gate the "
           "load-shedding contract")
      .add("faults", "false",
           "also run a scripted fault window (healthy -> total forward "
           "failure -> recovery) and gate the circuit-breaker contract; "
           "needs a build with -DIRGNN_FAILPOINTS=ON, skipped otherwise")
      .add("shadow", "false",
           "also quantize the served model to int8 on the bench graphs, "
           "publish float and int8 side by side behind a Router, mirror "
           "the same traffic to both versions and gate speedup/agreement/"
           "per-model conservation")
      .add("json", "BENCH_serve.json",
           "write machine-readable results here (empty disables)")
      .add("quick", "false", "CI smoke: fewer queries, same contract gates");
  bench::add_runtime_flags(parser, /*default_threads=*/"1");
  bench::add_corpus_flags(parser);
  if (!parser.parse(argc, argv)) return 1;

  const bool quick = parser.get_bool("quick");
  const bool overload = parser.get_bool("overload");
  const bool faults = parser.get_bool("faults");
  const bool shadow = parser.get_bool("shadow");
  const int threads = bench::apply_threads(parser);
  const int queries_per_client =
      quick ? 500 : static_cast<int>(parser.get_int("queries"));
  const std::uint64_t seed = 0x5E12E;

  serve::ServerConfig server_config;
  server_config.max_batch =
      std::max<std::int64_t>(1, parser.get_int("max-batch"));
  server_config.max_wait_us = static_cast<int>(parser.get_int("wait-us"));
  server_config.cache_capacity =
      static_cast<std::size_t>(parser.get_int("cache"));

  // --- The served model and its graphs -------------------------------------
  // Default traffic is the synthetic suite; --corpus/--dataset-cache swap in
  // an ingested corpus (bench_common.h) without changing any gate below.
  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> graphs;
  {
    const support::Status corpus_status =
        bench::corpus_traffic(parser, &owned);
    if (!corpus_status.ok()) {
      std::fprintf(stderr, "corpus traffic source failed: %s\n",
                   corpus_status.message());
      return 1;
    }
  }
  if (owned.empty())
    for (const auto& spec : workloads::benchmark_suite()) {
      auto module = workloads::build_region_module(spec);
      owned.push_back(graph::build_graph(*module));
    }
  for (const auto& g : owned) graphs.push_back(&g);

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 13;
  cfg.hidden_dim = static_cast<int>(parser.get_int("hidden"));
  cfg.num_layers = static_cast<int>(parser.get_int("layers"));
  cfg.seed = 0x5EED;
  cfg.num_threads = threads;
  auto model = std::make_shared<const gnn::StaticModel>(cfg);

  // Ground truth for the determinism gate: the same model, queried the
  // plain serial way.
  const std::vector<int> expected = model->predict(graphs);

  // Unique-fingerprint subset for the clean hit-vs-miss measurement
  // (structurally identical suite regions would turn a "miss" pass into
  // partial hits).
  std::vector<std::size_t> unique;
  {
    std::vector<std::uint64_t> seen;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      const std::uint64_t fp = graph::fingerprint(*graphs[g]);
      if (std::find(seen.begin(), seen.end(), fp) == seen.end()) {
        seen.push_back(fp);
        unique.push_back(g);
      }
    }
  }

  int failures = 0;
  // Per-section results for the machine-readable JSON artifact.
  double closed_qps = 0, closed_p99 = 0, closed_hit_rate = 0;
  double zipf_qps = 0, zipf_p99 = 0, zipf_hit_rate = 0;
  std::uint64_t zipf_coalesced = 0;
  std::uint64_t flash_forwards = 0, flash_coalesced = 0, flash_hits = 0;
  double warm_baseline_rate = 0, warm_warmed_rate = 0;
  std::printf("=== serve_throughput (hidden=%d, layers=%d, threads=%d, "
              "max_batch=%d, wait=%dus, cache=%zu) ===\n",
              cfg.hidden_dim, cfg.num_layers, threads,
              server_config.max_batch, server_config.max_wait_us,
              server_config.cache_capacity);

  // --- Cache hit vs miss ----------------------------------------------------
  double miss_p50 = 0, hit_p50 = 0;
  {
    serve::InferenceServer server(model, server_config);
    std::vector<double> miss_lat, hit_lat;
    for (std::size_t g : unique) {
      const auto t0 = Clock::now();
      const serve::Response r = server.predict(*graphs[g]);
      miss_lat.push_back(to_us(Clock::now() - t0));
      if (!r.ok() || r.label != expected[g]) ++failures;
      if (r.source != serve::Source::Batch) ++failures;
    }
    const int hit_reps = quick ? 5 : 20;
    const support::BufferPool::Stats pool_before =
        support::BufferPool::global().stats();
    for (int rep = 0; rep < hit_reps; ++rep) {
      for (std::size_t g : unique) {
        const auto t0 = Clock::now();
        const serve::Response r = server.predict(*graphs[g]);
        hit_lat.push_back(to_us(Clock::now() - t0));
        if (!r.ok() || r.label != expected[g]) ++failures;
        if (server_config.cache_capacity != 0 &&
            r.source != serve::Source::Cache)
          ++failures;
      }
    }
    const support::BufferPool::Stats pool_after =
        support::BufferPool::global().stats();
    const std::uint64_t warm_malloc =
        pool_after.malloc_bytes - pool_before.malloc_bytes;
    miss_p50 = percentiles(miss_lat).p50;
    hit_p50 = percentiles(hit_lat).p50;
    serve::ServerStats stats = server.stats();
    std::printf("\ncache: %zu unique graphs, miss p50 %.1f us, hit p50 "
                "%.2f us (%.0fx), warm malloc %llu B, hit rate %.3f\n",
                unique.size(), miss_p50, hit_p50,
                hit_p50 > 0 ? miss_p50 / hit_p50 : 0.0,
                static_cast<unsigned long long>(warm_malloc),
                stats.cache.hit_rate());
    if (server_config.cache_capacity != 0) {
      if (hit_p50 * 10.0 > miss_p50) {
        ++failures;
        std::printf("FAILED: warm cache hits are not 10x faster than "
                    "misses\n");
      }
      if (warm_malloc != 0) {
        ++failures;
        std::printf("FAILED: warm cache-hit pass pulled bytes from malloc "
                    "through the pool\n");
      }
    }
  }

  // --- Closed loop: 1 and 4 client threads ---------------------------------
  Table closed({"clients", "queries", "p50 [us]", "p95 [us]", "p99 [us]",
                "queries/sec", "src cache", "src batch", "src shed",
                "malloc B/query"});
  for (int clients : {1, 4}) {
    serve::InferenceServer server(model, server_config);
    // Warm pass: every fingerprint cached, arena filled.
    std::vector<serve::Response> warm;
    server.predict_batch(graphs, warm);
    for (std::size_t g = 0; g < graphs.size(); ++g)
      if (!warm[g].ok() || warm[g].label != expected[g]) ++failures;

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<int> wrong{0};
    const support::BufferPool::Stats pool_before =
        support::BufferPool::global().stats();
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        Rng rng(hash_combine64(seed, static_cast<std::uint64_t>(c)));
        auto& lat = latencies[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(queries_per_client));
        for (int q = 0; q < queries_per_client; ++q) {
          const std::size_t g = rng.next_below(graphs.size());
          const auto s0 = Clock::now();
          const serve::Response r = server.predict(*graphs[g]);
          lat.push_back(to_us(Clock::now() - s0));
          if (!r.ok() || r.label != expected[g]) wrong.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const support::BufferPool::Stats pool_after =
        support::BufferPool::global().stats();
    failures += wrong.load();

    std::vector<double> all;
    for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
    const Percentiles p = percentiles(all);
    const double total_queries =
        static_cast<double>(clients) * queries_per_client;
    serve::ServerStats stats = server.stats();
    closed.add_row(
        {std::to_string(clients), std::to_string(static_cast<int>(total_queries)),
         Table::fmt(p.p50, 2), Table::fmt(p.p95, 2), Table::fmt(p.p99, 2),
         Table::fmt(total_queries / wall_s, 0),
         std::to_string(stats.source_cache),
         std::to_string(stats.source_batch),
         std::to_string(stats.source_shed),
         std::to_string(static_cast<std::uint64_t>(
             static_cast<double>(pool_after.malloc_bytes -
                                 pool_before.malloc_bytes) /
             total_queries))});
    if (clients == 4) {
      closed_qps = total_queries / wall_s;
      closed_p99 = p.p99;
      closed_hit_rate = stats.cache.hit_rate();
    }
  }
  std::printf("\n=== Closed loop (every client waits for its answer; warm "
              "cache; unbounded queue, so src shed must read 0) ===\n");
  closed.print();

  // --- Open loop: async burst, micro-batch amortization --------------------
  {
    serve::ServerConfig cold = server_config;
    cold.cache_capacity = 0;  // every query runs a forward: batching visible
    serve::InferenceServer server(model, cold);
    const int burst = quick ? 200 : 1000;
    Rng rng(hash_combine64(seed, 0xB025));
    std::vector<std::size_t> stream;
    std::vector<serve::InferenceServer::Future> futures;
    stream.reserve(burst);
    futures.reserve(burst);
    const auto t0 = Clock::now();
    for (int q = 0; q < burst; ++q) {
      stream.push_back(rng.next_below(graphs.size()));
      serve::StatusOr<serve::InferenceServer::Future> submitted =
          server.submit(serve::Request(*graphs[stream.back()]));
      if (!submitted.ok()) {
        ++failures;  // unbounded queue: every submit must be admitted
        std::printf("FAILED: unbounded submit returned %s\n",
                    submitted.status().code_name());
        break;
      }
      futures.push_back(std::move(submitted).value());
    }
    for (std::size_t q = 0; q < futures.size(); ++q) {
      const serve::Response r = futures[q].get();
      if (!r.ok() || r.label != expected[stream[q]]) ++failures;
    }
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    serve::ServerStats stats = server.stats();
    std::printf("\n=== Open loop (async burst of %d, cache off) ===\n"
                "%.0f queries/sec, %llu micro-batches, avg batch %.1f, "
                "max batch %llu\n",
                burst, burst / wall_s,
                static_cast<unsigned long long>(stats.batches),
                stats.batches ? static_cast<double>(stats.forwards) /
                                    static_cast<double>(stats.batches)
                              : 0.0,
                static_cast<unsigned long long>(stats.max_batch));
  }

  // --- Flash crowd: N clients, one cold fingerprint -------------------------
  {
    serve::InferenceServer server(model, server_config);
    constexpr int kCrowd = 8;
    std::atomic<int> wrong{0};
    std::atomic<int> ready{0};
    std::atomic<bool> go{false};
    const std::size_t target = unique[0];
    std::vector<std::thread> crowd;
    for (int c = 0; c < kCrowd; ++c) {
      crowd.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        const serve::Response r = server.predict(*graphs[target]);
        if (!r.ok() || r.label != expected[target]) wrong.fetch_add(1);
      });
    }
    while (ready.load() < kCrowd) std::this_thread::yield();
    go.store(true, std::memory_order_release);
    for (auto& t : crowd) t.join();
    failures += wrong.load();
    const serve::ServerStats stats = server.stats();
    flash_forwards = stats.forwards;
    flash_coalesced = stats.coalesced;
    flash_hits = stats.cache.hits;
    std::printf("\n=== Flash crowd (%d clients, one cold fingerprint) ===\n"
                "forwards %llu, coalesced %llu, cache hits %llu, misses "
                "%llu\n",
                kCrowd, static_cast<unsigned long long>(stats.forwards),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.cache.hits),
                static_cast<unsigned long long>(stats.cache.misses));
    if (stats.forwards != 1) {
      ++failures;
      std::printf("FAILED: a flash crowd on one cold fingerprint ran %llu "
                  "forwards (want exactly 1)\n",
                  static_cast<unsigned long long>(stats.forwards));
    }
    if (stats.cache.hits + stats.cache.misses + stats.coalesced !=
        stats.queries) {
      ++failures;
      std::printf("FAILED: coalescing conservation (hits %llu + misses %llu "
                  "+ coalesced %llu != queries %llu)\n",
                  static_cast<unsigned long long>(stats.cache.hits),
                  static_cast<unsigned long long>(stats.cache.misses),
                  static_cast<unsigned long long>(stats.coalesced),
                  static_cast<unsigned long long>(stats.queries));
    }
  }

  // --- Zipf fingerprint workload --------------------------------------------
  {
    // Skewed popularity (Zipf s=1 over the unique fingerprints, rank by
    // index): the realistic serving regime where a hot head coalesces and
    // caches while a long tail keeps missing.
    std::vector<double> cdf(unique.size());
    double mass = 0;
    for (std::size_t i = 0; i < unique.size(); ++i) {
      mass += 1.0 / static_cast<double>(i + 1);
      cdf[i] = mass;
    }
    for (double& c : cdf) c /= mass;
    serve::InferenceServer server(model, server_config);
    const int zipf_queries = quick ? 1000 : 10000;
    constexpr int kZipfClients = 4;
    std::atomic<int> wrong{0};
    std::vector<std::vector<double>> latencies(kZipfClients);
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    for (int c = 0; c < kZipfClients; ++c) {
      workers.emplace_back([&, c] {
        Rng rng(hash_combine64(seed, 0x21FF + static_cast<std::uint64_t>(c)));
        auto& lat = latencies[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(zipf_queries));
        for (int q = 0; q < zipf_queries; ++q) {
          const double u = rng.uniform();
          const std::size_t rank = static_cast<std::size_t>(
              std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
          const std::size_t g = unique[std::min(rank, unique.size() - 1)];
          const auto s0 = Clock::now();
          const serve::Response r = server.predict(*graphs[g]);
          lat.push_back(to_us(Clock::now() - s0));
          if (!r.ok() || r.label != expected[g]) wrong.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    failures += wrong.load();
    std::vector<double> all;
    for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
    const Percentiles p = percentiles(all);
    const serve::ServerStats stats = server.stats();
    zipf_qps = static_cast<double>(kZipfClients * zipf_queries) / wall_s;
    zipf_p99 = p.p99;
    zipf_hit_rate = stats.cache.hit_rate();
    zipf_coalesced = stats.coalesced;
    std::printf("\n=== Zipf workload (s=1, %zu fingerprints, %d clients x %d "
                "queries) ===\n"
                "%.0f queries/sec, p50 %.1f us, p99 %.1f us | hit rate %.3f, "
                "coalesced %llu\n",
                unique.size(), kZipfClients, zipf_queries, zipf_qps, p.p50,
                p.p99, zipf_hit_rate,
                static_cast<unsigned long long>(stats.coalesced));
    if (stats.cache.hits + stats.cache.misses + stats.coalesced !=
        stats.queries) {
      ++failures;
      std::printf("FAILED: coalescing conservation on the Zipf workload "
                  "(hits %llu + misses %llu + coalesced %llu != queries "
                  "%llu)\n",
                  static_cast<unsigned long long>(stats.cache.hits),
                  static_cast<unsigned long long>(stats.cache.misses),
                  static_cast<unsigned long long>(stats.coalesced),
                  static_cast<unsigned long long>(stats.queries));
    }
    if (p.p99 > 1e6) {
      ++failures;
      std::printf("FAILED: Zipf closed-loop p99 (%.0f us) blew past 1s\n",
                  p.p99);
    }
  }

  // --- Predictive warming: before/after -------------------------------------
  {
    // Sibling groups of 4 consecutive unique fingerprints — the shape of
    // "regions of one function" — swept cold in group order. The baseline
    // server misses on every member; the warming server misses on the
    // first member only and prefetches the rest, so its hit+coalesced rate
    // must beat the baseline's on the identical sweep.
    auto sweep = [&](serve::InferenceServer& server) {
      for (std::size_t i = 0; i < unique.size(); ++i) {
        const std::size_t g = unique[i];
        const serve::Response r = server.predict(*graphs[g]);
        if (!r.ok() || r.label != expected[g]) ++failures;
      }
    };
    auto warmth = [](const serve::ServerStats& stats) {
      return stats.queries == 0
                 ? 0.0
                 : static_cast<double>(stats.cache.hits + stats.coalesced) /
                       static_cast<double>(stats.queries);
    };
    serve::InferenceServer baseline(model, server_config);
    sweep(baseline);
    const serve::ServerStats base_stats = baseline.stats();
    warm_baseline_rate = warmth(base_stats);

    serve::InferenceServer warmed(model, server_config);
    std::vector<const graph::ProgramGraph*> group;
    for (std::size_t i = 0; i < unique.size(); ++i) {
      group.push_back(graphs[unique[i]]);
      if (group.size() == 4 || i + 1 == unique.size()) {
        warmed.register_warm_group(group);
        group.clear();
      }
    }
    sweep(warmed);
    const serve::ServerStats warm_stats = warmed.stats();
    warm_warmed_rate = warmth(warm_stats);
    std::printf("\n=== Predictive warming (groups of 4, cold sweep of %zu "
                "fingerprints) ===\n"
                "baseline: hits %llu, coalesced %llu (warmth %.3f) | warmed: "
                "hits %llu, coalesced %llu, prefetches %llu (warmth %.3f)\n",
                unique.size(),
                static_cast<unsigned long long>(base_stats.cache.hits),
                static_cast<unsigned long long>(base_stats.coalesced),
                warm_baseline_rate,
                static_cast<unsigned long long>(warm_stats.cache.hits),
                static_cast<unsigned long long>(warm_stats.coalesced),
                static_cast<unsigned long long>(warm_stats.warm_enqueued),
                warm_warmed_rate);
    if (server_config.cache_capacity != 0 &&
        warm_warmed_rate <= warm_baseline_rate) {
      ++failures;
      std::printf("FAILED: warming (%.3f) did not beat the no-warming "
                  "baseline (%.3f) on the sibling-group sweep\n",
                  warm_warmed_rate, warm_baseline_rate);
    }
    for (const serve::ServerStats& stats : {base_stats, warm_stats}) {
      if (stats.cache.hits + stats.cache.misses + stats.coalesced !=
          stats.queries) {
        ++failures;
        std::printf("FAILED: coalescing conservation on the warming "
                    "sweep\n");
      }
    }
  }

  // --- Overload: bounded queue + load shedding ------------------------------
  if (overload) {
    const std::size_t max_queue =
        static_cast<std::size_t>(std::max<std::int64_t>(
            1, parser.get_int("max-queue")));
    const int burst = quick ? 1500 : 5000;
    for (serve::ShedPolicy policy :
         {serve::ShedPolicy::Reject, serve::ShedPolicy::DropOldest}) {
      serve::ServerConfig oc = server_config;
      oc.cache_capacity = 0;  // every admitted query costs a forward
      oc.max_queue = max_queue;
      oc.shed_policy = policy;
      serve::InferenceServer server(model, oc);
      if (!server.config().background_loop) {
        // A worker-less pool falls back to client-driven pumping; an async
        // burst with nobody waiting would never drain. Not a contract
        // violation — report and skip, like the idle-trim gate.
        std::printf("\n(no background loop available: overload gate "
                    "skipped)\n");
        break;
      }
      std::atomic<int> resolved{0}, answered{0}, shed_after_admit{0},
          wrong{0};
      int rejected_at_submit = 0;
      std::vector<double> admitted_lat(static_cast<std::size_t>(burst),
                                       -1.0);
      Rng rng(hash_combine64(seed, 0x10AD));
      for (int q = 0; q < burst; ++q) {
        const std::size_t g = rng.next_below(graphs.size());
        const auto t0 = Clock::now();
        serve::StatusOr<serve::InferenceServer::Future> submitted =
            server.submit(serve::Request(*graphs[g]));
        if (!submitted.ok()) {
          if (submitted.status().code() != serve::StatusCode::kOverloaded)
            ++failures;
          ++rejected_at_submit;
          continue;
        }
        // Async continuation instead of a blocking get(): the callback
        // runs on whichever thread pumps (or sheds) the request.
        submitted.value().then(
            [&, t0, q, g](const serve::Response& r) {
              if (r.ok()) {
                admitted_lat[static_cast<std::size_t>(q)] =
                    to_us(Clock::now() - t0);
                if (r.label != expected[g]) wrong.fetch_add(1);
                answered.fetch_add(1);
              } else {
                shed_after_admit.fetch_add(1);
              }
              resolved.fetch_add(1);
            });
      }
      const int admitted = burst - rejected_at_submit;
      while (resolved.load() < admitted)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

      std::vector<double> lat;
      for (double l : admitted_lat)
        if (l >= 0) lat.push_back(l);
      const Percentiles p = percentiles(lat);
      serve::ServerStats stats = server.stats();
      const double p99_bound_us = 1e6;  // bounded queue => tens of ms; an
                                        // unbounded regression queues the
                                        // whole burst and blows well past 1s
      std::printf("\n=== Overload (%s, burst %d, max_queue %zu, cache off) "
                  "===\n"
                  "answered %d, shed-after-admit %d, rejected %d | peak "
                  "queue %llu | admitted p50 %.0f us, p99 %.0f us\n"
                  "sources: cache %llu, batch %llu, shed %llu | counters: "
                  "shed %llu, rejected %llu, deadline %llu\n",
                  serve::shed_policy_name(policy), burst, max_queue,
                  answered.load(), shed_after_admit.load(),
                  rejected_at_submit,
                  static_cast<unsigned long long>(stats.peak_queue), p.p50,
                  p.p99,
                  static_cast<unsigned long long>(stats.source_cache),
                  static_cast<unsigned long long>(stats.source_batch),
                  static_cast<unsigned long long>(stats.source_shed),
                  static_cast<unsigned long long>(stats.shed),
                  static_cast<unsigned long long>(stats.rejected),
                  static_cast<unsigned long long>(stats.deadline_exceeded));
      if (wrong.load() != 0) {
        ++failures;
        std::printf("FAILED: an admitted answer differed from serial "
                    "predict under shedding\n");
      }
      if (answered.load() + shed_after_admit.load() + rejected_at_submit !=
          burst) {
        ++failures;
        std::printf("FAILED: answered + shed + rejected != submitted "
                    "(queries lost)\n");
      }
      if (stats.rejected + stats.shed == 0) {
        ++failures;
        std::printf("FAILED: the overload burst did not shed at all\n");
      }
      if (stats.peak_queue > max_queue) {
        ++failures;
        std::printf("FAILED: admitted queue depth %llu exceeded the bound "
                    "%zu\n",
                    static_cast<unsigned long long>(stats.peak_queue),
                    max_queue);
      }
      if (!lat.empty() && p.p99 > p99_bound_us) {
        ++failures;
        std::printf("FAILED: p99 of admitted requests (%.0f us) not "
                    "bounded by %.0f us\n",
                    p.p99, p99_bound_us);
      }
      if (policy == serve::ShedPolicy::DropOldest &&
          stats.shed == 0) {
        ++failures;
        std::printf("FAILED: DropOldest shed nothing after admission\n");
      }
    }
  }

  // --- Scripted fault window (--faults) ------------------------------------
  double fault_p99_healthy = 0, fault_p99_degraded = 0, fault_p99_recovered = 0;
  int fault_err_healthy = 0, fault_err_degraded = 0, fault_err_recovered = 0;
  std::uint64_t fault_trips = 0, fault_short_circuits = 0;
  bool faults_ran = false;
  if (faults && !support::failpoints::enabled()) {
    std::printf("\n=== Fault window ===\n(library built without "
                "IRGNN_FAILPOINTS: fault section skipped)\n");
  } else if (faults) {
    faults_ran = true;
    support::failpoints::set_seed(seed);
    serve::ServerConfig fc = server_config;
    // A small cache keeps both traffic classes alive through the outage:
    // some queries stay warm (degraded mode must keep answering them),
    // the long tail keeps missing (degraded mode must refuse them fast).
    fc.cache_capacity = 8;
    fc.breaker_trip_threshold = 3;
    fc.breaker_probe_interval_us = 2000;
    serve::InferenceServer server(model, fc);
    const std::size_t hot = std::min<std::size_t>(4, unique.size());
    Rng rng(hash_combine64(seed, 0xFA17));
    auto window = [&](int queries, std::vector<double>& lat, int& errors) {
      for (int q = 0; q < queries; ++q) {
        // Even queries cycle a fixed hot set, odd queries draw from the
        // whole fingerprint population.
        const std::size_t g =
            (q % 2 == 0) ? unique[static_cast<std::size_t>(q) / 2 % hot]
                         : unique[rng.next_below(unique.size())];
        const auto t0 = Clock::now();
        const serve::Response r = server.predict(*graphs[g]);
        lat.push_back(to_us(Clock::now() - t0));
        if (!r.ok())
          ++errors;
        else if (r.label != expected[g])
          ++failures;
      }
    };
    const int per_window = quick ? 200 : 800;
    std::vector<double> lat_healthy, lat_degraded, lat_recovered;

    window(per_window, lat_healthy, fault_err_healthy);
    const serve::ServerStats pre_fault = server.stats();

    support::failpoints::FailpointSpec dead;
    dead.every_nth = 1;  // 100% forward failure
    support::failpoints::configure("serve.forward", dead);
    window(per_window, lat_degraded, fault_err_degraded);
    const serve::ServerStats during = server.stats();
    support::failpoints::disable("serve.forward");

    // Let the half-open probe timer expire, then drive the recovery
    // window: its first miss is admitted as the probe, succeeds, and
    // restores full service.
    std::this_thread::sleep_for(
        std::chrono::microseconds(3 * fc.breaker_probe_interval_us));
    window(per_window, lat_recovered, fault_err_recovered);
    const serve::ServerStats after = server.stats();
    support::failpoints::disable_all();

    fault_p99_healthy = percentiles(lat_healthy).p99;
    fault_p99_degraded = percentiles(lat_degraded).p99;
    fault_p99_recovered = percentiles(lat_recovered).p99;
    fault_trips = after.breaker_trips;
    fault_short_circuits = after.breaker_short_circuits;
    std::printf(
        "\n=== Fault window (%d queries/window, breaker threshold %d, probe "
        "every %lld us) ===\n"
        "healthy:   p99 %8.1f us, errors %4d\n"
        "degraded:  p99 %8.1f us, errors %4d (internal %llu, "
        "short-circuited %llu, trips %llu)\n"
        "recovered: p99 %8.1f us, errors %4d (probes %llu, breaker %s)\n",
        per_window, fc.breaker_trip_threshold,
        static_cast<long long>(fc.breaker_probe_interval_us),
        fault_p99_healthy, fault_err_healthy, fault_p99_degraded,
        fault_err_degraded,
        static_cast<unsigned long long>(after.internal_errors),
        static_cast<unsigned long long>(fault_short_circuits),
        static_cast<unsigned long long>(fault_trips), fault_p99_recovered,
        fault_err_recovered,
        static_cast<unsigned long long>(after.breaker_probes),
        after.breaker_open ? "OPEN" : "closed");
    if (fault_err_healthy != 0) {
      ++failures;
      std::printf("FAILED: errors before any fault was armed\n");
    }
    if (fault_trips != 1) {
      ++failures;
      std::printf("FAILED: breaker tripped %llu times (the script trips it "
                  "exactly once)\n",
                  static_cast<unsigned long long>(fault_trips));
    }
    if (fault_short_circuits == 0) {
      ++failures;
      std::printf("FAILED: no miss was short-circuited during the outage\n");
    }
    if (during.forwards != pre_fault.forwards) {
      ++failures;
      std::printf("FAILED: the outage window completed %llu forwards on a "
                  "100%%-failing model (short-circuits must cost zero)\n",
                  static_cast<unsigned long long>(during.forwards -
                                                  pre_fault.forwards));
    }
    if (fault_err_recovered != 0 || after.breaker_open) {
      ++failures;
      std::printf("FAILED: service did not fully recover after the fault "
                  "cleared (%d errors, breaker %s)\n",
                  fault_err_recovered, after.breaker_open ? "OPEN" : "closed");
    }
    if (after.cache.hits + after.cache.misses + after.coalesced !=
        after.queries) {
      ++failures;
      std::printf("FAILED: coalescing conservation broke under the fault "
                  "window\n");
    }
  }

  // --- Shadow serving: float vs int8 side by side (--shadow) ----------------
  // Quantizes the served model on the bench graphs (they double as the
  // calibration fold), publishes both versions behind one Router and
  // mirrors identical traffic to each. Gates: every answer bit-equal to the
  // named version's own serial predict, per-model conservation
  // (hits + misses + coalesced == queries), and agreement between versions
  // above a floor. The timing slice runs with the cache off so the speedup
  // is compute, not cache topology. The (version, fingerprint) cache key
  // keeps mixed serving stale-proof — a cross-version hit would surface
  // here as a wrong-label failure.
  bool shadow_ran = false;
  double shadow_speedup = 0, shadow_agreement = 0, shadow_accuracy_delta = 0;
  double shadow_float_us = 0, shadow_int8_us = 0;
  if (shadow) {
    auto quantized_or = model->quantize(graphs);
    if (!quantized_or.ok()) {
      ++failures;
      std::printf("\n=== Shadow serving ===\nFAILED: quantization: %s\n",
                  std::string(quantized_or.status().message()).c_str());
    } else {
      shadow_ran = true;
      const std::shared_ptr<const gnn::QuantizedModel> quantized =
          std::move(quantized_or).value();
      // Each version's own serial predictions are its ground truth; the
      // float model's double as the reference labels for the delta.
      const std::vector<int> qexpected = quantized->predict(graphs);
      std::size_t agree = 0;
      for (std::size_t g = 0; g < graphs.size(); ++g)
        if (qexpected[g] == expected[g]) ++agree;
      shadow_agreement = static_cast<double>(agree) /
                         static_cast<double>(graphs.size());
      // Fold-accuracy delta with the float predictions as reference
      // labels: float scores 1 by construction, so the delta is the
      // disagreement rate.
      shadow_accuracy_delta = 1.0 - shadow_agreement;

      // Phase 1 — mirrored serving with the cache ON: two passes over both
      // versions; the second pass must be answered from each model's own
      // cache, and per-model accounting must conserve (a capacity-0 cache
      // counts nothing, so this gate needs the cache live).
      {
        serve::RouterConfig mc;
        mc.server = server_config;
        mc.server.background_loop = false;
        serve::Router mirror(mc);
        mirror.publish("static", model);
        mirror.publish("static.int8", quantized);
        for (int pass = 0; pass < 2; ++pass)
          for (std::size_t g = 0; g < graphs.size(); ++g) {
            if (mirror.predict(serve::Request(*graphs[g], "static")).label !=
                expected[g])
              ++failures;
            if (mirror.predict(serve::Request(*graphs[g], "static.int8"))
                    .label != qexpected[g])
              ++failures;
          }
        for (const serve::RouterModelStats& m : mirror.stats().models) {
          const serve::ServerStats& s = m.stats;
          if (s.cache.hits + s.cache.misses + s.coalesced != s.queries) {
            ++failures;
            std::printf("FAILED: conservation broke for shadow model %s\n",
                        m.model.c_str());
          }
          if (s.queries != 2 * graphs.size() || s.cache.hits < unique.size()) {
            ++failures;
            std::printf("FAILED: shadow model %s: %llu queries, %llu hits\n",
                        m.model.c_str(),
                        static_cast<unsigned long long>(s.queries),
                        static_cast<unsigned long long>(s.cache.hits));
          }
        }
      }

      // Phase 2 — timing with the cache OFF, so the speedup is compute.
      serve::RouterConfig rc;
      rc.server = server_config;
      rc.server.background_loop = false;
      rc.server.cache_capacity = 0;
      serve::Router router(rc);
      router.publish("static", model);
      router.publish("static.int8", quantized);

      const int passes = quick ? 3 : 10;
      auto drive = [&](const char* name,
                       const std::vector<int>& truth) -> double {
        const auto t0 = Clock::now();
        for (int p = 0; p < passes; ++p)
          for (std::size_t g = 0; g < graphs.size(); ++g) {
            const serve::Response r =
                router.predict(serve::Request(*graphs[g], name));
            if (!r.ok() || r.label != truth[g]) ++failures;
          }
        return to_us(Clock::now() - t0) /
               (passes * static_cast<double>(graphs.size()));
      };
      // One untimed warm pass each, so both versions' shard scratch and
      // the router's steady-state containers are warm before the clock.
      for (std::size_t g = 0; g < graphs.size(); ++g) {
        if (router.predict(serve::Request(*graphs[g], "static")).label !=
            expected[g])
          ++failures;
        if (router.predict(serve::Request(*graphs[g], "static.int8")).label !=
            qexpected[g])
          ++failures;
      }
      shadow_float_us = drive("static", expected);
      shadow_int8_us = drive("static.int8", qexpected);
      shadow_speedup = shadow_float_us / shadow_int8_us;

      if (shadow_agreement < 0.85) {
        ++failures;
        std::printf("FAILED: float/int8 agreement %.3f below 0.85\n",
                    shadow_agreement);
      }

      std::printf("\n=== Shadow serving: float vs int8 (%d passes x %zu "
                  "graphs each, cache off) ===\n",
                  passes, graphs.size());
      Table shadow_table({"version", "us/query", "speedup", "agreement",
                          "accuracy delta"});
      shadow_table.add_row({"static (float)", Table::fmt(shadow_float_us, 1),
                            "1.00", "-", "-"});
      shadow_table.add_row(
          {"static.int8", Table::fmt(shadow_int8_us, 1),
           Table::fmt(shadow_speedup, 2), Table::fmt(shadow_agreement, 3),
           Table::fmt(shadow_accuracy_delta, 3)});
      shadow_table.print();
    }
  }

  // --- Idle trim + arena high-water mark -----------------------------------
  {
    serve::ServerConfig idle = server_config;
    idle.idle_trim_us = 20000;  // 20 ms grace
    serve::InferenceServer server(model, idle);
    std::vector<serve::Response> responses;
    server.predict_batch(graphs, responses);
    // 10x the grace period: generous margin for a loaded CI worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    serve::ServerStats stats = server.stats();
    const support::BufferPool::Stats pool =
        support::BufferPool::global().stats();
    std::printf("\n=== Arena (after %d ms idle with a %d us trim grace) "
                "===\nidle trims %llu, pool trims %llu (released %s), "
                "outstanding %s, high-water %s\n",
                200, static_cast<int>(idle.idle_trim_us),
                static_cast<unsigned long long>(stats.idle_trims),
                static_cast<unsigned long long>(pool.trims),
                fmt_bytes(pool.trimmed_bytes).c_str(),
                fmt_bytes(pool.outstanding_bytes).c_str(),
                fmt_bytes(pool.high_water_bytes).c_str());
    if (!server.config().background_loop) {
      // A worker-less pool (e.g. IRGNN_NUM_THREADS=1) silently falls back
      // to client-driven pumping, where no loop exists to watch idleness —
      // not a contract violation, so report instead of failing.
      std::printf("(no background loop available: idle-trim gate skipped)\n");
    } else if (stats.idle_trims == 0) {
      ++failures;
      std::printf("FAILED: the idle grace period did not trigger an arena "
                  "trim\n");
    }
  }

  // --- Machine-readable results (CI artifact) -------------------------------
  const std::string json_path = parser.get_string("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::printf("\nWARNING: could not open %s for writing\n",
                  json_path.c_str());
    } else {
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"serve_throughput\",\n"
          "  \"config\": {\"hidden\": %d, \"layers\": %d, \"threads\": %d,\n"
          "             \"max_batch\": %d, \"cache\": %zu, \"quick\": %s},\n"
          "  \"closed_loop_4_clients\": {\"qps\": %.1f, \"p99_us\": %.1f, "
          "\"hit_rate\": %.4f},\n"
          "  \"zipf\": {\"qps\": %.1f, \"p99_us\": %.1f, \"hit_rate\": "
          "%.4f, \"coalesced\": %llu},\n"
          "  \"flash_crowd\": {\"clients\": 8, \"forwards\": %llu, "
          "\"coalesced\": %llu, \"cache_hits\": %llu},\n"
          "  \"warming\": {\"baseline_warmth\": %.4f, \"warmed_warmth\": "
          "%.4f},\n"
          "  \"hit_vs_miss\": {\"miss_p50_us\": %.2f, \"hit_p50_us\": "
          "%.2f},\n"
          "  \"faults\": {\"ran\": %s, \"p99_healthy_us\": %.1f, "
          "\"p99_degraded_us\": %.1f, \"p99_recovered_us\": %.1f,\n"
          "            \"errors_healthy\": %d, \"errors_degraded\": %d, "
          "\"errors_recovered\": %d,\n"
          "            \"breaker_trips\": %llu, \"short_circuits\": %llu},\n"
          "  \"shadow\": {\"ran\": %s, \"speedup\": %.3f, \"agreement\": "
          "%.4f, \"accuracy_delta\": %.4f,\n"
          "            \"float_us_per_query\": %.2f, "
          "\"int8_us_per_query\": %.2f},\n"
          "  \"failures\": %d\n"
          "}\n",
          cfg.hidden_dim, cfg.num_layers, threads, server_config.max_batch,
          server_config.cache_capacity, quick ? "true" : "false", closed_qps,
          closed_p99, closed_hit_rate, zipf_qps, zipf_p99, zipf_hit_rate,
          static_cast<unsigned long long>(zipf_coalesced),
          static_cast<unsigned long long>(flash_forwards),
          static_cast<unsigned long long>(flash_coalesced),
          static_cast<unsigned long long>(flash_hits), warm_baseline_rate,
          warm_warmed_rate, miss_p50, hit_p50, faults_ran ? "true" : "false",
          fault_p99_healthy, fault_p99_degraded, fault_p99_recovered,
          fault_err_healthy, fault_err_degraded, fault_err_recovered,
          static_cast<unsigned long long>(fault_trips),
          static_cast<unsigned long long>(fault_short_circuits),
          shadow_ran ? "true" : "false", shadow_speedup, shadow_agreement,
          shadow_accuracy_delta, shadow_float_us, shadow_int8_us, failures);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  }

  if (failures != 0) {
    std::printf("\nFAILED: %d serving contract violation(s) (see above)\n",
                failures);
    return 1;
  }
  std::printf("\nall serving contracts held (determinism, zero-alloc warm "
              "hits, 10x cache advantage, one-forward flash crowds, "
              "coalescing conservation, warming beats baseline%s%s, idle "
              "trim)\n",
              overload ? ", bounded-queue shedding" : "",
              faults_ran ? ", breaker containment" : "");
  return 0;
}
