// Load generator for serve::InferenceServer: closed-loop latency/throughput
// at 1 and 4 client threads, an open-loop burst showing micro-batch
// amortization, a cache hit-vs-miss section, and the buffer arena's
// high-water mark + idle-trim behaviour.
//
// Like microbench_kernels, contract violations are a nonzero exit so the CI
// smoke run (--quick) is a real gate:
//   - every served label must equal the pinned model's serial predict
//     (determinism under batching/caching),
//   - a warm single-client pass must pull zero bytes from malloc through
//     the pool,
//   - a warm cache hit must be at least 10x faster than a miss,
//   - the idle grace period must trigger an arena trim.
//
//   ./serve_throughput --threads 1 --queries 5000
//   ./serve_throughput --quick          (CI smoke)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "serve/server.h"
#include "support/arena.h"
#include "support/argparse.h"
#include "support/rng.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;
using Clock = std::chrono::steady_clock;

namespace {

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

struct Percentiles {
  double p50 = 0, p95 = 0, p99 = 0;
};

Percentiles percentiles(std::vector<double>& latencies_us) {
  Percentiles out;
  if (latencies_us.empty()) return out;
  std::sort(latencies_us.begin(), latencies_us.end());
  auto at = [&](double q) {
    std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[i];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  return out;
}

std::string fmt_bytes(std::uint64_t bytes) {
  return Table::fmt(static_cast<double>(bytes) / 1024.0, 1) + " KiB";
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("serve_throughput",
                   "open/closed-loop load generator for the inference "
                   "server (latency percentiles, qps, cache hit rate, "
                   "malloc bytes per query)");
  parser.add("queries", "5000", "closed-loop queries per client thread")
      .add("hidden", "64", "served model hidden dimension")
      .add("layers", "3", "served model RGCN layers")
      .add("max-batch", "64", "micro-batch flush size")
      .add("wait-us", "200", "micro-batch window in microseconds")
      .add("cache", "4096", "prediction cache entries (0 disables)")
      .add("quick", "false", "CI smoke: fewer queries, same contract gates");
  bench::add_runtime_flags(parser, /*default_threads=*/"1");
  if (!parser.parse(argc, argv)) return 1;

  const bool quick = parser.get_bool("quick");
  const int threads = bench::apply_threads(parser);
  const int queries_per_client =
      quick ? 500 : static_cast<int>(parser.get_int("queries"));
  const std::uint64_t seed = 0x5E12E;

  serve::ServerConfig server_config;
  server_config.max_batch =
      std::max<std::int64_t>(1, parser.get_int("max-batch"));
  server_config.max_wait_us = static_cast<int>(parser.get_int("wait-us"));
  server_config.cache_capacity =
      static_cast<std::size_t>(parser.get_int("cache"));

  // --- The served model and its graphs -------------------------------------
  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& spec : workloads::benchmark_suite()) {
    auto module = workloads::build_region_module(spec);
    owned.push_back(graph::build_graph(*module));
  }
  for (const auto& g : owned) graphs.push_back(&g);

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 13;
  cfg.hidden_dim = static_cast<int>(parser.get_int("hidden"));
  cfg.num_layers = static_cast<int>(parser.get_int("layers"));
  cfg.seed = 0x5EED;
  cfg.num_threads = threads;
  auto model = std::make_shared<const gnn::StaticModel>(cfg);

  // Ground truth for the determinism gate: the same model, queried the
  // plain serial way.
  const std::vector<int> expected = model->predict(graphs);

  // Unique-fingerprint subset for the clean hit-vs-miss measurement
  // (structurally identical suite regions would turn a "miss" pass into
  // partial hits).
  std::vector<std::size_t> unique;
  {
    std::vector<std::uint64_t> seen;
    for (std::size_t g = 0; g < graphs.size(); ++g) {
      const std::uint64_t fp = graph::fingerprint(*graphs[g]);
      if (std::find(seen.begin(), seen.end(), fp) == seen.end()) {
        seen.push_back(fp);
        unique.push_back(g);
      }
    }
  }

  int failures = 0;
  std::printf("=== serve_throughput (hidden=%d, layers=%d, threads=%d, "
              "max_batch=%d, wait=%dus, cache=%zu) ===\n",
              cfg.hidden_dim, cfg.num_layers, threads,
              server_config.max_batch, server_config.max_wait_us,
              server_config.cache_capacity);

  // --- Cache hit vs miss ----------------------------------------------------
  double miss_p50 = 0, hit_p50 = 0;
  {
    serve::InferenceServer server(model, server_config);
    std::vector<double> miss_lat, hit_lat;
    for (std::size_t g : unique) {
      const auto t0 = Clock::now();
      const int label = server.predict(*graphs[g]);
      miss_lat.push_back(to_us(Clock::now() - t0));
      if (label != expected[g]) ++failures;
    }
    const int hit_reps = quick ? 5 : 20;
    const support::BufferPool::Stats pool_before =
        support::BufferPool::global().stats();
    for (int rep = 0; rep < hit_reps; ++rep) {
      for (std::size_t g : unique) {
        const auto t0 = Clock::now();
        const int label = server.predict(*graphs[g]);
        hit_lat.push_back(to_us(Clock::now() - t0));
        if (label != expected[g]) ++failures;
      }
    }
    const support::BufferPool::Stats pool_after =
        support::BufferPool::global().stats();
    const std::uint64_t warm_malloc =
        pool_after.malloc_bytes - pool_before.malloc_bytes;
    miss_p50 = percentiles(miss_lat).p50;
    hit_p50 = percentiles(hit_lat).p50;
    serve::ServerStats stats = server.stats();
    std::printf("\ncache: %zu unique graphs, miss p50 %.1f us, hit p50 "
                "%.2f us (%.0fx), warm malloc %llu B, hit rate %.3f\n",
                unique.size(), miss_p50, hit_p50,
                hit_p50 > 0 ? miss_p50 / hit_p50 : 0.0,
                static_cast<unsigned long long>(warm_malloc),
                stats.cache.hit_rate());
    if (server_config.cache_capacity != 0) {
      if (hit_p50 * 10.0 > miss_p50) {
        ++failures;
        std::printf("FAILED: warm cache hits are not 10x faster than "
                    "misses\n");
      }
      if (warm_malloc != 0) {
        ++failures;
        std::printf("FAILED: warm cache-hit pass pulled bytes from malloc "
                    "through the pool\n");
      }
    }
  }

  // --- Closed loop: 1 and 4 client threads ---------------------------------
  Table closed({"clients", "queries", "p50 [us]", "p95 [us]", "p99 [us]",
                "queries/sec", "hit rate", "malloc B/query"});
  for (int clients : {1, 4}) {
    serve::InferenceServer server(model, server_config);
    // Warm pass: every fingerprint cached, arena filled.
    std::vector<int> warm;
    server.predict_batch(graphs, warm);
    for (std::size_t g = 0; g < graphs.size(); ++g)
      if (warm[g] != expected[g]) ++failures;

    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::atomic<int> wrong{0};
    const support::BufferPool::Stats pool_before =
        support::BufferPool::global().stats();
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    for (int c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        Rng rng(hash_combine64(seed, static_cast<std::uint64_t>(c)));
        auto& lat = latencies[static_cast<std::size_t>(c)];
        lat.reserve(static_cast<std::size_t>(queries_per_client));
        for (int q = 0; q < queries_per_client; ++q) {
          const std::size_t g = rng.next_below(graphs.size());
          const auto s0 = Clock::now();
          const int label = server.predict(*graphs[g]);
          lat.push_back(to_us(Clock::now() - s0));
          if (label != expected[g]) wrong.fetch_add(1);
        }
      });
    }
    for (auto& w : workers) w.join();
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    const support::BufferPool::Stats pool_after =
        support::BufferPool::global().stats();
    failures += wrong.load();

    std::vector<double> all;
    for (auto& lat : latencies) all.insert(all.end(), lat.begin(), lat.end());
    const Percentiles p = percentiles(all);
    const double total_queries =
        static_cast<double>(clients) * queries_per_client;
    serve::ServerStats stats = server.stats();
    closed.add_row(
        {std::to_string(clients), std::to_string(static_cast<int>(total_queries)),
         Table::fmt(p.p50, 2), Table::fmt(p.p95, 2), Table::fmt(p.p99, 2),
         Table::fmt(total_queries / wall_s, 0),
         Table::fmt(stats.cache.hit_rate(), 3),
         std::to_string(static_cast<std::uint64_t>(
             static_cast<double>(pool_after.malloc_bytes -
                                 pool_before.malloc_bytes) /
             total_queries))});
  }
  std::printf("\n=== Closed loop (every client waits for its answer; warm "
              "cache) ===\n");
  closed.print();

  // --- Open loop: async burst, micro-batch amortization --------------------
  {
    serve::ServerConfig cold = server_config;
    cold.cache_capacity = 0;  // every query runs a forward: batching visible
    serve::InferenceServer server(model, cold);
    const int burst = quick ? 200 : 1000;
    Rng rng(hash_combine64(seed, 0xB025));
    std::vector<std::size_t> stream;
    std::vector<serve::InferenceServer::Future> futures;
    stream.reserve(burst);
    futures.reserve(burst);
    const auto t0 = Clock::now();
    for (int q = 0; q < burst; ++q) {
      stream.push_back(rng.next_below(graphs.size()));
      futures.push_back(server.submit(*graphs[stream.back()]));
    }
    for (int q = 0; q < burst; ++q)
      if (futures[static_cast<std::size_t>(q)].get() !=
          expected[stream[static_cast<std::size_t>(q)]])
        ++failures;
    const double wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    serve::ServerStats stats = server.stats();
    std::printf("\n=== Open loop (async burst of %d, cache off) ===\n"
                "%.0f queries/sec, %llu micro-batches, avg batch %.1f, "
                "max batch %llu\n",
                burst, burst / wall_s,
                static_cast<unsigned long long>(stats.batches),
                stats.batches ? static_cast<double>(stats.forwards) /
                                    static_cast<double>(stats.batches)
                              : 0.0,
                static_cast<unsigned long long>(stats.max_batch));
  }

  // --- Idle trim + arena high-water mark -----------------------------------
  {
    serve::ServerConfig idle = server_config;
    idle.idle_trim_us = 20000;  // 20 ms grace
    serve::InferenceServer server(model, idle);
    std::vector<int> preds;
    server.predict_batch(graphs, preds);
    // 10x the grace period: generous margin for a loaded CI worker.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    serve::ServerStats stats = server.stats();
    const support::BufferPool::Stats pool =
        support::BufferPool::global().stats();
    std::printf("\n=== Arena (after %d ms idle with a %d us trim grace) "
                "===\nidle trims %llu, pool trims %llu (released %s), "
                "outstanding %s, high-water %s\n",
                200, static_cast<int>(idle.idle_trim_us),
                static_cast<unsigned long long>(stats.idle_trims),
                static_cast<unsigned long long>(pool.trims),
                fmt_bytes(pool.trimmed_bytes).c_str(),
                fmt_bytes(pool.outstanding_bytes).c_str(),
                fmt_bytes(pool.high_water_bytes).c_str());
    if (!server.config().background_loop) {
      // A worker-less pool (e.g. IRGNN_NUM_THREADS=1) silently falls back
      // to client-driven pumping, where no loop exists to watch idleness —
      // not a contract violation, so report instead of failing.
      std::printf("(no background loop available: idle-trim gate skipped)\n");
    } else if (stats.idle_trims == 0) {
      ++failures;
      std::printf("FAILED: the idle grace period did not trigger an arena "
                  "trim\n");
    }
  }

  if (failures != 0) {
    std::printf("\nFAILED: %d serving contract violation(s) (see above)\n",
                failures);
    return 1;
  }
  std::printf("\nall serving contracts held (determinism, zero-alloc warm "
              "hits, 10x cache advantage, idle trim)\n");
  return 0;
}
