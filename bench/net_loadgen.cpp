// Load generator and contract gate for the wire protocol (net/*).
//
// Two modes, both of which exit nonzero on any contract violation so the CI
// runs are real gates:
//
//   In-process sections (always). The loadgen hosts its own
//   Router + NetServer on an ephemeral loopback port and drives it through
//   real sockets, sweeping shed policy x connection count, plus a pipelined
//   open-loop burst and a drain-under-load leg. Gates:
//     - bit-identity: every TCP answer equals the serial
//       StaticModel::predict AND the in-process Router::predict of the same
//       graph — for every shed policy, connection count and model thread
//       count (models built at different num_threads must already agree,
//       which is gated first);
//     - conservation folded through the server, read back over the wire via
//       a kStatsRequest: cache hits + misses + coalesced == queries, and
//       the net layer answered every request it admitted;
//     - pipelined out-of-order completions match by tag;
//     - graceful drain answers every admitted query, then closes every
//       connection and frees every slot (open_slots == 0).
//
//   Remote mode (--port != 0). The same closed-loop and pipelined traffic
//   against an external irgnn_served (CI runs one over loopback), with the
//   reference model rebuilt locally from the SAME flags — deterministic
//   construction replaces weight shipping (bench/net_common.h). The
//   bit-identity and wire-stats conservation gates apply across the process
//   boundary.
//
// Results land in BENCH_net.json (--json).
//
//   ./net_loadgen --quick                          (in-process gates only)
//   ./net_loadgen --quick --port 9157              (plus remote gates)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/net_common.h"
#include "gnn/model.h"
#include "net/client.h"
#include "net/server.h"
#include "serve/router.h"
#include "support/argparse.h"
#include "support/rng.h"
#include "support/table.h"

using namespace irgnn;
using Clock = std::chrono::steady_clock;

namespace {

double to_us(Clock::duration d) {
  return std::chrono::duration<double, std::micro>(d).count();
}

struct Percentiles {
  double p50 = 0, p99 = 0;
};

Percentiles percentiles(std::vector<double>& latencies_us) {
  Percentiles out;
  if (latencies_us.empty()) return out;
  std::sort(latencies_us.begin(), latencies_us.end());
  auto at = [&](double q) {
    std::size_t i = static_cast<std::size_t>(
        q * static_cast<double>(latencies_us.size() - 1));
    return latencies_us[i];
  };
  out.p50 = at(0.50);
  out.p99 = at(0.99);
  return out;
}

/// Closed loop: `connections` client threads, each its own TCP connection
/// and `queries` synchronous predicts. Returns wrong-answer count; fills
/// latencies and wall seconds.
int closed_loop(const std::string& host, std::uint16_t port, int connections,
                int queries, const std::vector<graph::ProgramGraph>& graphs,
                const std::vector<int>& expected, std::uint64_t seed,
                std::vector<double>* latencies_us, double* wall_s) {
  std::atomic<int> wrong{0};
  std::vector<std::vector<double>> lat(static_cast<std::size_t>(connections));
  const auto t0 = Clock::now();
  std::vector<std::thread> clients;
  for (int c = 0; c < connections; ++c) {
    clients.emplace_back([&, c] {
      net::NetClient client;
      if (!client.connect(host, port).ok()) {
        wrong.fetch_add(queries);  // a dead client fails its whole share
        return;
      }
      Rng rng(hash_combine64(seed, static_cast<std::uint64_t>(c)));
      auto& my_lat = lat[static_cast<std::size_t>(c)];
      my_lat.reserve(static_cast<std::size_t>(queries));
      for (int q = 0; q < queries; ++q) {
        const std::size_t g = rng.next_below(graphs.size());
        const auto s0 = Clock::now();
        auto response = client.predict(serve::Request(graphs[g]));
        my_lat.push_back(to_us(Clock::now() - s0));
        if (!response.ok() || !response->ok() ||
            response->label != expected[g])
          wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  *wall_s = std::chrono::duration<double>(Clock::now() - t0).count();
  for (auto& l : lat)
    latencies_us->insert(latencies_us->end(), l.begin(), l.end());
  return wrong.load();
}

/// Conservation gates over a kStatsRequest reply. `expected_requests` < 0
/// skips the request-accounting gate (remote servers may carry traffic from
/// other clients).
int gate_wire_stats(const net::WireStats& ws, long long expected_requests) {
  int failures = 0;
  if (ws.cache_hits + ws.cache_misses + ws.coalesced != ws.queries) {
    ++failures;
    std::printf("FAILED: conservation through the server (hits %llu + "
                "misses %llu + coalesced %llu != queries %llu)\n",
                static_cast<unsigned long long>(ws.cache_hits),
                static_cast<unsigned long long>(ws.cache_misses),
                static_cast<unsigned long long>(ws.coalesced),
                static_cast<unsigned long long>(ws.queries));
  }
  if (expected_requests >= 0 &&
      ws.net_requests != static_cast<std::uint64_t>(expected_requests)) {
    ++failures;
    std::printf("FAILED: the server parsed %llu requests, clients sent "
                "%lld\n",
                static_cast<unsigned long long>(ws.net_requests),
                expected_requests);
  }
  if (ws.net_decode_errors != 0 || ws.net_protocol_errors != 0) {
    ++failures;
    std::printf("FAILED: well-formed traffic produced %llu decode / %llu "
                "protocol errors\n",
                static_cast<unsigned long long>(ws.net_decode_errors),
                static_cast<unsigned long long>(ws.net_protocol_errors));
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("net_loadgen",
                   "many-connection load generator for irgnn_served: gates "
                   "bit-identity of TCP answers against the in-process "
                   "router, conservation through the wire stats frame, "
                   "pipelined tag matching and graceful drain");
  bench::add_model_flags(parser);
  parser.add("queries", "2000", "closed-loop queries per connection")
      .add("json", "BENCH_net.json",
           "write machine-readable results here (empty disables)")
      .add("quick", "false", "CI smoke: fewer queries, same contract gates");
  bench::add_runtime_flags(parser, /*default_threads=*/"1");
  bench::add_net_flags(parser, /*default_port=*/"0",
                       /*default_connections=*/"4");
  bench::add_corpus_flags(parser);
  if (!parser.parse(argc, argv)) return 1;

  const bool quick = parser.get_bool("quick");
  const int threads = bench::apply_threads(parser);
  const int queries =
      quick ? 200 : static_cast<int>(parser.get_int("queries"));
  const int connections =
      std::max(1, static_cast<int>(parser.get_int("connections")));
  const std::string host = parser.get_string("host");
  const std::uint16_t remote_port =
      static_cast<std::uint16_t>(parser.get_int("port"));
  const std::uint64_t seed = 0x9E7C0DE;

  int failures = 0;

  // --- Ground truth + cross-thread model determinism ------------------------
  // Suite graphs by default; --corpus/--dataset-cache swap in an ingested
  // corpus as the traffic source (bench_common.h).
  std::vector<graph::ProgramGraph> graphs;
  {
    const support::Status corpus_status =
        bench::corpus_traffic(parser, &graphs);
    if (!corpus_status.ok()) {
      std::fprintf(stderr, "corpus traffic source failed: %s\n",
                   corpus_status.message());
      return 1;
    }
  }
  if (graphs.empty()) graphs = bench::suite_graphs();
  std::vector<const graph::ProgramGraph*> graph_ptrs;
  for (const auto& g : graphs) graph_ptrs.push_back(&g);
  gnn::ModelConfig cfg = bench::model_config_from(parser, threads);
  auto model = std::make_shared<const gnn::StaticModel>(cfg);
  const std::vector<int> expected = model->predict(graph_ptrs);
  for (int other_threads : {1, 4}) {
    gnn::ModelConfig alt = cfg;
    alt.num_threads = other_threads;
    const gnn::StaticModel other(alt);
    if (other.predict(graph_ptrs) != expected) {
      ++failures;
      std::printf("FAILED: model predictions differ between %d and %d "
                  "threads — the cross-process identity premise is broken\n",
                  threads, other_threads);
    }
  }

  std::printf("=== net_loadgen (hidden=%d layers=%d seed=%llu, %zu graphs, "
              "%d queries x %d connections, threads=%d) ===\n",
              cfg.hidden_dim, cfg.num_layers,
              static_cast<unsigned long long>(cfg.seed), graphs.size(),
              queries, connections, threads);

  // --- In-process sweep: shed policy x connection count ---------------------
  Table sweep({"policy", "connections", "queries", "p50 [us]", "p99 [us]",
               "queries/sec", "hits", "misses", "coalesced"});
  double inproc_qps = 0, inproc_p99 = 0;
  std::vector<int> conn_counts{1};
  if (connections != 1) conn_counts.push_back(connections);
  for (serve::ShedPolicy policy :
       {serve::ShedPolicy::Reject, serve::ShedPolicy::DropOldest,
        serve::ShedPolicy::Block}) {
    for (int conns : conn_counts) {
      serve::RouterConfig router_config;
      router_config.shed_policy = policy;
      serve::Router router(router_config);
      router.publish("static", model);

      // In-process reference: the router's own answers define the bits the
      // TCP path must reproduce (they are themselves gated against serial
      // predict here).
      for (std::size_t g = 0; g < graphs.size(); ++g) {
        const serve::Response r = router.predict(graphs[g]);
        if (!r.ok() || r.label != expected[g]) {
          ++failures;
          std::printf("FAILED: in-process router disagrees with serial "
                      "predict on graph %zu\n", g);
        }
      }

      net::NetServerConfig net_config;
      net_config.shed_policy = policy;
      net::NetServer server(router, net_config);
      support::Status status = server.start();
      if (!status.ok()) {
        ++failures;
        std::printf("FAILED: NetServer::start: %s\n", status.message());
        continue;
      }

      std::vector<double> lat;
      double wall_s = 0;
      const int wrong =
          closed_loop("127.0.0.1", server.port(), conns, queries, graphs,
                      expected, hash_combine64(seed, conns), &lat, &wall_s);
      if (wrong != 0) {
        ++failures;
        std::printf("FAILED: %d TCP answers differed from serial predict "
                    "(%s, %d connections)\n",
                    wrong, serve::shed_policy_name(policy), conns);
      }

      // Conservation, read back over the wire.
      net::WireStats ws{};
      {
        net::NetClient stats_client;
        if (!stats_client.connect("127.0.0.1", server.port()).ok() ||
            !stats_client.get_stats(&ws).ok()) {
          ++failures;
          std::printf("FAILED: kStatsRequest round trip\n");
        } else {
          failures += gate_wire_stats(
              ws, static_cast<long long>(conns) * queries);
        }
      }

      server.shutdown();
      const net::NetServerStats net_stats = server.stats();
      if (!net_stats.finished || net_stats.open_slots != 0) {
        ++failures;
        std::printf("FAILED: drain leaked %llu slots (%s, %d conns)\n",
                    static_cast<unsigned long long>(net_stats.open_slots),
                    serve::shed_policy_name(policy), conns);
      }

      const Percentiles p = percentiles(lat);
      const double qps = static_cast<double>(conns) * queries / wall_s;
      sweep.add_row({serve::shed_policy_name(policy), std::to_string(conns),
                     std::to_string(conns * queries), Table::fmt(p.p50, 1),
                     Table::fmt(p.p99, 1), Table::fmt(qps, 0),
                     std::to_string(ws.cache_hits),
                     std::to_string(ws.cache_misses),
                     std::to_string(ws.coalesced)});
      if (policy == serve::ShedPolicy::Reject && conns == connections) {
        inproc_qps = qps;
        inproc_p99 = p.p99;
      }
    }
  }
  std::printf("\n=== In-process sweep (loopback TCP, closed loop) ===\n");
  sweep.print();

  // --- Pipelined open loop: one connection, many in flight ------------------
  std::uint64_t pipeline_out_of_order = 0;
  {
    serve::RouterConfig router_config;
    router_config.max_queue = 0;  // unbounded: the burst must all be admitted
    serve::Router router(router_config);
    router.publish("static", model);
    net::NetServer server(router, {});
    if (!server.start().ok()) {
      ++failures;
      std::printf("FAILED: NetServer::start (pipeline leg)\n");
    } else {
      const int burst = quick ? 300 : 2000;
      net::NetClient client;
      if (!client.connect("127.0.0.1", server.port()).ok()) {
        ++failures;
        std::printf("FAILED: pipeline client connect\n");
      } else {
        Rng rng(hash_combine64(seed, 0x9199));
        std::vector<std::size_t> stream;
        stream.reserve(static_cast<std::size_t>(burst));
        bool send_failed = false;
        for (int q = 0; q < burst && !send_failed; ++q) {
          stream.push_back(rng.next_below(graphs.size()));
          // The tag encodes the send index: recv() proves tag matching by
          // checking the label against the graph that index named.
          if (!client
                   .send(serve::Request(graphs[stream.back()]),
                         static_cast<std::uint64_t>(q))
                   .ok()) {
            ++failures;
            std::printf("FAILED: pipelined send %d\n", q);
            send_failed = true;
          }
        }
        std::uint64_t last_tag = 0;
        bool first = true;
        for (int q = 0; q < burst && !send_failed; ++q) {
          auto decoded = client.recv();
          if (!decoded.ok()) {
            ++failures;
            std::printf("FAILED: pipelined recv %d: %s\n", q,
                        decoded.status().message());
            break;
          }
          if (decoded->tag >= static_cast<std::uint64_t>(burst)) {
            ++failures;
            std::printf("FAILED: unknown tag %llu\n",
                        static_cast<unsigned long long>(decoded->tag));
            continue;
          }
          if (!first && decoded->tag < last_tag) ++pipeline_out_of_order;
          first = false;
          last_tag = decoded->tag;
          const std::size_t g = stream[decoded->tag];
          if (!decoded->response.ok() ||
              decoded->response.label != expected[g]) {
            ++failures;
            std::printf("FAILED: pipelined answer for tag %llu wrong\n",
                        static_cast<unsigned long long>(decoded->tag));
          }
        }
      }
      server.shutdown();
      const net::NetServerStats net_stats = server.stats();
      if (net_stats.open_slots != 0) {
        ++failures;
        std::printf("FAILED: pipeline leg leaked %llu slots\n",
                    static_cast<unsigned long long>(net_stats.open_slots));
      }
      std::printf("\n=== Pipelined open loop (1 connection, burst %d) ===\n"
                  "out-of-order completions observed: %llu (cache hits "
                  "overtaking misses; matched by tag)\n",
                  burst,
                  static_cast<unsigned long long>(pipeline_out_of_order));
    }
  }

  // --- Drain under load: SIGTERM semantics without the signal ---------------
  {
    serve::Router router;
    router.publish("static", model);
    net::NetServer server(router, {});
    if (!server.start().ok()) {
      ++failures;
      std::printf("FAILED: NetServer::start (drain leg)\n");
    } else {
      const int burst = quick ? 100 : 500;
      net::NetClient client;
      if (!client.connect("127.0.0.1", server.port()).ok()) {
        ++failures;
      } else {
        Rng rng(hash_combine64(seed, 0xD12A));
        std::vector<std::size_t> stream;
        for (int q = 0; q < burst; ++q) {
          stream.push_back(rng.next_below(graphs.size()));
          if (!client
                   .send(serve::Request(graphs[stream.back()]),
                         static_cast<std::uint64_t>(q))
                   .ok())
            break;
        }
        // Drain mid-stream: everything admitted must still be answered
        // correctly; everything not yet parsed is dropped (we see EOF). The
        // brief sleep lets the server parse part of the burst so the leg
        // exercises answer-then-close rather than instant close; how MUCH
        // was admitted stays timing-dependent and is deliberately ungated.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        server.request_drain();
        int received = 0;
        for (;;) {
          auto decoded = client.recv();
          if (!decoded.ok()) break;  // EOF: the server closed after flushing
          ++received;
          const std::size_t g = stream[decoded->tag];
          if (!decoded->response.ok() ||
              decoded->response.label != expected[g]) {
            ++failures;
            std::printf("FAILED: drain answered tag %llu wrongly\n",
                        static_cast<unsigned long long>(decoded->tag));
          }
        }
        server.wait();
        const net::NetServerStats net_stats = server.stats();
        if (!net_stats.finished || net_stats.open_slots != 0) {
          ++failures;
          std::printf("FAILED: drain under load leaked %llu slots\n",
                      static_cast<unsigned long long>(net_stats.open_slots));
        }
        std::printf("\n=== Drain under load (burst %d, drain mid-stream) "
                    "===\nanswered %d before close; every answer correct, "
                    "every slot freed\n",
                    burst, received);
      }
    }
  }

  // --- Remote mode: an external irgnn_served --------------------------------
  double remote_qps = 0, remote_p50 = 0, remote_p99 = 0;
  bool remote_ran = false;
  if (remote_port != 0) {
    remote_ran = true;
    std::vector<double> lat;
    double wall_s = 0;
    const int wrong = closed_loop(host, remote_port, connections, queries,
                                  graphs, expected,
                                  hash_combine64(seed, 0x2E307E), &lat,
                                  &wall_s);
    if (wrong != 0) {
      ++failures;
      std::printf("FAILED: %d remote answers differed from the locally "
                  "rebuilt model (flag mismatch between the processes?)\n",
                  wrong);
    }
    net::WireStats ws{};
    net::NetClient stats_client;
    if (!stats_client.connect(host, remote_port).ok() ||
        !stats_client.get_stats(&ws).ok()) {
      ++failures;
      std::printf("FAILED: remote kStatsRequest round trip\n");
    } else {
      // -1: the remote server may have served other clients; only the
      // conservation law must hold, not our private request count.
      failures += gate_wire_stats(ws, -1);
    }
    const Percentiles p = percentiles(lat);
    remote_qps = static_cast<double>(connections) * queries / wall_s;
    remote_p50 = p.p50;
    remote_p99 = p.p99;
    std::printf("\n=== Remote (%s:%u, %d connections x %d queries) ===\n"
                "%.0f queries/sec, p50 %.1f us, p99 %.1f us | server: %llu "
                "queries, %llu hits, %llu misses, %llu coalesced\n",
                host.c_str(), static_cast<unsigned>(remote_port), connections,
                queries, remote_qps, remote_p50, remote_p99,
                static_cast<unsigned long long>(ws.queries),
                static_cast<unsigned long long>(ws.cache_hits),
                static_cast<unsigned long long>(ws.cache_misses),
                static_cast<unsigned long long>(ws.coalesced));
  }

  // --- Machine-readable results (CI artifact) -------------------------------
  const std::string json_path = parser.get_string("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::printf("\nWARNING: could not open %s for writing\n",
                  json_path.c_str());
    } else {
      std::fprintf(
          f,
          "{\n"
          "  \"bench\": \"net_loadgen\",\n"
          "  \"config\": {\"hidden\": %d, \"layers\": %d, \"threads\": %d, "
          "\"connections\": %d, \"queries\": %d, \"quick\": %s},\n"
          "  \"in_process\": {\"qps\": %.1f, \"p99_us\": %.1f, "
          "\"pipeline_out_of_order\": %llu},\n"
          "  \"remote\": {\"ran\": %s, \"qps\": %.1f, \"p50_us\": %.1f, "
          "\"p99_us\": %.1f},\n"
          "  \"failures\": %d\n"
          "}\n",
          cfg.hidden_dim, cfg.num_layers, threads, connections, queries,
          quick ? "true" : "false", inproc_qps, inproc_p99,
          static_cast<unsigned long long>(pipeline_out_of_order),
          remote_ran ? "true" : "false", remote_qps, remote_p50, remote_p99,
          failures);
      std::fclose(f);
      std::printf("\nwrote %s\n", json_path.c_str());
    }
  }

  if (failures != 0) {
    std::printf("\nFAILED: %d wire-protocol contract violation(s) (see "
                "above)\n",
                failures);
    return 1;
  }
  std::printf("\nall wire-protocol contracts held (TCP bit-identity across "
              "policies/connections, conservation through the stats frame, "
              "tag-matched pipelining, leak-free graceful drain%s)\n",
              remote_ran ? ", remote irgnn_served" : "");
  return 0;
}
