// Fig. 6 — Impact of the number of labels (2 / 6 / 13) on gains and on
// prediction accuracy: full exploration vs overall flag seq vs the
// explored/predicted flag sequence, plus the error rate of the predictions.
// Fewer labels raise accuracy but cap the attainable gains.
#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig6_label_count", "Fig. 6: gains and error rate vs number of labels");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions base = bench::options_from(parser);

  for (const auto& machine :
       {sim::MachineDesc::sandy_bridge(), sim::MachineDesc::skylake()}) {
    Table gains({"labels", "full_exploration", "overall_flag_seq",
                 "explored_flag_seq", "label_oracle"});
    Table errors({"labels", "overall_error_rate", "explored_error_rate"});
    for (int k : {2, 6, 13}) {
      core::ExperimentOptions options = base;
      options.num_labels = k;
      core::ExperimentResult res = core::run_experiment(machine, options);
      gains.add_row({std::to_string(k), Table::fmt(res.full_speedup),
                     Table::fmt(res.overall_speedup),
                     Table::fmt(res.explored_speedup),
                     Table::fmt(res.label_oracle_speedup)});
      // Error rate of predictions = 1 - label-exact accuracy (right plot).
      errors.add_row({std::to_string(k),
                      Table::fmt(1.0 - res.dynamic_accuracy),
                      Table::fmt(1.0 - res.static_accuracy)});
    }
    std::printf("\n=== Fig. 6 [%s] average performance gain vs labels ===\n",
                machine.name.c_str());
    bench::finish(gains, parser);
    std::printf("--- Fig. 6 [%s] prediction error rate vs labels ---\n",
                machine.name.c_str());
    errors.print();
  }
  return 0;
}
