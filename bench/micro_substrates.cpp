// Micro-benchmarks (google-benchmark) for the substrate layers: pass
// pipeline throughput, ProGraML graph construction, RGCN forward/backward,
// cache+prefetcher trace simulation, whole-space exploration of one region,
// and decision-tree fitting. These are the building blocks whose cost
// determines how far the paper-scale knobs (1000 sequences, 256-d vectors)
// can be pushed.
#include <benchmark/benchmark.h>

#include "core/dataset.h"
#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ml/decision_tree.h"
#include "passes/pass.h"
#include "sim/cache.h"
#include "sim/exploration.h"
#include "sim/simulator.h"
#include "workloads/suite.h"

using namespace irgnn;

namespace {

const workloads::RegionSpec& sample_region() {
  return workloads::benchmark_suite()[3];  // "bt rhs": a meaty kernel
}

void BM_O3Pipeline(benchmark::State& state) {
  auto base = workloads::build_region_module(sample_region());
  passes::PassManager pm(passes::o3_pipeline());
  for (auto _ : state) {
    auto module = base->clone();
    benchmark::DoNotOptimize(pm.run(*module));
  }
}
BENCHMARK(BM_O3Pipeline);

void BM_ModuleClone(benchmark::State& state) {
  auto base = workloads::build_region_module(sample_region());
  for (auto _ : state) {
    auto clone = base->clone();
    benchmark::DoNotOptimize(clone->instruction_count());
  }
}
BENCHMARK(BM_ModuleClone);

void BM_GraphConstruction(benchmark::State& state) {
  auto module = workloads::build_region_module(sample_region());
  for (auto _ : state) {
    auto graph = graph::build_graph(*module);
    benchmark::DoNotOptimize(graph.num_edges());
  }
}
BENCHMARK(BM_GraphConstruction);

void BM_RgcnForward(benchmark::State& state) {
  auto module = workloads::build_region_module(sample_region());
  auto pg = graph::build_graph(*module);
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 13;
  cfg.hidden_dim = static_cast<int>(state.range(0));
  gnn::StaticModel model(cfg);
  std::vector<const graph::ProgramGraph*> batch(16, &pg);
  for (auto _ : state) {
    auto preds = model.predict(batch);
    benchmark::DoNotOptimize(preds[0]);
  }
  state.SetItemsProcessed(state.iterations() * batch.size());
}
BENCHMARK(BM_RgcnForward)->Arg(32)->Arg(64)->Arg(128);

void BM_RgcnTrainStep(benchmark::State& state) {
  auto module = workloads::build_region_module(sample_region());
  auto pg = graph::build_graph(*module);
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = 13;
  cfg.hidden_dim = 32;
  cfg.epochs = 1;
  gnn::StaticModel model(cfg);
  std::vector<const graph::ProgramGraph*> batch(32, &pg);
  std::vector<int> labels(32, 3);
  for (auto _ : state) {
    auto stats = model.train(batch, labels);
    benchmark::DoNotOptimize(stats.final_train_accuracy);
  }
}
BENCHMARK(BM_RgcnTrainStep);

void BM_CacheTraceSimulation(benchmark::State& state) {
  const auto& spec = sample_region();
  sim::MachineDesc machine = sim::MachineDesc::skylake();
  sim::Trace trace = sim::generate_trace(spec.traits, 0, 24, 1.0, 0);
  sim::PrefetcherConfig prefetch;
  for (auto _ : state) {
    sim::CoreCacheModel core(machine, prefetch);
    for (const auto& access : trace.accesses) core.access(access);
    benchmark::DoNotOptimize(core.stats().l1_hits);
  }
  state.SetItemsProcessed(state.iterations() * trace.accesses.size());
}
BENCHMARK(BM_CacheTraceSimulation);

void BM_SimulateOneConfig(benchmark::State& state) {
  const auto& spec = sample_region();
  sim::MachineDesc machine = sim::MachineDesc::skylake();
  sim::Simulator simulator(machine);
  sim::Configuration config = sim::default_configuration(machine);
  for (auto _ : state) {
    auto result = simulator.simulate(spec.traits, config);
    benchmark::DoNotOptimize(result.cycles);
  }
}
BENCHMARK(BM_SimulateOneConfig);

void BM_ExploreOneRegion(benchmark::State& state) {
  const auto& spec = sample_region();
  sim::MachineDesc machine = sim::MachineDesc::skylake();
  std::vector<sim::WorkloadTraits> traits{spec.traits};
  for (auto _ : state) {
    auto table = sim::explore(machine, traits);
    benchmark::DoNotOptimize(table.full_exploration_speedup());
  }
}
BENCHMARK(BM_ExploreOneRegion);

void BM_DecisionTreeFit(benchmark::State& state) {
  Rng rng(7);
  const int n = static_cast<int>(state.range(0));
  std::vector<std::vector<float>> X(n, std::vector<float>(10));
  std::vector<int> y(n);
  for (int i = 0; i < n; ++i) {
    for (auto& v : X[i]) v = static_cast<float>(rng.uniform());
    y[i] = static_cast<int>(rng.next_below(13));
  }
  for (auto _ : state) {
    ml::DecisionTree tree;
    tree.fit(X, y);
    benchmark::DoNotOptimize(tree.num_leaves());
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(64)->Arg(512);

void BM_DatasetVariant(benchmark::State& state) {
  // Cost of producing one augmented graph: clone + flag sequence + extract
  // + graph build.
  auto sequences = passes::sample_flag_sequences(1, 99);
  auto base = workloads::build_region_module(sample_region());
  passes::PassManager pm(sequences[0].passes);
  for (auto _ : state) {
    auto variant = base->clone();
    pm.run(*variant);
    auto region = graph::extract_region(
        *variant, workloads::outlined_name(sample_region().kernel.name));
    auto graph = graph::build_graph(*region);
    benchmark::DoNotOptimize(graph.num_nodes());
  }
}
BENCHMARK(BM_DatasetVariant);

}  // namespace

BENCHMARK_MAIN();
