// Fig. 10 — Speedup losses per region when input sizes change: each region
// is optimized using size-2 (the larger input) and the resulting
// configuration is applied to size-1; the loss is
//   L = S(size1 | best-config(size1)) - S(size1 | best-config(size2)).
// Lower is better. The paper measured ~0.05x average loss on a Skylake.
#include <algorithm>
#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig10_input_sizes", "Fig. 10: speedup losses across input sizes");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  core::InputSizeResult res =
      core::run_input_size_study(sim::MachineDesc::skylake(), options);

  std::vector<std::size_t> order(res.regions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return res.speedup_loss[a] > res.speedup_loss[b];
  });

  Table table({"region", "speedup_loss"});
  for (std::size_t i : order)
    table.add_row({res.regions[i], Table::fmt(res.speedup_loss[i])});
  std::printf("\n=== Fig. 10 [Skylake] speedup losses with size-1 inputs "
              "when optimized for size-2 (lower is better) ===\n");
  bench::finish(table, parser);
  std::printf("summary: native size-1 optimization %.3fx, size-2-transferred "
              "%.3fx, average loss %.3fx (paper: 1.51 -> 1.46, loss 0.05)\n",
              res.native_speedup, res.transferred_speedup,
              res.native_speedup - res.transferred_speedup);
  return 0;
}
