// Fig. 8 — Cross-architecture prediction: training on one
// micro-architecture and validating on the other (with configuration
// translation), for both the static and the dynamic model, on both targets.
// Cross prediction loses some gains but stays clearly profitable (~1.7x in
// the paper).
//
// The second half is the deployment shape behind the figure: one
// serve::Router front door holding one suite-trained model per
// architecture (per-architecture registry slots), with every region routed
// by Request::model — the "pick the right model per target machine"
// serving the paper's cross-machine story needs. Routed answers are gated
// bit-identical to each model's serial predict, and an unknown
// architecture must come back ModelNotFound; violations are a nonzero
// exit.
#include <memory>

#include "bench/bench_common.h"
#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "serve/router.h"
#include "support/rng.h"
#include "workloads/suite.h"

using namespace irgnn;

namespace {

/// Suite-labeled model for one machine: explore, reduce labels, train
/// region graph -> best reduced configuration (the flag_explorer recipe at
/// the bench's scale knobs).
serve::ModelPtr train_arch_model(
    const sim::MachineDesc& machine, std::uint64_t seed,
    const std::vector<const graph::ProgramGraph*>& graphs,
    const core::ExperimentOptions& options) {
  sim::ExplorationTable table = sim::explore(
      machine, workloads::suite_traits(), 1.0, options.num_threads);
  std::vector<int> labels = sim::reduce_labels(table, options.num_labels);
  std::vector<int> oracle = sim::best_labels(table, labels);

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = static_cast<int>(labels.size());
  cfg.hidden_dim = options.hidden_dim;
  cfg.num_layers = options.num_layers;
  cfg.epochs = options.epochs;
  cfg.seed = seed;
  cfg.num_threads = options.num_threads;
  auto model = std::make_shared<gnn::StaticModel>(cfg);
  model->train(graphs, oracle);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig8_cross_arch", "Fig. 8: native vs cross-architecture prediction");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  const sim::MachineDesc snb = sim::MachineDesc::sandy_bridge();
  const sim::MachineDesc skl = sim::MachineDesc::skylake();

  Table table({"target", "native_static", "cross_static", "native_dynamic",
               "cross_dynamic"});
  {
    core::CrossArchResult to_skl =
        core::run_cross_architecture(snb, skl, options);
    table.add_row({"Skylake", Table::fmt(to_skl.native_static_speedup),
                   Table::fmt(to_skl.cross_static_speedup),
                   Table::fmt(to_skl.native_dynamic_speedup),
                   Table::fmt(to_skl.cross_dynamic_speedup)});
  }
  {
    core::CrossArchResult to_snb =
        core::run_cross_architecture(skl, snb, options);
    table.add_row({"SandyBridge", Table::fmt(to_snb.native_static_speedup),
                   Table::fmt(to_snb.cross_static_speedup),
                   Table::fmt(to_snb.native_dynamic_speedup),
                   Table::fmt(to_snb.cross_dynamic_speedup)});
  }
  std::printf("\n=== Fig. 8 cross-architecture speedups "
              "(train on the other machine, translate labels) ===\n");
  bench::finish(table, parser);

  // --- One front door, one model per architecture ---------------------------
  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& spec : workloads::benchmark_suite()) {
    auto module = workloads::build_region_module(spec);
    owned.push_back(graph::build_graph(*module));
  }
  for (const auto& g : owned) graphs.push_back(&g);

  int failures = 0;
  serve::Router router;
  Table routed({"architecture", "version", "queries", "forwards",
                "cache_hits", "shed", "mismatches"});
  std::uint64_t arch_index = 0;
  for (const sim::MachineDesc& machine : {snb, skl}) {
    serve::ModelPtr model = train_arch_model(
        machine, hash_combine64(options.seed, 0xF18 + arch_index++), graphs,
        options);
    const std::vector<int> expected = model->predict(graphs);
    router.publish(machine.name, model);
    // Two passes per architecture: the first runs forwards, the second must
    // come back from the fingerprint-keyed cache — both bit-identical to
    // the architecture's own serial predict for every region.
    int mismatches = 0;
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t g = 0; g < graphs.size(); ++g) {
        const serve::Response response =
            router.predict(serve::Request(*graphs[g], machine.name));
        if (!response.ok() || response.label != expected[g]) ++mismatches;
      }
    }
    failures += mismatches;
    serve::RouterStats stats = router.stats();
    for (const serve::RouterModelStats& m : stats.models) {
      if (m.model != machine.name) continue;
      routed.add_row({m.model, std::to_string(m.version),
                      std::to_string(m.stats.queries),
                      std::to_string(m.stats.forwards),
                      std::to_string(m.stats.cache.hits),
                      std::to_string(m.stats.source_shed),
                      std::to_string(mismatches)});
    }
  }
  // Routing failures are typed, not thrown: an architecture nobody
  // published must answer ModelNotFound, and an empty model name is
  // ambiguous once two architectures are being served.
  const serve::Response unknown =
      router.predict(serve::Request(*graphs[0], "Haswell"));
  const serve::Response ambiguous = router.predict(serve::Request(*graphs[0]));
  if (unknown.status.code() != serve::StatusCode::kModelNotFound) ++failures;
  if (ambiguous.status.code() != serve::StatusCode::kModelNotFound)
    ++failures;

  std::printf("\n=== Cross-architecture front door (serve::Router, one "
              "model per machine) ===\n");
  routed.print();
  std::printf("unknown architecture -> %s, unnamed request with two models "
              "-> %s\n",
              unknown.status.code_name(), ambiguous.status.code_name());
  if (failures != 0) {
    std::printf("FAILED: %d routed-serving contract violation(s)\n",
                failures);
    return 1;
  }
  std::printf("all routed answers bit-identical to each architecture's "
              "serial predict\n");
  return 0;
}
