// Fig. 8 — Cross-architecture prediction: training on one
// micro-architecture and validating on the other (with configuration
// translation), for both the static and the dynamic model, on both targets.
// Cross prediction loses some gains but stays clearly profitable (~1.7x in
// the paper).
#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig8_cross_arch", "Fig. 8: native vs cross-architecture prediction");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  const sim::MachineDesc snb = sim::MachineDesc::sandy_bridge();
  const sim::MachineDesc skl = sim::MachineDesc::skylake();

  Table table({"target", "native_static", "cross_static", "native_dynamic",
               "cross_dynamic"});
  {
    core::CrossArchResult to_skl =
        core::run_cross_architecture(snb, skl, options);
    table.add_row({"Skylake", Table::fmt(to_skl.native_static_speedup),
                   Table::fmt(to_skl.cross_static_speedup),
                   Table::fmt(to_skl.native_dynamic_speedup),
                   Table::fmt(to_skl.cross_dynamic_speedup)});
  }
  {
    core::CrossArchResult to_snb =
        core::run_cross_architecture(skl, snb, options);
    table.add_row({"SandyBridge", Table::fmt(to_snb.native_static_speedup),
                   Table::fmt(to_snb.cross_static_speedup),
                   Table::fmt(to_snb.native_dynamic_speedup),
                   Table::fmt(to_snb.cross_dynamic_speedup)});
  }
  std::printf("\n=== Fig. 8 cross-architecture speedups "
              "(train on the other machine, translate labels) ===\n");
  bench::finish(table, parser);
  return 0;
}
