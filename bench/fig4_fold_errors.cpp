// Fig. 4 — Average prediction error per validation fold (relative
// differences), static vs dynamic, on both machines. The paper's
// observation: errors spread roughly evenly across folds, i.e. no fold's
// training set is systematically uninformative.
#include "bench/bench_common.h"
#include "support/statistics.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig4_fold_errors", "Fig. 4: average prediction error per fold");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  for (const auto& machine :
       {sim::MachineDesc::sandy_bridge(), sim::MachineDesc::skylake()}) {
    core::ExperimentResult res = core::run_experiment(machine, options);
    Table table({"fold", "static_error", "dynamic_error"});
    for (std::size_t f = 0; f < res.fold_static_error.size(); ++f)
      table.add_row({std::to_string(f),
                     Table::fmt(res.fold_static_error[f]),
                     Table::fmt(res.fold_dynamic_error[f])});
    std::printf("\n=== Fig. 4 [%s] error distribution across folds ===\n",
                machine.name.c_str());
    bench::finish(table, parser);
    std::printf("spread[%s]: static stddev=%.4f dynamic stddev=%.4f "
                "(even spread expected)\n",
                machine.name.c_str(), stddev(res.fold_static_error),
                stddev(res.fold_dynamic_error));
  }
  return 0;
}
