// Ablation — does relation typing matter? (DESIGN.md, design decision #2).
//
// The paper adopts RGCN precisely because ProGraML's control/data/call
// flows are typed. This ablation trains the same model twice on a
// family-classification proxy task: once on the real typed graphs, once
// with every edge collapsed into a single relation. Typed relations should
// win (and the gap is the value of the RGCN choice).
#include <algorithm>
#include <cstdio>

#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "ml/cross_validation.h"
#include "support/argparse.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;

namespace {

/// Collapses every edge kind to Control — the "untyped GCN" strawman.
graph::ProgramGraph collapse_relations(graph::ProgramGraph g) {
  for (auto& edge : g.edges) edge.kind = graph::EdgeKind::Control;
  return g;
}

double evaluate(const std::vector<graph::ProgramGraph>& graphs,
                const std::vector<int>& labels, int folds, int epochs,
                std::uint64_t seed) {
  auto split = ml::k_fold(static_cast<int>(graphs.size()), folds, seed);
  int correct = 0;
  for (const auto& fold : split) {
    std::vector<const graph::ProgramGraph*> train;
    std::vector<int> train_y;
    for (int i : fold.train_indices) {
      train.push_back(&graphs[i]);
      train_y.push_back(labels[i]);
    }
    gnn::ModelConfig cfg;
    cfg.vocab_size = graph::vocabulary_size();
    cfg.num_labels = 1 + *std::max_element(labels.begin(), labels.end());
    cfg.hidden_dim = 24;
    cfg.num_layers = 2;
    cfg.epochs = epochs;
    cfg.seed = seed;
    gnn::StaticModel model(cfg);
    model.train(train, train_y);
    std::vector<const graph::ProgramGraph*> val;
    for (int i : fold.validation_indices) val.push_back(&graphs[i]);
    std::vector<int> preds = model.predict(val);
    for (std::size_t k = 0; k < preds.size(); ++k)
      correct += (preds[k] == labels[fold.validation_indices[k]]);
  }
  return static_cast<double>(correct) / static_cast<double>(graphs.size());
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("ablation_relations",
                   "ablation: typed RGCN relations vs collapsed edges");
  parser.add("epochs", "20", "training epochs")
      .add("folds", "5", "cross-validation folds")
      .add("seed", "17", "random seed");
  if (!parser.parse(argc, argv)) return 1;
  int epochs = static_cast<int>(parser.get_int("epochs"));
  int folds = static_cast<int>(parser.get_int("folds"));
  std::uint64_t seed = static_cast<std::uint64_t>(parser.get_int("seed"));

  // Family classification over the whole suite (5 classes).
  std::vector<graph::ProgramGraph> typed;
  std::vector<graph::ProgramGraph> collapsed;
  std::vector<int> labels;
  std::map<std::string, int> family_id;
  for (const auto& spec : workloads::benchmark_suite()) {
    auto module = workloads::build_region_module(spec);
    auto g = graph::build_graph(*module);
    collapsed.push_back(collapse_relations(g));
    typed.push_back(std::move(g));
    auto [it, _] = family_id.emplace(spec.family,
                                     static_cast<int>(family_id.size()));
    labels.push_back(it->second);
  }

  double typed_acc = evaluate(typed, labels, folds, epochs, seed);
  double collapsed_acc = evaluate(collapsed, labels, folds, epochs, seed);

  Table table({"graph encoding", "family-classification accuracy"});
  table.add_row({"typed relations (RGCN, as in the paper)",
                 Table::fmt(typed_acc)});
  table.add_row({"collapsed relations (untyped GCN)",
                 Table::fmt(collapsed_acc)});
  std::printf("\n=== Ablation: relation typing in the graph encoder ===\n");
  table.print();
  std::printf("typed - collapsed = %+.3f accuracy "
              "(positive = typed flows carry signal)\n",
              typed_acc - collapsed_acc);
  return 0;
}
