// Fig. 3 — Breakdown of prediction errors per region: the static model
// (explored flag sequence) vs the dynamic performance-counter model, on
// Sandy Bridge and Skylake. Lower is better. Regions are ordered by
// (static - dynamic) error, reproducing the paper's layout where the static
// model dominates the right side of the plot and loses on the left.
#include <algorithm>

#include "bench/bench_common.h"

using namespace irgnn;

namespace {

void run_machine(const sim::MachineDesc& machine,
                 const core::ExperimentOptions& options,
                 const ArgParser& parser) {
  core::ExperimentResult res = core::run_experiment(machine, options);

  std::vector<const core::RegionOutcome*> order;
  for (const auto& r : res.regions) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const core::RegionOutcome* a, const core::RegionOutcome* b) {
              return (a->static_error - a->dynamic_error) >
                     (b->static_error - b->dynamic_error);
            });

  Table table({"region", "static_error", "dynamic_error"});
  for (const auto* r : order)
    table.add_row({r->name, Table::fmt(r->static_error),
                   Table::fmt(r->dynamic_error)});
  std::printf("\n=== Fig. 3 [%s] prediction error per region "
              "(lower is better) ===\n",
              machine.name.c_str());
  bench::finish(table, parser);

  int static_perfect = 0;
  int static_wins = 0;
  int dynamic_wins = 0;
  for (const auto& r : res.regions) {
    static_perfect += (r.static_error < 1e-9);
    static_wins += (r.static_error + 1e-9 < r.dynamic_error);
    dynamic_wins += (r.dynamic_error + 1e-9 < r.static_error);
  }
  std::printf("summary[%s]: perfectly-static=%d/%zu static-beats-dynamic=%d "
              "dynamic-beats-static=%d\n",
              machine.name.c_str(), static_perfect, res.regions.size(),
              static_wins, dynamic_wins);
  std::printf("speedups[%s]: full=%.3f static=%.3f dynamic=%.3f  "
              "static gains are %.0f%% of dynamic gains (paper: ~80%%)\n\n",
              machine.name.c_str(), res.full_speedup, res.static_speedup,
              res.dynamic_speedup,
              100.0 * (res.static_speedup - 1.0) /
                  std::max(1e-9, res.dynamic_speedup - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig3_region_errors",
      "Fig. 3: per-region prediction errors, static vs dynamic");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);
  run_machine(sim::MachineDesc::sandy_bridge(), options, parser);
  run_machine(sim::MachineDesc::skylake(), options, parser);
  return 0;
}
