// Fig. 9 — Per-region performance gains of the dynamic model, the hybrid
// model, and the full exploration, on Skylake. "profiled" marks regions the
// hybrid router sent to the dynamic model (bold names in the paper);
// "router_miss" marks regions where the router chose the wrong side (red
// names in the paper). The hybrid matches the dynamic model's gains while
// profiling only a fraction of the programs.
#include <algorithm>
#include "bench/bench_common.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser = bench::make_parser(
      "fig9_hybrid", "Fig. 9: dynamic vs hybrid vs full exploration");
  if (!parser.parse(argc, argv)) return 1;
  core::ExperimentOptions options = bench::options_from(parser);

  core::ExperimentResult res =
      core::run_experiment(sim::MachineDesc::skylake(), options);

  std::vector<const core::RegionOutcome*> order;
  for (const auto& r : res.regions) order.push_back(&r);
  std::sort(order.begin(), order.end(),
            [](const core::RegionOutcome* a, const core::RegionOutcome* b) {
              return a->full_speedup > b->full_speedup;
            });

  Table table({"region", "dynamic", "hybrid", "full_exploration", "profiled",
               "router_miss"});
  for (const auto* r : order)
    table.add_row({r->name, Table::fmt(r->dynamic_speedup),
                   Table::fmt(r->hybrid_speedup),
                   Table::fmt(r->full_speedup),
                   r->hybrid_profiled ? "yes" : "",
                   r->hybrid_profiled != r->needs_profiling ? "x" : ""});
  std::printf("\n=== Fig. 9 [Skylake] per-region gains (higher is better) "
              "===\n");
  bench::finish(table, parser);

  int profiled = 0;
  for (const auto& r : res.regions) profiled += r.hybrid_profiled;
  std::printf("summary: dynamic=%.3f hybrid=%.3f full=%.3f | profiled %d/%zu "
              "regions (%.0f%%), router accuracy %.0f%% (paper: 92%%, 30%% "
              "profiled)\n",
              res.dynamic_speedup, res.hybrid_speedup, res.full_speedup,
              profiled, res.regions.size(),
              100.0 * res.hybrid_profiled_fraction,
              100.0 * res.hybrid_router_accuracy);
  return 0;
}
