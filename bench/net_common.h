// Shared model and workload construction for the wire-protocol binaries.
//
// irgnn_served and net_loadgen run in separate processes but must agree on
// the served model bit for bit — the loadgen's bit-identity gate compares
// TCP answers against an in-process model built on the client side. There
// is no weight shipping: both sides build a gnn::StaticModel from the SAME
// flags (--hidden/--layers/--labels/--model-seed) through these helpers,
// and StaticModel's deterministic seeded construction guarantees the two
// processes hold identical weights. Drift between the binaries' flag
// handling would silently break that, which is why the flags live here
// once.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "graph/program_graph.h"
#include "serve/request.h"
#include "support/argparse.h"
#include "workloads/suite.h"

namespace irgnn::bench {

/// The served-model knobs, identical in both binaries.
inline ArgParser& add_model_flags(ArgParser& parser) {
  parser.add("hidden", "64", "served model hidden dimension")
      .add("layers", "3", "served model RGCN layers")
      .add("labels", "13", "served model label count")
      .add("model-seed", "24237",
           "weight seed; server and loadgen must agree (deterministic "
           "construction is what replaces weight shipping)");
  return parser;
}

inline gnn::ModelConfig model_config_from(const ArgParser& parser,
                                          int threads) {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = static_cast<int>(parser.get_int("labels"));
  cfg.hidden_dim = static_cast<int>(parser.get_int("hidden"));
  cfg.num_layers = static_cast<int>(parser.get_int("layers"));
  cfg.seed = static_cast<std::uint64_t>(parser.get_int("model-seed"));
  cfg.num_threads = threads;
  return cfg;
}

/// The benchmark-suite region graphs — the traffic both binaries speak.
inline std::vector<graph::ProgramGraph> suite_graphs() {
  std::vector<graph::ProgramGraph> owned;
  for (const auto& spec : workloads::benchmark_suite()) {
    auto module = workloads::build_region_module(spec);
    owned.push_back(graph::build_graph(*module));
  }
  return owned;
}

inline bool parse_shed_policy(const std::string& name,
                              serve::ShedPolicy* out) {
  if (name == "Reject") {
    *out = serve::ShedPolicy::Reject;
  } else if (name == "DropOldest") {
    *out = serve::ShedPolicy::DropOldest;
  } else if (name == "Block") {
    *out = serve::ShedPolicy::Block;
  } else {
    return false;
  }
  return true;
}

}  // namespace irgnn::bench
