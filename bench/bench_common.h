// Shared scaffolding for the figure-reproduction benches: common CLI flags
// (scale knobs) and machine selection.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/experiment.h"
#include "support/argparse.h"
#include "support/table.h"
#include "tensor/tensor.h"

namespace irgnn::bench {

/// Registers the runtime knobs every bench accepts with identical names and
/// semantics: --threads and --csv. The fig benches get them via
/// make_parser(); standalone benches (microbench_kernels, serve_throughput)
/// call this directly instead of re-declaring the flags with drifting help
/// text or defaults.
inline ArgParser& add_runtime_flags(ArgParser& parser,
                                    const std::string& default_threads = "0") {
  parser
      .add("threads", default_threads,
           "max worker threads (0: all cores; results are identical "
           "for every value)")
      .add("csv", "", "optional path to also write the table as CSV");
  return parser;
}

/// Registers the TCP endpoint knobs shared by irgnn_served and net_loadgen
/// with identical names, defaults and help text: --host, --port,
/// --connections. Numeric defaults give the two integer flags the parser's
/// malformed-value rejection for free (--port=banana fails parse, it does
/// not silently become 0).
inline ArgParser& add_net_flags(ArgParser& parser,
                                const std::string& default_port,
                                const std::string& default_connections) {
  parser
      .add("host", "127.0.0.1",
           "IPv4 address to bind (irgnn_served) or connect to (net_loadgen)")
      .add("port", default_port,
           "TCP port; 0 means an ephemeral port for a server and "
           "\"in-process sections only\" for net_loadgen")
      .add("connections", default_connections,
           "client connections to open (net_loadgen) / accepted-connection "
           "cap (irgnn_served)");
  return parser;
}

/// Reads --threads, applies it to the process-global tensor kernel
/// parallelism cap, and returns it — the one place the flag is interpreted.
inline int apply_threads(const ArgParser& parser) {
  const int threads = static_cast<int>(parser.get_int("threads"));
  tensor::set_kernel_parallelism(threads);
  return threads;
}

inline ArgParser make_parser(const std::string& name,
                             const std::string& description) {
  ArgParser parser(name, description);
  parser.add("sequences", "4", "number of augmentation flag sequences (paper: 1000)")
      .add("epochs", "8", "GNN training epochs per fold")
      .add("hidden", "32", "GNN hidden dimension (paper: 256)")
      .add("layers", "2", "RGCN layers")
      .add("folds", "10", "cross-validation folds")
      .add("labels", "13", "reduced label count")
      .add("seed", "24069", "master random seed");
  add_runtime_flags(parser);
  return parser;
}

inline core::ExperimentOptions options_from(const ArgParser& parser) {
  core::ExperimentOptions options;
  options.num_sequences = static_cast<std::size_t>(parser.get_int("sequences"));
  options.epochs = static_cast<int>(parser.get_int("epochs"));
  options.hidden_dim = static_cast<int>(parser.get_int("hidden"));
  options.num_layers = static_cast<int>(parser.get_int("layers"));
  options.folds = static_cast<int>(parser.get_int("folds"));
  options.num_labels = static_cast<int>(parser.get_int("labels"));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  options.num_threads = apply_threads(parser);
  return options;
}

inline void finish(const Table& table, const ArgParser& parser) {
  table.print();
  std::string csv = parser.get_string("csv");
  if (!csv.empty() && table.write_csv(csv))
    std::printf("(csv written to %s)\n", csv.c_str());
}

}  // namespace irgnn::bench
