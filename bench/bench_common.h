// Shared scaffolding for the figure-reproduction benches: common CLI flags
// (scale knobs) and machine selection.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "corpus/dataset_cache.h"
#include "corpus/ingest.h"
#include "graph/program_graph.h"
#include "support/argparse.h"
#include "support/table.h"
#include "tensor/tensor.h"

namespace irgnn::bench {

/// Registers the runtime knobs every bench accepts with identical names and
/// semantics: --threads and --csv. The fig benches get them via
/// make_parser(); standalone benches (microbench_kernels, serve_throughput)
/// call this directly instead of re-declaring the flags with drifting help
/// text or defaults.
inline ArgParser& add_runtime_flags(ArgParser& parser,
                                    const std::string& default_threads = "0") {
  parser
      .add("threads", default_threads,
           "max worker threads (0: all cores; results are identical "
           "for every value)")
      .add("csv", "", "optional path to also write the table as CSV");
  return parser;
}

/// Registers the TCP endpoint knobs shared by irgnn_served and net_loadgen
/// with identical names, defaults and help text: --host, --port,
/// --connections. Numeric defaults give the two integer flags the parser's
/// malformed-value rejection for free (--port=banana fails parse, it does
/// not silently become 0).
inline ArgParser& add_net_flags(ArgParser& parser,
                                const std::string& default_port,
                                const std::string& default_connections) {
  parser
      .add("host", "127.0.0.1",
           "IPv4 address to bind (irgnn_served) or connect to (net_loadgen)")
      .add("port", default_port,
           "TCP port; 0 means an ephemeral port for a server and "
           "\"in-process sections only\" for net_loadgen")
      .add("connections", default_connections,
           "client connections to open (net_loadgen) / accepted-connection "
           "cap (irgnn_served)");
  return parser;
}

/// Registers the corpus traffic-source knobs shared by serve_throughput and
/// net_loadgen: --corpus (a directory of textual-IR files) and
/// --dataset-cache (a .irds file). Identical names/semantics across benches,
/// like add_net_flags.
inline ArgParser& add_corpus_flags(ArgParser& parser) {
  parser
      .add("corpus", "",
           "directory of textual-IR files to serve instead of the synthetic "
           "suite (see irgnn_ingest)")
      .add("dataset-cache", "",
           ".irds cache path: warm-loaded when its corpus hash still "
           "matches --corpus, rebuilt and rewritten otherwise")
      .add("corpus-threads", "0",
           "ingest pipeline threads (0: all pool workers; results are "
           "identical for every value)");
  return parser;
}

/// Resolves the --corpus/--dataset-cache flags into the bench's traffic
/// graphs. With neither flag, `graphs` is left untouched (the caller keeps
/// its synthetic suite) and Ok is returned. A warm cache load performs zero
/// graph rebuilds (corpus::graphs_built() is unchanged); a cold or stale
/// cache triggers an ingest and, when --dataset-cache is set, a rewrite.
inline support::Status corpus_traffic(const ArgParser& parser,
                                      std::vector<graph::ProgramGraph>* graphs) {
  const std::string dir = parser.get_string("corpus");
  const std::string cache = parser.get_string("dataset-cache");
  if (dir.empty() && cache.empty()) return support::Status::Ok();

  corpus::IngestOptions options;
  options.num_threads = static_cast<int>(parser.get_int("corpus-threads"));
  corpus::CacheLimits limits;
  limits.max_feature =
      static_cast<std::int32_t>(graph::vocabulary_size()) - 1;

  if (!cache.empty()) {
    corpus::DatasetCacheReader reader;
    support::Status status = reader.open(cache, limits);
    if (status.ok()) {
      bool warm = reader.options_hash() == corpus::options_hash(options);
      if (warm && !dir.empty()) {
        std::uint64_t dir_hash = 0;
        status = corpus::hash_corpus_dir(dir, options.max_file_bytes,
                                         &dir_hash);
        if (!status.ok()) return status;
        warm = dir_hash == reader.corpus_hash();
      }
      if (warm) {
        const std::uint64_t built_before = corpus::graphs_built();
        graphs->clear();
        graphs->resize(static_cast<std::size_t>(reader.num_graphs()));
        for (std::uint64_t i = 0; i < reader.num_graphs(); ++i)
          reader.materialize(i, &(*graphs)[i]);
        std::printf("corpus: warm cache %s — %zu graphs, %llu rebuilds\n",
                    cache.c_str(), graphs->size(),
                    static_cast<unsigned long long>(corpus::graphs_built() -
                                                    built_before));
        if (graphs->empty())
          return support::Status::InvalidArgument("dataset cache is empty");
        return support::Status::Ok();
      }
    }
    if (dir.empty()) {
      // No corpus to rebuild from; surface why the cache was unusable.
      return status.ok() ? support::Status::InvalidArgument(
                               "dataset cache is stale and no --corpus given")
                         : status;
    }
  }

  corpus::IngestResult result;
  support::Status status = corpus::ingest_directory(dir, options, &result);
  if (!status.ok()) return status;
  for (const auto& file : result.files)
    if (!file.status.ok())
      std::fprintf(stderr, "corpus: skipped %s: %s (%s)\n", file.path.c_str(),
                   file.status.message(), file.detail.c_str());
  if (result.graphs.empty())
    return support::Status::InvalidArgument("corpus produced no graphs");
  std::printf("corpus: ingested %s — %llu files (%llu failed), %zu unique "
              "graphs, %llu duplicates\n",
              dir.c_str(),
              static_cast<unsigned long long>(result.stats.files_scanned),
              static_cast<unsigned long long>(result.stats.files_failed),
              result.graphs.size(),
              static_cast<unsigned long long>(result.stats.duplicates));
  if (!cache.empty()) {
    status = corpus::write_dataset_cache(cache, result.graphs,
                                         result.fingerprints,
                                         result.corpus_hash,
                                         result.options_hash);
    if (!status.ok()) return status;
    std::printf("corpus: wrote %s\n", cache.c_str());
  }
  *graphs = std::move(result.graphs);
  return support::Status::Ok();
}

/// Reads --threads, applies it to the process-global tensor kernel
/// parallelism cap, and returns it — the one place the flag is interpreted.
inline int apply_threads(const ArgParser& parser) {
  const int threads = static_cast<int>(parser.get_int("threads"));
  tensor::set_kernel_parallelism(threads);
  return threads;
}

inline ArgParser make_parser(const std::string& name,
                             const std::string& description) {
  ArgParser parser(name, description);
  parser.add("sequences", "4", "number of augmentation flag sequences (paper: 1000)")
      .add("epochs", "8", "GNN training epochs per fold")
      .add("hidden", "32", "GNN hidden dimension (paper: 256)")
      .add("layers", "2", "RGCN layers")
      .add("folds", "10", "cross-validation folds")
      .add("labels", "13", "reduced label count")
      .add("seed", "24069", "master random seed");
  add_runtime_flags(parser);
  return parser;
}

inline core::ExperimentOptions options_from(const ArgParser& parser) {
  core::ExperimentOptions options;
  options.num_sequences = static_cast<std::size_t>(parser.get_int("sequences"));
  options.epochs = static_cast<int>(parser.get_int("epochs"));
  options.hidden_dim = static_cast<int>(parser.get_int("hidden"));
  options.num_layers = static_cast<int>(parser.get_int("layers"));
  options.folds = static_cast<int>(parser.get_int("folds"));
  options.num_labels = static_cast<int>(parser.get_int("labels"));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  options.num_threads = apply_threads(parser);
  return options;
}

inline void finish(const Table& table, const ArgParser& parser) {
  table.print();
  std::string csv = parser.get_string("csv");
  if (!csv.empty() && table.write_csv(csv))
    std::printf("(csv written to %s)\n", csv.c_str());
}

}  // namespace irgnn::bench
