// Per-kernel microbenchmarks for the SIMD/arena engine.
//
// Each kernel runs `warmup` untimed repetitions (which also fills the
// buffer arena), then `reps` timed ones; the table reports the median
// wall-clock, the implied GFLOP/s, and how many bytes the measured
// repetitions pulled from malloc (pool misses) — the last column is the
// zero-allocation contract made visible: it must read 0 once warm.
//
// Shapes mirror the GNN hot path: [nodes, hidden] activations against
// [hidden, hidden] weights, plus square shapes for peak-throughput context.
//
//   ./microbench_kernels --threads 1 --reps 9
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "support/arena.h"
#include "support/argparse.h"
#include "support/table.h"
#include "tensor/tensor.h"

using namespace irgnn;
using tensor::Act;
using tensor::Tensor;

namespace {

struct Timing {
  double median_ms = 0;
  std::uint64_t malloc_bytes = 0;  // pool misses during the timed reps
};

template <typename Fn>
Timing bench(int warmup, int reps, const Fn& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  support::BufferPool::Stats before = support::BufferPool::global().stats();
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  support::BufferPool::Stats after = support::BufferPool::global().stats();
  std::sort(times.begin(), times.end());
  return {times[times.size() / 2], after.malloc_bytes - before.malloc_bytes};
}

std::string gflops(double flops, double ms) {
  return Table::fmt(flops / (ms * 1e-3) / 1e9, 2);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("microbench_kernels",
                   "SIMD tensor-kernel microbenchmarks (median-of-N, "
                   "GFLOP/s, bytes pulled from malloc while warm)");
  parser.add("reps", "9", "timed repetitions per kernel (median reported)")
      .add("warmup", "3", "untimed warmup repetitions (fills the arena)")
      .add("threads", "1",
           "kernel parallelism cap (1 isolates single-core throughput)")
      .add("csv", "", "optional path to also write the table as CSV");
  if (!parser.parse(argc, argv)) return 1;

  const int reps = static_cast<int>(parser.get_int("reps"));
  const int warmup = static_cast<int>(parser.get_int("warmup"));
  const int threads = static_cast<int>(parser.get_int("threads"));
  tensor::set_kernel_parallelism(threads);

  Table table({"kernel", "shape", "median [ms]", "GFLOP/s", "malloc B/rep"});
  Rng rng(0xBE7C4);

  auto add_result = [&](const std::string& kernel, const std::string& shape,
                        double flops, const Timing& t) {
    table.add_row({kernel, shape, Table::fmt(t.median_ms, 3),
                   gflops(flops, t.median_ms),
                   std::to_string(t.malloc_bytes / reps)});
  };

  // --- matmul forward -------------------------------------------------------
  struct MmCase {
    int m, k, n;
  };
  for (const MmCase& c :
       {MmCase{256, 256, 256}, MmCase{2048, 64, 64}, MmCase{512, 128, 512}}) {
    Tensor a = Tensor::xavier({c.m, c.k}, rng);
    Tensor b = Tensor::xavier({c.k, c.n}, rng);
    Timing t = bench(warmup, reps, [&] { tensor::matmul(a, b); });
    add_result("matmul fwd",
               std::to_string(c.m) + "x" + std::to_string(c.k) + "x" +
                   std::to_string(c.n),
               2.0 * c.m * c.k * c.n, t);
  }

  // --- matmul forward + backward (both GEMMs) ------------------------------
  {
    const int m = 512, k = 128, n = 128;
    Tensor a = Tensor::xavier({m, k}, rng);
    Tensor b = Tensor::xavier({k, n}, rng);
    Timing t = bench(warmup, reps, [&] {
      Tensor c = tensor::matmul(a, b);
      auto node = c.node();
      node->ensure_grad();
      std::fill(node->grad.begin(), node->grad.end(), 1.0f);
      a.grad();
      b.grad();
      node->backward_fn(*node);
    });
    add_result("matmul fwd+bwd", "512x128x128", 3 * 2.0 * m * k * n, t);
  }

  // --- fused bias + activation ---------------------------------------------
  {
    const int m = 4096, n = 256;
    Tensor a = Tensor::xavier({m, n}, rng);
    Tensor b = Tensor::xavier({1, n}, rng);
    Timing t =
        bench(warmup, reps, [&] { tensor::add_bias_act(a, b, Act::Relu); });
    add_result("add_bias_act relu", "4096x256", 2.0 * m * n, t);
  }

  // --- layer norm -----------------------------------------------------------
  {
    const int m = 4096, n = 256;
    Tensor x = Tensor::xavier({m, n}, rng);
    Tensor gamma = Tensor::full({1, n}, 1.0f);
    Tensor beta = Tensor::zeros({1, n});
    Timing t =
        bench(warmup, reps, [&] { tensor::layer_norm(x, gamma, beta); });
    add_result("layer_norm", "4096x256", 7.0 * m * n, t);
  }

  // --- scatter/gather reductions -------------------------------------------
  {
    const int e = 65536, d = 128, rows = 8192;
    Tensor x = Tensor::xavier({e, d}, rng);
    std::vector<int> dst(e);
    std::vector<float> coeff(e, 0.5f);
    for (int i = 0; i < e; ++i)
      dst[i] = static_cast<int>(rng.uniform(0.0, 1.0) * (rows - 1));
    Timing t = bench(warmup, reps,
                     [&] { tensor::index_add_rows(x, dst, coeff, rows); });
    add_result("index_add_rows", "65536x128->8192", 2.0 * e * d, t);

    std::vector<int> seg(e);
    for (int i = 0; i < e; ++i) seg[i] = i * rows / e;
    Timing ts =
        bench(warmup, reps, [&] { tensor::segment_mean(x, seg, rows); });
    add_result("segment_mean", "65536x128->8192", 2.0 * e * d, ts);
  }

  std::printf("=== Tensor kernel microbenchmarks (threads=%d, median of %d, "
              "%d warmup) ===\n",
              threads, reps, warmup);
  table.print();
  support::BufferPool::Stats stats = support::BufferPool::global().stats();
  std::printf("arena: %llu allocations from malloc (%.1f MiB) vs %llu served "
              "from the pool\n",
              static_cast<unsigned long long>(stats.malloc_calls),
              static_cast<double>(stats.malloc_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stats.pool_hits));
  std::string csv = parser.get_string("csv");
  if (!csv.empty() && table.write_csv(csv))
    std::printf("(csv written to %s)\n", csv.c_str());
  return 0;
}
