// Per-kernel microbenchmarks for the SIMD/arena engine.
//
// Each kernel runs `warmup` untimed repetitions (which also fills the
// buffer arena), then `reps` timed ones; the table reports the median
// wall-clock, the implied GFLOP/s, and how many bytes the measured
// repetitions pulled from malloc (pool misses) — the last column is the
// zero-allocation contract made visible: it must read 0 once warm.
//
// Shapes mirror the GNN hot path: [nodes, hidden] activations against
// [hidden, hidden] weights, plus square shapes for peak-throughput context.
//
// Two engine sections follow the kernel table: a GEMM before/after pitting
// the PR 2 one-dot-per-element kernel against the register-blocked 4x2
// micro-kernel (same packed panel, bit-identical outputs), and an inference
// section measuring the tape-free batched predict path (graphs/sec,
// ms/graph, malloc bytes per warm call — the last must read 0).
//
//   ./microbench_kernels --threads 1 --reps 9
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "gnn/model.h"
#include "gnn/quantize.h"
#include "graph/graph_builder.h"
#include "support/arena.h"
#include "support/argparse.h"
#include "support/table.h"
#include "tensor/gemm.h"
#include "tensor/gemm_int8.h"
#include "tensor/tensor.h"
#include "workloads/suite.h"

using namespace irgnn;
using tensor::Act;
using tensor::Tensor;

namespace {

struct Timing {
  double median_ms = 0;
  std::uint64_t malloc_bytes = 0;  // pool misses during the timed reps
};

template <typename Fn>
Timing time_kernel(int warmup, int reps, const Fn& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  support::BufferPool::Stats before = support::BufferPool::global().stats();
  std::vector<double> times;
  times.reserve(reps);
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    times.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  support::BufferPool::Stats after = support::BufferPool::global().stats();
  std::sort(times.begin(), times.end());
  return {times[times.size() / 2], after.malloc_bytes - before.malloc_bytes};
}

std::string gflops(double flops, double ms) {
  return Table::fmt(flops / (ms * 1e-3) / 1e9, 2);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("microbench_kernels",
                   "SIMD tensor-kernel microbenchmarks (median-of-N, "
                   "GFLOP/s, bytes pulled from malloc while warm)");
  parser.add("reps", "9", "timed repetitions per kernel (median reported)")
      .add("warmup", "3", "untimed warmup repetitions (fills the arena)")
      .add("json", "",
           "write machine-readable results (float + int8 GEMM sections, "
           "inference) to this path, e.g. BENCH_kernels.json");
  bench::add_runtime_flags(parser, /*default_threads=*/"1");
  if (!parser.parse(argc, argv)) return 1;

  // At least one timed rep (time_kernel() takes a median and divides by
  // reps) and
  // one warmup rep (the malloc columns and their threads=1 gate below only
  // mean anything once the arena is warm).
  const int reps = std::max(1, static_cast<int>(parser.get_int("reps")));
  const int warmup = std::max(1, static_cast<int>(parser.get_int("warmup")));
  const int threads = bench::apply_threads(parser);

  Table table({"kernel", "shape", "median [ms]", "GFLOP/s", "malloc B/rep"});
  Rng rng(0xBE7C4);

  auto add_result = [&](const std::string& kernel, const std::string& shape,
                        double flops, const Timing& t) {
    table.add_row({kernel, shape, Table::fmt(t.median_ms, 3),
                   gflops(flops, t.median_ms),
                   std::to_string(t.malloc_bytes / reps)});
  };

  // --- matmul forward -------------------------------------------------------
  // The fig12 GEMM shapes; the before/after section below reuses the same
  // list so both tables always speak about identical shapes.
  struct MmCase {
    int m, k, n;
  };
  const MmCase gemm_shapes[] = {
      {256, 256, 256}, {2048, 64, 64}, {512, 128, 512}};
  for (const MmCase& c : gemm_shapes) {
    Tensor a = Tensor::xavier({c.m, c.k}, rng);
    Tensor b = Tensor::xavier({c.k, c.n}, rng);
    Timing t = time_kernel(warmup, reps, [&] { tensor::matmul(a, b); });
    add_result("matmul fwd",
               std::to_string(c.m) + "x" + std::to_string(c.k) + "x" +
                   std::to_string(c.n),
               2.0 * c.m * c.k * c.n, t);
  }

  // --- matmul forward + backward (both GEMMs) ------------------------------
  {
    const int m = 512, k = 128, n = 128;
    Tensor a = Tensor::xavier({m, k}, rng);
    Tensor b = Tensor::xavier({k, n}, rng);
    Timing t = time_kernel(warmup, reps, [&] {
      Tensor c = tensor::matmul(a, b);
      auto node = c.node();
      node->ensure_grad();
      std::fill(node->grad.begin(), node->grad.end(), 1.0f);
      a.grad();
      b.grad();
      node->backward_fn(*node);
    });
    add_result("matmul fwd+bwd", "512x128x128", 3 * 2.0 * m * k * n, t);
  }

  // --- fused bias + activation ---------------------------------------------
  {
    const int m = 4096, n = 256;
    Tensor a = Tensor::xavier({m, n}, rng);
    Tensor b = Tensor::xavier({1, n}, rng);
    Timing t =
        time_kernel(warmup, reps, [&] { tensor::add_bias_act(a, b, Act::Relu); });
    add_result("add_bias_act relu", "4096x256", 2.0 * m * n, t);
  }

  // --- layer norm -----------------------------------------------------------
  {
    const int m = 4096, n = 256;
    Tensor x = Tensor::xavier({m, n}, rng);
    Tensor gamma = Tensor::full({1, n}, 1.0f);
    Tensor beta = Tensor::zeros({1, n});
    Timing t =
        time_kernel(warmup, reps, [&] { tensor::layer_norm(x, gamma, beta); });
    add_result("layer_norm", "4096x256", 7.0 * m * n, t);
  }

  // --- scatter/gather reductions -------------------------------------------
  {
    const int e = 65536, d = 128, rows = 8192;
    Tensor x = Tensor::xavier({e, d}, rng);
    std::vector<int> dst(e);
    std::vector<float> coeff(e, 0.5f);
    for (int i = 0; i < e; ++i)
      dst[i] = static_cast<int>(rng.uniform(0.0, 1.0) * (rows - 1));
    Timing t = time_kernel(warmup, reps,
                     [&] { tensor::index_add_rows(x, dst, coeff, rows); });
    add_result("index_add_rows", "65536x128->8192", 2.0 * e * d, t);

    std::vector<int> seg(e);
    for (int i = 0; i < e; ++i) seg[i] = i * rows / e;
    Timing ts =
        time_kernel(warmup, reps, [&] { tensor::segment_mean(x, seg, rows); });
    add_result("segment_mean", "65536x128->8192", 2.0 * e * d, ts);
  }

  std::printf("=== Tensor kernel microbenchmarks (threads=%d, median of %d, "
              "%d warmup) ===\n",
              threads, reps, warmup);
  table.print();
  support::BufferPool::Stats stats = support::BufferPool::global().stats();
  std::printf("arena: %llu allocations from malloc (%.1f MiB) vs %llu served "
              "from the pool\n",
              static_cast<unsigned long long>(stats.malloc_calls),
              static_cast<double>(stats.malloc_bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(stats.pool_hits));

  // Contract violations detected below (GEMM bit-identity, warm-inference
  // allocations) turn into a nonzero exit so the CI smoke run is a real
  // gate, not just a log line.
  int failures = 0;

  // Per-shape records kept for the --json artifact.
  struct GemmRecord {
    std::string shape;
    double before_ms = 0, after_ms = 0;
    bool identical = false;
  };
  std::vector<GemmRecord> float_gemm_records;
  std::vector<GemmRecord> int8_gemm_records;
  double int8_median_speedup = 0.0;
  double infer_float_predict_ms = 0.0, infer_int8_predict_ms = 0.0;
  std::uint64_t infer_float_malloc = 0, infer_int8_malloc = 0;

  // --- GEMM micro-kernel before/after --------------------------------------
  // The PR 2 kernel (one simd::dot per output element) against the PR 3
  // register-blocked 4x2 micro-kernel, on identical pre-packed panels and
  // single-threaded raw buffers — pure kernel throughput, no tape, no
  // packing in the timed region. Outputs are verified bit-identical.
  {
    Table gemm_table({"GEMM shape", "row-wise [ms]", "blocked [ms]",
                      "speedup", "GFLOP/s now", "bit-identical"});
    for (const MmCase& c : gemm_shapes) {
      const std::int64_t m = c.m, k = c.k, n = c.n;
      std::vector<float> a(static_cast<std::size_t>(m * k));
      std::vector<float> bt(static_cast<std::size_t>(n * k));
      for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      for (float& v : bt) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      std::vector<float> c_row(static_cast<std::size_t>(m * n), 0.0f);
      std::vector<float> c_blk = c_row;
      Timing rowwise = time_kernel(warmup, reps, [&] {
        tensor::detail::gemm_dot_rowwise<false>(a.data(), k, bt.data(), k, m,
                                                n, k, c_row.data(), n);
      });
      Timing blocked = time_kernel(warmup, reps, [&] {
        tensor::detail::gemm_dot_panels<false>(a.data(), k, bt.data(), k, m,
                                               n, k, c_blk.data(), n);
      });
      const bool identical = std::memcmp(c_row.data(), c_blk.data(),
                                         c_row.size() * sizeof(float)) == 0;
      if (!identical) ++failures;
      const double flops = 2.0 * c.m * c.k * c.n;
      const std::string shape = std::to_string(c.m) + "x" +
                                std::to_string(c.k) + "x" + std::to_string(c.n);
      float_gemm_records.push_back(
          {shape, rowwise.median_ms, blocked.median_ms, identical});
      gemm_table.add_row(
          {shape, Table::fmt(rowwise.median_ms, 3),
           Table::fmt(blocked.median_ms, 3),
           Table::fmt(rowwise.median_ms / blocked.median_ms, 2),
           gflops(flops, blocked.median_ms), identical ? "yes" : "NO"});
    }
    std::printf("\n=== GEMM kernel: PR 2 row-wise dots vs register-blocked "
                "4x2 (1 thread, packed panels) ===\n");
    gemm_table.print();
  }

  // --- Int8 GEMM vs float GEMM ----------------------------------------------
  // The register-blocked int8 micro-kernel (tensor/gemm_int8.h) against the
  // float register-blocked kernel on the same shapes and identical packed
  // layouts — the quantized inference path's raw kernel speedup. Inputs span
  // the quantizer's contract domain (activations [0,127], weights
  // [-127,127]); the int8 output is verified exactly against a naive
  // always-scalar dot_s8_ref reference, and the timed region must pull no
  // bytes from malloc (all buffers pre-sized).
  {
    Table int8_table({"GEMM shape", "float [ms]", "int8 [ms]", "speedup",
                      "GOP/s int8", "exact", "malloc B/rep"});
    std::vector<double> speedups;
    for (const MmCase& c : gemm_shapes) {
      const std::int64_t m = c.m, k = c.k, n = c.n;
      std::vector<float> a(static_cast<std::size_t>(m * k));
      std::vector<float> bt(static_cast<std::size_t>(n * k));
      for (float& v : a) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      for (float& v : bt) v = static_cast<float>(rng.uniform(-1.0, 1.0));
      std::vector<std::uint8_t> aq(a.size());
      std::vector<std::int8_t> btq(bt.size());
      for (std::size_t i = 0; i < a.size(); ++i)
        aq[i] = static_cast<std::uint8_t>(rng.uniform(0.0, 127.999));
      for (std::size_t i = 0; i < bt.size(); ++i)
        btq[i] = static_cast<std::int8_t>(rng.uniform(-127.0, 127.999));
      std::vector<float> c_f(static_cast<std::size_t>(m * n), 0.0f);
      std::vector<std::int32_t> c_q(static_cast<std::size_t>(m * n), 0);

      Timing float_t = time_kernel(warmup, reps, [&] {
        tensor::detail::gemm_dot_panels<false>(a.data(), k, bt.data(), k, m,
                                               n, k, c_f.data(), n);
      });
      Timing int8_t_ = time_kernel(warmup, reps, [&] {
        tensor::detail::gemm_s8_panels<false>(aq.data(), k, btq.data(), k, m,
                                              n, k, c_q.data(), n);
      });

      // Exactness gate: the vectorized kernel against one naive scalar dot
      // per element. Integer accumulation, so equality is exact or broken.
      bool exact = true;
      for (std::int64_t i = 0; i < m && exact; ++i)
        for (std::int64_t j = 0; j < n; ++j)
          if (c_q[static_cast<std::size_t>(i * n + j)] !=
              tensor::detail::dot_s8_ref(aq.data() + i * k, btq.data() + j * k,
                                         k)) {
            exact = false;
            break;
          }
      if (!exact) ++failures;
      if (float_t.malloc_bytes != 0 || int8_t_.malloc_bytes != 0) {
        ++failures;
        std::printf("FAILED: int8 GEMM timed region pulled bytes from "
                    "malloc\n");
      }

      const double speedup = float_t.median_ms / int8_t_.median_ms;
      speedups.push_back(speedup);
      const std::string shape = std::to_string(c.m) + "x" +
                                std::to_string(c.k) + "x" + std::to_string(c.n);
      int8_gemm_records.push_back(
          {shape, float_t.median_ms, int8_t_.median_ms, exact});
      int8_table.add_row(
          {shape, Table::fmt(float_t.median_ms, 3),
           Table::fmt(int8_t_.median_ms, 3), Table::fmt(speedup, 2),
           gflops(2.0 * c.m * c.k * c.n, int8_t_.median_ms),
           exact ? "yes" : "NO",
           std::to_string((float_t.malloc_bytes + int8_t_.malloc_bytes) /
                          reps)});
    }
    std::sort(speedups.begin(), speedups.end());
    int8_median_speedup = speedups[speedups.size() / 2];
    std::printf("\n=== Int8 GEMM: register-blocked int8 vs register-blocked "
                "float (1 thread, packed panels) ===\n");
    int8_table.print();
    std::printf("median int8 speedup over float: %.2fx\n",
                int8_median_speedup);
  }

  // --- Inference engine -----------------------------------------------------
  // Tape-free batched predict over the full workload suite's region graphs
  // against an untrained (weights are irrelevant to throughput) GNN of the
  // paper's size. Warm calls reuse the model's pooled inference context and
  // caller-owned outputs, so the malloc column must read 0.
  {
    std::vector<graph::ProgramGraph> owned;
    std::vector<const graph::ProgramGraph*> graphs;
    for (const auto& spec : workloads::benchmark_suite()) {
      auto module = workloads::build_region_module(spec);
      owned.push_back(graph::build_graph(*module));
    }
    for (const auto& g : owned) graphs.push_back(&g);

    gnn::ModelConfig cfg;
    cfg.vocab_size = graph::vocabulary_size();
    cfg.num_labels = 13;
    cfg.hidden_dim = 64;
    cfg.num_layers = 3;
    cfg.seed = 0x1FE2;
    cfg.num_threads = threads;
    gnn::StaticModel model(cfg);

    std::vector<int> preds;
    gnn::Evaluation eval;
    Timing predict_t =
        time_kernel(warmup, reps, [&] { model.predict_into(graphs, preds); });
    Timing eval_t = time_kernel(warmup, reps, [&] {
      model.evaluate(graphs, eval, /*want_embeddings=*/true);
    });

    // The int8 twin: calibrate on the same graphs, then time the quantized
    // model over the identical query. Same warm-path contract (0 malloc
    // bytes at threads=1).
    auto quantized_or = model.quantize(graphs);
    if (!quantized_or.ok()) {
      ++failures;
      std::printf("FAILED: quantization: %s\n",
                  std::string(quantized_or.status().message()).c_str());
    }
    std::shared_ptr<const gnn::QuantizedModel> quantized =
        quantized_or.ok() ? std::move(quantized_or).value() : nullptr;
    std::vector<int> qpreds;
    Timing qpredict_t;
    if (quantized)
      qpredict_t = time_kernel(
          warmup, reps, [&] { quantized->predict_into(graphs, qpreds); });

    const double G = static_cast<double>(graphs.size());
    Table infer_table({"query", "graphs", "ms/call", "ms/graph", "graphs/sec",
                       "malloc B/call"});
    auto add_infer = [&](const char* name, const Timing& t) {
      infer_table.add_row(
          {name, std::to_string(graphs.size()), Table::fmt(t.median_ms, 3),
           Table::fmt(t.median_ms / G, 4),
           Table::fmt(G / (t.median_ms * 1e-3), 0),
           std::to_string(t.malloc_bytes / reps)});
    };
    add_infer("predict", predict_t);
    add_infer("evaluate (+log-probs, +embeddings)", eval_t);
    if (quantized) add_infer("predict int8", qpredict_t);
    std::printf("\n=== Inference engine (tape-free batched predict, "
                "hidden=64, layers=3, threads=%d) ===\n",
                threads);
    infer_table.print();
    if (quantized)
      std::printf("int8 end-to-end predict speedup over float: %.2fx\n",
                  predict_t.median_ms / qpredict_t.median_ms);
    infer_float_predict_ms = predict_t.median_ms;
    infer_int8_predict_ms = qpredict_t.median_ms;
    infer_float_malloc = predict_t.malloc_bytes / reps;
    infer_int8_malloc = qpredict_t.malloc_bytes / reps;
    // Single-threaded warm inference is deterministic and must be
    // allocation-free; concurrent shards may legitimately grow the pool
    // while ramping, so the gate applies only at threads=1.
    if (threads == 1 &&
        (predict_t.malloc_bytes != 0 || eval_t.malloc_bytes != 0 ||
         (quantized && qpredict_t.malloc_bytes != 0))) {
      ++failures;
      std::printf("FAILED: warm single-threaded inference pulled bytes from "
                  "malloc\n");
    }
  }

  std::string csv = parser.get_string("csv");
  if (!csv.empty() && table.write_csv(csv))
    std::printf("(csv written to %s)\n", csv.c_str());

  // --- Machine-readable results (CI artifact) -------------------------------
  // Same hand-written fprintf style as serve_throughput --json: flat
  // sections, one line per record, no serializer dependency.
  const std::string json_path = parser.get_string("json");
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::printf("\nWARNING: could not open %s for writing\n",
                  json_path.c_str());
    } else {
      std::fprintf(f,
                   "{\n"
                   "  \"bench\": \"microbench_kernels\",\n"
                   "  \"config\": {\"threads\": %d, \"reps\": %d, "
                   "\"warmup\": %d},\n"
                   "  \"float_gemm\": [\n",
                   threads, reps, warmup);
      for (std::size_t i = 0; i < float_gemm_records.size(); ++i) {
        const GemmRecord& r = float_gemm_records[i];
        std::fprintf(f,
                     "    {\"shape\": \"%s\", \"rowwise_ms\": %.4f, "
                     "\"blocked_ms\": %.4f, \"speedup\": %.3f, "
                     "\"bit_identical\": %s}%s\n",
                     r.shape.c_str(), r.before_ms, r.after_ms,
                     r.before_ms / r.after_ms, r.identical ? "true" : "false",
                     i + 1 < float_gemm_records.size() ? "," : "");
      }
      std::fprintf(f, "  ],\n  \"int8_gemm\": [\n");
      for (std::size_t i = 0; i < int8_gemm_records.size(); ++i) {
        const GemmRecord& r = int8_gemm_records[i];
        std::fprintf(f,
                     "    {\"shape\": \"%s\", \"float_ms\": %.4f, "
                     "\"int8_ms\": %.4f, \"speedup\": %.3f, "
                     "\"exact\": %s}%s\n",
                     r.shape.c_str(), r.before_ms, r.after_ms,
                     r.before_ms / r.after_ms, r.identical ? "true" : "false",
                     i + 1 < int8_gemm_records.size() ? "," : "");
      }
      std::fprintf(
          f,
          "  ],\n"
          "  \"int8_gemm_median_speedup\": %.3f,\n"
          "  \"inference\": {\"float_predict_ms\": %.4f, "
          "\"int8_predict_ms\": %.4f, \"speedup\": %.3f,\n"
          "               \"float_malloc_b\": %llu, \"int8_malloc_b\": "
          "%llu},\n"
          "  \"failures\": %d\n"
          "}\n",
          int8_median_speedup, infer_float_predict_ms, infer_int8_predict_ms,
          infer_int8_predict_ms > 0.0
              ? infer_float_predict_ms / infer_int8_predict_ms
              : 0.0,
          static_cast<unsigned long long>(infer_float_malloc),
          static_cast<unsigned long long>(infer_int8_malloc), failures);
      std::fclose(f);
      std::printf("wrote %s\n", json_path.c_str());
    }
  }
  if (failures != 0) {
    std::printf("FAILED: %d engine contract violation(s) (see tables "
                "above)\n",
                failures);
    return 1;
  }
  return 0;
}
