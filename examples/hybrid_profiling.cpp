// hybrid_profiling: the paper's headline workflow — predict statically,
// profile only the programs the router flags. Runs a scaled-down experiment
// on Skylake and walks through the routing decisions region by region.
#include <cstdio>

#include "core/experiment.h"
#include "support/argparse.h"
#include "support/table.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser("hybrid_profiling",
                   "hybrid static/dynamic optimization walkthrough");
  parser.add("sequences", "4", "augmentation flag sequences")
      .add("epochs", "10", "GNN epochs")
      .add("folds", "7", "cross-validation folds")
      .add("seed", "5", "random seed");
  if (!parser.parse(argc, argv)) return 1;

  core::ExperimentOptions options;
  options.num_sequences =
      static_cast<std::size_t>(parser.get_int("sequences"));
  options.epochs = static_cast<int>(parser.get_int("epochs"));
  options.folds = static_cast<int>(parser.get_int("folds"));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  options.hidden_dim = 32;

  std::printf("running the hybrid workflow on Skylake "
              "(%zu sequences, %d epochs, %d folds)...\n",
              options.num_sequences, options.epochs, options.folds);
  core::ExperimentResult res =
      core::run_experiment(sim::MachineDesc::skylake(), options);

  Table table({"region", "decision", "static_spdup", "final_spdup"});
  int profiled = 0;
  for (const auto& r : res.regions) {
    profiled += r.hybrid_profiled;
    table.add_row({r.name,
                   r.hybrid_profiled ? "profile (dynamic)" : "static only",
                   Table::fmt(r.static_speedup),
                   Table::fmt(r.hybrid_speedup)});
  }
  table.print();
  std::printf("\nprofiled %d/%zu regions (%.0f%% — the rest were optimized "
              "purely from their IR graphs)\n",
              profiled, res.regions.size(),
              100.0 * res.hybrid_profiled_fraction);
  std::printf("average speedups: static-only %.3fx, hybrid %.3fx, dynamic "
              "%.3fx, full exploration %.3fx\n",
              res.static_speedup, res.hybrid_speedup, res.dynamic_speedup,
              res.full_speedup);
  std::printf("the hybrid model recovers %.0f%% of the dynamic model's gains "
              "at %.0f%% of its profiling cost\n",
              100.0 * (res.hybrid_speedup - 1.0) /
                  (res.dynamic_speedup - 1.0),
              100.0 * res.hybrid_profiled_fraction);
  return 0;
}
