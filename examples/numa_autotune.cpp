// numa_autotune: exhaustive NUMA/prefetcher tuning of one benchmark region
// on the simulated machine — the "step C" exploration the paper pays once
// to label its dataset. Prints the top configurations, the default, and the
// collected performance counters.
//
// With --gnn (default) the example also answers the deployment question the
// paper poses: what would the trained predictor have chosen *without*
// exploring? It trains the static model leave-one-out (every suite region
// except the target), publishes it into a serve::Router under the
// machine's name and queries the target region's graph through the typed
// Request/Response front door — the same serving path a production tuner
// would hit — then scores the served prediction against the exhaustive
// exploration it just ran.
#include <algorithm>
#include <cstdio>

#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "serve/router.h"
#include "sim/exploration.h"
#include "support/argparse.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser("numa_autotune",
                   "exhaustively tune one region over the NUMA/prefetch space");
  parser.add("region", "ft step 2", "region name (see workloads/suite.h)")
      .add("machine", "SandyBridge", "SandyBridge or Skylake")
      .add("top", "8", "how many configurations to print")
      .add("gnn", "true",
           "also query the leave-one-out GNN predictor through the "
           "inference server and score its choice");
  if (!parser.parse(argc, argv)) return 1;

  const workloads::RegionSpec* spec =
      workloads::find_region(parser.get_string("region"));
  if (!spec) {
    std::fprintf(stderr, "unknown region '%s'; available:\n",
                 parser.get_string("region").c_str());
    for (const auto& s : workloads::benchmark_suite())
      std::fprintf(stderr, "  %s\n", s.name.c_str());
    return 1;
  }
  sim::MachineDesc machine = parser.get_string("machine") == "Skylake"
                                 ? sim::MachineDesc::skylake()
                                 : sim::MachineDesc::sandy_bridge();
  const bool use_gnn = parser.get_bool("gnn");

  // One exploration covers both uses: the target's exhaustive table row,
  // and (with --gnn) the oracle labels the leave-one-out model trains on.
  std::vector<sim::WorkloadTraits> traits =
      use_gnn ? workloads::suite_traits()
              : std::vector<sim::WorkloadTraits>{spec->traits};
  sim::ExplorationTable table = sim::explore(machine, traits);
  const std::size_t row = use_gnn ? table.region_index(spec->traits.region)
                                  : 0;
  std::printf("explored %zu configurations of '%s' on %s\n",
              table.configurations.size(), spec->name.c_str(),
              machine.name.c_str());

  std::vector<std::size_t> order(table.configurations.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return table.time[row][a] < table.time[row][b];
  });

  Table top({"rank", "configuration", "cycles(M)", "speedup_vs_default"});
  for (int i = 0; i < parser.get_int("top"); ++i) {
    std::size_t c = order[i];
    top.add_row({std::to_string(i + 1),
                 table.configurations[c].to_string(),
                 Table::fmt(table.time[row][c] / 1e6, 2),
                 Table::fmt(table.speedup(row, c))});
  }
  top.add_row({"-", "(default) " +
                        table.configurations[table.default_index].to_string(),
               Table::fmt(table.time[row][table.default_index] / 1e6, 2),
               "1.000"});
  top.print();

  const sim::PerfCounters& counters = table.default_counters[row];
  std::printf("\ncounters at the default configuration:\n"
              "  package power       %.1f W\n"
              "  L3 miss ratio       %.3f\n"
              "  remote access ratio %.3f\n"
              "  bandwidth util      %.3f\n"
              "  IPC per core        %.3f\n",
              counters.package_power, counters.l3_miss_ratio,
              counters.remote_access_ratio, counters.bandwidth_utilization,
              counters.ipc);

  if (!use_gnn) return 0;

  // --- Served prediction: what the deployed model would have chosen -------
  std::vector<int> labels = sim::reduce_labels(table, 13);
  std::vector<int> oracle = sim::best_labels(table, labels);

  std::vector<graph::ProgramGraph> owned;
  std::vector<const graph::ProgramGraph*> train_graphs;
  std::vector<int> train_labels;
  graph::ProgramGraph target_graph;
  const auto& suite = workloads::benchmark_suite();
  owned.reserve(suite.size());
  for (std::size_t r = 0; r < suite.size(); ++r) {
    auto module = workloads::build_region_module(suite[r]);
    owned.push_back(graph::build_graph(*module));
    if (suite[r].name == spec->name) {
      target_graph = owned.back();  // held out of training
      continue;
    }
    train_graphs.push_back(&owned.back());
    train_labels.push_back(oracle[r]);
  }

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = static_cast<int>(labels.size());
  cfg.hidden_dim = 32;
  cfg.num_layers = 2;
  cfg.epochs = 6;
  cfg.seed = 0xA070;
  std::printf("\ntraining the leave-one-out predictor (%zu regions)...\n",
              train_graphs.size());
  auto model = std::make_shared<gnn::StaticModel>(cfg);
  model->train(train_graphs, train_labels);

  serve::Router router;
  router.publish(machine.name, std::move(model));

  // A misrouted request (unknown architecture) is a Status, not a throw —
  // the front door a production tuner would see.
  const serve::Response misrouted =
      router.predict(serve::Request(target_graph, "NoSuchArch"));
  if (misrouted.status.code() != serve::StatusCode::kModelNotFound) {
    std::fprintf(stderr, "BUG: expected ModelNotFound for an unknown "
                         "architecture, got %s\n",
                 misrouted.status.code_name());
    return 1;
  }

  const serve::Response first =
      router.predict(serve::Request(target_graph, machine.name));
  const serve::Response repeat =
      router.predict(serve::Request(target_graph, machine.name));
  if (!first.ok() || !repeat.ok()) {
    std::fprintf(stderr, "serve error: %s\n", first.ok()
                                                  ? repeat.status.code_name()
                                                  : first.status.code_name());
    return 1;
  }
  const int predicted = first.label;
  const std::size_t predicted_config =
      static_cast<std::size_t>(labels[static_cast<std::size_t>(predicted)]);
  const std::size_t oracle_config = static_cast<std::size_t>(
      labels[static_cast<std::size_t>(oracle[row])]);

  serve::RouterStats stats = router.stats();
  std::printf("\nserved prediction (model '%s' v%llu, %llu routed + %llu "
              "misrouted -> %llu forwards, %llu cache hits; first answer "
              "from %s in %lld us queue + %lld us compute, repeat from "
              "%s):\n"
              "  predicted   %s  speedup %.3f\n"
              "  label-set best %s  speedup %.3f\n"
              "  exhaustive best %s  speedup %.3f\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(first.model_version),
              static_cast<unsigned long long>(stats.routed),
              static_cast<unsigned long long>(stats.model_not_found),
              static_cast<unsigned long long>(stats.forwards),
              static_cast<unsigned long long>(stats.cache_hits),
              serve::source_name(first.source),
              static_cast<long long>(first.queue_us),
              static_cast<long long>(first.compute_us),
              serve::source_name(repeat.source),
              table.configurations[predicted_config].to_string().c_str(),
              table.speedup(row, predicted_config),
              table.configurations[oracle_config].to_string().c_str(),
              table.speedup(row, oracle_config),
              table.configurations[table.best_config(row)].to_string().c_str(),
              table.speedup(row, table.best_config(row)));
  if (repeat.label != predicted || repeat.source != serve::Source::Cache) {
    std::fprintf(stderr,
                 "BUG: cached prediction differs from the served one\n");
    return 1;
  }
  return 0;
}
