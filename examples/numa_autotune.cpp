// numa_autotune: exhaustive NUMA/prefetcher tuning of one benchmark region
// on the simulated machine — the "step C" exploration the paper pays once
// to label its dataset. Prints the top configurations, the default, and the
// collected performance counters.
#include <algorithm>
#include <cstdio>

#include "sim/exploration.h"
#include "support/argparse.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser("numa_autotune",
                   "exhaustively tune one region over the NUMA/prefetch space");
  parser.add("region", "ft step 2", "region name (see workloads/suite.h)")
      .add("machine", "SandyBridge", "SandyBridge or Skylake")
      .add("top", "8", "how many configurations to print");
  if (!parser.parse(argc, argv)) return 1;

  const workloads::RegionSpec* spec =
      workloads::find_region(parser.get_string("region"));
  if (!spec) {
    std::fprintf(stderr, "unknown region '%s'; available:\n",
                 parser.get_string("region").c_str());
    for (const auto& s : workloads::benchmark_suite())
      std::fprintf(stderr, "  %s\n", s.name.c_str());
    return 1;
  }
  sim::MachineDesc machine = parser.get_string("machine") == "Skylake"
                                 ? sim::MachineDesc::skylake()
                                 : sim::MachineDesc::sandy_bridge();

  std::vector<sim::WorkloadTraits> traits{spec->traits};
  sim::ExplorationTable table = sim::explore(machine, traits);
  std::printf("explored %zu configurations of '%s' on %s\n",
              table.configurations.size(), spec->name.c_str(),
              machine.name.c_str());

  std::vector<std::size_t> order(table.configurations.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return table.time[0][a] < table.time[0][b];
  });

  Table top({"rank", "configuration", "cycles(M)", "speedup_vs_default"});
  for (int i = 0; i < parser.get_int("top"); ++i) {
    std::size_t c = order[i];
    top.add_row({std::to_string(i + 1),
                 table.configurations[c].to_string(),
                 Table::fmt(table.time[0][c] / 1e6, 2),
                 Table::fmt(table.speedup(0, c))});
  }
  top.add_row({"-", "(default) " +
                        table.configurations[table.default_index].to_string(),
               Table::fmt(table.time[0][table.default_index] / 1e6, 2),
               "1.000"});
  top.print();

  const sim::PerfCounters& counters = table.default_counters[0];
  std::printf("\ncounters at the default configuration:\n"
              "  package power       %.1f W\n"
              "  L3 miss ratio       %.3f\n"
              "  remote access ratio %.3f\n"
              "  bandwidth util      %.3f\n"
              "  IPC per core        %.3f\n",
              counters.package_power, counters.l3_miss_ratio,
              counters.remote_access_ratio, counters.bandwidth_utilization,
              counters.ipc);
  return 0;
}
