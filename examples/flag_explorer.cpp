// flag_explorer: how compiler flag sequences reshape a region's IR and its
// graph — the paper's augmentation device (step A) made visible. For one
// region, prints each sampled sequence, the instruction count before/after
// and the resulting graph size; identical structural fingerprints collapse.
#include <cstdio>
#include <map>

#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/printer.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "support/argparse.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;

int main(int argc, char** argv) {
  ArgParser parser("flag_explorer",
                   "show how flag sequences reshape a region's IR graph");
  parser.add("region", "cg 551", "region name")
      .add("sequences", "12", "number of flag sequences to sample")
      .add("seed", "11", "sampling seed")
      .add("dump-ir", "false", "print the optimized IR of the last variant");
  if (!parser.parse(argc, argv)) return 1;

  const workloads::RegionSpec* spec =
      workloads::find_region(parser.get_string("region"));
  if (!spec) {
    std::fprintf(stderr, "unknown region '%s'\n",
                 parser.get_string("region").c_str());
    return 1;
  }
  auto base = workloads::build_region_module(*spec);
  std::printf("region '%s': base module has %zu instructions\n",
              spec->name.c_str(), base->instruction_count());

  auto sequences = passes::sample_flag_sequences(
      static_cast<std::size_t>(parser.get_int("sequences")),
      static_cast<std::uint64_t>(parser.get_int("seed")));

  Table table({"seq", "passes", "insts", "graph_nodes", "graph_edges"});
  std::map<std::pair<std::size_t, std::size_t>, int> fingerprints;
  std::unique_ptr<ir::Module> last;
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    auto variant = base->clone();
    passes::PassManager pm(sequences[s].passes);
    pm.run(*variant);
    auto region = graph::extract_region(
        *variant, workloads::outlined_name(spec->kernel.name));
    auto pg = graph::build_graph(*region);
    table.add_row({std::to_string(s), std::to_string(sequences[s].passes.size()),
                   std::to_string(variant->instruction_count()),
                   std::to_string(pg.num_nodes()),
                   std::to_string(pg.num_edges())});
    ++fingerprints[{pg.num_nodes(), pg.num_edges()}];
    last = std::move(variant);
  }
  table.print();
  std::printf("%zu distinct structural fingerprints across %zu sequences\n",
              fingerprints.size(), sequences.size());
  if (parser.get_bool("dump-ir") && last)
    std::printf("\n%s\n", ir::print_module(*last).c_str());
  return 0;
}
