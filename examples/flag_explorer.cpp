// flag_explorer: how compiler flag sequences reshape a region's IR and its
// graph — the paper's augmentation device (step A) made visible. For one
// region, prints each sampled sequence, the instruction count before/after
// and the resulting graph size; identical structural fingerprints
// (graph::fingerprint) collapse.
//
// With --predict (default) the example is also a serving client: it trains
// a small static model on the benchmark suite's exploration labels,
// publishes it into a serve::Router under the machine's name, and streams
// every variant's graph through the router as typed Requests — variants
// that optimized to the same IR hit the fingerprint-keyed prediction cache
// (Response::source == Cache) instead of running a forward, which is
// exactly the traffic pattern of iterative flag exploration.
#include <cstdio>
#include <map>

#include "gnn/model.h"
#include "graph/fingerprint.h"
#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/printer.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "serve/router.h"
#include "sim/exploration.h"
#include "support/argparse.h"
#include "support/table.h"
#include "workloads/suite.h"

using namespace irgnn;

namespace {

/// Trains the suite-labeled static model the served predictions come from:
/// one exploration of the whole suite labels every region with its best
/// reduced configuration, and the model learns region graph -> label.
std::shared_ptr<const gnn::StaticModel> train_suite_model(
    const sim::MachineDesc& machine, std::vector<int>* labels_out) {
  sim::ExplorationTable table =
      sim::explore(machine, workloads::suite_traits());
  std::vector<int> labels = sim::reduce_labels(table, 13);
  std::vector<int> oracle = sim::best_labels(table, labels);

  std::vector<graph::ProgramGraph> owned;
  for (const auto& spec : workloads::benchmark_suite()) {
    auto module = workloads::build_region_module(spec);
    owned.push_back(graph::build_graph(*module));
  }
  std::vector<const graph::ProgramGraph*> graphs;
  for (const auto& g : owned) graphs.push_back(&g);

  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = static_cast<int>(labels.size());
  cfg.hidden_dim = 32;
  cfg.num_layers = 2;
  cfg.epochs = 6;
  cfg.seed = 0xF1A6;
  auto model = std::make_shared<gnn::StaticModel>(cfg);
  model->train(graphs, oracle);
  if (labels_out) *labels_out = labels;
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("flag_explorer",
                   "show how flag sequences reshape a region's IR graph");
  parser.add("region", "cg 551", "region name")
      .add("sequences", "12", "number of flag sequences to sample")
      .add("seed", "11", "sampling seed")
      .add("machine", "SandyBridge",
           "machine whose exploration labels the served model learns")
      .add("predict", "true",
           "serve per-variant config predictions through an inference server")
      .add("dump-ir", "false", "print the optimized IR of the last variant");
  if (!parser.parse(argc, argv)) return 1;

  const workloads::RegionSpec* spec =
      workloads::find_region(parser.get_string("region"));
  if (!spec) {
    std::fprintf(stderr, "unknown region '%s'\n",
                 parser.get_string("region").c_str());
    return 1;
  }
  auto base = workloads::build_region_module(*spec);
  std::printf("region '%s': base module has %zu instructions\n",
              spec->name.c_str(), base->instruction_count());

  const bool predict = parser.get_bool("predict");
  serve::Router router;  // typed front door; this client serves one model
  std::vector<int> labels;
  sim::MachineDesc machine = parser.get_string("machine") == "Skylake"
                                 ? sim::MachineDesc::skylake()
                                 : sim::MachineDesc::sandy_bridge();
  if (predict) {
    std::printf("training the served model on %s exploration labels...\n",
                machine.name.c_str());
    router.publish(machine.name, train_suite_model(machine, &labels));
  }

  auto sequences = passes::sample_flag_sequences(
      static_cast<std::size_t>(parser.get_int("sequences")),
      static_cast<std::uint64_t>(parser.get_int("seed")));

  std::vector<std::string> columns = {"seq", "passes", "insts", "graph_nodes",
                                      "graph_edges", "fingerprint"};
  if (predict) columns.push_back("served_config");
  Table table(columns);
  std::map<std::uint64_t, int> fingerprints;
  std::unique_ptr<ir::Module> last;
  for (std::size_t s = 0; s < sequences.size(); ++s) {
    auto variant = base->clone();
    passes::PassManager pm(sequences[s].passes);
    pm.run(*variant);
    auto region = graph::extract_region(
        *variant, workloads::outlined_name(spec->kernel.name));
    // predict() is synchronous and the cache stores labels only, so the
    // variant graph need not outlive its own loop iteration.
    const graph::ProgramGraph pg = graph::build_graph(*region);
    const std::uint64_t fp = graph::fingerprint(pg);
    std::vector<std::string> row = {
        std::to_string(s), std::to_string(sequences[s].passes.size()),
        std::to_string(variant->instruction_count()),
        std::to_string(pg.num_nodes()), std::to_string(pg.num_edges())};
    char fp_hex[24];
    std::snprintf(fp_hex, sizeof fp_hex, "%016llx",
                  static_cast<unsigned long long>(fp));
    row.push_back(fp_hex);
    if (predict) {
      // Structurally identical variants are served from the prediction
      // cache: only the first of each fingerprint runs a forward. The
      // routed query path never throws — a failure is a Status.
      const serve::Response response =
          router.predict(serve::Request(pg, machine.name));
      if (!response.ok()) {
        std::fprintf(stderr, "serve error: %s (%s)\n",
                     response.status.code_name(), response.status.message());
        return 1;
      }
      row.push_back(labels.empty()
                        ? std::to_string(response.label)
                        : std::to_string(labels[static_cast<std::size_t>(
                              response.label)]));
    }
    table.add_row(row);
    ++fingerprints[fp];
    last = std::move(variant);
  }
  table.print();
  std::printf("%zu distinct structural fingerprints across %zu sequences\n",
              fingerprints.size(), sequences.size());
  if (predict) {
    serve::RouterStats stats = router.stats();
    std::printf("serve [model '%s' v%llu]: %llu routed queries -> %llu "
                "forwards in %llu micro-batches, %llu cache hits (%.0f%% of "
                "variant queries answered without a forward), %llu shed\n",
                machine.name.c_str(),
                static_cast<unsigned long long>(router.version(machine.name)),
                static_cast<unsigned long long>(stats.routed),
                static_cast<unsigned long long>(stats.forwards),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.cache_hits),
                stats.queries ? 100.0 * static_cast<double>(stats.cache_hits) /
                                    static_cast<double>(stats.queries)
                              : 0.0,
                static_cast<unsigned long long>(stats.source_shed));
  }
  if (parser.get_bool("dump-ir") && last)
    std::printf("\n%s\n", ir::print_module(*last).c_str());
  return 0;
}
