// Quickstart: the whole pipeline on one program in under a minute.
//
//   1. parse an OpenMP-style module from textual IR,
//   2. run a down-sampled -O3 flag sequence over it,
//   3. extract the outlined parallel region and build its ProGraML graph,
//   4. train a small RGCN model on the benchmark suite,
//   5. publish the model into the serving front door (serve::Router) and
//      predict the best NUMA/prefetcher configuration for the new program
//      with a typed Request/Response round trip, then compare the served
//      choice against exhaustive exploration in the simulator.
#include <cstdio>

#include "core/experiment.h"
#include "gnn/model.h"
#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/parser.h"
#include "ir/printer.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "serve/router.h"
#include "sim/exploration.h"
#include "workloads/suite.h"

using namespace irgnn;

namespace {

const char* kProgram = R"(
; ModuleID = 'saxpy'
define void @saxpy.omp_outlined(i64 %n, double* %x, double* %y) "omp.outlined"="true" {
entry:
  %i.slot = alloca i64, i64 1
  store i64 0, i64* %i.slot
  br label %header
header:
  %i = load i64, i64* %i.slot
  %cond = icmp slt i64 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %xp = getelementptr double, double* %x, i64 %i
  %xv = load double, double* %xp
  %scaled = fmul double %xv, 2.5
  %yp = getelementptr double, double* %y, i64 %i
  %yv = load double, double* %yp
  %sum = fadd double %scaled, %yv
  store double %sum, double* %yp
  %next = add i64 %i, 1
  store i64 %next, i64* %i.slot
  br label %header
exit:
  ret void
}
define void @saxpy(i64 %n, double* %x, double* %y) {
entry:
  call void @saxpy.omp_outlined(i64 %n, double* %x, double* %y)
  ret void
}
)";

}  // namespace

int main() {
  // 1. Parse.
  std::string error;
  auto module = ir::parse_module(kProgram, &error);
  if (!module) {
    std::fprintf(stderr, "parse error: %s\n", error.c_str());
    return 1;
  }
  std::printf("parsed module '%s' with %zu instructions\n",
              module->name().c_str(), module->instruction_count());

  // 2. One augmentation flag sequence (down-sampled -O3).
  auto sequences = passes::sample_flag_sequences(1, /*seed=*/7);
  std::printf("flag sequence: %s\n", sequences[0].to_string().c_str());
  passes::PassManager pm(sequences[0].passes);
  pm.run(*module);
  std::printf("after the sequence: %zu instructions\n",
              module->instruction_count());

  // 3. Region graph.
  auto region = graph::extract_region(*module, "saxpy.omp_outlined");
  auto pg = graph::build_graph(*region);
  std::printf("region graph: %zu nodes, %zu edges (control=%zu data=%zu "
              "call=%zu)\n",
              pg.num_nodes(), pg.num_edges(),
              pg.count_edges(graph::EdgeKind::Control),
              pg.count_edges(graph::EdgeKind::Data),
              pg.count_edges(graph::EdgeKind::Call));

  // 4. Train a small model over the benchmark suite's labels.
  const sim::MachineDesc machine = sim::MachineDesc::skylake();
  auto table = sim::explore(machine, workloads::suite_traits());
  auto labels = sim::reduce_labels(table, 13);
  auto oracle = sim::best_labels(table, labels);

  core::Dataset dataset = core::build_dataset({/*num_sequences=*/2, 7});
  std::vector<const graph::ProgramGraph*> train;
  std::vector<int> train_labels;
  for (std::size_t r = 0; r < dataset.num_regions(); ++r)
    for (std::size_t s = 0; s < dataset.num_sequences(); ++s) {
      train.push_back(&dataset.graph(r, s));
      train_labels.push_back(oracle[r]);
    }
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = static_cast<int>(labels.size());
  cfg.hidden_dim = 32;
  cfg.epochs = 8;
  gnn::StaticModel model(cfg);
  auto stats = model.train(train, train_labels);
  std::printf("trained on %zu graphs, final train accuracy %.2f\n",
              train.size(), stats.final_train_accuracy);

  // 5. Serve the prediction for the unseen saxpy region through the
  //    production front door: publish the model into a Router under the
  //    machine's name and send a typed Request. The query path is
  //    exception-free — failures come back as a Status in the Response.
  serve::Router router;
  router.publish(machine.name, serve::borrow_model(model));
  const serve::Response served =
      router.predict(serve::Request(pg, machine.name));
  if (!served.ok()) {
    std::fprintf(stderr, "serve error: %s (%s)\n", served.status.code_name(),
                 served.status.message());
    return 1;
  }
  const int predicted = served.label;
  std::printf("served prediction for saxpy (model '%s' v%llu, %s, "
              "%lld us compute): label %d\n",
              machine.name.c_str(),
              static_cast<unsigned long long>(served.model_version),
              serve::source_name(served.source),
              static_cast<long long>(served.compute_us), predicted);
  // Asking again hits the fingerprint-keyed prediction cache, and asking
  // for an unknown architecture is ModelNotFound, not a crash.
  const serve::Response again =
      router.predict(serve::Request(pg, machine.name));
  const serve::Response unknown =
      router.predict(serve::Request(pg, "Itanium"));
  std::printf("repeat query served from %s; unknown architecture -> %s\n",
              serve::source_name(again.source), unknown.status.code_name());
  const sim::Configuration& config = table.configurations[labels[predicted]];
  std::printf("predicted configuration for saxpy: %s\n",
              config.to_string().c_str());

  sim::WorkloadTraits traits;
  traits.region = "saxpy";
  sim::Phase phase;
  sim::MemoryStream xs;
  xs.stride_bytes = 8;
  xs.footprint_bytes = 96ull << 20;
  sim::MemoryStream ys = xs;
  ys.write_fraction = 0.5;
  phase.streams = {xs, ys};
  phase.flops_per_access = 1.0;
  phase.accesses_per_call = 3'000'000;
  traits.phases = {phase};

  sim::Simulator simulator(machine);
  double t_default =
      simulator.simulate(traits, sim::default_configuration(machine)).cycles;
  double t_predicted = simulator.simulate(traits, config).cycles;
  double best = 1e300;
  sim::Configuration best_config;
  for (const auto& candidate : table.configurations) {
    double t = simulator.simulate(traits, candidate).cycles;
    if (t < best) {
      best = t;
      best_config = candidate;
    }
  }
  std::printf("saxpy timing: default=%.2fM cycles, predicted=%.2fM (%.2fx), "
              "exhaustive best=%.2fM (%.2fx, %s)\n",
              t_default / 1e6, t_predicted / 1e6, t_default / t_predicted,
              best / 1e6, t_default / best, best_config.to_string().c_str());
  return 0;
}
