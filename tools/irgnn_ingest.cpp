// Corpus ingestion CLI. Four subcommands (first positional word):
//
//   irgnn_ingest dump    --dir corpus/ [--sequences N] [--seed S]
//       Serialize the synthetic benchmark suite to textual-IR files.
//       --sequences 0 dumps raw region modules; N > 0 dumps the extracted
//       post-pass variants core::build_dataset builds from.
//
//   irgnn_ingest ingest  --dir corpus/ --out data.irds [--threads T]
//       [--no-dedup] — walk, parse, extract, build, dedup, write the cache.
//       Exits nonzero if any file failed (malformed files are reported per
//       file, never crash the run).
//
//   irgnn_ingest inspect --cache data.irds
//       Print the header and per-graph index of a cache.
//
//   irgnn_ingest verify  --cache data.irds [--dir corpus/]
//       Full integrity pass: payload hash, fingerprints recomputed from
//       materialized graphs, and (with --dir) the corpus content hash.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "corpus/dataset_cache.h"
#include "corpus/ingest.h"
#include "corpus/suite_dump.h"
#include "graph/fingerprint.h"
#include "support/argparse.h"

namespace {

using namespace irgnn;

int run_dump(ArgParser& parser, int argc, const char* const* argv) {
  parser.add("dir", "corpus", "output directory for the textual-IR files")
      .add("sequences", "0", "0: raw region modules; N: post-pass variants")
      .add("seed", "55930", "flag-sequence seed (decimal; default 0xDA7A)");
  if (!parser.parse(argc, argv)) return 1;

  corpus::SuiteDumpOptions options;
  options.num_sequences = static_cast<std::size_t>(parser.get_int("sequences"));
  options.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  std::size_t files = 0;
  support::Status status =
      corpus::dump_suite(parser.get_string("dir"), options, &files);
  if (!status.ok()) {
    std::fprintf(stderr, "dump failed: %s\n", status.message());
    return 1;
  }
  std::printf("dumped %zu files to %s\n", files,
              parser.get_string("dir").c_str());
  return 0;
}

int run_ingest(ArgParser& parser, int argc, const char* const* argv) {
  parser.add("dir", "corpus", "directory of textual-IR files to ingest")
      .add("out", "dataset.irds", "output cache path")
      .add("threads", "0", "pipeline threads (0: all pool workers)")
      .add("no-dedup", "false", "keep structurally identical regions")
      .add("strict", "false", "exit nonzero if any input file failed");
  if (!parser.parse(argc, argv)) return 1;

  corpus::IngestOptions options;
  options.num_threads = static_cast<int>(parser.get_int("threads"));
  options.dedup = !parser.get_bool("no-dedup");
  corpus::IngestResult result;
  support::Status status =
      corpus::ingest_directory(parser.get_string("dir"), options, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.message());
    return 1;
  }
  for (const auto& file : result.files)
    if (!file.status.ok())
      std::fprintf(stderr, "  %s: %s (%s)\n", file.path.c_str(),
                   file.status.message(), file.detail.c_str());
  std::printf(
      "scanned %" PRIu64 " files (%" PRIu64 " ok, %" PRIu64
      " failed): %" PRIu64 " regions, %" PRIu64 " unique graphs, %" PRIu64
      " duplicates, %" PRIu64 " nodes, %" PRIu64 " edges\n",
      result.stats.files_scanned, result.stats.files_ok,
      result.stats.files_failed, result.stats.regions_total,
      result.stats.graphs_unique, result.stats.duplicates,
      result.stats.nodes_total, result.stats.edges_total);
  std::printf("corpus_hash=%016" PRIx64 " options_hash=%016" PRIx64 "\n",
              result.corpus_hash, result.options_hash);

  status = corpus::write_dataset_cache(parser.get_string("out"), result.graphs,
                                       result.fingerprints, result.corpus_hash,
                                       result.options_hash);
  if (!status.ok()) {
    std::fprintf(stderr, "cache write failed: %s\n", status.message());
    return 1;
  }
  std::printf("wrote %s\n", parser.get_string("out").c_str());
  if (parser.get_bool("strict") && result.stats.files_failed) return 1;
  return 0;
}

int run_inspect(ArgParser& parser, int argc, const char* const* argv) {
  parser.add("cache", "dataset.irds", "cache file to inspect")
      .add("limit", "16", "max index rows to print (0: all)");
  if (!parser.parse(argc, argv)) return 1;

  corpus::DatasetCacheReader reader;
  support::Status status = reader.open(parser.get_string("cache"));
  if (!status.ok()) {
    std::fprintf(stderr, "open failed: %s\n", status.message());
    return 1;
  }
  std::printf("version=%u graphs=%" PRIu64 " nodes=%" PRIu64 " edges=%" PRIu64
              "\ncorpus_hash=%016" PRIx64 " options_hash=%016" PRIx64 "\n",
              corpus::kCacheVersion, reader.num_graphs(), reader.total_nodes(),
              reader.total_edges(), reader.corpus_hash(),
              reader.options_hash());
  const std::uint64_t limit =
      static_cast<std::uint64_t>(parser.get_int("limit"));
  for (std::uint64_t i = 0; i < reader.num_graphs(); ++i) {
    if (limit && i == limit) {
      std::printf("  ... (%" PRIu64 " more)\n", reader.num_graphs() - i);
      break;
    }
    std::printf("  [%4" PRIu64 "] %016" PRIx64 " nodes=%u edges=%u %.*s\n", i,
                reader.fingerprint(i), reader.graph_nodes(i),
                reader.graph_edges(i),
                static_cast<int>(reader.graph_name(i).size()),
                reader.graph_name(i).data());
  }
  return 0;
}

int run_verify(ArgParser& parser, int argc, const char* const* argv) {
  parser.add("cache", "dataset.irds", "cache file to verify")
      .add("dir", "", "corpus directory to check corpus_hash against");
  if (!parser.parse(argc, argv)) return 1;

  corpus::DatasetCacheReader reader;
  support::Status status = reader.open(parser.get_string("cache"));
  if (!status.ok()) {
    std::fprintf(stderr, "open failed: %s\n", status.message());
    return 1;
  }
  status = reader.verify_payload_hash();
  if (!status.ok()) {
    std::fprintf(stderr, "verify failed: %s\n", status.message());
    return 1;
  }
  graph::ProgramGraph scratch;
  for (std::uint64_t i = 0; i < reader.num_graphs(); ++i) {
    reader.materialize(i, &scratch);
    if (graph::fingerprint(scratch) != reader.fingerprint(i)) {
      std::fprintf(stderr,
                   "verify failed: graph %" PRIu64 " fingerprint mismatch\n",
                   i);
      return 1;
    }
  }
  if (!parser.get_string("dir").empty()) {
    corpus::IngestResult result;
    status = corpus::ingest_directory(parser.get_string("dir"), {}, &result);
    if (!status.ok()) {
      std::fprintf(stderr, "corpus rescan failed: %s\n", status.message());
      return 1;
    }
    if (result.corpus_hash != reader.corpus_hash()) {
      std::fprintf(stderr,
                   "verify failed: corpus changed (cache %016" PRIx64
                   ", dir %016" PRIx64 ")\n",
                   reader.corpus_hash(), result.corpus_hash);
      return 1;
    }
  }
  std::printf("ok: %" PRIu64 " graphs, payload hash and fingerprints match\n",
              reader.num_graphs());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string sub = argc > 1 ? argv[1] : "";
  // The subcommand word is consumed here; ArgParser sees argv shifted by one.
  std::vector<const char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) rest.push_back(argv[i]);
  const int rest_argc = static_cast<int>(rest.size());

  if (sub == "dump") {
    ArgParser parser("irgnn_ingest dump", "serialize the suite to textual IR");
    return run_dump(parser, rest_argc, rest.data());
  }
  if (sub == "ingest") {
    ArgParser parser("irgnn_ingest ingest",
                     "ingest a textual-IR corpus into a .irds cache");
    return run_ingest(parser, rest_argc, rest.data());
  }
  if (sub == "inspect") {
    ArgParser parser("irgnn_ingest inspect", "print a cache's header/index");
    return run_inspect(parser, rest_argc, rest.data());
  }
  if (sub == "verify") {
    ArgParser parser("irgnn_ingest verify", "full cache integrity pass");
    return run_verify(parser, rest_argc, rest.data());
  }
  std::fprintf(stderr,
               "usage: irgnn_ingest {dump|ingest|inspect|verify} [flags]\n"
               "  run a subcommand with --help for its flags\n");
  return sub == "--help" || sub == "help" ? 0 : 1;
}
