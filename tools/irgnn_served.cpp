// irgnn_served: the out-of-process serving daemon.
//
// Builds a deterministic StaticModel from the shared model flags (see
// bench/net_common.h — clients rebuild the identical model from the same
// flags instead of receiving weights), publishes it as "static" behind a
// serve::Router, and serves the net/codec wire protocol over TCP through
// net::NetServer until SIGTERM/SIGINT, then drains gracefully: stop
// accepting, answer every admitted query, flush every connection, exit 0.
// CI's net job gates that exit code.
//
//   ./irgnn_served --port 9157 --threads 2
//   ./irgnn_served --port 0          (ephemeral; the bound port is printed)
//   kill -TERM <pid>                 (graceful drain)
#include <csignal>
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "bench/net_common.h"
#include "gnn/model.h"
#include "net/server.h"
#include "serve/router.h"
#include "support/argparse.h"

using namespace irgnn;

namespace {

net::NetServer* g_server = nullptr;

// Async-signal-safe by construction: request_drain is one atomic store and
// one eventfd write.
void handle_signal(int) {
  if (g_server != nullptr) g_server->request_drain();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser parser("irgnn_served",
                   "TCP serving daemon for the wire protocol (net/codec): "
                   "deterministic model, router admission control, graceful "
                   "drain on SIGTERM");
  bench::add_model_flags(parser);
  parser
      .add("max-queue", "256",
           "admission bound per model (0: unbounded)")
      .add("shed", "Reject",
           "admission shed policy: Reject | DropOldest | Block (also maps "
           "TCP write-buffer backpressure)")
      .add("max-batch", "64", "micro-batch flush size")
      .add("wait-us", "200", "micro-batch window in microseconds")
      .add("cache", "4096", "prediction cache entries (0 disables)")
      .add("write-buffer", "1048576",
           "per-connection cap on unsent response bytes before the shed "
           "policy applies");
  bench::add_runtime_flags(parser, /*default_threads=*/"0");
  bench::add_net_flags(parser, /*default_port=*/"9157",
                       /*default_connections=*/"4096");
  if (!parser.parse(argc, argv)) return 1;
  const int threads = bench::apply_threads(parser);

  serve::ShedPolicy policy;
  if (!bench::parse_shed_policy(parser.get_string("shed"), &policy)) {
    std::fprintf(stderr,
                 "irgnn_served: --shed must be Reject, DropOldest or Block "
                 "(got \"%s\")\n",
                 parser.get_string("shed").c_str());
    return 1;
  }

  gnn::ModelConfig cfg = bench::model_config_from(parser, threads);
  auto model = std::make_shared<const gnn::StaticModel>(cfg);

  serve::RouterConfig router_config;
  router_config.max_queue =
      static_cast<std::size_t>(parser.get_int("max-queue"));
  router_config.shed_policy = policy;
  router_config.server.max_batch =
      static_cast<int>(parser.get_int("max-batch"));
  router_config.server.max_wait_us =
      static_cast<int>(parser.get_int("wait-us"));
  router_config.server.cache_capacity =
      static_cast<std::size_t>(parser.get_int("cache"));
  serve::Router router(router_config);
  router.publish("static", model);

  net::NetServerConfig net_config;
  net_config.host = parser.get_string("host");
  net_config.port = static_cast<std::uint16_t>(parser.get_int("port"));
  net_config.max_connections =
      static_cast<std::size_t>(parser.get_int("connections"));
  net_config.max_write_buffer =
      static_cast<std::size_t>(parser.get_int("write-buffer"));
  net_config.shed_policy = policy;
  net::NetServer server(router, net_config);

  support::Status status = server.start();
  if (!status.ok()) {
    std::fprintf(stderr, "irgnn_served: start failed: %s (%s)\n",
                 status.code_name(), status.message());
    return 1;
  }
  g_server = &server;
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("irgnn_served listening on %s:%u (model static: hidden=%d "
              "layers=%d labels=%d seed=%llu, shed=%s, max_queue=%zu, "
              "threads=%d)\n",
              net_config.host.c_str(), static_cast<unsigned>(server.port()),
              cfg.hidden_dim, cfg.num_layers, cfg.num_labels,
              static_cast<unsigned long long>(cfg.seed),
              serve::shed_policy_name(policy), router_config.max_queue,
              threads);
  std::fflush(stdout);

  server.wait();  // returns when a signal triggered the drain and it finished

  const net::NetServerStats net_stats = server.stats();
  const serve::RouterStats router_stats = router.stats();
  router.shutdown();
  std::printf("irgnn_served drained: %llu connections served, %llu requests, "
              "%llu responses, %llu queries (%llu hits, %llu misses, %llu "
              "coalesced), open slots %llu\n",
              static_cast<unsigned long long>(net_stats.accepted),
              static_cast<unsigned long long>(net_stats.requests),
              static_cast<unsigned long long>(net_stats.responses),
              static_cast<unsigned long long>(router_stats.queries),
              static_cast<unsigned long long>(router_stats.cache_hits),
              static_cast<unsigned long long>(router_stats.cache_misses),
              static_cast<unsigned long long>(router_stats.coalesced),
              static_cast<unsigned long long>(net_stats.open_slots));
  // A leaked slot after a full drain is a bug worth a nonzero exit.
  return net_stats.open_slots == 0 ? 0 : 2;
}
