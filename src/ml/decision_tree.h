// CART decision-tree classifier (gini impurity, axis-aligned splits),
// mirroring scikit-learn's DecisionTreeClassifier defaults: grow until pure
// or until min_samples_split, no pruning. Used for the paper's dynamic
// baseline (counters -> config), the hybrid static/dynamic delegation model,
// and the flag-sequence prediction model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace irgnn::ml {

struct DecisionTreeOptions {
  int max_depth = 0;          // 0 = unlimited (scikit-learn default)
  int min_samples_split = 2;  // scikit-learn default
  int min_samples_leaf = 1;
};

class DecisionTree {
 public:
  explicit DecisionTree(DecisionTreeOptions options = {});

  /// X is row-major [n_samples x n_features]; y holds class ids >= 0.
  void fit(const std::vector<std::vector<float>>& X,
           const std::vector<int>& y);

  int predict(const std::vector<float>& x) const;
  std::vector<int> predict(const std::vector<std::vector<float>>& X) const;

  /// Fraction of samples classified correctly.
  double score(const std::vector<std::vector<float>>& X,
               const std::vector<int>& y) const;

  int depth() const;
  int num_leaves() const;
  bool trained() const { return !nodes_.empty(); }

 private:
  struct Node {
    int feature = -1;       // -1 for leaves
    float threshold = 0.0f;  // go left when x[feature] <= threshold
    int left = -1;
    int right = -1;
    int label = -1;  // leaf prediction
  };

  int build(std::vector<int>& indices, int begin, int end, int depth,
            const std::vector<std::vector<float>>& X,
            const std::vector<int>& y);

  DecisionTreeOptions options_;
  std::vector<Node> nodes_;
  int num_classes_ = 0;
};

}  // namespace irgnn::ml
