#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace irgnn::ml {

DecisionTree::DecisionTree(DecisionTreeOptions options) : options_(options) {}

namespace {

/// Gini impurity of a class histogram.
double gini(const std::vector<int>& counts, int total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (int c : counts) {
    double p = static_cast<double>(c) / total;
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

int majority(const std::vector<int>& counts) {
  int best = 0;
  for (std::size_t c = 1; c < counts.size(); ++c)
    if (counts[c] > counts[best]) best = static_cast<int>(c);
  return best;
}

}  // namespace

void DecisionTree::fit(const std::vector<std::vector<float>>& X,
                       const std::vector<int>& y) {
  assert(X.size() == y.size() && !X.empty());
  nodes_.clear();
  num_classes_ = 1 + *std::max_element(y.begin(), y.end());
  std::vector<int> indices(X.size());
  for (std::size_t i = 0; i < X.size(); ++i) indices[i] = static_cast<int>(i);
  build(indices, 0, static_cast<int>(indices.size()), 0, X, y);
}

int DecisionTree::build(std::vector<int>& indices, int begin, int end,
                        int depth,
                        const std::vector<std::vector<float>>& X,
                        const std::vector<int>& y) {
  const int n = end - begin;
  std::vector<int> counts(num_classes_, 0);
  for (int i = begin; i < end; ++i) ++counts[y[indices[i]]];
  const double node_gini = gini(counts, n);

  const int node_id = static_cast<int>(nodes_.size());
  nodes_.push_back(Node{});
  nodes_[node_id].label = majority(counts);

  const bool depth_ok = options_.max_depth == 0 || depth < options_.max_depth;
  if (node_gini == 0.0 || n < options_.min_samples_split || !depth_ok)
    return node_id;

  const int num_features = static_cast<int>(X[0].size());
  // Accept zero-gain splits on impure nodes (as scikit-learn does): XOR-like
  // structures have no first-level gain but become separable deeper down.
  // Termination is safe because a split always strictly shrinks both sides.
  double best_gain = -1.0;
  int best_feature = -1;
  float best_threshold = 0.0f;

  std::vector<std::pair<float, int>> sorted(n);  // (value, class)
  for (int f = 0; f < num_features; ++f) {
    for (int i = 0; i < n; ++i) {
      int row = indices[begin + i];
      sorted[i] = {X[row][f], y[row]};
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;

    std::vector<int> left_counts(num_classes_, 0);
    std::vector<int> right_counts = counts;
    for (int i = 0; i + 1 < n; ++i) {
      ++left_counts[sorted[i].second];
      --right_counts[sorted[i].second];
      if (sorted[i].first == sorted[i + 1].first) continue;  // no boundary
      int nl = i + 1;
      int nr = n - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf)
        continue;
      double split_gini = (nl * gini(left_counts, nl) +
                           nr * gini(right_counts, nr)) /
                          n;
      double gain = node_gini - split_gini;
      if (gain < 0.0) continue;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5f * (sorted[i].first + sorted[i + 1].first);
      }
    }
  }
  if (best_feature < 0) return node_id;

  // Partition indices in place.
  auto middle = std::stable_partition(
      indices.begin() + begin, indices.begin() + end, [&](int row) {
        return X[row][best_feature] <= best_threshold;
      });
  int mid = static_cast<int>(middle - indices.begin());
  if (mid == begin || mid == end) return node_id;  // degenerate split

  nodes_[node_id].feature = best_feature;
  nodes_[node_id].threshold = best_threshold;
  int left = build(indices, begin, mid, depth + 1, X, y);
  nodes_[node_id].left = left;
  int right = build(indices, mid, end, depth + 1, X, y);
  nodes_[node_id].right = right;
  return node_id;
}

int DecisionTree::predict(const std::vector<float>& x) const {
  assert(trained());
  int node = 0;
  while (nodes_[node].feature >= 0) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].label;
}

std::vector<int> DecisionTree::predict(
    const std::vector<std::vector<float>>& X) const {
  std::vector<int> out;
  out.reserve(X.size());
  for (const auto& x : X) out.push_back(predict(x));
  return out;
}

double DecisionTree::score(const std::vector<std::vector<float>>& X,
                           const std::vector<int>& y) const {
  if (X.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < X.size(); ++i)
    correct += (predict(X[i]) == y[i]);
  return static_cast<double>(correct) / static_cast<double>(X.size());
}

int DecisionTree::depth() const {
  // Depth via iterative traversal.
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<int, int>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [node, depth] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, depth);
    if (nodes_[node].feature >= 0) {
      stack.push_back({nodes_[node].left, depth + 1});
      stack.push_back({nodes_[node].right, depth + 1});
    }
  }
  return max_depth;
}

int DecisionTree::num_leaves() const {
  int leaves = 0;
  for (const Node& node : nodes_) leaves += (node.feature < 0);
  return leaves;
}

}  // namespace irgnn::ml
