#include "ml/genetic_selector.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "ml/decision_tree.h"
#include "support/rng.h"

namespace irgnn::ml {

namespace {

using Individual = std::vector<int>;  // sorted unique feature indices

Individual random_individual(int num_features, int subset_size, Rng& rng) {
  auto picks = rng.sample_indices(static_cast<std::size_t>(num_features),
                                  static_cast<std::size_t>(subset_size));
  Individual ind(picks.begin(), picks.end());
  std::sort(ind.begin(), ind.end());
  return ind;
}

/// Uniform-ish set crossover: child draws half from each parent (union
/// sampled down to subset_size), preserving uniqueness.
Individual crossover(const Individual& a, const Individual& b, int subset_size,
                     int num_features, Rng& rng) {
  std::set<int> pool(a.begin(), a.end());
  pool.insert(b.begin(), b.end());
  std::vector<int> merged(pool.begin(), pool.end());
  rng.shuffle(merged);
  Individual child(merged.begin(),
                   merged.begin() + std::min<std::size_t>(
                                        merged.size(),
                                        static_cast<std::size_t>(subset_size)));
  while (static_cast<int>(child.size()) < subset_size) {
    int candidate = static_cast<int>(rng.next_below(num_features));
    if (std::find(child.begin(), child.end(), candidate) == child.end())
      child.push_back(candidate);
  }
  std::sort(child.begin(), child.end());
  return child;
}

void mutate(Individual& ind, int num_features, Rng& rng) {
  // Replace one gene with a fresh feature index.
  std::size_t slot = rng.next_below(ind.size());
  for (int attempt = 0; attempt < 16; ++attempt) {
    int candidate = static_cast<int>(rng.next_below(num_features));
    if (std::find(ind.begin(), ind.end(), candidate) == ind.end()) {
      ind[slot] = candidate;
      break;
    }
  }
  std::sort(ind.begin(), ind.end());
}

}  // namespace

GeneticSelectorResult select_features(int num_features,
                                      const FitnessFn& fitness,
                                      const GeneticSelectorOptions& options) {
  assert(options.subset_size <= num_features);
  Rng rng(options.seed);
  std::vector<Individual> population;
  population.reserve(options.population_size);
  for (int i = 0; i < options.population_size; ++i)
    population.push_back(
        random_individual(num_features, options.subset_size, rng));

  GeneticSelectorResult result;
  std::vector<double> scores(population.size());

  for (int gen = 0; gen < options.generations; ++gen) {
    for (std::size_t i = 0; i < population.size(); ++i)
      scores[i] = fitness(population[i]);

    // Rank by fitness (descending).
    std::vector<std::size_t> order(population.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

    if (scores[order[0]] > result.best_fitness ||
        result.best_subset.empty()) {
      result.best_fitness = scores[order[0]];
      result.best_subset = population[order[0]];
    }
    result.generation_best.push_back(scores[order[0]]);

    // Next generation: elitism + tournament selection with crossover.
    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < options.elitism &&
                    e < static_cast<int>(population.size());
         ++e)
      next.push_back(population[order[e]]);
    auto tournament = [&]() -> const Individual& {
      std::size_t a = rng.next_below(population.size());
      std::size_t b = rng.next_below(population.size());
      return scores[a] >= scores[b] ? population[a] : population[b];
    };
    while (next.size() < population.size()) {
      if (rng.bernoulli(options.crossover_rate)) {
        Individual child = crossover(tournament(), tournament(),
                                     options.subset_size, num_features, rng);
        if (rng.bernoulli(options.mutation_rate))
          mutate(child, num_features, rng);
        next.push_back(std::move(child));
      } else {
        Individual child = tournament();
        if (rng.bernoulli(options.mutation_rate))
          mutate(child, num_features, rng);
        next.push_back(std::move(child));
      }
    }
    population = std::move(next);
  }
  return result;
}

FitnessFn decision_tree_cv_fitness(const std::vector<std::vector<float>>& X,
                                   const std::vector<int>& y, int folds) {
  return [&X, &y, folds](const std::vector<int>& subset) -> double {
    const int n = static_cast<int>(X.size());
    if (n < folds) return 0.0;
    auto restrict_row = [&](int row) {
      std::vector<float> out;
      out.reserve(subset.size());
      for (int f : subset) out.push_back(X[row][f]);
      return out;
    };
    double correct = 0.0;
    for (int fold = 0; fold < folds; ++fold) {
      std::vector<std::vector<float>> train_x;
      std::vector<int> train_y;
      std::vector<std::vector<float>> test_x;
      std::vector<int> test_y;
      for (int i = 0; i < n; ++i) {
        if (i % folds == fold) {
          test_x.push_back(restrict_row(i));
          test_y.push_back(y[i]);
        } else {
          train_x.push_back(restrict_row(i));
          train_y.push_back(y[i]);
        }
      }
      if (train_x.empty() || test_x.empty()) continue;
      DecisionTree tree;
      tree.fit(train_x, train_y);
      for (std::size_t i = 0; i < test_x.size(); ++i)
        correct += (tree.predict(test_x[i]) == test_y[i]);
    }
    return correct / n;
  };
}

}  // namespace irgnn::ml
