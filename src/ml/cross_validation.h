// Deterministic k-fold splitting (the paper decomposes the 57 regions into
// the same 10 folds across every experiment) and small metric helpers.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/rng.h"

namespace irgnn::ml {

struct Fold {
  std::vector<int> train_indices;
  std::vector<int> validation_indices;
};

/// Splits n items into k folds after a seeded shuffle. Every item appears in
/// exactly one validation fold; fold sizes differ by at most one.
std::vector<Fold> k_fold(int n, int k, std::uint64_t seed);

/// Runs fn(fold_index) for every fold index in [0, num_folds), up to
/// num_threads concurrently (<= 0: all pool workers). Folds are independent
/// by construction (disjoint validation sets), so callers keep determinism
/// by writing only fold-owned state and folding any scalar accumulators in
/// fold order afterwards.
void for_each_fold(std::size_t num_folds, int num_threads,
                   const std::function<void(std::size_t)>& fn);

/// Classification accuracy.
double accuracy(const std::vector<int>& predictions,
                const std::vector<int>& truth);

/// Confusion-style per-label tallies: for each label, how often it is the
/// oracle, how often predicted, and how often predicted correctly
/// (Fig. 7 of the paper).
struct LabelTally {
  std::vector<int> oracle;
  std::vector<int> predicted;
  std::vector<int> correct;
};
LabelTally tally_labels(const std::vector<int>& predictions,
                        const std::vector<int>& truth, int num_labels);

}  // namespace irgnn::ml
