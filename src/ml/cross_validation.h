// Deterministic k-fold splitting (the paper decomposes the 57 regions into
// the same 10 folds across every experiment) and small metric helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.h"

namespace irgnn::ml {

struct Fold {
  std::vector<int> train_indices;
  std::vector<int> validation_indices;
};

/// Splits n items into k folds after a seeded shuffle. Every item appears in
/// exactly one validation fold; fold sizes differ by at most one.
std::vector<Fold> k_fold(int n, int k, std::uint64_t seed);

/// Classification accuracy.
double accuracy(const std::vector<int>& predictions,
                const std::vector<int>& truth);

/// Confusion-style per-label tallies: for each label, how often it is the
/// oracle, how often predicted, and how often predicted correctly
/// (Fig. 7 of the paper).
struct LabelTally {
  std::vector<int> oracle;
  std::vector<int> predicted;
  std::vector<int> correct;
};
LabelTally tally_labels(const std::vector<int>& predictions,
                        const std::vector<int>& truth, int num_labels);

}  // namespace irgnn::ml
