#include "ml/cross_validation.h"

#include <cassert>
#include <cstdint>

#include "support/thread_pool.h"

namespace irgnn::ml {

void for_each_fold(std::size_t num_folds, int num_threads,
                   const std::function<void(std::size_t)>& fn) {
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(num_folds), num_threads,
      [&fn](std::int64_t f) { fn(static_cast<std::size_t>(f)); });
}

std::vector<Fold> k_fold(int n, int k, std::uint64_t seed) {
  assert(k >= 2 && n >= k);
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  Rng rng(seed);
  rng.shuffle(order);

  std::vector<Fold> folds(k);
  for (int i = 0; i < n; ++i)
    folds[i % k].validation_indices.push_back(order[i]);
  for (int f = 0; f < k; ++f) {
    for (int g = 0; g < k; ++g) {
      if (g == f) continue;
      folds[f].train_indices.insert(folds[f].train_indices.end(),
                                    folds[g].validation_indices.begin(),
                                    folds[g].validation_indices.end());
    }
  }
  return folds;
}

double accuracy(const std::vector<int>& predictions,
                const std::vector<int>& truth) {
  assert(predictions.size() == truth.size());
  if (truth.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < truth.size(); ++i)
    correct += (predictions[i] == truth[i]);
  return static_cast<double>(correct) / static_cast<double>(truth.size());
}

LabelTally tally_labels(const std::vector<int>& predictions,
                        const std::vector<int>& truth, int num_labels) {
  LabelTally tally;
  tally.oracle.assign(num_labels, 0);
  tally.predicted.assign(num_labels, 0);
  tally.correct.assign(num_labels, 0);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ++tally.oracle[truth[i]];
    ++tally.predicted[predictions[i]];
    if (predictions[i] == truth[i]) ++tally.correct[truth[i]];
  }
  return tally;
}

}  // namespace irgnn::ml
