// Genetic-algorithm feature-subset selection (the paper's pyeasyga usage,
// Sec. III-D2): individuals are subsets of `subset_size` feature indices out
// of `num_features` (256-d graph vectors -> 10 indices). Fitness is the
// cross-validated accuracy of a decision tree restricted to the subset.
// GA hyper-parameters follow the paper: population 500, crossover 0.8,
// mutation 0.1 (population/generations are configurable so the test suite
// and benches can run scaled down).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace irgnn::ml {

struct GeneticSelectorOptions {
  int population_size = 500;
  int generations = 20;
  double crossover_rate = 0.8;
  double mutation_rate = 0.1;
  int subset_size = 10;
  int elitism = 2;  // individuals copied unchanged each generation
  std::uint64_t seed = 0xBEEF;
};

/// Fitness evaluates a candidate subset (sorted, unique indices).
using FitnessFn = std::function<double(const std::vector<int>&)>;

struct GeneticSelectorResult {
  std::vector<int> best_subset;
  double best_fitness = 0.0;
  std::vector<double> generation_best;  // learning curve
};

GeneticSelectorResult select_features(int num_features,
                                      const FitnessFn& fitness,
                                      const GeneticSelectorOptions& options);

/// Convenience fitness: leave-one-out-ish k-fold accuracy of a DecisionTree
/// on (X restricted to subset, y).
FitnessFn decision_tree_cv_fitness(const std::vector<std::vector<float>>& X,
                                   const std::vector<int>& y, int folds = 3);

}  // namespace irgnn::ml
