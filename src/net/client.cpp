#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>

namespace irgnn::net {

Status NetClient::connect(const std::string& host, std::uint16_t port,
                          std::int64_t timeout_ms) {
  close();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return Status::InvalidArgument("host must be an IPv4 dotted quad");

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  for (;;) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return Status::Internal("socket() failed");
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return Status::Ok();
    }
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    // Refused just means the server has not called listen() yet — the
    // normal CI race of launching both sides at once. Retry until deadline.
    if ((err == ECONNREFUSED || err == EINTR || err == EAGAIN) &&
        std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    return Status::Unavailable("connect failed");
  }
}

void NetClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::send_all(const FrameBytes& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return Status::Unavailable("send failed (connection lost)");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status NetClient::read_exact(std::uint8_t* dst, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    ssize_t n = ::recv(fd_, dst + got, size - got, 0);
    if (n == 0) {
      close();
      return Status::Unavailable("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      close();
      return Status::Unavailable("recv failed (connection lost)");
    }
    got += static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status NetClient::read_frame(FrameHeader* header) {
  std::uint8_t raw[kHeaderBytes];
  Status status = read_exact(raw, kHeaderBytes);
  if (!status.ok()) return status;
  status = decode_header(raw, kHeaderBytes, header);
  if (!status.ok()) {
    close();  // framing lost; the stream cannot be trusted further
    return status;
  }
  recv_buf_.resize(header->payload_bytes);
  if (header->payload_bytes == 0) return Status::Ok();
  return read_exact(recv_buf_.data(), header->payload_bytes);
}

Status NetClient::send(const serve::Request& request, std::uint64_t tag) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  send_buf_.clear();
  encode_request_into(tag, request, send_buf_);
  return send_all(send_buf_);
}

StatusOr<DecodedResponse> NetClient::recv() {
  if (fd_ < 0) return Status::Unavailable("not connected");
  FrameHeader header;
  Status status = read_frame(&header);
  if (!status.ok()) return status;
  if (header.type != FrameType::kResponse) {
    close();
    return Status::InvalidArgument("expected a kResponse frame");
  }
  DecodedResponse decoded;
  status = decode_response(recv_buf_.data(), recv_buf_.size(), &decoded);
  if (!status.ok()) {
    close();
    return status;
  }
  return decoded;
}

StatusOr<serve::Response> NetClient::predict(const serve::Request& request) {
  std::uint64_t tag = next_tag_++;
  Status status = send(request, tag);
  if (!status.ok()) return status;
  for (;;) {
    auto decoded = recv();
    if (!decoded.ok()) return decoded.status();
    if (decoded->tag == tag) return decoded->response;
    // A foreign tag here means predict() was interleaved with pipelined
    // sends, which the header forbids; drop it and keep looking.
  }
}

Status NetClient::get_stats(WireStats* out) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  send_buf_.clear();
  encode_stats_request_into(send_buf_);
  Status status = send_all(send_buf_);
  if (!status.ok()) return status;
  FrameHeader header;
  status = read_frame(&header);
  if (!status.ok()) return status;
  if (header.type != FrameType::kStatsReply) {
    close();
    return Status::InvalidArgument("expected a kStatsReply frame");
  }
  return decode_stats_reply(recv_buf_.data(), recv_buf_.size(), out);
}

}  // namespace irgnn::net
