#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/failpoint.h"
#include "support/thread_pool.h"

namespace irgnn::net {
namespace {

// epoll user-data tokens for the two non-connection fds; connection slots
// are small indices and can never collide with these.
constexpr std::uint64_t kListenToken = ~std::uint64_t{0};
constexpr std::uint64_t kWakeToken = ~std::uint64_t{0} - 1;

constexpr std::size_t kReadChunk = 16 * 1024;

/// Compact the inbound buffer once the parse cursor passes this, so a
/// long-lived pipelining connection cannot grow `in` without bound.
constexpr std::size_t kCompactThreshold = 64 * 1024;

}  // namespace

NetServer::NetServer(serve::Router& router, const NetServerConfig& config)
    : router_(router), config_(config) {
  limits_.max_feature =
      config_.max_feature >= 0
          ? config_.max_feature
          : static_cast<std::int32_t>(graph::vocabulary_size()) - 1;
}

NetServer::~NetServer() {
  shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

Status NetServer::start() {
  if (started_) return Status::Internal("NetServer already started");
  auto& pool = support::ThreadPool::global();
  if (pool.num_workers() == 0)
    return Status::Internal(
        "NetServer needs thread-pool workers: on a worker-less pool the "
        "event loop would run inline in start() and never return");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bind host must be an IPv4 dotted quad");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind/listen failed (port in use?)");
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0)
    bound_port_ = ntohs(bound.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    epoll_fd_ = -1;
    if (wake_fd_ >= 0) ::close(wake_fd_);
    wake_fd_ = -1;
    return Status::Internal("epoll/eventfd creation failed");
  }

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeToken;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  started_ = true;
  loop_future_ = pool.submit([this] { run_loop(); });
  return Status::Ok();
}

void NetServer::request_drain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  }
}

void NetServer::wait() {
  std::lock_guard<std::mutex> guard(wait_mutex_);
  if (loop_future_.valid()) loop_future_.get();
}

void NetServer::shutdown() {
  if (!started_) return;
  request_drain();
  wait();
}

void NetServer::run_loop() {
  epoll_event events[64];
  bool draining = false;
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, events, 64, config_.poll_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself is broken; teardown below closes everything
    }
    if (!draining && drain_requested_.load(std::memory_order_acquire)) {
      draining = true;
      begin_drain();
    }
    for (int i = 0; i < n; ++i) {
      std::uint64_t token = events[i].data.u64;
      if (token == kWakeToken) {
        std::uint64_t buf;
        while (::read(wake_fd_, &buf, sizeof(buf)) > 0) {
        }
      } else if (token == kListenToken) {
        if (!draining) do_accept();
      } else {
        handle_io(static_cast<std::uint32_t>(token), events[i].events);
      }
    }
    splice_and_flush();
    if (draining) {
      std::lock_guard<std::mutex> guard(mutex_);
      if (open_slots_ == 0) break;
    }
  }

  // Teardown. On the graceful path every slot is already free; on the
  // error path (epoll failure) connections may remain — close them and wait
  // out any unresolved continuations so `this` is never destroyed under one.
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (std::uint32_t slot = 0; slot < static_cast<std::uint32_t>(conns_.size());
       ++slot) {
    if (conns_[slot]->open) close_conn(slot);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    drained_cv_.wait(lock, [this] { return total_pending_ == 0; });
  }
  finished_.store(true, std::memory_order_release);
}

void NetServer::begin_drain() {
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (std::uint32_t slot = 0; slot < static_cast<std::uint32_t>(conns_.size());
       ++slot) {
    Connection& conn = *conns_[slot];
    if (!conn.open) continue;
    // Stop reading; bytes not yet admitted are dropped (clients see EOF for
    // those — drain answers only what was admitted).
    conn.in.clear();
    conn.in_ofs = 0;
    conn.flow_blocked = true;
    update_epoll(slot);
    maybe_close_drained(slot);
  }
}

void NetServer::do_accept() {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      std::lock_guard<std::mutex> guard(mutex_);
      ++accept_failures_;
      return;
    }
    bool injected = false;
    IRGNN_FAILPOINT("net.accept", injected = true);
    if (injected) {
      ::close(fd);
      std::lock_guard<std::mutex> guard(mutex_);
      ++accept_failures_;
      continue;
    }
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (open_slots_ >= config_.max_connections) {
        ++rejected_connections_;
        ::close(fd);
        continue;
      }
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::uint32_t slot = alloc_slot();
    Connection& conn = *conns_[slot];
    conn.fd = fd;
    conn.want_write = false;
    conn.flow_blocked = false;
    conn.in.clear();
    conn.in_ofs = 0;
    conn.wbuf.clear();
    conn.wbuf_ofs = 0;

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = slot;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      conn.fd = -1;
      std::lock_guard<std::mutex> guard(mutex_);
      conn.open = false;
      ++accept_failures_;
      free_slot_locked(slot);
      continue;
    }
    std::lock_guard<std::mutex> guard(mutex_);
    conn.open = true;
    ++accepted_;
  }
}

void NetServer::handle_io(std::uint32_t slot, std::uint32_t events) {
  if (slot >= conns_.size()) return;
  Connection& conn = *conns_[slot];
  if (!conn.open) return;  // stale event for an already-closed fd
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(slot);
    return;
  }
  if (events & EPOLLOUT) flush_conn(slot);
  if (!conn.open) return;
  if ((events & EPOLLIN) && !conn.flow_blocked) read_conn(slot);
}

void NetServer::read_conn(std::uint32_t slot) {
  Connection& conn = *conns_[slot];
  std::uint8_t buf[kReadChunk];
  for (;;) {
    bool fault = false;
    IRGNN_FAILPOINT("net.read", fault = true);
    if (fault) {
      {
        std::lock_guard<std::mutex> guard(mutex_);
        ++read_faults_;
      }
      close_conn(slot);
      return;
    }
    ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n == 0) {  // orderly EOF
      close_conn(slot);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      {
        std::lock_guard<std::mutex> guard(mutex_);
        ++read_faults_;
      }
      close_conn(slot);
      return;
    }
    conn.in.insert(conn.in.end(), buf, buf + n);
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;  // socket drained
  }
  parse_frames(slot);
}

void NetServer::parse_frames(std::uint32_t slot) {
  Connection& conn = *conns_[slot];
  while (conn.open && !conn.flow_blocked) {
    std::size_t avail = conn.in.size() - conn.in_ofs;
    if (avail < kHeaderBytes) break;
    FrameHeader header;
    Status status =
        decode_header(conn.in.data() + conn.in_ofs, kHeaderBytes, &header);
    if (!status.ok()) {
      // Framing is lost; the stream cannot be resynchronized.
      {
        std::lock_guard<std::mutex> guard(mutex_);
        ++protocol_errors_;
      }
      close_conn(slot);
      return;
    }
    std::size_t frame_bytes = kHeaderBytes + header.payload_bytes;
    if (avail < frame_bytes) break;  // wait for the rest of the frame
    FrameAction action = handle_frame(
        slot, header, conn.in.data() + conn.in_ofs + kHeaderBytes);
    if (!conn.open) return;
    if (action == FrameAction::kDefer) break;  // flow control: not consumed
    conn.in_ofs += frame_bytes;
  }
  if (!conn.open) return;
  if (conn.in_ofs == conn.in.size()) {
    conn.in.clear();
    conn.in_ofs = 0;
  } else if (conn.in_ofs >= kCompactThreshold) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<std::ptrdiff_t>(conn.in_ofs));
    conn.in_ofs = 0;
  }
}

NetServer::FrameAction NetServer::handle_frame(std::uint32_t slot,
                                               const FrameHeader& header,
                                               const std::uint8_t* payload) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++frames_in_;
  }
  switch (header.type) {
    case FrameType::kRequest: {
      FrameAction action = FrameAction::kHandled;
      handle_request(slot, payload, header.payload_bytes, &action);
      return action;
    }
    case FrameType::kStatsRequest:
      handle_stats_request(slot);
      return FrameAction::kHandled;
    default:
      // kGraph/kResponse/kStatsReply are not things a client sends a server.
      {
        std::lock_guard<std::mutex> guard(mutex_);
        ++protocol_errors_;
      }
      close_conn(slot);
      return FrameAction::kHandled;
  }
}

void NetServer::handle_request(std::uint32_t slot, const std::uint8_t* payload,
                               std::size_t size, FrameAction* action) {
  Connection& conn = *conns_[slot];

  // TCP backpressure: a client not reading its answers fills the write
  // buffer, and the configured shed policy decides who pays (header comment).
  if (outstanding_bytes(conn) > config_.max_write_buffer) {
    if (config_.shed_policy == serve::ShedPolicy::Block) {
      conn.flow_blocked = true;
      update_epoll(slot);
      *action = FrameAction::kDefer;
      return;
    }
    std::uint64_t tag = 0;
    peek_request_tag(payload, size, &tag);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++backpressure_shed_;
    }
    respond_error(slot, tag,
                  Status::Overloaded("connection write buffer full"),
                  serve::Source::Shed);
    return;
  }

  InflightQuery* query = acquire_query();
  DecodedRequest decoded;
  Status status = decode_request(payload, size, &decoded, &query->graph,
                                 limits_);
  bool fault = false;
  IRGNN_FAILPOINT("net.decode", fault = true);
  if (fault) status = Status::InvalidArgument("injected decode fault");
  if (!status.ok()) {
    std::uint64_t tag = 0;
    bool have_tag = peek_request_tag(payload, size, &tag);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      ++decode_errors_;
      release_query_locked(query);
    }
    if (have_tag) {
      // The frame was well-delimited, just malformed inside: answer the
      // query and keep the connection.
      respond_error(slot, tag, status, serve::Source::Shed);
    } else {
      std::lock_guard<std::mutex> guard(mutex_);
      ++protocol_errors_;
      // close outside the lock
    }
    if (!have_tag) close_conn(slot);
    return;
  }

  serve::Request request;
  request.graph = &query->graph;
  request.model = decoded.model;  // views conn.in; submit does not retain it
  request.deadline_us = decoded.deadline_us;
  request.priority = decoded.priority;

  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    ++requests_;
    gen = conn.gen;
    ++conn.pending;
    ++total_pending_;
  }

  // May block under ShedPolicy::Block — pumping batches while it waits.
  auto submitted = router_.submit(request);
  if (!submitted.ok()) {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --conn.pending;
      --total_pending_;
      release_query_locked(query);
    }
    respond_error(slot, decoded.tag, submitted.status(), serve::Source::Shed);
    return;
  }
  NetServer* self = this;
  std::uint64_t tag = decoded.tag;
  submitted.value().then(
      [self, slot, gen, tag, query](const serve::Response& response) {
        self->complete(slot, gen, tag, query, response);
      });
}

void NetServer::handle_stats_request(std::uint32_t slot) {
  WireStats wire = gather_wire_stats(router_, stats());
  std::lock_guard<std::mutex> guard(mutex_);
  Connection& conn = *conns_[slot];
  if (!conn.in_use || !conn.open) return;
  encode_stats_reply_into(wire, conn.outbox);
  ++frames_out_;
  if (!conn.dirty) {
    conn.dirty = true;
    dirty_.push_back(slot);
  }
}

void NetServer::respond_error(std::uint32_t slot, std::uint64_t tag,
                              const Status& status, serve::Source source) {
  serve::Response response;
  response.status = status;
  response.label = -1;
  response.source = source;
  std::lock_guard<std::mutex> guard(mutex_);
  Connection& conn = *conns_[slot];
  if (!conn.in_use || !conn.open) return;
  encode_response_into(tag, response, conn.outbox);
  ++frames_out_;
  ++responses_;
  if (!conn.dirty) {
    conn.dirty = true;
    dirty_.push_back(slot);
  }
}

void NetServer::complete(std::uint32_t slot, std::uint64_t gen,
                         std::uint64_t tag, InflightQuery* query,
                         const serve::Response& response) {
  {
    std::lock_guard<std::mutex> guard(mutex_);
    Connection& conn = *conns_[slot];
    // A slot with pending queries is never freed or reused, so a live
    // continuation always matches; the mismatch arm is pure defense.
    if (conn.in_use && conn.gen == gen) {
      --conn.pending;
      if (conn.open) {
        encode_response_into(tag, response, conn.outbox);
        ++frames_out_;
        ++responses_;
        if (!conn.dirty) {
          conn.dirty = true;
          dirty_.push_back(slot);
        }
      } else if (conn.pending == 0) {
        free_slot_locked(slot);  // zombie: client left mid-flight
      }
    }
    --total_pending_;
    release_query_locked(query);
    if (total_pending_ == 0) drained_cv_.notify_all();
  }
  wake();
}

void NetServer::splice_and_flush() {
  dirty_local_.clear();
  {
    std::lock_guard<std::mutex> guard(mutex_);
    dirty_local_.swap(dirty_);
    for (std::uint32_t slot : dirty_local_) conns_[slot]->dirty = false;
  }
  for (std::uint32_t slot : dirty_local_) flush_conn(slot);
}

void NetServer::flush_conn(std::uint32_t slot) {
  Connection& conn = *conns_[slot];
  if (!conn.open) return;
  for (;;) {
    if (conn.wbuf_ofs == conn.wbuf.size()) {
      conn.wbuf.clear();
      conn.wbuf_ofs = 0;
      std::lock_guard<std::mutex> guard(mutex_);
      if (!conn.outbox.empty())
        conn.wbuf.swap(conn.outbox);  // zero-copy, capacities recycle
    }
    if (conn.wbuf_ofs == conn.wbuf.size()) break;  // nothing left to send
    std::size_t len = conn.wbuf.size() - conn.wbuf_ofs;
    IRGNN_FAILPOINT("net.write", len = 1);  // injected short write
    ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wbuf_ofs, len,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!conn.want_write) {
          conn.want_write = true;
          update_epoll(slot);
        }
        return;  // kernel buffer full; EPOLLOUT resumes us
      }
      if (errno == EINTR) continue;
      close_conn(slot);
      return;
    }
    conn.wbuf_ofs += static_cast<std::size_t>(n);
  }
  // Fully flushed.
  if (conn.want_write) {
    conn.want_write = false;
    update_epoll(slot);
  }
  if (conn.flow_blocked && !draining_.load(std::memory_order_relaxed) &&
      outstanding_bytes(conn) < config_.max_write_buffer / 2) {
    conn.flow_blocked = false;
    update_epoll(slot);
    parse_frames(slot);  // frames buffered while blocked
    if (!conn.open) return;
  }
  maybe_close_drained(slot);
}

void NetServer::update_epoll(std::uint32_t slot) {
  Connection& conn = *conns_[slot];
  if (!conn.open) return;
  epoll_event ev{};
  ev.events = (conn.flow_blocked ? 0u : static_cast<std::uint32_t>(EPOLLIN)) |
              (conn.want_write ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.u64 = slot;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::close_conn(std::uint32_t slot) {
  Connection& conn = *conns_[slot];
  if (!conn.open) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  conn.fd = -1;
  conn.want_write = false;
  conn.flow_blocked = false;
  conn.in.clear();
  conn.in_ofs = 0;
  conn.wbuf.clear();
  conn.wbuf_ofs = 0;
  std::lock_guard<std::mutex> guard(mutex_);
  conn.open = false;
  ++closed_;
  if (conn.pending == 0)
    free_slot_locked(slot);
  // else: zombie until the last continuation resolves (complete() frees it).
}

void NetServer::maybe_close_drained(std::uint32_t slot) {
  if (!draining_.load(std::memory_order_relaxed)) return;
  Connection& conn = *conns_[slot];
  if (!conn.open) return;
  if (conn.wbuf_ofs != conn.wbuf.size()) return;
  bool idle;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    idle = conn.outbox.empty() && conn.pending == 0;
  }
  if (idle) close_conn(slot);
}

std::uint32_t NetServer::alloc_slot() {
  std::lock_guard<std::mutex> guard(mutex_);
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(conns_.size());
    conns_.push_back(std::make_unique<Connection>());
  }
  Connection& conn = *conns_[slot];
  conn.in_use = true;
  conn.dirty = false;
  conn.pending = 0;
  conn.outbox.clear();
  ++open_slots_;
  return slot;
}

void NetServer::free_slot_locked(std::uint32_t slot) {
  Connection& conn = *conns_[slot];
  conn.in_use = false;
  ++conn.gen;  // stale continuations (there should be none) discard
  conn.dirty = false;
  conn.outbox.clear();
  free_slots_.push_back(slot);
  --open_slots_;
}

NetServer::InflightQuery* NetServer::acquire_query() {
  std::lock_guard<std::mutex> guard(mutex_);
  if (!free_queries_.empty()) {
    InflightQuery* query = free_queries_.back();
    free_queries_.pop_back();
    return query;
  }
  query_store_.push_back(std::make_unique<InflightQuery>());
  return query_store_.back().get();
}

void NetServer::release_query_locked(InflightQuery* query) {
  free_queries_.push_back(query);
}

void NetServer::wake() {
  std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

std::size_t NetServer::outstanding_bytes(const Connection& conn) {
  std::lock_guard<std::mutex> guard(mutex_);
  return (conn.wbuf.size() - conn.wbuf_ofs) + conn.outbox.size();
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> guard(mutex_);
  NetServerStats s;
  s.accepted = accepted_;
  s.closed = closed_;
  s.rejected_connections = rejected_connections_;
  s.accept_failures = accept_failures_;
  s.frames_in = frames_in_;
  s.frames_out = frames_out_;
  s.requests = requests_;
  s.responses = responses_;
  s.decode_errors = decode_errors_;
  s.protocol_errors = protocol_errors_;
  s.backpressure_shed = backpressure_shed_;
  s.read_faults = read_faults_;
  s.open_slots = open_slots_;
  s.draining = draining_.load(std::memory_order_acquire);
  s.finished = finished_.load(std::memory_order_acquire);
  return s;
}

WireStats gather_wire_stats(const serve::Router& router,
                            const NetServerStats& net) {
  serve::RouterStats rs = router.stats();
  WireStats w;
  w.queries = rs.queries;
  w.forwards = rs.forwards;
  w.batches = rs.batches;
  w.cache_hits = rs.cache_hits;
  w.cache_misses = rs.cache_misses;
  w.coalesced = rs.coalesced;
  w.shed = rs.shed;
  w.rejected = rs.rejected;
  w.deadline_exceeded = rs.deadline_exceeded;
  w.internal_errors = rs.internal_errors;
  w.invalid_arguments = rs.invalid_arguments;
  w.routed = rs.routed;
  w.model_not_found = rs.model_not_found;
  w.net_accepted = net.accepted;
  w.net_closed = net.closed;
  w.net_open = net.open_slots;
  w.net_frames_in = net.frames_in;
  w.net_frames_out = net.frames_out;
  w.net_requests = net.requests;
  w.net_decode_errors = net.decode_errors;
  w.net_protocol_errors = net.protocol_errors;
  w.net_backpressure_shed = net.backpressure_shed;
  w.net_accept_failures = net.accept_failures;
  return w;
}

}  // namespace irgnn::net
