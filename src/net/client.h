// Client side of the wire protocol: a blocking TCP connection speaking
// net/codec frames to an irgnn_served process.
//
// Two usage shapes, matching the load generator's two loops:
//
//   Synchronous predict(). One round trip per call: encode a kRequest with a
//   fresh tag, send, read frames until the echoed tag comes back. The wire
//   twin of serve::Router::predict — the loadgen's closed-loop bit-identity
//   gate compares the two byte for byte.
//
//   Pipelined send()/recv(). Queue many tagged requests before reading any
//   answer; recv() returns responses in arrival order, which is NOT send
//   order (a cache hit overtakes an older miss), so callers match by tag.
//   One connection, hundreds of queries in flight: the open-loop mode.
//
// Do not interleave predict() with outstanding pipelined sends on one
// connection: predict() consumes frames until its own tag appears and has
// nowhere to put other tags' answers.
//
// Encode and receive buffers are BufferPool-backed and reused across calls,
// so a warm client round trip allocates nothing. All failures — connect
// timeouts, the server closing mid-read (drain, protocol error), malformed
// reply frames — are Status values, never exceptions.
#pragma once

#include <cstdint>
#include <string>

#include "net/codec.h"

namespace irgnn::net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient() { close(); }

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to host:port, retrying refused connections until `timeout_ms`
  /// elapses — which absorbs the race of a client starting before the
  /// server's listen(), the normal shape of a CI loopback run.
  Status connect(const std::string& host, std::uint16_t port,
                 std::int64_t timeout_ms = 5000);

  void close();
  bool connected() const { return fd_ >= 0; }

  /// One synchronous round trip. Submit-side failures the server folded
  /// into a wire Response (Overloaded, ModelNotFound...) come back as that
  /// Response; transport failures (EOF, bad frame) are the error Status.
  StatusOr<serve::Response> predict(const serve::Request& request);

  /// Pipelined: encodes and sends one kRequest under `tag` without waiting.
  Status send(const serve::Request& request, std::uint64_t tag);

  /// Pipelined: blocks for the next kResponse frame (arrival order).
  StatusOr<DecodedResponse> recv();

  /// Asks the server for its counters (kStatsRequest round trip).
  Status get_stats(WireStats* out);

 private:
  Status send_all(const FrameBytes& bytes);
  Status read_exact(std::uint8_t* dst, std::size_t size);
  /// Reads one frame into recv_buf_ (payload only), returning its header.
  Status read_frame(FrameHeader* header);

  int fd_ = -1;
  std::uint64_t next_tag_ = 1;
  FrameBytes send_buf_;
  FrameBytes recv_buf_;
};

}  // namespace irgnn::net
