// Versioned binary wire codec for out-of-process serving.
//
// Every message on an irgnn_served connection is one frame:
//
//   offset  size  field
//   0       2     magic   0x4952 ("IR", little-endian u16)
//   2       1     version kWireVersion (currently 1)
//   3       1     type    FrameType
//   4       4     length  payload bytes (little-endian u32, <= kMaxPayloadBytes)
//   8       len   payload
//
// Payloads are packed little-endian with fixed-width fields — no padding, no
// host-order dependence. A graph travels as the exact structure the model
// consumes (node kind/feature, edge src/dst/kind/position); debug-only
// strings (graph name, node text) deliberately do not cross the wire, for
// the same reason graph::fingerprint excludes them: they never reach the
// model, so shipping them would only split identical queries and bloat
// frames. Round-tripping a graph therefore preserves its fingerprint and its
// predictions, not its labels-for-humans.
//
// Request and Response payloads carry a client-chosen 64-bit tag, echoed
// verbatim by the server, so a pipelined client can match out-of-order
// completions (cache hits resolve before older misses) to their queries.
//
// Two contracts define the codec:
//
//   Zero allocation in steady state. encode_*_into appends to a caller-owned
//   FrameBytes (a BufferPool-backed byte vector) and decode_* writes into
//   caller-owned storage (`graph_into` reuses node/edge capacity; decoded
//   model names are string_views into the payload). Once buffers are warm —
//   same frame shapes repeating, the steady state of a serving loop —
//   neither direction touches the heap (tests/net_test.cpp pins this with a
//   counting operator new).
//
//   Malformed input is a Status, never a crash. Truncated payloads, bad
//   magic or version, oversized lengths, counts that disagree with the
//   payload size, out-of-range enums and out-of-vocabulary node features all
//   return Status::InvalidArgument; no decode path throws, reads out of
//   bounds, or trusts a length it has not checked. The seeded mutation fuzz
//   in net_test drives this.
//
// Status codes cross the wire as their StatusCode numeric value, which
// support/status.h pins with static_asserts — codec version 1 can never
// silently reorder error codes.
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/program_graph.h"
#include "serve/request.h"
#include "support/arena.h"
#include "support/status.h"

namespace irgnn::net {

using support::Status;
using support::StatusCode;
template <typename T>
using StatusOr = support::StatusOr<T>;

/// Frame scratch: BufferPool-backed so encode buffers recycle through the
/// arena instead of malloc.
using FrameBytes = support::PoolVector<std::uint8_t>;

inline constexpr std::uint16_t kMagic = 0x4952;  // "IR"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8;
/// Hard payload bound: anything larger is rejected before buffering, so a
/// malicious or corrupt length field cannot make the server allocate.
inline constexpr std::uint32_t kMaxPayloadBytes = 16u << 20;  // 16 MiB

/// Frame types are wire format v1: append new types, never renumber.
enum class FrameType : std::uint8_t {
  kGraph = 1,         // standalone ProgramGraph (tools, tests)
  kRequest = 2,       // tag + routing/admission fields + inline graph
  kResponse = 3,      // tag + status/label/provenance/timings
  kStatsRequest = 4,  // empty payload: ask the server for a kStatsReply
  kStatsReply = 5,    // server+router counters (WireStats)
};

struct FrameHeader {
  FrameType type = FrameType::kGraph;
  std::uint32_t payload_bytes = 0;
};

// --- Status <-> wire byte --------------------------------------------------

/// The wire byte for a Status: its pinned StatusCode value.
inline std::uint8_t wire_status(const Status& status) {
  return static_cast<std::uint8_t>(status.code());
}

/// Rebuilds a Status (with its canonical message) from a wire byte. Returns
/// InvalidArgument for bytes outside the pinned range — which is itself a
/// decode error, distinguished by *valid.
Status status_from_wire(std::uint8_t wire, bool* valid);

// --- Decoded views ---------------------------------------------------------

/// A decoded kRequest. `model` views into the payload buffer and is valid
/// only while that buffer is; the graph lives in the caller-provided storage
/// passed to decode_request (reused across decodes, so a steady-state
/// connection decodes without allocating).
struct DecodedRequest {
  std::uint64_t tag = 0;
  std::int64_t deadline_us = 0;
  serve::Priority priority = serve::Priority::Normal;
  std::string_view model{};
};

/// A decoded kResponse: the echoed tag plus the reconstructed Response.
struct DecodedResponse {
  std::uint64_t tag = 0;
  serve::Response response;
};

/// Counters a kStatsReply carries: the router totals the load generator's
/// conservation gate needs (hits + misses + coalesced == queries), plus the
/// net layer's own connection/frame accounting. Field ORDER is wire format
/// v1 — append, never reorder.
struct WireStats {
  // Router totals (folded over all models, retired included).
  std::uint64_t queries = 0;
  std::uint64_t forwards = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t internal_errors = 0;
  std::uint64_t invalid_arguments = 0;
  std::uint64_t routed = 0;
  std::uint64_t model_not_found = 0;
  // Net-layer accounting (see NetServerStats for semantics).
  std::uint64_t net_accepted = 0;
  std::uint64_t net_closed = 0;
  std::uint64_t net_open = 0;
  std::uint64_t net_frames_in = 0;
  std::uint64_t net_frames_out = 0;
  std::uint64_t net_requests = 0;
  std::uint64_t net_decode_errors = 0;
  std::uint64_t net_protocol_errors = 0;
  std::uint64_t net_backpressure_shed = 0;
  std::uint64_t net_accept_failures = 0;
};

inline constexpr std::size_t kWireStatsFields = 23;
static_assert(sizeof(WireStats) == kWireStatsFields * sizeof(std::uint64_t),
              "WireStats must stay a flat array of u64 counters (wire v1): "
              "append new fields and bump kWireStatsFields");

/// Decode-side sanity bounds for graphs. The defaults accept anything the
/// frame size already allows; servers tighten max_feature to the model
/// vocabulary so a hostile feature index can never reach an embedding
/// lookup out of bounds.
struct DecodeLimits {
  std::uint32_t max_nodes = 0xFFFFFFFFu;
  std::uint32_t max_edges = 0xFFFFFFFFu;
  std::int32_t max_feature = 0x7FFFFFFF;  // inclusive upper bound
};

// --- Encoding (appends one complete frame to `out`) ------------------------

void encode_graph_into(const graph::ProgramGraph& graph, FrameBytes& out);
void encode_request_into(std::uint64_t tag, const serve::Request& request,
                         FrameBytes& out);
void encode_response_into(std::uint64_t tag, const serve::Response& response,
                          FrameBytes& out);
void encode_stats_request_into(FrameBytes& out);
void encode_stats_reply_into(const WireStats& stats, FrameBytes& out);

// --- Decoding --------------------------------------------------------------

/// Parses a frame header from the first kHeaderBytes of [data, data+size).
/// `size` < kHeaderBytes is InvalidArgument (stream callers check readiness
/// themselves and never call early); so are bad magic, unknown version,
/// unknown type and length > kMaxPayloadBytes.
Status decode_header(const std::uint8_t* data, std::size_t size,
                     FrameHeader* out);

/// Decodes a kGraph payload (exactly [payload, payload+size)) into *out,
/// reusing its node/edge capacity. On error *out is valid but unspecified.
/// Name and node text come back empty (they do not cross the wire).
Status decode_graph(const std::uint8_t* payload, std::size_t size,
                    graph::ProgramGraph* out, const DecodeLimits& limits = {});

/// Decodes a kRequest payload: fixed fields into *out, the inline graph into
/// *graph (reused storage). out->model views into `payload`.
Status decode_request(const std::uint8_t* payload, std::size_t size,
                      DecodedRequest* out, graph::ProgramGraph* graph,
                      const DecodeLimits& limits = {});

/// Best-effort tag of a kRequest payload too malformed to decode fully, so
/// the server can still answer InvalidArgument to the right query. False
/// when even the tag is truncated.
bool peek_request_tag(const std::uint8_t* payload, std::size_t size,
                      std::uint64_t* tag);

/// Decodes a kResponse payload.
Status decode_response(const std::uint8_t* payload, std::size_t size,
                       DecodedResponse* out);

/// Decodes a kStatsReply payload.
Status decode_stats_reply(const std::uint8_t* payload, std::size_t size,
                          WireStats* out);

}  // namespace irgnn::net
