#include "net/codec.h"

#include <cstring>

namespace irgnn::net {

namespace {

// --- Little-endian primitives ---------------------------------------------
// Shift-based so encoding is identical on every host; the compiler folds
// these to single moves on little-endian targets.

void put_u8(FrameBytes& out, std::uint8_t v) { out.push_back(v); }

void put_u16(FrameBytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(FrameBytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(FrameBytes& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_i32(FrameBytes& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(FrameBytes& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

/// Bounds-checked sequential reader over one payload. Every get_* fails
/// (and latches failure) on underflow instead of reading past the end;
/// callers check ok() once after the last field plus exhausted() to reject
/// trailing garbage.
class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ok() const { return ok_; }
  bool exhausted() const { return ok_ && pos_ == size_; }
  std::size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
  const std::uint8_t* cursor() const { return data_ + pos_; }

  std::uint8_t get_u8() {
    if (!take(1)) return 0;
    return data_[pos_ - 1];
  }

  std::uint16_t get_u16() {
    if (!take(2)) return 0;
    const std::uint8_t* p = data_ + pos_ - 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t get_u32() {
    if (!take(4)) return 0;
    const std::uint8_t* p = data_ + pos_ - 4;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::uint64_t get_u64() {
    std::uint64_t lo = get_u32();
    std::uint64_t hi = get_u32();
    return lo | (hi << 32);
  }

  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  /// Claims `n` raw bytes; nullptr (with failure latched) on underflow.
  const std::uint8_t* get_bytes(std::size_t n) {
    if (!take(n)) return nullptr;
    return data_ + pos_ - n;
  }

 private:
  bool take(std::size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Appends a frame header with a zero length, returning the offset of the
/// length field for finish_frame to backpatch once the payload is written.
std::size_t begin_frame(FrameBytes& out, FrameType type) {
  put_u16(out, kMagic);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  std::size_t length_at = out.size();
  put_u32(out, 0);
  return length_at;
}

void finish_frame(FrameBytes& out, std::size_t length_at) {
  std::uint32_t payload =
      static_cast<std::uint32_t>(out.size() - length_at - 4);
  out[length_at] = static_cast<std::uint8_t>(payload);
  out[length_at + 1] = static_cast<std::uint8_t>(payload >> 8);
  out[length_at + 2] = static_cast<std::uint8_t>(payload >> 16);
  out[length_at + 3] = static_cast<std::uint8_t>(payload >> 24);
}

void put_graph_body(const graph::ProgramGraph& graph, FrameBytes& out) {
  put_u32(out, static_cast<std::uint32_t>(graph.nodes.size()));
  put_u32(out, static_cast<std::uint32_t>(graph.edges.size()));
  for (const graph::Node& node : graph.nodes) {
    put_u8(out, static_cast<std::uint8_t>(node.kind));
    put_i32(out, node.feature);
  }
  for (const graph::Edge& edge : graph.edges) {
    put_i32(out, edge.src);
    put_i32(out, edge.dst);
    put_u8(out, static_cast<std::uint8_t>(edge.kind));
    put_i32(out, edge.position);
  }
}

constexpr std::uint64_t kNodeWireBytes = 5;   // kind u8 + feature i32
constexpr std::uint64_t kEdgeWireBytes = 13;  // src/dst i32 + kind u8 + pos i32

Status get_graph_body(Reader& r, graph::ProgramGraph* out,
                      const DecodeLimits& limits) {
  const std::uint32_t num_nodes = r.get_u32();
  const std::uint32_t num_edges = r.get_u32();
  if (!r.ok()) return Status::InvalidArgument("truncated graph header");
  if (num_nodes > limits.max_nodes)
    return Status::InvalidArgument("graph node count exceeds limit");
  if (num_edges > limits.max_edges)
    return Status::InvalidArgument("graph edge count exceeds limit");
  // u64 arithmetic: counts are u32, so this cannot overflow; the comparison
  // against what the payload actually holds rejects lying counts before any
  // per-element read.
  const std::uint64_t need =
      kNodeWireBytes * num_nodes + kEdgeWireBytes * num_edges;
  if (need > r.remaining())
    return Status::InvalidArgument("graph counts exceed payload size");

  out->name.clear();
  out->nodes.resize(num_nodes);
  out->edges.resize(num_edges);
  for (graph::Node& node : out->nodes) {
    const std::uint8_t kind = r.get_u8();
    const std::int32_t feature = r.get_i32();
    if (kind > static_cast<std::uint8_t>(graph::NodeKind::Constant))
      return Status::InvalidArgument("node kind out of range");
    if (feature < 0 || feature > limits.max_feature)
      return Status::InvalidArgument("node feature out of vocabulary");
    node.kind = static_cast<graph::NodeKind>(kind);
    node.feature = feature;
    node.text.clear();  // debug text does not cross the wire
  }
  for (graph::Edge& edge : out->edges) {
    edge.src = r.get_i32();
    edge.dst = r.get_i32();
    const std::uint8_t kind = r.get_u8();
    edge.position = r.get_i32();
    if (kind >= static_cast<std::uint8_t>(graph::kNumEdgeKinds))
      return Status::InvalidArgument("edge kind out of range");
    if (edge.src < 0 || edge.dst < 0 ||
        static_cast<std::uint32_t>(edge.src) >= num_nodes ||
        static_cast<std::uint32_t>(edge.dst) >= num_nodes)
      return Status::InvalidArgument("edge endpoint out of range");
    edge.kind = static_cast<graph::EdgeKind>(kind);
  }
  if (!r.ok()) return Status::InvalidArgument("truncated graph body");
  return Status::Ok();
}

}  // namespace

Status status_from_wire(std::uint8_t wire, bool* valid) {
  *valid = true;
  switch (static_cast<StatusCode>(wire)) {
    case StatusCode::kOk: return Status::Ok();
    case StatusCode::kOverloaded: return Status::Overloaded();
    case StatusCode::kDeadlineExceeded: return Status::DeadlineExceeded();
    case StatusCode::kModelNotFound: return Status::ModelNotFound();
    case StatusCode::kShuttingDown: return Status::ShuttingDown();
    case StatusCode::kInternal: return Status::Internal();
    case StatusCode::kUnavailable: return Status::Unavailable();
    case StatusCode::kInvalidArgument: return Status::InvalidArgument();
  }
  *valid = false;
  return Status::InvalidArgument("status code out of range");
}

void encode_graph_into(const graph::ProgramGraph& graph, FrameBytes& out) {
  std::size_t length_at = begin_frame(out, FrameType::kGraph);
  put_graph_body(graph, out);
  finish_frame(out, length_at);
}

void encode_request_into(std::uint64_t tag, const serve::Request& request,
                         FrameBytes& out) {
  std::size_t length_at = begin_frame(out, FrameType::kRequest);
  put_u64(out, tag);
  put_i64(out, request.deadline_us);
  put_u8(out, static_cast<std::uint8_t>(request.priority));
  put_u16(out, static_cast<std::uint16_t>(request.model.size()));
  for (char c : request.model) out.push_back(static_cast<std::uint8_t>(c));
  put_graph_body(*request.graph, out);
  finish_frame(out, length_at);
}

void encode_response_into(std::uint64_t tag, const serve::Response& response,
                          FrameBytes& out) {
  std::size_t length_at = begin_frame(out, FrameType::kResponse);
  put_u64(out, tag);
  put_u8(out, wire_status(response.status));
  put_i32(out, response.label);
  put_u64(out, response.model_version);
  put_u8(out, static_cast<std::uint8_t>(response.source));
  put_i64(out, response.queue_us);
  put_i64(out, response.compute_us);
  finish_frame(out, length_at);
}

void encode_stats_request_into(FrameBytes& out) {
  std::size_t length_at = begin_frame(out, FrameType::kStatsRequest);
  finish_frame(out, length_at);
}

void encode_stats_reply_into(const WireStats& stats, FrameBytes& out) {
  std::size_t length_at = begin_frame(out, FrameType::kStatsReply);
  const std::uint64_t* fields =
      reinterpret_cast<const std::uint64_t*>(&stats);
  for (std::size_t i = 0; i < kWireStatsFields; ++i) put_u64(out, fields[i]);
  finish_frame(out, length_at);
}

Status decode_header(const std::uint8_t* data, std::size_t size,
                     FrameHeader* out) {
  Reader r(data, size);
  const std::uint16_t magic = r.get_u16();
  const std::uint8_t version = r.get_u8();
  const std::uint8_t type = r.get_u8();
  const std::uint32_t length = r.get_u32();
  if (!r.ok()) return Status::InvalidArgument("truncated frame header");
  if (magic != kMagic) return Status::InvalidArgument("bad frame magic");
  if (version != kWireVersion)
    return Status::InvalidArgument("unsupported wire version");
  if (type < static_cast<std::uint8_t>(FrameType::kGraph) ||
      type > static_cast<std::uint8_t>(FrameType::kStatsReply))
    return Status::InvalidArgument("unknown frame type");
  if (length > kMaxPayloadBytes)
    return Status::InvalidArgument("frame payload exceeds size bound");
  out->type = static_cast<FrameType>(type);
  out->payload_bytes = length;
  return Status::Ok();
}

Status decode_graph(const std::uint8_t* payload, std::size_t size,
                    graph::ProgramGraph* out, const DecodeLimits& limits) {
  Reader r(payload, size);
  Status status = get_graph_body(r, out, limits);
  if (!status.ok()) return status;
  if (!r.exhausted())
    return Status::InvalidArgument("trailing bytes after graph");
  return Status::Ok();
}

Status decode_request(const std::uint8_t* payload, std::size_t size,
                      DecodedRequest* out, graph::ProgramGraph* graph,
                      const DecodeLimits& limits) {
  Reader r(payload, size);
  out->tag = r.get_u64();
  out->deadline_us = r.get_i64();
  const std::uint8_t priority = r.get_u8();
  const std::uint16_t model_len = r.get_u16();
  const std::uint8_t* model = r.get_bytes(model_len);
  if (!r.ok()) return Status::InvalidArgument("truncated request fields");
  if (priority > static_cast<std::uint8_t>(serve::Priority::High))
    return Status::InvalidArgument("priority out of range");
  out->priority = static_cast<serve::Priority>(priority);
  out->model = std::string_view(reinterpret_cast<const char*>(model),
                                model_len);
  Status status = get_graph_body(r, graph, limits);
  if (!status.ok()) return status;
  if (!r.exhausted())
    return Status::InvalidArgument("trailing bytes after request");
  return Status::Ok();
}

bool peek_request_tag(const std::uint8_t* payload, std::size_t size,
                      std::uint64_t* tag) {
  Reader r(payload, size);
  *tag = r.get_u64();
  return r.ok();
}

Status decode_response(const std::uint8_t* payload, std::size_t size,
                       DecodedResponse* out) {
  Reader r(payload, size);
  out->tag = r.get_u64();
  const std::uint8_t status_byte = r.get_u8();
  out->response.label = r.get_i32();
  out->response.model_version = r.get_u64();
  const std::uint8_t source = r.get_u8();
  out->response.queue_us = r.get_i64();
  out->response.compute_us = r.get_i64();
  if (!r.ok()) return Status::InvalidArgument("truncated response");
  if (!r.exhausted())
    return Status::InvalidArgument("trailing bytes after response");
  bool status_valid = false;
  out->response.status = status_from_wire(status_byte, &status_valid);
  if (!status_valid)
    return Status::InvalidArgument("status code out of range");
  if (source > static_cast<std::uint8_t>(serve::Source::Shed))
    return Status::InvalidArgument("source out of range");
  out->response.source = static_cast<serve::Source>(source);
  return Status::Ok();
}

Status decode_stats_reply(const std::uint8_t* payload, std::size_t size,
                          WireStats* out) {
  Reader r(payload, size);
  std::uint64_t* fields = reinterpret_cast<std::uint64_t*>(out);
  for (std::size_t i = 0; i < kWireStatsFields; ++i) fields[i] = r.get_u64();
  if (!r.ok()) return Status::InvalidArgument("truncated stats reply");
  if (!r.exhausted())
    return Status::InvalidArgument("trailing bytes after stats reply");
  return Status::Ok();
}

}  // namespace irgnn::net
