// Out-of-process front door: an epoll-based TCP server that multiplexes
// many connections onto one serve::Router.
//
// NetServer turns the in-process serving stack into a network service
// without adding a second concurrency substrate: the whole event loop —
// accept, non-blocking reads, frame parsing, response flushing — is ONE task
// on the shared support::ThreadPool, and completed predictions come back to
// it through Future::then continuations that run on whatever pool thread
// pumps the answering micro-batch. The loop and the continuations meet at a
// per-connection outbox under one server mutex; an eventfd wakes the loop
// when a continuation deposits a response. No thread is ever spawned, no
// call ever blocks the loop except a ShedPolicy::Block admission (which
// pumps batches while it waits, so even that makes progress).
//
// Request lifecycle: a complete kRequest frame is decoded into a pooled
// InflightQuery (graph storage reused across requests, so a steady-state
// connection decodes without heap allocations), submitted to the Router,
// and answered through then(); the wire Response echoes the client's tag,
// so pipelined clients match out-of-order completions (cache hits resolve
// before older misses). Malformed payloads answer InvalidArgument when the
// tag is readable; stream-level garbage (bad magic/version, lying lengths)
// closes the connection — a byte stream cannot be resynchronized after
// framing is lost. Neither path ever throws or crashes the server
// (tests/net_test.cpp fuzzes it; tests/chaos_test.cpp disconnects
// mid-frame and injects read/write/decode/accept faults).
//
// TCP backpressure maps onto the shed policies instead of unbounded
// buffering: each connection's encoded-but-unsent bytes are capped by
// `max_write_buffer`. Over the cap —
//
//   Reject / DropOldest  new requests on that connection are answered
//                        Overloaded immediately (a 46-byte frame) without
//                        being admitted; the admission queue behind the
//                        Router still applies the configured policy among
//                        admitted queries.
//   Block                the server stops reading the connection (EPOLLIN
//                        masked) until the buffer drains below half the cap
//                        — genuine TCP flow control; the client's sends
//                        eventually block in its kernel.
//
// A slow reader therefore costs bounded memory and sheds its own traffic;
// it can never stall other connections or the loop.
//
// Graceful drain (SIGTERM in irgnn_served): request_drain() is
// async-signal-safe (an atomic flag plus an eventfd write). The loop then
// stops accepting, stops reading (requests not yet admitted are dropped —
// their clients see EOF), answers every admitted query through the normal
// continuation path, flushes every connection's outbox, closes connections
// as their last byte leaves, and exits once no slot remains. wait() returns
// at that point and irgnn_served exits 0.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/codec.h"
#include "serve/router.h"
#include "support/arena.h"

namespace irgnn::net {

struct NetServerConfig {
  /// Bind address (IPv4 dotted quad) and port; port 0 binds an ephemeral
  /// port, readable via NetServer::port() after start().
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int backlog = 128;

  /// Connections beyond this are accepted and immediately closed (counted
  /// in rejected_connections) so the kernel backlog cannot wedge.
  std::size_t max_connections = 4096;

  /// Per-connection cap on encoded-but-unsent response bytes; over it, TCP
  /// backpressure maps onto shed_policy (see the header comment).
  std::size_t max_write_buffer = 1u << 20;
  serve::ShedPolicy shed_policy = serve::ShedPolicy::Reject;

  /// Inclusive bound on node feature indices accepted off the wire; < 0
  /// means graph::vocabulary_size() - 1, so hostile frames can never drive
  /// an embedding lookup out of bounds.
  std::int32_t max_feature = -1;

  /// epoll_wait tick in milliseconds: the upper bound on how stale the loop
  /// can be when woken only by time (drain checks, deferred flushes).
  int poll_ms = 20;
};

struct NetServerStats {
  std::uint64_t accepted = 0;  // connections admitted to a slot
  std::uint64_t closed = 0;    // fds closed (EOF, error, drain, protocol)
  std::uint64_t rejected_connections = 0;  // over max_connections
  std::uint64_t accept_failures = 0;       // accept() errors (injected incl.)
  std::uint64_t frames_in = 0;             // complete frames parsed
  std::uint64_t frames_out = 0;            // frames encoded for sending
  std::uint64_t requests = 0;              // well-formed kRequest frames
  std::uint64_t responses = 0;             // responses delivered to outboxes
  std::uint64_t decode_errors = 0;    // framed payloads that failed decode
  std::uint64_t protocol_errors = 0;  // stream garbage (connection closed)
  std::uint64_t backpressure_shed = 0;  // Overloaded over a full write buffer
  std::uint64_t read_faults = 0;        // read errors that closed connections
  std::uint64_t open_slots = 0;  // live connection slots, zombies included —
                                 // MUST return to 0 after clients disconnect
                                 // and their in-flight queries resolve
  bool draining = false;
  bool finished = false;
};

class NetServer {
 public:
  /// Serves `router`, which must outlive the server and have its models
  /// published by the caller. The server adds no model knowledge of its own.
  NetServer(serve::Router& router, const NetServerConfig& config = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and parks the event loop on the shared ThreadPool.
  /// Fails (Status, never a throw) on socket errors, a bad host string, or
  /// a worker-less pool (the loop would run inline and never return).
  Status start();

  /// The bound port (after start); the ephemeral-port answer to port 0.
  std::uint16_t port() const { return bound_port_; }

  /// Begins graceful drain. Async-signal-safe: one atomic store and one
  /// eventfd write, so a SIGTERM handler may call it directly. Idempotent.
  void request_drain();

  /// Blocks until the event loop has fully drained and exited. Safe to call
  /// from several threads; returns immediately if the loop never started.
  void wait();

  /// request_drain() + wait(). Called by the destructor; idempotent.
  void shutdown();

  NetServerStats stats() const;

  const NetServerConfig& config() const { return config_; }

 private:
  /// Decoded-request storage that must outlive its future's resolution (the
  /// serve layer reads the graph during the forward). Pooled: released
  /// slots keep their node/edge capacity, so steady-state traffic decodes
  /// allocation-free.
  struct InflightQuery {
    graph::ProgramGraph graph;
  };

  struct Connection {
    // Loop-thread-only state.
    int fd = -1;
    bool open = false;
    bool want_write = false;    // EPOLLOUT armed
    bool flow_blocked = false;  // EPOLLIN masked (Block backpressure)
    FrameBytes in;              // unparsed inbound bytes
    std::size_t in_ofs = 0;     // parse cursor into `in`
    FrameBytes wbuf;            // spliced outbound bytes being written
    std::size_t wbuf_ofs = 0;

    // Shared state, guarded by NetServer::mutex_.
    FrameBytes outbox;          // responses deposited by continuations
    bool dirty = false;         // queued on dirty_ for splicing
    std::uint32_t pending = 0;  // submitted, unresolved queries
    std::uint64_t gen = 0;      // bumped when the slot is freed
    bool in_use = false;
  };

  enum class FrameAction { kHandled, kDefer };

  void run_loop();
  void begin_drain();  // loop thread; first reaction to drain_requested_
  void do_accept();
  void handle_io(std::uint32_t slot, std::uint32_t events);
  void read_conn(std::uint32_t slot);
  void parse_frames(std::uint32_t slot);
  FrameAction handle_frame(std::uint32_t slot, const FrameHeader& header,
                           const std::uint8_t* payload);
  void handle_request(std::uint32_t slot, const std::uint8_t* payload,
                      std::size_t size, FrameAction* action);
  void handle_stats_request(std::uint32_t slot);
  /// Deposits an error Response for `tag` into the connection's outbox.
  void respond_error(std::uint32_t slot, std::uint64_t tag,
                     const Status& status, serve::Source source);
  /// Splices outboxes of dirty connections into their write buffers and
  /// flushes them; runs once per loop iteration and on EPOLLOUT.
  void splice_and_flush();
  void flush_conn(std::uint32_t slot);
  void update_epoll(std::uint32_t slot);
  void close_conn(std::uint32_t slot);
  /// During drain: closes `slot` once it is fully flushed with no pending
  /// queries. No-op outside drain.
  void maybe_close_drained(std::uint32_t slot);

  /// Continuation target: runs on whatever thread resolves the future.
  void complete(std::uint32_t slot, std::uint64_t gen, std::uint64_t tag,
                InflightQuery* query, const serve::Response& response);

  std::uint32_t alloc_slot();  // loop thread
  void free_slot_locked(std::uint32_t slot);
  InflightQuery* acquire_query();
  void release_query_locked(InflightQuery* query);
  void wake();
  /// Encoded-but-unsent bytes for the connection (wbuf + outbox).
  std::size_t outstanding_bytes(const Connection& conn);

  serve::Router& router_;
  NetServerConfig config_;
  DecodeLimits limits_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t bound_port_ = 0;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> draining_{false};
  std::atomic<bool> finished_{false};
  bool started_ = false;

  std::future<void> loop_future_;
  std::mutex wait_mutex_;  // serializes wait()/shutdown() on loop_future_

  mutable std::mutex mutex_;  // connections' shared state, stats, pools
  /// Signaled when total_pending_ hits zero; the loop's teardown waits on it
  /// so the server can never be destroyed under an unresolved continuation.
  std::condition_variable drained_cv_;
  std::uint64_t total_pending_ = 0;  // unresolved futures across all slots
  std::vector<std::unique_ptr<Connection>> conns_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<std::uint32_t> dirty_;        // slots with non-empty outboxes
  std::vector<std::uint32_t> dirty_local_;  // loop-side swap target
  std::vector<std::unique_ptr<InflightQuery>> query_store_;
  std::vector<InflightQuery*> free_queries_;

  // Stats, guarded by mutex_.
  std::uint64_t accepted_ = 0;
  std::uint64_t closed_ = 0;
  std::uint64_t rejected_connections_ = 0;
  std::uint64_t accept_failures_ = 0;
  std::uint64_t frames_in_ = 0;
  std::uint64_t frames_out_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t responses_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t protocol_errors_ = 0;
  std::uint64_t backpressure_shed_ = 0;
  std::uint64_t read_faults_ = 0;
  std::uint64_t open_slots_ = 0;
};

/// Fills a WireStats from the router's totals plus the net layer's own
/// counters — what a kStatsRequest answers with, and what the load
/// generator's conservation gate reads.
WireStats gather_wire_stats(const serve::Router& router,
                            const NetServerStats& net);

}  // namespace irgnn::net
