// Sharded LRU cache of served predictions, keyed by the 64-bit structural
// graph fingerprint (mixed with the serving model's version, so a hot-swap
// can never surface a stale answer — see server.h).
//
// Design goals, in order:
//   1. A warm hit performs zero heap allocations: every shard preallocates
//      its entry slots and threads recency through intrusive index links, so
//      lookup is a hash-map find plus two link splices. The hash map itself
//      reserves its full bucket count up front and allocates its nodes
//      through the buffer arena, so steady-state insert/evict recycles too.
//   2. Reads from distinct shards never contend: the key's high bits pick
//      the shard, each shard has its own mutex, and the stats fold per-shard
//      counters only when asked.
//
// The cache stores the predicted label only. It is semantically transparent:
// the model is a pure function of graph structure, so a hit returns exactly
// the bits a fresh forward would produce (the serve tests pin this).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "support/arena.h"

namespace irgnn::serve {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;  // fresh keys only (refreshes excluded), so
                                 // insertions - evictions == entries holds
  std::uint64_t refreshes = 0;   // inserts that found the key resident
  std::uint64_t evictions = 0;
  std::uint64_t entries = 0;  // currently resident
  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class PredictionCache {
 public:
  /// `capacity` is the total entry budget across all shards (rounded up to
  /// give every shard at least one slot). capacity == 0 disables the cache:
  /// lookups miss without counting and inserts drop.
  explicit PredictionCache(std::size_t capacity, int num_shards = 8);

  PredictionCache(const PredictionCache&) = delete;
  PredictionCache& operator=(const PredictionCache&) = delete;

  /// True on hit, with the cached label in *label and the entry bumped to
  /// most-recently-used. Never allocates. `count_miss = false` defers the
  /// miss accounting to the caller (see note_miss): the serving layer uses
  /// it so a query that goes on to coalesce onto an in-flight leader is
  /// counted coalesced, not missed, keeping hits + misses + coalesced an
  /// exact partition of its queries.
  bool lookup(std::uint64_t key, int* label, bool count_miss = true);

  /// Records one miss for `key`'s shard — the deferred half of
  /// lookup(count_miss = false).
  void note_miss(std::uint64_t key);

  /// True if `key` is resident. Pure probe: counts neither a hit nor a miss
  /// and does not touch recency — the warming scan uses it to skip siblings
  /// that are already cached without polluting the hit-rate counters.
  bool contains(std::uint64_t key) const;

  /// Inserts (or refreshes) key -> label, evicting the least recently used
  /// entry of the shard when it is full.
  void insert(std::uint64_t key, int label);

  /// Drops every entry (capacity and slot storage are kept) AND resets the
  /// per-shard stats: a clear starts a new cache epoch (hot-swap, test
  /// reset), and hit-rate gates over the new epoch must not blend the old
  /// epoch's counters.
  void clear();

  std::size_t capacity() const { return capacity_; }
  CacheStats stats() const;

  /// Shard choice for `key` among `num_shards`. Finalizer-style multiply-
  /// shift mix of the FULL key: every input bit reaches every output bit
  /// before the modulo, so non-power-of-two shard counts stay unbiased and
  /// shard counts above 256 keep every shard reachable (the old top-8-bits
  /// scheme, `(key >> 56) % num_shards`, could reach at most 256 shards and
  /// collapsed entirely for keys whose high byte is constant). Public and
  /// static so the distribution test can pin it directly.
  static std::size_t shard_index(std::uint64_t key,
                                 std::size_t num_shards) noexcept {
    std::uint64_t h = key;
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % num_shards);
  }

 private:
  struct Entry {
    std::uint64_t key = 0;
    int label = 0;
    int prev = -1;  // toward most-recently-used
    int next = -1;  // toward least-recently-used
  };

  struct Shard {
    mutable std::mutex mutex;
    // fingerprint -> slot index. The fingerprint is already splitmix-mixed,
    // so identity hashing is enough and keeps lookup branch-free.
    struct IdentityHash {
      std::size_t operator()(std::uint64_t k) const noexcept {
        return static_cast<std::size_t>(k);
      }
    };
    std::unordered_map<
        std::uint64_t, int, IdentityHash, std::equal_to<std::uint64_t>,
        support::PoolAllocator<std::pair<const std::uint64_t, int>>>
        index;
    std::vector<Entry> slots;
    int lru_head = -1;  // most recently used
    int lru_tail = -1;  // least recently used
    int next_free = 0;  // slots [next_free, size) never used yet
    CacheStats stats;

    void unlink(int slot);
    void push_front(int slot);
  };

  Shard& shard_of(std::uint64_t key) {
    return shards_[shard_index(key, num_shards_)];
  }
  const Shard& shard_of(std::uint64_t key) const {
    return shards_[shard_index(key, num_shards_)];
  }

  std::size_t capacity_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::size_t num_shards_ = 0;
  // Shards hold a mutex (immovable), so they live in a fixed-size array.
  std::unique_ptr<Shard[]> shards_;
};

}  // namespace irgnn::serve
