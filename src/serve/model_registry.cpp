#include "serve/model_registry.h"

#include <atomic>

namespace irgnn::serve {

std::shared_ptr<const PublishedModel> ModelSlot::snapshot() const {
  return std::atomic_load(&current_);
}

std::uint64_t ModelSlot::publish(ModelPtr model) {
  std::lock_guard<std::mutex> lock(publish_mutex_);
  auto next = std::make_shared<const PublishedModel>(
      PublishedModel{std::move(model), ++next_version_});
  std::atomic_store(&current_, std::shared_ptr<const PublishedModel>(next));
  return next->version;
}

std::uint64_t ModelRegistry::publish(const std::string& name, ModelPtr model) {
  return slot(name)->publish(std::move(model));
}

bool ModelRegistry::retire(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_.erase(name) > 0;
}

std::shared_ptr<ModelSlot> ModelRegistry::slot(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<ModelSlot>& slot = slots_[name];
  if (!slot) slot = std::make_shared<ModelSlot>();
  return slot;
}

ModelPtr ModelRegistry::resolve(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  return it == slots_.end() ? nullptr : it->second->snapshot()->model;
}

std::uint64_t ModelRegistry::version(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(name);
  return it == slots_.end() ? 0 : it->second->snapshot()->version;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    (void)slot;
    out.push_back(name);
  }
  return out;
}

}  // namespace irgnn::serve
