// Multi-model serving front door: one Router owns one InferenceServer per
// published model name and dispatches typed Requests by Request::model.
//
// The deployment shape this serves is the paper's fig. 8 cross-architecture
// story: one trained predictor per target machine ("SandyBridge",
// "Skylake", ...) published into per-architecture registry slots, and one
// front door that picks the right model for each query instead of one
// hard-wired server per call site. Publishing an existing name hot-swaps
// that model's server in place (readers never block; in-flight batches
// finish on their snapshot); retire() stops routing a name and drains its
// server.
//
// Admission control is enforced per model: RouterConfig::{max_queue,
// shed_policy} configure every server the router creates, so overload on
// one architecture's queue sheds (or rejects, or blocks) without touching
// the others, and a burst returns Overloaded within the bound instead of
// stretching every client's latency. Requests naming no model route to the
// router's only model, or fail ModelNotFound when several are published
// (ambiguous) or the name is unknown — routing failures are Status values,
// never exceptions, like everything on the query path.
//
// Determinism: the router adds name lookup only. Every admitted and
// answered Response carries bits identical to a serial
// StaticModel::predict by the named model, for every shed policy, queue
// bound, model mix and client interleaving (tests/router_test.cpp pins
// this).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serve/server.h"

namespace irgnn::serve {

struct RouterConfig {
  /// Per-model admission bound and overload policy (see request.h);
  /// max_queue 0 means unbounded. These two are the router's admission
  /// contract and the ONLY place to set it: the matching fields inside
  /// `server` below are ignored (overwritten with these) for every server
  /// the router creates.
  std::size_t max_queue = 256;
  ShedPolicy shed_policy = ShedPolicy::Reject;

  /// Template for each per-model InferenceServer (batching window, cache,
  /// loop mode...). Note each background loop parks one shared-ThreadPool
  /// task; routers with many models on small pools should consider
  /// background_loop = false (clients then pump, as everywhere else).
  ServerConfig server;
};

/// Client-side retry schedule for Router::predict(request, policy).
///
/// Containment rules, in order of importance:
///
///   Only failures that retrying can fix are retried: Internal (the forward
///   failed — transient by nature) and Unavailable (the breaker is open —
///   the next attempt may land on a probe-restored server). Overloaded is
///   NEVER retried: a shed is the server saying "less load, please", and a
///   retry storm converts exactly the signal meant to prevent overload into
///   more of it. ModelNotFound / ShuttingDown / InvalidArgument are
///   deterministic; retrying cannot change them.
///
///   Retries are budgeted across the router: at most
///   max(budget_floor, budget_ratio * first attempts) extra attempts,
///   counted over all policy'd predicts. When every request fails, retries
///   amplify sustained traffic by at most 1+ratio — not by max_attempts;
///   the floor only keeps low-traffic clients from being starved of
///   retries by their own small denominator.
///
///   Backoff doubles per attempt from `base_backoff_us` (clamped at
///   `max_backoff_us`) with deterministic jitter in [backoff/2, backoff],
///   derived from (jitter_seed, graph fingerprint, attempt) — reproducible
///   runs, but concurrent clients retrying the same outage still spread out
///   instead of stampeding in lockstep.
struct RetryPolicy {
  int max_attempts = 3;  // total tries, first included; <= 1 disables
  std::int64_t base_backoff_us = 200;
  std::int64_t max_backoff_us = 5000;
  double budget_ratio = 0.2;
  std::uint64_t budget_floor = 10;
  std::uint64_t jitter_seed = 0;
};

struct RouterModelStats {
  std::string model;
  std::uint64_t version = 0;
  ServerStats stats;
};

struct RouterStats {
  /// Routing outcomes.
  std::uint64_t routed = 0;           // requests that reached a server
  std::uint64_t model_not_found = 0;  // unknown / ambiguous model names

  /// Totals folded over every server, live and retired, in name order —
  /// same meanings as the ServerStats fields.
  std::uint64_t queries = 0;
  std::uint64_t forwards = 0;
  std::uint64_t batches = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t warm_enqueued = 0;
  std::uint64_t warm_completed = 0;
  std::uint64_t warm_shed = 0;
  std::uint64_t warm_suppressed = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t internal_errors = 0;
  std::uint64_t invalid_arguments = 0;
  std::uint64_t breaker_trips = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t breaker_short_circuits = 0;
  std::uint64_t source_cache = 0;
  std::uint64_t source_batch = 0;
  std::uint64_t source_coalesced = 0;
  std::uint64_t source_shed = 0;

  /// Client-side retries (predict with a RetryPolicy only; router-level,
  /// not folded from servers). retry_requests is the budget denominator.
  std::uint64_t retry_requests = 0;
  std::uint64_t retries = 0;
  std::uint64_t retry_successes = 0;
  std::uint64_t retry_budget_exhausted = 0;

  /// Live per-model breakdown, in name order.
  std::vector<RouterModelStats> models;
};

class Router {
 public:
  explicit Router(const RouterConfig& config = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Publishes `model` under `name`: the first publish creates the name's
  /// server (attached to the registry slot), later publishes hot-swap it.
  /// Returns the publication version (monotonic per name).
  std::uint64_t publish(const std::string& name, ModelPtr model);

  /// Stops routing `name` and drains its server (admitted queries are
  /// still answered). Returns false if the name is not being served.
  /// Outstanding futures on the name must be resolved first — a Future is
  /// a handle into its server, and retire destroys that server.
  bool retire(const std::string& name);

  /// Routes by request.model and submits. Fails with ModelNotFound for an
  /// unknown name (or an empty name when several models are published),
  /// plus everything InferenceServer::submit can return.
  StatusOr<InferenceServer::Future> submit(const Request& request);

  /// Registers a predictive-warming sibling group on `model`'s server (see
  /// InferenceServer::register_warm_group). Same name resolution as
  /// routing — an empty name targets the only model — but registration is
  /// configuration, not traffic: it does not count toward routed /
  /// model_not_found. Fails ModelNotFound / ShuttingDown like routing.
  Status register_warm_group(
      std::string_view model,
      const std::vector<const graph::ProgramGraph*>& siblings);

  /// Synchronous routed query; routing and admission failures fold into
  /// the Response (Source::Shed) like InferenceServer::predict.
  Response predict(const Request& request);
  Response predict(const graph::ProgramGraph& graph) {
    return predict(Request(graph));
  }

  /// Synchronous routed query with client-side retries (see RetryPolicy).
  /// Returns the first Ok response, or the last attempt's failure. The
  /// plain predict() overload stays retry-free — the zero-alloc warm hit
  /// path pays nothing for this feature.
  Response predict(const Request& request, const RetryPolicy& policy);

  /// Names currently being served, sorted.
  std::vector<std::string> models() const;

  /// Current publication version under `name` (0 when absent).
  std::uint64_t version(const std::string& name) const {
    return registry_.version(name);
  }

  /// The registry the router publishes through; exposed so callers can
  /// attach additional servers or inspect slots.
  ModelRegistry& registry() { return registry_; }

  const RouterConfig& config() const { return config_; }
  RouterStats stats() const;

  /// Retires every model and stops routing; idempotent, called by the
  /// destructor. Later submits fail ShuttingDown.
  void shutdown();

 private:
  using ServerMap =
      std::map<std::string, std::shared_ptr<InferenceServer>, std::less<>>;

  /// Resolves request.model to a live server (nullptr + error otherwise).
  /// Lock-free: reads an immutable snapshot of the name->server map (the
  /// same copy-on-publish discipline ModelSlot uses for models), so routed
  /// queries — warm cache hits especially — never serialize on the router
  /// mutex. The returned shared_ptr keeps the server alive across a
  /// concurrent retire.
  std::shared_ptr<InferenceServer> route(std::string_view model,
                                         Status* status);

  static void fold(const ServerStats& in, RouterStats& out);

  /// Shuts `server` down and folds its final traffic into retired_.
  void drain_and_fold(InferenceServer& server);

  RouterConfig config_;
  ModelRegistry registry_;
  /// Serializes writers (publish/retire/shutdown) and guards retired_.
  mutable std::mutex mutex_;
  /// Immutable snapshot, swapped whole under mutex_ via std::atomic_store;
  /// readers go through std::atomic_load. Never null.
  std::shared_ptr<const ServerMap> servers_ =
      std::make_shared<const ServerMap>();
  /// Traffic of retired servers, folded in at retire() so totals survive.
  ServerStats retired_;
  std::atomic<std::uint64_t> routed_{0};
  std::atomic<std::uint64_t> model_not_found_{0};
  /// Retry budget across every policy'd predict: retries_ may not exceed
  /// budget_ratio * retry_requests_ (approximately under concurrency — the
  /// check-and-claim is two atomics, not a transaction).
  std::atomic<std::uint64_t> retry_requests_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> retry_successes_{0};
  std::atomic<std::uint64_t> retry_budget_exhausted_{0};
  std::atomic<bool> stopped_{false};
};

}  // namespace irgnn::serve
