#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "graph/fingerprint.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace irgnn::serve {

Router::Router(const RouterConfig& config) : config_(config) {}

Router::~Router() { shutdown(); }

std::uint64_t Router::publish(const std::string& name, ModelPtr model) {
  // Fault injection: a slow publish (model load, weight transfer). Before
  // the writer lock so injected latency stalls only writers that would
  // serialize behind this publish anyway — readers stay lock-free.
  IRGNN_FAILPOINT("router.publish", (void)0);
  // The registry publish and the map update happen under one writer lock —
  // and the registry publish comes first, so the slot holds a model before
  // any server attaches to it (the server constructor requires a
  // publication). A retire() of the same name serializes behind us (or we
  // behind it), so we can never attach a server to a slot a racing retire
  // just emptied.
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t version = registry_.publish(name, std::move(model));
  if (stopped_.load(std::memory_order_relaxed))
    return version;  // name stays published but is never routed
  const std::shared_ptr<const ServerMap> current =
      std::atomic_load(&servers_);
  if (current->find(name) == current->end()) {
    ServerConfig server_config = config_.server;
    server_config.max_queue = config_.max_queue;
    server_config.shed_policy = config_.shed_policy;
    auto next = std::make_shared<ServerMap>(*current);
    next->emplace(name, std::make_shared<InferenceServer>(
                            registry_.slot(name), server_config));
    std::atomic_store(&servers_,
                      std::shared_ptr<const ServerMap>(std::move(next)));
  }
  return version;
}

bool Router::retire(const std::string& name) {
  // Fault injection: a slow retire — widens the window in which prefetch
  // leaders and client queries race the drain (tests/router_test.cpp and
  // the chaos harness lean on this).
  IRGNN_FAILPOINT("router.retire", (void)0);
  std::shared_ptr<InferenceServer> server;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::shared_ptr<const ServerMap> current =
        std::atomic_load(&servers_);
    auto it = current->find(name);
    if (it == current->end()) return false;
    server = it->second;
    auto next = std::make_shared<ServerMap>(*current);
    next->erase(name);
    std::atomic_store(&servers_,
                      std::shared_ptr<const ServerMap>(std::move(next)));
    // Inside the writer lock, like publish(): a concurrent publish of the
    // same name must observe map and registry changing together.
    registry_.retire(name);
  }
  // Drain outside the router lock: admitted queries are answered (their
  // waiters pump), new submits race to ShuttingDown; in-flight routes that
  // snapshotted the old map keep the server alive through their shared_ptr.
  drain_and_fold(*server);
  return true;
}

void Router::drain_and_fold(InferenceServer& server) {
  server.shutdown();
  const ServerStats last = server.stats();
  std::lock_guard<std::mutex> lock(mutex_);
  retired_.queries += last.queries;
  retired_.forwards += last.forwards;
  retired_.batches += last.batches;
  retired_.coalesced += last.coalesced;
  retired_.warm_enqueued += last.warm_enqueued;
  retired_.warm_completed += last.warm_completed;
  retired_.warm_shed += last.warm_shed;
  retired_.warm_suppressed += last.warm_suppressed;
  retired_.shed += last.shed;
  retired_.rejected += last.rejected;
  retired_.deadline_exceeded += last.deadline_exceeded;
  retired_.internal_errors += last.internal_errors;
  retired_.invalid_arguments += last.invalid_arguments;
  retired_.breaker_trips += last.breaker_trips;
  retired_.breaker_probes += last.breaker_probes;
  retired_.breaker_short_circuits += last.breaker_short_circuits;
  retired_.source_cache += last.source_cache;
  retired_.source_batch += last.source_batch;
  retired_.source_coalesced += last.source_coalesced;
  retired_.source_shed += last.source_shed;
  retired_.cache.hits += last.cache.hits;
  retired_.cache.misses += last.cache.misses;
}

std::shared_ptr<InferenceServer> Router::route(std::string_view model,
                                               Status* status) {
  if (stopped_.load(std::memory_order_acquire)) {
    // Shutdown rejections are not routing failures: model_not_found_ stays
    // an honest count of unknown/ambiguous names.
    *status = Status::ShuttingDown("router is shutting down");
    return nullptr;
  }
  const std::shared_ptr<const ServerMap> servers =
      std::atomic_load(&servers_);
  if (model.empty()) {
    // An unnamed request routes to the only model; with several published
    // it is ambiguous, and guessing would silently cross architectures.
    if (servers->size() == 1) {
      routed_.fetch_add(1, std::memory_order_relaxed);
      return servers->begin()->second;
    }
    *status = Status::ModelNotFound(
        servers->empty() ? "no model published"
                         : "request names no model and several are served");
    model_not_found_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  auto it = servers->find(model);
  if (it == servers->end()) {
    *status = Status::ModelNotFound();
    model_not_found_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  routed_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

StatusOr<InferenceServer::Future> Router::submit(const Request& request) {
  Status status;
  std::shared_ptr<InferenceServer> server = route(request.model, &status);
  if (!server) return status;
  return server->submit(request);
}

Status Router::register_warm_group(
    std::string_view model,
    const std::vector<const graph::ProgramGraph*>& siblings) {
  // Same name resolution as route(), minus the traffic counters:
  // registration is configuration, and routed/model_not_found stay honest
  // counts of query routing.
  if (stopped_.load(std::memory_order_acquire))
    return Status::ShuttingDown("router is shutting down");
  const std::shared_ptr<const ServerMap> servers =
      std::atomic_load(&servers_);
  std::shared_ptr<InferenceServer> server;
  if (model.empty()) {
    if (servers->size() != 1)
      return Status::ModelNotFound(
          servers->empty() ? "no model published"
                           : "group names no model and several are served");
    server = servers->begin()->second;
  } else {
    auto it = servers->find(model);
    if (it == servers->end()) return Status::ModelNotFound();
    server = it->second;
  }
  server->register_warm_group(siblings);
  return Status::Ok();
}

Response Router::predict(const Request& request) {
  Status status;
  std::shared_ptr<InferenceServer> server = route(request.model, &status);
  if (!server) {
    Response response;
    response.status = status;
    response.source = Source::Shed;
    return response;
  }
  return server->predict(request);
}

namespace {

bool retryable(support::StatusCode code) {
  // Internal: a transient forward failure. Unavailable: the breaker may
  // close (a probe may restore service) before the next attempt. Nothing
  // else — in particular never Overloaded: a shed is backpressure, and
  // retrying it would convert the overload signal into more overload.
  return code == support::StatusCode::kInternal ||
         code == support::StatusCode::kUnavailable;
}

}  // namespace

Response Router::predict(const Request& request, const RetryPolicy& policy) {
  retry_requests_.fetch_add(1, std::memory_order_relaxed);
  Response response = predict(request);
  if (policy.max_attempts <= 1) return response;
  std::uint64_t fp = 0;  // computed lazily: the happy path never needs it
  std::int64_t backoff = std::max<std::int64_t>(policy.base_backoff_us, 0);
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    if (!retryable(response.status.code())) return response;
    // Claim a retry from the shared budget: optimistically take one, give
    // it back if that overdraws. Approximate under concurrency (two
    // atomics, not a transaction) but never grows the overdraft beyond the
    // momentary race — the amplification bound stays 1 + budget_ratio.
    const std::uint64_t denom =
        retry_requests_.load(std::memory_order_relaxed);
    const std::uint64_t claimed =
        retries_.fetch_add(1, std::memory_order_relaxed) + 1;
    const double allowance =
        std::max(static_cast<double>(policy.budget_floor),
                 policy.budget_ratio * static_cast<double>(denom));
    if (static_cast<double>(claimed) > allowance) {
      retries_.fetch_sub(1, std::memory_order_relaxed);
      retry_budget_exhausted_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    if (backoff > 0) {
      // Deterministic jitter in [backoff/2, backoff]: a pure function of
      // (seed, graph, attempt), so runs reproduce, while concurrent
      // clients (different graphs) spread instead of stampeding.
      if (fp == 0) fp = graph::fingerprint(*request.graph);
      const std::uint64_t draw = hash_combine64(
          policy.jitter_seed,
          hash_combine64(fp, static_cast<std::uint64_t>(attempt)));
      const std::int64_t half = backoff / 2;
      const std::int64_t sleep_us =
          half + static_cast<std::int64_t>(
                     draw % static_cast<std::uint64_t>(backoff - half + 1));
      std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
      backoff = std::min(backoff * 2, policy.max_backoff_us > 0
                                          ? policy.max_backoff_us
                                          : backoff * 2);
    }
    response = predict(request);
    if (response.status.ok()) {
      retry_successes_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
  }
  return response;
}

std::vector<std::string> Router::models() const {
  const std::shared_ptr<const ServerMap> servers =
      std::atomic_load(&servers_);
  std::vector<std::string> out;
  out.reserve(servers->size());
  for (const auto& [name, server] : *servers) {
    (void)server;
    out.push_back(name);
  }
  return out;
}

void Router::fold(const ServerStats& in, RouterStats& out) {
  out.queries += in.queries;
  out.forwards += in.forwards;
  out.batches += in.batches;
  out.cache_hits += in.cache.hits;
  out.cache_misses += in.cache.misses;
  out.coalesced += in.coalesced;
  out.warm_enqueued += in.warm_enqueued;
  out.warm_completed += in.warm_completed;
  out.warm_shed += in.warm_shed;
  out.warm_suppressed += in.warm_suppressed;
  out.shed += in.shed;
  out.rejected += in.rejected;
  out.deadline_exceeded += in.deadline_exceeded;
  out.internal_errors += in.internal_errors;
  out.invalid_arguments += in.invalid_arguments;
  out.breaker_trips += in.breaker_trips;
  out.breaker_probes += in.breaker_probes;
  out.breaker_short_circuits += in.breaker_short_circuits;
  out.source_cache += in.source_cache;
  out.source_batch += in.source_batch;
  out.source_coalesced += in.source_coalesced;
  out.source_shed += in.source_shed;
}

RouterStats Router::stats() const {
  RouterStats out;
  out.routed = routed_.load(std::memory_order_relaxed);
  out.model_not_found = model_not_found_.load(std::memory_order_relaxed);
  out.retry_requests = retry_requests_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.retry_successes = retry_successes_.load(std::memory_order_relaxed);
  out.retry_budget_exhausted =
      retry_budget_exhausted_.load(std::memory_order_relaxed);
  // Snapshot-then-fold: a retire() completing between the snapshot and the
  // retired_ read can transiently count that server's traffic twice. Stats
  // are monitoring data, not invariants — the totals are exact whenever no
  // retire is mid-flight.
  const std::shared_ptr<const ServerMap> servers =
      std::atomic_load(&servers_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fold(retired_, out);
  }
  out.models.reserve(servers->size());
  for (const auto& [name, server] : *servers) {
    RouterModelStats entry;
    entry.model = name;
    entry.version = registry_.version(name);
    entry.stats = server->stats();
    fold(entry.stats, out);
    out.models.push_back(std::move(entry));
  }
  return out;
}

void Router::shutdown() {
  std::shared_ptr<const ServerMap> live;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_.exchange(true, std::memory_order_acq_rel)) return;
    live = std::atomic_load(&servers_);
    std::atomic_store(&servers_, std::make_shared<const ServerMap>());
  }
  for (const auto& [name, server] : *live) {
    (void)name;
    drain_and_fold(*server);
  }
}

}  // namespace irgnn::serve
