// Streaming inference server: the online, multi-client layer over the
// tape-free StaticModel inference engine.
//
// Clients submit single ProgramGraph region queries through a lock-guarded
// admission queue and receive lightweight futures. A serving loop drains
// the queue into dynamic micro-batches — flushed when `max_batch` queries
// are waiting or the oldest has waited `max_wait_us` — and answers a whole
// batch with one StaticModel::predict_into call. Three properties define
// the design:
//
//   Determinism. Per-graph predictions never depend on which other graphs
//   share a forward (pinned by the PR 3 inference engine tests), and every
//   result is keyed to its query's admission slot, not to its position in
//   whatever batch happened to form. A client therefore receives bits
//   identical to a serial StaticModel::predict of its graph, for every
//   batch window, batch size and client interleaving.
//
//   No dedicated threads, no deadlocks. The serving loop is a task on the
//   shared support::ThreadPool; in addition, any client waiting on a future
//   pumps batches itself when no pumper is active (the same
//   caller-participates rule the pool uses), so the server also works with
//   `background_loop = false` — required when servers are created inside
//   pool-parallel work like the per-fold loop of core::run_experiment,
//   where a parked loop task could otherwise starve.
//
//   Hot answers skip the forward. Results are cached under
//   hash_combine64(model version, graph::fingerprint(graph)): repeated
//   region queries — the common case in iterative flag exploration, where
//   many flag sequences optimize a region to the same IR — are answered
//   from the sharded LRU without touching the model, and a warm hit through
//   predict() performs zero heap allocations. Mixing the version into the
//   key means a hot-swapped model can never be answered with the retired
//   model's cached labels.
//
// Hot swap: the server reads its model through a ModelSlot (its own, or one
// shared with a ModelRegistry name). publish() atomically replaces the
// (model, version) pair; in-flight batches finish on the snapshot they
// took, queued queries are answered by whichever publication the batch that
// picks them up observes — queries are never dropped, and every answer is
// exactly one publication's serial-predict bits.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "graph/program_graph.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "support/arena.h"

namespace irgnn::serve {

struct ServerConfig {
  /// Micro-batch flush thresholds: a batch launches as soon as `max_batch`
  /// queries are admitted, or when the serving loop has waited `max_wait_us`
  /// microseconds since it saw the queue non-empty. A client pumping its own
  /// query never waits the window (it has nothing to gain from idling).
  int max_batch = 64;
  int max_wait_us = 200;

  /// Prediction-cache entry budget (0 disables caching) and shard count.
  std::size_t cache_capacity = 4096;
  int cache_shards = 8;

  /// Run the serving loop as a task on the shared ThreadPool. Turn off for
  /// servers created inside pool-parallel sections (clients then drive the
  /// batching themselves while waiting; behaviour is otherwise identical).
  bool background_loop = true;

  /// When > 0 and the admission queue has been empty for this many
  /// microseconds, the serving loop releases the buffer arena's cached
  /// blocks back to the system (support::BufferPool::trim) once per idle
  /// episode. Requires background_loop.
  std::int64_t idle_trim_us = 0;
};

struct ServerStats {
  std::uint64_t queries = 0;     // everything admitted (hits + misses)
  std::uint64_t forwards = 0;    // queries answered by the model
  std::uint64_t batches = 0;     // micro-batches launched
  std::uint64_t max_batch = 0;   // largest micro-batch observed
  std::uint64_t model_swaps = 0; // version changes observed between batches
  std::uint64_t idle_trims = 0;  // arena trims triggered by idleness
  CacheStats cache;
};

class InferenceServer {
 public:
  /// A pending prediction. Lightweight handle (8+8 bytes, movable): a
  /// cache hit returns an already-resolved future without touching the
  /// admission queue. Must be resolved or destroyed before the server.
  class Future {
   public:
    Future() = default;
    Future(Future&& other) noexcept { *this = std::move(other); }
    Future& operator=(Future&& other) noexcept;
    ~Future() { abandon(); }

    bool valid() const { return server_ != nullptr || ready_; }

    /// Blocks until the result is available (helping to drive batches while
    /// waiting) and returns the predicted label. One-shot: the future
    /// becomes invalid.
    int get();

   private:
    friend class InferenceServer;
    Future(int value) : ready_(true), value_(value) {}
    Future(InferenceServer* server, std::uint32_t slot, std::uint64_t gen)
        : server_(server), slot_(slot), gen_(gen) {}
    void abandon();

    InferenceServer* server_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
    bool ready_ = false;
    int value_ = 0;
  };

  /// Serves `model` through a private slot (hot-swappable via publish()).
  explicit InferenceServer(ModelPtr model, const ServerConfig& config = {});

  /// Serves whatever `slot` currently publishes — attach a ModelRegistry
  /// slot so registry publishes under that name reach this server. The slot
  /// must already hold a model.
  explicit InferenceServer(std::shared_ptr<ModelSlot> slot,
                           const ServerConfig& config = {});

  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admits one region query. Cache hits resolve immediately; misses join
  /// the next micro-batch. The graph must stay alive until the future
  /// resolves.
  Future submit(const graph::ProgramGraph& graph);

  /// Synchronous query: submit + get. On a warm cache hit this performs
  /// zero heap allocations (tests/serve_test.cpp counts operator new).
  int predict(const graph::ProgramGraph& graph);

  /// Batched convenience: admits every graph (so misses share micro-
  /// batches), waits for all, writes labels in graph order into `out`.
  void predict_batch(const std::vector<const graph::ProgramGraph*>& graphs,
                     std::vector<int>& out);

  /// Hot-swaps the served model (publishes to the server's slot). Returns
  /// the new version. In-flight batches finish on their snapshot.
  std::uint64_t publish(ModelPtr model);

  /// Version of the current publication (monotonic per slot).
  std::uint64_t model_version() const { return slot_->snapshot()->version; }

  const ServerConfig& config() const { return config_; }
  ServerStats stats() const;

  /// Stops the serving loop after all admitted queries drain. Called by the
  /// destructor; idempotent. Clients still blocked in get() finish their
  /// own queries (they pump), but no new queries are admitted.
  void shutdown();

 private:
  enum class SlotState : std::uint8_t { Free, Queued, Done };

  struct QuerySlot {
    const graph::ProgramGraph* graph = nullptr;
    std::uint64_t fp = 0;  // raw structural fingerprint (version-free)
    std::uint64_t gen = 0;
    int result = 0;
    SlotState state = SlotState::Free;
    bool abandoned = false;
  };

  std::uint32_t alloc_slot_locked();
  void free_slot_locked(std::uint32_t slot);

  /// Runs one micro-batch: optionally waits the batch window for the queue
  /// to fill, pops up to max_batch queries in admission order, answers them
  /// with one predict_into outside the lock, publishes results to their
  /// slots. Pre: lock held, queue non-empty, pumping_ == false.
  void pump_one(std::unique_lock<std::mutex>& lock, bool wait_window);

  /// Blocks until `slot` is Done (driving batches when no pumper is
  /// active), returns the result and frees the slot.
  int wait(std::uint32_t slot, std::uint64_t gen);

  void background_loop();

  /// Handshake between the constructor's loop-task submission and
  /// shutdown(): whichever runs first under the token's mutex decides. If
  /// shutdown wins before the pool ever scheduled the task, it cancels the
  /// loop outright — the destructor never waits on a task that may not get
  /// a worker (e.g. when other servers' loops occupy them all), and a
  /// cancelled task only touches the token, never the dead server.
  struct LoopToken {
    std::mutex mutex;
    bool cancelled = false;
    bool started = false;
  };

  ServerConfig config_;
  std::shared_ptr<ModelSlot> slot_;
  PredictionCache cache_;
  std::shared_ptr<LoopToken> loop_token_;

  mutable std::mutex mutex_;
  std::condition_variable cv_queue_;  // signaled on admission / shutdown
  std::condition_variable cv_done_;   // signaled when a batch publishes
  std::deque<std::uint32_t, support::PoolAllocator<std::uint32_t>> queue_;
  std::vector<QuerySlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  bool pumping_ = false;
  bool stop_ = false;
  bool loop_running_ = false;

  // Pump scratch: written only by the active pumper (pumping_ excludes
  // concurrent pumps), reused across batches so warm pumps stay off malloc.
  std::vector<const graph::ProgramGraph*> batch_graphs_;
  std::vector<std::uint32_t> batch_slots_;
  std::vector<std::uint64_t> batch_fps_;
  std::vector<int> batch_preds_;

  // Stats. queries_ is atomic so the zero-allocation hit path never takes
  // the server mutex; the rest mutate under mutex_ inside the pump.
  std::atomic<std::uint64_t> queries_{0};
  std::uint64_t forwards_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t max_batch_seen_ = 0;
  std::uint64_t model_swaps_ = 0;
  std::uint64_t idle_trims_ = 0;
  std::uint64_t last_served_version_ = 0;
};

}  // namespace irgnn::serve
