// Streaming inference server: the online, multi-client layer over the
// tape-free StaticModel inference engine, behind a typed, exception-free
// front door.
//
// Clients build a serve::Request (graph, deadline, priority), submit it
// through a lock-guarded admission queue and receive lightweight futures
// that resolve to a serve::Response (label, answering model version,
// Source::{Cache,Batch,Shed}, queue/compute micro-timings). A serving loop
// drains the queue into dynamic micro-batches — flushed when `max_batch`
// queries are waiting or the oldest has waited `max_wait_us` — and answers
// a whole batch with one StaticModel::predict_into call. Four properties
// define the design:
//
//   Exception-free query path. submit() returns StatusOr<Future>; every
//   failure a client can observe — queue full (Overloaded), deadline missed
//   (DeadlineExceeded), submit after shutdown (ShuttingDown), a failed
//   forward (Internal) — is a Status or an error Response, never a throw.
//
//   Bounded admission. `max_queue` caps how many admitted queries may wait;
//   a full queue sheds per `shed_policy` (Reject the newcomer, DropOldest
//   victim of the lowest priority class, or Block the submitter while it
//   helps pump). Overload therefore answers Overloaded within the bound
//   instead of stretching every queue latency without limit.
//
//   Determinism. Per-graph predictions never depend on which other graphs
//   share a forward (pinned by the PR 3 inference engine tests), and every
//   result is keyed to its query's admission slot, not to its position in
//   whatever batch happened to form. Every *admitted and answered* response
//   therefore carries bits identical to a serial StaticModel::predict of
//   its graph, for every batch window, batch size, queue bound, shed policy
//   and client interleaving — shedding only removes requests, it can never
//   perturb the answers of the requests that stayed.
//
//   No dedicated threads, no deadlocks. The serving loop is a task on the
//   shared support::ThreadPool; in addition, any client waiting on a future
//   (or blocked by ShedPolicy::Block) pumps batches itself when no pumper
//   is active, so the server also works with `background_loop = false` —
//   required when servers are created inside pool-parallel work like the
//   per-fold loop of core::run_experiment, where a parked loop task could
//   otherwise starve.
//
// Hot answers skip the forward: results are cached under
// hash_combine64(model version, graph::fingerprint(graph)), and a warm hit
// through predict() performs zero heap allocations. Hot swap: the server
// reads its model through a ModelSlot (its own, or one shared with a
// ModelRegistry name); in-flight batches finish on the snapshot they took,
// and version-keyed caching means a retired model can never answer.
//
// The cache also anticipates instead of only reacting, in two layers:
//
//   In-flight coalescing. A cache miss consults an in-flight map keyed by
//   (version, fingerprint): if an identical query is already queued or mid-
//   forward, the newcomer attaches as a waiter on that leader's slot
//   instead of enqueuing — N duplicate queries cost one batch slot and one
//   forward (a flash crowd on one cold hot region performs exactly one),
//   and each waiter resolves with the leader's outcome, Source::Coalesced.
//   Waiters survive an abandoned leader (resolution walks the waiter chain
//   before recycling the slot), ride hot-swaps (they report the version
//   that actually answered), and are drained by shutdown() like every
//   admitted query. Coalescing changes WHEN a forward runs, never its
//   bits; a waiter's label is bit-identical to a serial predict by the
//   reported version. Accounting partitions exactly:
//   cache hits + cache misses + coalesced == queries.
//
//   Predictive warming. Clients that know which fingerprints travel
//   together — the regions of one function, the flag-variant neighborhood
//   of one region — register them via register_warm_group(). A client miss
//   on one member enqueues Priority::Low prefetches for the siblings that
//   are neither cached nor in flight, through the ordinary admission queue:
//   under pressure, warming is suppressed at enqueue (it never displaces
//   admitted traffic) and is the first DropOldest victim (lowest priority;
//   a shed prefetch is negative-TTL'd so shed-heavy keys are not retried
//   hot). A prefetch is an in-flight leader, so a real query racing the
//   warm-up coalesces onto it — and promotes its priority — rather than
//   duplicating the forward. Warming traffic is invisible to the client-
//   facing counters (its own warm_* stats), so hit-rate gates stay honest.
//
// Failure containment: a per-server circuit breaker (ServerConfig::
// breaker_trip_threshold) trips after N consecutive failed forwards into a
// cache-only degraded mode — hits and coalesced waiters keep answering
// bit-identically, new misses get Status::Unavailable without spending a
// forward — and a periodic half-open probe restores full service on the
// first success. Fault paths are exercised deterministically through the
// IRGNN_FAILPOINT sites (support/failpoint.h; compiled out by default) and
// tests/chaos_test.cpp.
//
// Multi-model routing lives one layer up in serve::Router (router.h), which
// owns one InferenceServer per published model name and dispatches
// Request::model.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "graph/program_graph.h"
#include "serve/model_registry.h"
#include "serve/prediction_cache.h"
#include "serve/request.h"
#include "support/arena.h"
#include "support/inline_function.h"

namespace irgnn::serve {

struct ServerConfig {
  /// Micro-batch flush thresholds: a batch launches as soon as `max_batch`
  /// queries are admitted, or when the serving loop has waited `max_wait_us`
  /// microseconds since it saw the queue non-empty. A client pumping its own
  /// query never waits the window (it has nothing to gain from idling).
  int max_batch = 64;
  int max_wait_us = 200;

  /// Admission bound: at most this many admitted queries may be waiting for
  /// a batch (in-flight batches do not count). 0 means unbounded — the
  /// right setting for cooperative in-process clients like the
  /// core::run_experiment fold loops, where nothing may be shed. When the
  /// bound is hit, `shed_policy` decides who pays (see request.h).
  std::size_t max_queue = 0;
  ShedPolicy shed_policy = ShedPolicy::Reject;

  /// Prediction-cache entry budget (0 disables caching) and shard count.
  std::size_t cache_capacity = 4096;
  int cache_shards = 8;

  /// Attach duplicate in-flight queries to one leader slot instead of
  /// enqueuing them (see the header comment). Independent of the cache:
  /// coalescing works with cache_capacity == 0. Off is only useful as a
  /// measurement baseline.
  bool coalesce = true;

  /// Predictive-warming knobs; active only for fingerprints registered via
  /// register_warm_group(). At most `max_warm_per_miss` prefetches enqueue
  /// per triggering miss; a shed prefetch's fingerprint is not re-warmed
  /// for `warm_negative_ttl_us` microseconds (<= 0 disables the back-off).
  int max_warm_per_miss = 16;
  std::int64_t warm_negative_ttl_us = 100000;

  /// Circuit breaker: after this many CONSECUTIVE failed forwards (each
  /// micro-batch is one forward) the server trips to degraded mode — cache
  /// hits and coalesced waiters still answer, but a new miss gets
  /// Status::Unavailable immediately instead of burning a forward on a
  /// model that is failing. 0 (default) disables the breaker. While open,
  /// every `breaker_probe_interval_us` one real miss is admitted as a
  /// half-open probe; if its forward succeeds the breaker closes and full
  /// service resumes, if it fails the probe timer re-arms. Predictive
  /// warming is suppressed while open (prefetches would burn forwards on
  /// the failing model for nobody).
  int breaker_trip_threshold = 0;
  std::int64_t breaker_probe_interval_us = 10000;

  /// Run the serving loop as a task on the shared ThreadPool. Turn off for
  /// servers created inside pool-parallel sections (clients then drive the
  /// batching themselves while waiting; behaviour is otherwise identical).
  bool background_loop = true;

  /// When > 0 and the admission queue has been empty for this many
  /// microseconds, the serving loop releases the buffer arena's cached
  /// blocks back to the system (support::BufferPool::trim) once per idle
  /// episode. Requires background_loop.
  std::int64_t idle_trim_us = 0;
};

struct ServerStats {
  std::uint64_t queries = 0;     // client submissions (warming excluded)
  std::uint64_t forwards = 0;    // slots answered by the model, warming
                                 // included (honest model work)
  std::uint64_t batches = 0;     // micro-batches launched
  std::uint64_t max_batch = 0;   // largest micro-batch observed
  std::uint64_t model_swaps = 0; // version changes observed between batches
  std::uint64_t idle_trims = 0;  // arena trims triggered by idleness

  // In-flight coalescing. `coalesced` counts every query that attached to
  // a leader — the conservation invariant is
  //   cache.hits + cache.misses + coalesced == queries
  // (a coalesced query counts neither a hit nor a miss). source_coalesced
  // below counts the subset whose leader resolved Ok.
  std::uint64_t coalesced = 0;

  // Predictive warming (self-issued prefetches; never counted in queries,
  // sources or the client shed counters).
  std::uint64_t warm_enqueued = 0;    // prefetches admitted to the queue
  std::uint64_t warm_completed = 0;   // prefetches the model answered
  std::uint64_t warm_shed = 0;        // prefetches shed/expired/failed
                                      // (fingerprint negative-TTL'd)
  std::uint64_t warm_suppressed = 0;  // skipped: queue full at enqueue time

  // Admission control (client queries only).
  std::uint64_t shed = 0;        // admitted, then dropped by DropOldest
  std::uint64_t rejected = 0;    // refused at submit (queue full, Reject)
  std::uint64_t deadline_exceeded = 0;  // expired while queued
  std::uint64_t internal_errors = 0;    // resolved Internal (failed forward)
  std::uint64_t peak_queue = 0;  // high-water admitted-queue depth

  // Request validation. Rejected before admission AND before the query
  // counter, so invalid requests appear in no conservation law (they are
  // neither hits, misses nor coalesced).
  std::uint64_t invalid_arguments = 0;

  // Circuit breaker (see ServerConfig::breaker_trip_threshold).
  std::uint64_t breaker_trips = 0;           // closed/half-open -> open
  std::uint64_t breaker_probes = 0;          // half-open probes admitted
  std::uint64_t breaker_short_circuits = 0;  // misses answered Unavailable
                                             // without a forward (shed-class)
  bool breaker_open = false;                 // state at snapshot time

  // Responses by Source — a partition of every resolved client query
  // (cache = hits, batch = client forwards, coalesced = waiters answered
  // Ok, shed = all four shed-class outcomes above, waiters of shed leaders
  // included).
  std::uint64_t source_cache = 0;
  std::uint64_t source_batch = 0;
  std::uint64_t source_coalesced = 0;
  std::uint64_t source_shed = 0;

  CacheStats cache;
};

class InferenceServer {
 public:
  /// A then() continuation. Heap-free by construction (support::
  /// InlineFunction): the capture lives in 96 inline bytes — enough for a
  /// handful of references/values — and over-large captures fail to
  /// compile instead of silently putting a malloc on the resolve path.
  using ResponseCallback =
      support::InlineFunction<void(const Response&), 96>;
  /// A pending Response. Lightweight movable handle: a cache hit returns an
  /// already-resolved future without touching the admission queue. Must be
  /// resolved, continued (then) or destroyed before the server.
  class Future {
   public:
    Future() = default;
    Future(Future&& other) noexcept { *this = std::move(other); }
    Future& operator=(Future&& other) noexcept;
    ~Future() { abandon(); }

    bool valid() const { return server_ != nullptr || ready_; }

    /// Blocks until the response is available (helping to drive batches
    /// while waiting) and returns it. One-shot: the future becomes invalid.
    /// Never throws; a failed forward surfaces as an Internal Response.
    Response get();

    /// Async continuation: runs `callback` with the Response exactly once —
    /// inline if it is already available, otherwise on whichever thread
    /// pumps the resolving batch (or sheds the request), and at the latest
    /// during the server's shutdown drain (every admitted query is
    /// answered before the server dies). One-shot: the future becomes
    /// invalid immediately; the callback must not submit back into the
    /// same server from the pump (it runs outside the server lock, so
    /// anything else is fair game).
    void then(ResponseCallback callback);

   private:
    friend class InferenceServer;
    explicit Future(const Response& response)
        : ready_(true), response_(response) {}
    Future(InferenceServer* server, std::uint32_t slot, std::uint64_t gen)
        : server_(server), slot_(slot), gen_(gen) {}
    void abandon();

    InferenceServer* server_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint64_t gen_ = 0;
    bool ready_ = false;
    Response response_;
  };

  /// Serves `model` through a private slot (hot-swappable via publish()).
  explicit InferenceServer(ModelPtr model, const ServerConfig& config = {});

  /// Serves whatever `slot` currently publishes — attach a ModelRegistry
  /// slot so registry publishes under that name reach this server. The slot
  /// must already hold a model.
  explicit InferenceServer(std::shared_ptr<ModelSlot> slot,
                           const ServerConfig& config = {});

  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Admits one query. Cache hits resolve immediately; misses join the next
  /// micro-batch. Fails (without admitting) with Overloaded when the
  /// bounded queue is full under Reject — or under DropOldest when every
  /// queued request outranks this one — and with ShuttingDown after
  /// shutdown() began. The graph must stay alive until the future resolves.
  /// Request::model is routing information for serve::Router; a bare server
  /// ignores it.
  StatusOr<Future> submit(const Request& request);

  /// Synchronous query: submit + get, with submit-side failures folded into
  /// the Response (status Overloaded/ShuttingDown, Source::Shed) so callers
  /// have one result type. On a warm cache hit this performs zero heap
  /// allocations (tests/serve_test.cpp counts operator new).
  Response predict(const Request& request);
  Response predict(const graph::ProgramGraph& graph) {
    return predict(Request(graph));
  }

  /// Batched convenience: admits every graph (so misses share micro-
  /// batches), waits for all, writes responses in graph order into `out`.
  /// Per-request failures land in the matching Response's status.
  void predict_batch(const std::vector<const graph::ProgramGraph*>& graphs,
                     std::vector<Response>& out);

  /// Registers a sibling group for predictive warming: graphs expected to
  /// be queried together (the regions of one function, the flag-variant
  /// neighborhood of one region). A client miss on any member enqueues
  /// Priority::Low prefetches for the members that are neither cached nor
  /// in flight (see the header comment). Every graph must outlive the
  /// server; a fingerprint registered twice triggers its latest group.
  /// Groups are consulted per miss under the server lock, so register
  /// before serving traffic, not per query.
  void register_warm_group(
      const std::vector<const graph::ProgramGraph*>& siblings);

  /// Hot-swaps the served model (publishes to the server's slot). Returns
  /// the new version. In-flight batches finish on their snapshot.
  std::uint64_t publish(ModelPtr model);

  /// Version of the current publication (monotonic per slot).
  std::uint64_t model_version() const { return slot_->snapshot()->version; }

  const ServerConfig& config() const { return config_; }
  ServerStats stats() const;

  /// Stops the serving loop after all admitted queries drain. Called by the
  /// destructor; idempotent. Clients still blocked in get() finish their
  /// own queries (they pump); submits from then on return ShuttingDown —
  /// with one deliberate exception: a query whose fingerprint is already
  /// cached is still answered Ok from the cache (the hit path takes no
  /// lock and the answer is a completed publication's bits, so serving it
  /// during drain is both safe and cheaper than refusing it).
  void shutdown();

 private:
  using Clock = std::chrono::steady_clock;
  enum class SlotState : std::uint8_t { Free, Queued, Done };

  struct QuerySlot {
    const graph::ProgramGraph* graph = nullptr;
    std::uint64_t fp = 0;  // raw structural fingerprint (version-free)
    std::uint64_t gen = 0;
    Clock::time_point admitted{};
    std::int64_t deadline_us = 0;
    Priority priority = Priority::Normal;
    Response response;
    SlotState state = SlotState::Free;
    bool abandoned = false;
    // Coalescing: a queued leader heads an intrusive chain of waiter slots
    // (waiters are never in queue_; they resolve with the leader, before
    // the leader's own slot is recycled — an abandoned leader still
    // answers them). `leading` marks an in_flight_ entry under
    // `inflight_key` that resolution must erase.
    std::int32_t next_waiter = -1;
    bool leading = false;
    std::uint64_t inflight_key = 0;
    // Self-issued prefetch: always abandoned (nobody holds its future) and
    // accounted in the warm_* counters instead of the client buckets.
    bool warming = false;
    // Half-open breaker probe: the one real miss allowed through an open
    // breaker; its resolution closes the breaker (Ok) or re-arms the probe
    // timer (anything else).
    bool probe = false;
    ResponseCallback callback;  // then() continuation
  };

  /// A continuation detached from its slot, to run outside the lock.
  struct FiredCallback {
    ResponseCallback fn;
    Response response;
  };
  using FiredList = std::vector<FiredCallback>;

  std::uint32_t alloc_slot_locked();
  void free_slot_locked(std::uint32_t slot);

  /// Resolves `slot` with `response` under the lock: erases its in-flight
  /// entry if it leads one, resolves its coalesced waiters with the derived
  /// outcome (Source::Coalesced when Ok), then marks the slot Done, counts
  /// the outcome (client source buckets, or the warm_* counters for a
  /// prefetch), frees it if abandoned, and detaches its continuation into
  /// `fired` if it has one. The caller must notify cv_done_ and run `fired`
  /// after unlocking.
  void resolve_slot_locked(std::uint32_t slot, const Response& response,
                           FiredList& fired);

  /// resolve_slot_locked for one slot only (no waiter-chain walk): outcome
  /// accounting + Done/free/continuation handling.
  void resolve_one_locked(std::uint32_t slot, const Response& response,
                          FiredList& fired);

  /// Attaches the request as a waiter on an in-flight leader for `key`
  /// (version-mixed fingerprint), if one exists. On true, *slot/*gen
  /// identify the waiter and the leader's priority was raised to at least
  /// the request's. Pre: lock held.
  bool try_coalesce_locked(const Request& request, std::uint64_t fp,
                           std::uint64_t key, std::uint32_t* slot,
                           std::uint64_t* gen);

  /// Admission control. Pre: lock held, not a cache hit. Applies stop_ and
  /// the bounded-queue policy (shedding a victim into `fired`, or blocking
  /// while helping pump), then enqueues. On Ok, *slot/*gen identify the
  /// admitted query.
  Status admit_locked(std::unique_lock<std::mutex>& lock,
                      const Request& request, std::uint64_t fp,
                      std::uint32_t* slot, std::uint64_t* gen,
                      FiredList& fired);

  /// The shared miss path of submit()/predict(): coalesce onto an in-
  /// flight leader, or count the miss, admit, register the new leader in
  /// the in-flight map and trigger predictive warming for its siblings.
  /// Runs any shed-victim continuations before returning.
  StatusOr<Future> admit_or_coalesce(const Request& request, std::uint64_t fp,
                                     std::uint64_t version);

  /// Enqueues Priority::Low prefetches for `fp`'s registered siblings that
  /// are neither cached, in flight, nor negative-TTL'd — skipping (never
  /// shedding for) a full queue. Pre: lock held, a client miss on `fp` was
  /// just admitted.
  void maybe_warm_locked(std::uint64_t fp, std::uint64_t version,
                         Clock::time_point now);

  /// Runs one micro-batch: optionally waits the batch window for the queue
  /// to fill, pops up to max_batch queries in admission order (expired
  /// deadlines resolve as shed instead of joining), answers them with one
  /// predict_into outside the lock, publishes results to their slots. A
  /// failed forward resolves the whole batch Internal — never throws.
  /// Pre: lock held, queue non-empty, pumping_ == false. Post: lock held.
  void pump_one(std::unique_lock<std::mutex>& lock, bool wait_window);

  /// Blocks until `slot` is Done (driving batches when no pumper is
  /// active), returns the response and frees the slot.
  Response wait(std::uint32_t slot, std::uint64_t gen);

  /// Stores or fires a then() continuation for an in-flight slot.
  void attach_callback(std::uint32_t slot, std::uint64_t gen,
                       ResponseCallback callback);

  void background_loop();

  /// Handshake between the constructor's loop-task submission and
  /// shutdown(): whichever runs first under the token's mutex decides. If
  /// shutdown wins before the pool ever scheduled the task, it cancels the
  /// loop outright — the destructor never waits on a task that may not get
  /// a worker (e.g. when other servers' loops occupy them all), and a
  /// cancelled task only touches the token, never the dead server.
  struct LoopToken {
    std::mutex mutex;
    bool cancelled = false;
    bool started = false;
  };

  ServerConfig config_;
  std::shared_ptr<ModelSlot> slot_;
  PredictionCache cache_;
  std::shared_ptr<LoopToken> loop_token_;

  mutable std::mutex mutex_;
  std::condition_variable cv_queue_;  // signaled on admission / shutdown
  std::condition_variable cv_done_;   // signaled when results/space appear
  std::deque<std::uint32_t, support::PoolAllocator<std::uint32_t>> queue_;
  std::vector<QuerySlot> slots_;
  std::vector<std::uint32_t> free_slots_;
  bool pumping_ = false;
  bool stop_ = false;
  bool loop_running_ = false;

  /// Keys are hash_combine64(version, fingerprint) — already well mixed,
  /// so identity hashing suffices (same reasoning as the cache shards).
  struct IdentityHash {
    std::size_t operator()(std::uint64_t k) const noexcept {
      return static_cast<std::size_t>(k);
    }
  };
  template <typename V>
  using KeyMap = std::unordered_map<
      std::uint64_t, V, IdentityHash, std::equal_to<std::uint64_t>,
      support::PoolAllocator<std::pair<const std::uint64_t, V>>>;

  /// (version, fingerprint) -> leader slot of every queued or mid-forward
  /// query; entries erased at resolution (guarded by mutex_).
  KeyMap<std::uint32_t> in_flight_;

  // Predictive warming (guarded by mutex_): fingerprint -> sibling group,
  // and the negative-TTL set of recently shed prefetch fingerprints.
  struct WarmSibling {
    const graph::ProgramGraph* graph = nullptr;
    std::uint64_t fp = 0;
  };
  std::vector<std::vector<WarmSibling>> warm_groups_;
  KeyMap<std::uint32_t> warm_group_of_;
  KeyMap<Clock::time_point> warm_negative_;

  // Pump scratch: written only by the active pumper (pumping_ excludes
  // concurrent pumps), reused across batches so warm pumps stay off malloc.
  std::vector<const graph::ProgramGraph*> batch_graphs_;
  std::vector<std::uint32_t> batch_slots_;
  std::vector<std::uint64_t> batch_fps_;
  std::vector<int> batch_preds_;
  FiredList pump_fired_;

  // Circuit breaker (guarded by mutex_). Closed: failures_ counts the
  // consecutive-failed-forward run. Open: misses short-circuit Unavailable;
  // next_probe_ gates the single half-open probe (probe_in_flight_ keeps a
  // second probe from slipping in while one is queued or mid-forward).
  int breaker_failures_ = 0;
  bool breaker_open_ = false;
  bool breaker_probe_in_flight_ = false;
  Clock::time_point breaker_next_probe_{};
  std::uint64_t breaker_trips_ = 0;
  std::uint64_t breaker_probes_ = 0;
  std::uint64_t breaker_short_circuits_ = 0;

  // Stats. queries_ is atomic so the zero-allocation hit path never takes
  // the server mutex; the rest mutate under mutex_. invalid_arguments_ is
  // atomic for the same reason: validation happens before the lock.
  std::atomic<std::uint64_t> invalid_arguments_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::uint64_t forwards_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t max_batch_seen_ = 0;
  std::uint64_t model_swaps_ = 0;
  std::uint64_t idle_trims_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t source_batch_ = 0;
  std::uint64_t source_coalesced_ = 0;
  std::uint64_t warm_enqueued_ = 0;
  std::uint64_t warm_completed_ = 0;
  std::uint64_t warm_shed_ = 0;
  std::uint64_t warm_suppressed_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t internal_errors_ = 0;
  std::uint64_t peak_queue_ = 0;
  std::uint64_t last_served_version_ = 0;
};

}  // namespace irgnn::serve
