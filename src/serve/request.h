// The serving layer's typed front-door vocabulary.
//
// A Request names everything the front door needs to route and admit one
// region query: the graph, the target model (for multi-model routing a
// per-architecture registry name, e.g. "Skylake"), a queue-time deadline
// and a priority that admission control consults when it must shed load. A
// Response answers with the predicted label plus the provenance a
// production client wants: which model version answered, whether the
// answer came from the prediction cache, a batched forward, or shedding,
// and where the time went (queue wait vs compute).
//
// Both are plain structs built on the stack: constructing a Request and
// reading a Response never allocates, which is what keeps the warm
// cache-hit path at zero heap allocations end to end.
#pragma once

#include <cstdint>
#include <string_view>

#include "graph/program_graph.h"
#include "support/status.h"

namespace irgnn::serve {

using support::Status;
using support::StatusCode;
template <typename T>
using StatusOr = support::StatusOr<T>;

/// Consulted only under overload: when a bounded admission queue must shed,
/// lower-priority requests go first (see ShedPolicy::DropOldest).
enum class Priority : std::uint8_t { Low = 0, Normal = 1, High = 2 };

/// What produced a Response.
enum class Source : std::uint8_t {
  Cache,      // fingerprint-keyed prediction cache, no forward
  Batch,      // a micro-batched model forward
  Coalesced,  // attached to an identical in-flight query and answered
              // with its leader's forward (no extra model work)
  Shed,       // not answered: dropped, rejected, past deadline, or the
              // forward failed (status Internal)
};

inline const char* source_name(Source source) {
  switch (source) {
    case Source::Cache: return "cache";
    case Source::Batch: return "batch";
    case Source::Coalesced: return "coalesced";
    case Source::Shed: return "shed";
  }
  return "unknown";
}

/// What a bounded admission queue does when it is full and one more request
/// arrives (ServerConfig::max_queue / RouterConfig::max_queue).
enum class ShedPolicy : std::uint8_t {
  /// Fail the incoming submit immediately with Status::Overloaded. The
  /// queue never exceeds its bound and nobody blocks.
  Reject,
  /// Admit the incoming request and shed the oldest queued request of the
  /// lowest priority class instead (its future resolves with an Overloaded
  /// Response, Source::Shed). If every queued request outranks the incoming
  /// one, the incoming submit is rejected — shedding never promotes load
  /// the queue already chose to carry.
  DropOldest,
  /// Block the submitting client until the queue has room (participating
  /// in batch pumping while it waits, so a client-driven server cannot
  /// deadlock itself). Queue depth stays bounded; submit latency does not.
  Block,
};

inline const char* shed_policy_name(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::Reject: return "Reject";
    case ShedPolicy::DropOldest: return "DropOldest";
    case ShedPolicy::Block: return "Block";
  }
  return "unknown";
}

struct Request {
  Request() = default;
  explicit Request(const graph::ProgramGraph& g, std::string_view model_name = {})
      : graph(&g), model(model_name) {}

  /// The region graph to predict for. Must stay alive until the response
  /// (or the future's resolution).
  const graph::ProgramGraph* graph = nullptr;

  /// Routing key for serve::Router: the registry name of the target model
  /// (per-architecture serving publishes one model per machine name). Empty
  /// routes to the router's only model; with several models published an
  /// empty name is ModelNotFound (ambiguous). A bare InferenceServer is a
  /// single-model endpoint and ignores this field. The view must outlive
  /// the submit() call only — the router does not retain it.
  std::string_view model{};

  /// Queue-time budget in microseconds; 0 means no deadline. A request
  /// still queued when its budget expires is answered DeadlineExceeded
  /// (Source::Shed) instead of joining a batch. Cache hits are immediate
  /// and never expire.
  std::int64_t deadline_us = 0;

  /// Shedding priority (see ShedPolicy::DropOldest).
  Priority priority = Priority::Normal;
};

struct Response {
  /// Ok, or why the request was not answered: Overloaded (shed after
  /// admission), DeadlineExceeded, ShuttingDown, Internal. Errors that fail
  /// the submit itself (queue full under Reject, ModelNotFound) surface
  /// from submit()'s StatusOr instead and never build a Response.
  Status status;

  /// Predicted label; meaningful only when status.ok().
  int label = -1;

  /// Version of the publication that answered (see ModelSlot); 0 when shed
  /// before any model saw the request.
  std::uint64_t model_version = 0;

  Source source = Source::Batch;

  /// Micro-timings: admission to batch pickup (or to shedding), and the
  /// answering micro-batch's forward wall time. Cache hits report 0/0.
  std::int64_t queue_us = 0;
  std::int64_t compute_us = 0;

  bool ok() const { return status.ok(); }
};

}  // namespace irgnn::serve
