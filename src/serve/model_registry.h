// Versioned named models with atomic hot-swap, so exploration can retrain
// while serving continues.
//
// A ModelSlot is one name's publication point. The current (model, version)
// pair lives behind a single shared_ptr that readers snapshot with
// std::atomic_load: a reader never blocks on a publisher, never observes a
// torn (model of one version, number of another) pair, and keeps its
// snapshot's model alive through the shared_ptr for as long as the batch it
// is serving needs it — publish() frees nothing a reader still holds.
//
// The ModelRegistry maps names to slots. publish() bumps the slot's version
// monotonically (the serving layer mixes that version into its cache keys,
// which is what makes hot-swap safe against stale cached answers);
// retire() removes the name from the registry but leaves the slot's last
// published model in place, so servers attached to the slot keep answering
// while the name is gone — a retire never turns into dropped queries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gnn/inference_model.h"

namespace irgnn::serve {

/// The serving layer holds models through the InferenceModel interface, so
/// float (gnn::StaticModel) and int8 (gnn::QuantizedModel) versions publish
/// and mix behind the same registry/router with no serve-side type
/// knowledge. shared_ptr<const StaticModel> upcasts implicitly.
using ModelPtr = std::shared_ptr<const gnn::InferenceModel>;

/// One consistent (model, version) publication. version starts at 1 for the
/// first publish; an empty slot snapshots as {nullptr, 0}.
struct PublishedModel {
  ModelPtr model;
  std::uint64_t version = 0;
};

class ModelSlot {
 public:
  /// Wait-free consistent snapshot of the current publication. Never null;
  /// an empty slot returns a PublishedModel with a null model.
  std::shared_ptr<const PublishedModel> snapshot() const;

  /// Atomically replaces the publication; returns the new version.
  std::uint64_t publish(ModelPtr model);

 private:
  // Swapped with std::atomic_store; readers go through std::atomic_load.
  std::shared_ptr<const PublishedModel> current_ =
      std::make_shared<const PublishedModel>();
  std::uint64_t next_version_ = 0;
  std::mutex publish_mutex_;  // serializes publishers only
};

class ModelRegistry {
 public:
  /// Publishes `model` under `name` (creating the slot on first publish) and
  /// returns its version, monotonically increasing per name.
  std::uint64_t publish(const std::string& name, ModelPtr model);

  /// Removes `name` from the registry. Servers already attached to the
  /// slot keep serving its last published model. Returns false if the name
  /// was not registered.
  bool retire(const std::string& name);

  /// The slot behind `name`, created empty if absent — what a server
  /// attaches to so later publishes under the name reach it.
  std::shared_ptr<ModelSlot> slot(const std::string& name);

  /// Current model under `name`; nullptr if absent or never published.
  ModelPtr resolve(const std::string& name) const;

  /// Current version under `name`; 0 if absent or never published.
  std::uint64_t version(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<ModelSlot>> slots_;
};

/// Non-owning ModelPtr over a caller-kept model (shared_ptr aliasing): for
/// stack- or member-owned models served in-process, e.g. the per-fold
/// models of core::run_experiment. The caller must keep `model` alive for
/// the server's lifetime.
inline ModelPtr borrow_model(const gnn::InferenceModel& model) {
  return ModelPtr(std::shared_ptr<void>(), &model);
}

}  // namespace irgnn::serve
