#include "serve/prediction_cache.h"

#include <algorithm>

namespace irgnn::serve {

PredictionCache::PredictionCache(std::size_t capacity, int num_shards) {
  num_shards_ = static_cast<std::size_t>(std::max(1, num_shards));
  capacity_ = capacity;
  if (capacity_ == 0) {
    num_shards_ = 1;
    per_shard_capacity_ = 0;
    shards_ = std::make_unique<Shard[]>(1);
    return;
  }
  if (num_shards_ > capacity_) num_shards_ = capacity_;
  per_shard_capacity_ = (capacity_ + num_shards_ - 1) / num_shards_;
  capacity_ = per_shard_capacity_ * num_shards_;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shards_[s].slots.resize(per_shard_capacity_);
    // Reserve the full bucket table now so steady-state insert/evict never
    // rehashes; the map's nodes recycle through the arena either way.
    shards_[s].index.reserve(per_shard_capacity_);
  }
}

void PredictionCache::Shard::unlink(int slot) {
  Entry& e = slots[static_cast<std::size_t>(slot)];
  if (e.prev >= 0)
    slots[static_cast<std::size_t>(e.prev)].next = e.next;
  else
    lru_head = e.next;
  if (e.next >= 0)
    slots[static_cast<std::size_t>(e.next)].prev = e.prev;
  else
    lru_tail = e.prev;
  e.prev = e.next = -1;
}

void PredictionCache::Shard::push_front(int slot) {
  Entry& e = slots[static_cast<std::size_t>(slot)];
  e.prev = -1;
  e.next = lru_head;
  if (lru_head >= 0) slots[static_cast<std::size_t>(lru_head)].prev = slot;
  lru_head = slot;
  if (lru_tail < 0) lru_tail = slot;
}

bool PredictionCache::lookup(std::uint64_t key, int* label, bool count_miss) {
  if (per_shard_capacity_ == 0) return false;
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    if (count_miss) ++shard.stats.misses;
    return false;
  }
  ++shard.stats.hits;
  const int slot = it->second;
  if (shard.lru_head != slot) {
    shard.unlink(slot);
    shard.push_front(slot);
  }
  *label = shard.slots[static_cast<std::size_t>(slot)].label;
  return true;
}

void PredictionCache::note_miss(std::uint64_t key) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.misses;
}

bool PredictionCache::contains(std::uint64_t key) const {
  if (per_shard_capacity_ == 0) return false;
  const Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.index.find(key) != shard.index.end();
}

void PredictionCache::insert(std::uint64_t key, int label) {
  if (per_shard_capacity_ == 0) return;
  Shard& shard = shard_of(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Racing inserts of the same fingerprint (two clients missing at once)
    // are benign: the model is pure, both wrote the same label. Counted as
    // a refresh — not an insertion — so insertions - evictions == entries
    // stays a checkable invariant.
    ++shard.stats.refreshes;
    const int slot = it->second;
    shard.slots[static_cast<std::size_t>(slot)].label = label;
    if (shard.lru_head != slot) {
      shard.unlink(slot);
      shard.push_front(slot);
    }
    return;
  }
  int slot;
  if (static_cast<std::size_t>(shard.next_free) < shard.slots.size()) {
    slot = shard.next_free++;
  } else {
    // Shard full: evict the least recently used entry and reuse its slot.
    slot = shard.lru_tail;
    shard.index.erase(shard.slots[static_cast<std::size_t>(slot)].key);
    shard.unlink(slot);
    ++shard.stats.evictions;
  }
  Entry& e = shard.slots[static_cast<std::size_t>(slot)];
  e.key = key;
  e.label = label;
  shard.push_front(slot);
  shard.index.emplace(key, slot);
  ++shard.stats.insertions;
}

void PredictionCache::clear() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.index.clear();
    shard.lru_head = shard.lru_tail = -1;
    shard.next_free = 0;
    // New epoch, fresh counters: hit-rate gates measured after a hot-swap
    // + clear must not blend the previous epoch's hits and misses.
    shard.stats = CacheStats{};
  }
}

CacheStats PredictionCache::stats() const {
  CacheStats total;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    const Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mutex);
    total.hits += shard.stats.hits;
    total.misses += shard.stats.misses;
    total.insertions += shard.stats.insertions;
    total.refreshes += shard.stats.refreshes;
    total.evictions += shard.stats.evictions;
    total.entries += shard.index.size();
  }
  return total;
}

}  // namespace irgnn::serve
