#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "graph/fingerprint.h"
#include "support/failpoint.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace irgnn::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

InferenceServer::InferenceServer(ModelPtr model, const ServerConfig& config)
    : InferenceServer(
          [&] {
            auto slot = std::make_shared<ModelSlot>();
            slot->publish(std::move(model));
            return slot;
          }(),
          config) {}

InferenceServer::InferenceServer(std::shared_ptr<ModelSlot> slot,
                                 const ServerConfig& config)
    : config_(config),
      slot_(std::move(slot)),
      cache_(config.cache_capacity, config.cache_shards) {
  assert(slot_ && slot_->snapshot()->model &&
         "InferenceServer requires a published model");
  config_.max_batch = std::max(1, config_.max_batch);
  // A worker-less pool would run the loop inline and never return; fall
  // back to client-driven pumping there.
  if (config_.background_loop &&
      support::ThreadPool::global().num_workers() > 0) {
    loop_running_ = true;
    loop_token_ = std::make_shared<LoopToken>();
    support::ThreadPool::global().submit([this, token = loop_token_] {
      {
        std::lock_guard<std::mutex> token_lock(token->mutex);
        if (token->cancelled) return;  // server already shut down
        token->started = true;
      }
      background_loop();
    });
  } else {
    config_.background_loop = false;
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  if (loop_token_) {
    // Settle the race with the loop task's startup: if the pool has not
    // scheduled it yet (all workers busy or parked), cancel it — it will
    // eventually run, see the token, and return without touching this
    // (possibly destroyed) server.
    std::lock_guard<std::mutex> token_lock(loop_token_->mutex);
    if (!loop_token_->started) {
      loop_token_->cancelled = true;
      std::lock_guard<std::mutex> lock(mutex_);
      loop_running_ = false;
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!stop_) {
    stop_ = true;
    cv_queue_.notify_all();
    cv_done_.notify_all();
  }
  // Drain: every admitted query is answered even when nobody waits on it —
  // a then() continuation must fire exactly once, and the background loop
  // exits on stop_ without pumping. Clients blocked in get() help; if a
  // pump is mid-flight we wait for it and re-check.
  while (!queue_.empty() || pumping_) {
    if (!pumping_)
      pump_one(lock, /*wait_window=*/false);
    else
      cv_done_.wait(lock);
  }
  // The drain resolved every leader (client or warming), and resolution
  // erases in-flight entries — waiters never outlive their leader.
  assert(in_flight_.empty() && "shutdown drain left an in-flight leader");
  // Wait for a started loop task to unpark and exit so it can never touch
  // a destroyed server.
  while (loop_running_) cv_done_.wait(lock);
}

// --- Future -----------------------------------------------------------------

InferenceServer::Future& InferenceServer::Future::operator=(
    Future&& other) noexcept {
  if (this != &other) {
    abandon();
    server_ = other.server_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    ready_ = other.ready_;
    response_ = other.response_;
    // Fully disarm the source. Leaving slot_/gen_ populated used to be
    // benign (server_ == nullptr gated every use) but is a use-after-free
    // trap now that coalescing shares slots across resolution paths: a
    // half-cleared handle that ever re-acquired a server pointer would
    // address another query's slot.
    other.server_ = nullptr;
    other.slot_ = 0;
    other.gen_ = 0;
    other.ready_ = false;
    other.response_ = Response{};
  }
  return *this;
}

Response InferenceServer::Future::get() {
  if (ready_) {
    ready_ = false;
    return response_;
  }
  assert(server_ && "get() on an invalid future");
  InferenceServer* server = server_;
  const std::uint32_t slot = slot_;
  const std::uint64_t gen = gen_;
  server_ = nullptr;
  slot_ = 0;
  gen_ = 0;
  return server->wait(slot, gen);
}

void InferenceServer::Future::then(ResponseCallback callback) {
  if (ready_) {
    ready_ = false;
    callback(response_);
    return;
  }
  assert(server_ && "then() on an invalid future");
  InferenceServer* server = server_;
  const std::uint32_t slot = slot_;
  const std::uint64_t gen = gen_;
  server_ = nullptr;
  slot_ = 0;
  gen_ = 0;
  server->attach_callback(slot, gen, std::move(callback));
}

void InferenceServer::Future::abandon() {
  if (!server_) return;
  {
    std::lock_guard<std::mutex> lock(server_->mutex_);
    QuerySlot& slot = server_->slots_[slot_];
    if (slot.gen == gen_) {
      if (slot.state == SlotState::Done)
        server_->free_slot_locked(slot_);
      else
        slot.abandoned = true;  // the pump frees it after answering — and
                                // still answers its coalesced waiters
    }
  }
  server_ = nullptr;
  slot_ = 0;
  gen_ = 0;
}

// --- Admission --------------------------------------------------------------

std::uint32_t InferenceServer::alloc_slot_locked() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void InferenceServer::free_slot_locked(std::uint32_t slot) {
  QuerySlot& s = slots_[slot];
  ++s.gen;
  s.state = SlotState::Free;
  s.abandoned = false;
  s.graph = nullptr;
  s.next_waiter = -1;
  s.leading = false;
  s.inflight_key = 0;
  s.warming = false;
  s.probe = false;
  s.callback.reset();
  free_slots_.push_back(slot);
}

void InferenceServer::resolve_one_locked(std::uint32_t slot,
                                         const Response& response,
                                         FiredList& fired) {
  QuerySlot& s = slots_[slot];
  // Half-open probe bookkeeping rides resolution so EVERY probe outcome is
  // covered — answered by the forward (Ok closes the breaker, Internal
  // re-arms the probe timer) but also shed or expired before reaching one
  // (re-arm; the probe franchise must never leak with probe_in_flight
  // stuck true).
  if (s.probe) {
    s.probe = false;
    breaker_probe_in_flight_ = false;
    if (response.status.ok()) {
      breaker_open_ = false;
      breaker_failures_ = 0;
    } else {
      breaker_next_probe_ =
          Clock::now() +
          std::chrono::microseconds(config_.breaker_probe_interval_us);
    }
  }
  // Centralized outcome accounting: client queries fill the source buckets
  // (a partition of every resolved client query), warming prefetches fill
  // the warm_* counters only — so warming can never inflate a client-facing
  // hit-rate or shed gate.
  if (s.warming) {
    if (response.status.ok()) {
      ++warm_completed_;
    } else {
      ++warm_shed_;
      if (config_.warm_negative_ttl_us > 0)
        warm_negative_[s.fp] =
            Clock::now() +
            std::chrono::microseconds(config_.warm_negative_ttl_us);
    }
  } else {
    switch (response.status.code()) {
      case support::StatusCode::kOk:
        if (response.source == Source::Coalesced)
          ++source_coalesced_;
        else
          ++source_batch_;
        break;
      case support::StatusCode::kOverloaded:
        ++shed_;
        break;
      case support::StatusCode::kDeadlineExceeded:
        ++deadline_exceeded_;
        break;
      default:  // kInternal: a failed forward. Nothing else resolves a slot.
        ++internal_errors_;
        break;
    }
  }
  s.response = response;
  s.state = SlotState::Done;
  if (s.abandoned) {
    free_slot_locked(slot);
  } else if (s.callback) {
    // A continuation consumes the result: detach it (to run outside the
    // lock) and recycle the slot now — nobody will wait on it.
    fired.push_back(FiredCallback{std::move(s.callback), response});
    free_slot_locked(slot);
  }
}

void InferenceServer::resolve_slot_locked(std::uint32_t slot,
                                          const Response& response,
                                          FiredList& fired) {
  std::int32_t waiter;
  {
    QuerySlot& s = slots_[slot];
    if (s.leading) {
      // Precise erase: a Block-policy admission that slept through this
      // leader's lifetime may have registered a newer leader under the
      // same key — never remove someone else's entry.
      auto it = in_flight_.find(s.inflight_key);
      if (it != in_flight_.end() && it->second == slot) in_flight_.erase(it);
      s.leading = false;
    }
    waiter = s.next_waiter;
    s.next_waiter = -1;
  }
  // Answer the coalesced waiters FIRST, with the leader's outcome — before
  // the leader slot is recycled, so an abandoned leader still answers them
  // and a shed leader sheds them (counted in the shed-class buckets).
  const auto now = Clock::now();
  while (waiter >= 0) {
    QuerySlot& w = slots_[static_cast<std::size_t>(waiter)];
    const std::int32_t next = w.next_waiter;
    w.next_waiter = -1;
    Response derived = response;
    derived.queue_us = us_between(w.admitted, now);
    derived.source =
        response.status.ok() ? Source::Coalesced : Source::Shed;
    resolve_one_locked(static_cast<std::uint32_t>(waiter), derived, fired);
    waiter = next;
  }
  resolve_one_locked(slot, response, fired);
}

Status InferenceServer::admit_locked(std::unique_lock<std::mutex>& lock,
                                     const Request& request, std::uint64_t fp,
                                     std::uint32_t* slot_out,
                                     std::uint64_t* gen_out,
                                     FiredList& fired) {
  if (stop_) return Status::ShuttingDown();
  // Fault injection: simulated queue exhaustion. Counted as a rejection so
  // the answered/shed/rejected conservation holds under injection. (Error
  // injection only — this site runs under the server lock, so latency specs
  // here would serialize the whole server; use serve.forward for delays.)
  IRGNN_FAILPOINT("serve.admit", {
    ++rejected_;
    return Status::Overloaded("injected admission fault");
  });
  if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
    switch (config_.shed_policy) {
      case ShedPolicy::Reject:
        ++rejected_;
        return Status::Overloaded();
      case ShedPolicy::DropOldest: {
        // Victim: the oldest queued request of the lowest priority class.
        // The queue is FIFO, so the first scan hit of the minimum priority
        // is the oldest of that class.
        std::size_t victim_index = 0;
        Priority victim_priority = slots_[queue_[0]].priority;
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          const Priority p = slots_[queue_[i]].priority;
          if (p < victim_priority) {
            victim_priority = p;
            victim_index = i;
          }
        }
        if (victim_priority > request.priority) {
          // Everything queued outranks the newcomer: shedding never
          // promotes load over requests the queue already chose to carry.
          ++rejected_;
          return Status::Overloaded(
              "admission queue full of higher-priority requests");
        }
        const std::uint32_t victim = queue_[victim_index];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(victim_index));
        // Warming prefetches enqueue at Priority::Low, so they are always
        // the first victims here; resolve_slot_locked routes a shed
        // prefetch into warm_shed (+ negative TTL) instead of shed.
        Response dropped;
        dropped.status = Status::Overloaded("shed for a newer request");
        dropped.source = Source::Shed;
        dropped.queue_us = us_between(slots_[victim].admitted, Clock::now());
        resolve_slot_locked(victim, dropped, fired);
        cv_done_.notify_all();
        break;  // room made; fall through to enqueue
      }
      case ShedPolicy::Block: {
        // Wait for space, pumping batches ourselves when nobody else is —
        // the same caller-participates rule as wait(), so a client-driven
        // server (background_loop=false) cannot deadlock on its own bound.
        while (!stop_ && queue_.size() >= config_.max_queue) {
          if (!pumping_ && !queue_.empty())
            pump_one(lock, /*wait_window=*/false);
          else
            cv_done_.wait(lock);
        }
        if (stop_) return Status::ShuttingDown();
        break;
      }
    }
  }
  const std::uint32_t slot = alloc_slot_locked();
  QuerySlot& s = slots_[slot];
  s.graph = request.graph;
  s.fp = fp;
  s.admitted = Clock::now();
  s.deadline_us = request.deadline_us;
  s.priority = request.priority;
  s.response = Response{};
  s.state = SlotState::Queued;
  s.abandoned = false;
  *slot_out = slot;
  *gen_out = s.gen;
  queue_.push_back(slot);
  peak_queue_ = std::max<std::uint64_t>(peak_queue_, queue_.size());
  cv_queue_.notify_all();
  return Status::Ok();
}

bool InferenceServer::try_coalesce_locked(const Request& request,
                                          std::uint64_t fp, std::uint64_t key,
                                          std::uint32_t* slot_out,
                                          std::uint64_t* gen_out) {
  auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return false;
  const std::uint32_t leader = it->second;
  const std::uint32_t waiter = alloc_slot_locked();  // may grow slots_ —
                                                     // take refs after
  QuerySlot& w = slots_[waiter];
  w.graph = request.graph;
  w.fp = fp;
  w.admitted = Clock::now();
  w.deadline_us = request.deadline_us;  // informational: a waiter rides the
                                        // leader's schedule (see header)
  w.priority = request.priority;
  w.response = Response{};
  w.state = SlotState::Queued;
  w.abandoned = false;
  QuerySlot& l = slots_[leader];
  assert(l.state == SlotState::Queued && l.leading && l.inflight_key == key &&
         "in-flight map points at a live leader until resolution erases it");
  w.next_waiter = l.next_waiter;
  l.next_waiter = static_cast<std::int32_t>(waiter);
  // Priority inheritance: a leader carrying real waiters must not be shed
  // as if it still had only its own (possibly Low / warming) priority.
  if (request.priority > l.priority) l.priority = request.priority;
  ++coalesced_;
  *slot_out = waiter;
  *gen_out = w.gen;
  return true;
}

StatusOr<InferenceServer::Future> InferenceServer::admit_or_coalesce(
    const Request& request, std::uint64_t fp, std::uint64_t version) {
  const std::uint64_t key = hash_combine64(version, fp);
  std::uint32_t slot = 0;
  std::uint64_t gen = 0;
  FiredList fired;
  Status admitted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Coalescing first — even during the shutdown drain: an in-flight
    // leader is guaranteed to resolve (the drain pumps the queue dry), so
    // attaching is as safe as the cache-hit-during-drain exception and
    // cheaper than refusing.
    if (config_.coalesce &&
        try_coalesce_locked(request, fp, key, &slot, &gen))
      return Future(this, slot, gen);
    // A genuine miss (neither cached nor in flight): count it against the
    // cache before admission, so hits + misses + coalesced partitions the
    // queries even when admission then rejects — short-circuited misses
    // included.
    cache_.note_miss(key);
    // Degraded mode: an open breaker answers the miss Unavailable right
    // here, without a queue slot or a forward. Exceptions: shutdown still
    // wins (admit_locked answers ShuttingDown below), and once per probe
    // interval one miss is admitted as the half-open probe. Hits and
    // coalesced waiters never reach this point — degraded mode only refuses
    // work that would need the failing model.
    bool as_probe = false;
    if (config_.breaker_trip_threshold > 0 && breaker_open_ && !stop_) {
      if (!breaker_probe_in_flight_ && Clock::now() >= breaker_next_probe_) {
        as_probe = true;
        // Claim the probe franchise before admit_locked, which may drop the
        // lock (ShedPolicy::Block): a second miss sneaking in meanwhile
        // must short-circuit, not launch a second probe.
        breaker_probe_in_flight_ = true;
      } else {
        ++breaker_short_circuits_;
        admitted = Status::Unavailable();
      }
    }
    if (admitted.ok()) {
      admitted = admit_locked(lock, request, fp, &slot, &gen, fired);
      if (as_probe) {
        if (admitted.ok()) {
          slots_[slot].probe = true;
          ++breaker_probes_;
        } else {
          breaker_probe_in_flight_ = false;  // return the franchise
        }
      }
    }
    if (admitted.ok()) {
      if (config_.coalesce) {
        QuerySlot& s = slots_[slot];
        s.leading = true;
        s.inflight_key = key;
        in_flight_[key] = slot;
      }
      maybe_warm_locked(fp, version, slots_[slot].admitted);
    }
  }
  // A shed victim's continuation runs on the thread that shed it, outside
  // the lock.
  for (FiredCallback& f : fired) f.fn(f.response);
  if (!admitted.ok()) return admitted;
  return Future(this, slot, gen);
}

// --- Predictive warming -----------------------------------------------------

void InferenceServer::register_warm_group(
    const std::vector<const graph::ProgramGraph*>& siblings) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<WarmSibling> group;
  group.reserve(siblings.size());
  for (const graph::ProgramGraph* g : siblings) {
    if (!g) continue;
    group.push_back(WarmSibling{g, graph::fingerprint(*g)});
  }
  if (group.size() < 2) return;  // a singleton has nothing to prefetch
  const std::uint32_t index = static_cast<std::uint32_t>(warm_groups_.size());
  // Latest registration wins per fingerprint (see the header contract).
  for (const WarmSibling& sib : group) warm_group_of_[sib.fp] = index;
  warm_groups_.push_back(std::move(group));
}

void InferenceServer::maybe_warm_locked(std::uint64_t fp,
                                        std::uint64_t version,
                                        Clock::time_point now) {
  if (warm_groups_.empty() || config_.max_warm_per_miss <= 0 || stop_) return;
  // An open breaker suppresses warming outright: prefetches exist to spend
  // idle forwards on likely-next queries, and a failing model has no useful
  // forwards to spend.
  if (breaker_open_) return;
  auto group_it = warm_group_of_.find(fp);
  if (group_it == warm_group_of_.end()) return;
  const std::vector<WarmSibling>& group = warm_groups_[group_it->second];
  int budget = config_.max_warm_per_miss;
  bool enqueued_any = false;
  for (const WarmSibling& sib : group) {
    if (budget == 0) break;
    if (sib.fp == fp) continue;  // the triggering miss is already admitted
    const std::uint64_t key = hash_combine64(version, sib.fp);
    // Skip siblings that already have an answer in flight or in the cache
    // (contains() is a pure probe: no hit/miss accounting, no recency
    // bump — warming must not pollute the client-facing hit rate).
    if (in_flight_.find(key) != in_flight_.end()) continue;
    if (cache_.contains(key)) continue;
    auto neg = warm_negative_.find(sib.fp);
    if (neg != warm_negative_.end()) {
      if (now < neg->second) continue;  // shed recently: don't retry hot
      warm_negative_.erase(neg);
    }
    // Never displace admitted traffic: a full queue suppresses the prefetch
    // outright instead of invoking the shed policy against real queries.
    if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
      ++warm_suppressed_;
      continue;
    }
    const std::uint32_t slot = alloc_slot_locked();
    QuerySlot& s = slots_[slot];
    s.graph = sib.graph;
    s.fp = sib.fp;
    s.admitted = now;
    s.deadline_us = 0;
    s.priority = Priority::Low;  // first DropOldest victim, by construction
    s.response = Response{};
    s.state = SlotState::Queued;
    s.abandoned = true;  // nobody holds a prefetch's future
    s.warming = true;
    // A prefetch is an in-flight leader: a real query racing the warm-up
    // coalesces onto it (and promotes its priority) instead of forwarding
    // twice.
    s.leading = true;
    s.inflight_key = key;
    in_flight_[key] = slot;
    queue_.push_back(slot);
    peak_queue_ = std::max<std::uint64_t>(peak_queue_, queue_.size());
    ++warm_enqueued_;
    --budget;
    enqueued_any = true;
  }
  if (enqueued_any) cv_queue_.notify_all();
}

StatusOr<InferenceServer::Future> InferenceServer::submit(
    const Request& request) {
  assert(request.graph && "Request without a graph");
  // Validate before counting: an empty graph has no region to predict for,
  // and admitting it would spend a queue slot and a forward lane on a
  // meaningless fingerprint. Rejected ahead of queries_, so invalid
  // requests appear in no conservation law.
  if (request.graph->num_nodes() == 0) {
    invalid_arguments_.fetch_add(1, std::memory_order_relaxed);
    return Status::InvalidArgument("empty graph: nothing to predict for");
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fp = graph::fingerprint(*request.graph);
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  int label = 0;
  if (cache_.lookup(hash_combine64(published->version, fp), &label,
                    /*count_miss=*/false)) {
    Response response;
    response.label = label;
    response.model_version = published->version;
    response.source = Source::Cache;
    return Future(response);
  }
  return admit_or_coalesce(request, fp, published->version);
}

Response InferenceServer::predict(const Request& request) {
  // Inlined hit path (rather than submit().get()) so a warm cache hit
  // provably performs zero heap allocations: fingerprint, snapshot, lookup
  // and the Response all run off preallocated storage.
  assert(request.graph && "Request without a graph");
  if (request.graph->num_nodes() == 0) {
    invalid_arguments_.fetch_add(1, std::memory_order_relaxed);
    Response response;
    response.status =
        Status::InvalidArgument("empty graph: nothing to predict for");
    response.source = Source::Shed;
    return response;
  }
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fp = graph::fingerprint(*request.graph);
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  int label = 0;
  if (cache_.lookup(hash_combine64(published->version, fp), &label,
                    /*count_miss=*/false)) {
    Response response;
    response.label = label;
    response.model_version = published->version;
    response.source = Source::Cache;
    return response;
  }
  StatusOr<Future> submitted =
      admit_or_coalesce(request, fp, published->version);
  if (!submitted.ok()) {
    // Submit-side failures fold into the one result type sync callers see.
    Response response;
    response.status = submitted.status();
    response.source = Source::Shed;
    return response;
  }
  return std::move(submitted).value().get();
}

void InferenceServer::predict_batch(
    const std::vector<const graph::ProgramGraph*>& graphs,
    std::vector<Response>& out) {
  out.resize(graphs.size());
  // Admit every miss before waiting on any, so misses share micro-batches;
  // the first get() then pumps a full batch. Scratch recycles via the
  // arena, keeping the steady-state query loops of callers like
  // core::run_experiment off malloc.
  support::PoolVector<std::pair<std::size_t, Future>> pending;
  pending.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    StatusOr<Future> submitted = submit(Request(*graphs[i]));
    if (!submitted.ok()) {
      out[i] = Response{};
      out[i].status = submitted.status();
      out[i].source = Source::Shed;
      continue;
    }
    Future f = std::move(submitted).value();
    if (f.ready_)
      out[i] = f.get();
    else
      pending.emplace_back(i, std::move(f));
  }
  for (auto& [index, future] : pending) out[index] = future.get();
}

std::uint64_t InferenceServer::publish(ModelPtr model) {
  return slot_->publish(std::move(model));
}

void InferenceServer::attach_callback(std::uint32_t slot, std::uint64_t gen,
                                      ResponseCallback callback) {
  Response ready;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QuerySlot& s = slots_[slot];
    assert(s.gen == gen && "continuation outlived its slot");
    (void)gen;
    if (s.state == SlotState::Done) {
      ready = s.response;
      free_slot_locked(slot);
      fire = true;
    } else {
      s.callback = std::move(callback);
    }
  }
  if (fire) callback(ready);
}

// --- Serving loop -----------------------------------------------------------

void InferenceServer::pump_one(std::unique_lock<std::mutex>& lock,
                               bool wait_window) {
  assert(!pumping_ && !queue_.empty());
  pumping_ = true;
  if (wait_window && config_.max_wait_us > 0) {
    // Batch window: give concurrent clients max_wait_us to join before
    // flushing a sub-max_batch batch. Early-out as soon as it fills.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(config_.max_wait_us);
    while (static_cast<int>(queue_.size()) < config_.max_batch && !stop_) {
      if (cv_queue_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
  }
  batch_slots_.clear();
  batch_graphs_.clear();
  batch_fps_.clear();
  pump_fired_.clear();
  const auto pickup = Clock::now();
  while (!queue_.empty() &&
         static_cast<int>(batch_slots_.size()) < config_.max_batch) {
    const std::uint32_t slot = queue_.front();
    queue_.pop_front();
    QuerySlot& s = slots_[slot];
    const std::int64_t waited = us_between(s.admitted, pickup);
    if (s.deadline_us > 0 && waited >= s.deadline_us) {
      // Expired while queued: answer DeadlineExceeded instead of spending a
      // forward on a result nobody can use in time. Does not consume batch
      // capacity. (resolve_one_locked does the counting.)
      Response response;
      response.status = Status::DeadlineExceeded();
      response.source = Source::Shed;
      response.queue_us = waited;
      resolve_slot_locked(slot, response, pump_fired_);
      continue;
    }
    s.response.queue_us = waited;
    batch_slots_.push_back(slot);
    // Copy graph/fingerprint into pump scratch now: outside the lock the
    // slots_ vector may be reallocated by a concurrent admission.
    batch_graphs_.push_back(s.graph);
    batch_fps_.push_back(s.fp);
  }
  // One consistent (model, version) snapshot answers the whole batch; a
  // concurrent publish only affects later batches. The snapshot's
  // shared_ptr keeps the model alive even if it is retired mid-forward.
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  if (!batch_slots_.empty()) {
    Status forward_status;
    std::int64_t compute_us = 0;
    lock.unlock();
    const auto t0 = Clock::now();
    // Fault injection, outside the lock: an error spec fails this batch
    // without running the model (exactly what a crashed backend looks like
    // to the slots); a latency spec stalls the forward (batch-delay
    // injection) and can do so with inject_error = false.
    IRGNN_FAILPOINT(
        "serve.forward",
        forward_status = Status::Internal("injected forward fault"));
    if (forward_status.ok()) {
      try {
        published->model->predict_into(batch_graphs_, batch_preds_);
        compute_us = us_between(t0, Clock::now());
        // Fault injection: a fired serve.cache_insert drops the batch's
        // inserts (cache unavailability) — answers still flow, later
        // identical queries just miss again. (A flag, not `continue`:
        // break/continue inside IRGNN_FAILPOINT bind to the macro's own
        // do-while.)
        bool drop_inserts = false;
        IRGNN_FAILPOINT("serve.cache_insert", drop_inserts = true);
        if (!drop_inserts) {
          for (std::size_t i = 0; i < batch_slots_.size(); ++i)
            cache_.insert(hash_combine64(published->version, batch_fps_[i]),
                          batch_preds_[i]);
        }
      } catch (...) {
        // The query path is exception-free: a failed forward (realistically
        // allocation pressure) resolves the whole batch Internal instead of
        // unwinding into whichever client happened to be pumping.
        forward_status = Status::Internal("model forward failed");
      }
    }
    lock.lock();
    // Breaker accounting per forward attempt, before the batch resolves
    // (resolution handles the probe slot: Ok closes the breaker, failure
    // re-arms the probe timer).
    if (config_.breaker_trip_threshold > 0) {
      if (forward_status.ok()) {
        breaker_failures_ = 0;
        breaker_open_ = false;  // any success restores full service
      } else {
        ++breaker_failures_;
        if (!breaker_open_ &&
            breaker_failures_ >= config_.breaker_trip_threshold) {
          breaker_open_ = true;
          ++breaker_trips_;
          breaker_next_probe_ =
              Clock::now() +
              std::chrono::microseconds(config_.breaker_probe_interval_us);
        }
      }
    }
    for (std::size_t i = 0; i < batch_slots_.size(); ++i) {
      Response response = slots_[batch_slots_[i]].response;  // queue_us
      response.model_version = published->version;
      response.compute_us = compute_us;
      response.status = forward_status;
      if (forward_status.ok()) {
        response.label = batch_preds_[i];
        response.source = Source::Batch;
      } else {
        // Not answered: shed-class, so the per-source buckets stay a
        // partition of every resolved response.
        response.source = Source::Shed;
      }
      resolve_slot_locked(batch_slots_[i], response, pump_fired_);
    }
    if (forward_status.ok()) {
      ++batches_;
      forwards_ += batch_slots_.size();
      max_batch_seen_ =
          std::max<std::uint64_t>(max_batch_seen_, batch_slots_.size());
      if (published->version != last_served_version_) {
        if (last_served_version_ != 0) ++model_swaps_;
        last_served_version_ = published->version;
      }
    }
  }
  // Hand the pump role back before running continuations: another pumper
  // may start (and reuse the scratch) as soon as pumping_ drops, so the
  // fired list moves to the stack first.
  FiredList fired = std::move(pump_fired_);
  pump_fired_.clear();
  pumping_ = false;
  cv_done_.notify_all();
  if (!fired.empty()) {
    lock.unlock();
    for (FiredCallback& f : fired) f.fn(f.response);
    lock.lock();
  }
}

Response InferenceServer::wait(std::uint32_t slot, std::uint64_t gen) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    QuerySlot& s = slots_[slot];
    assert(s.gen == gen && "future outlived its slot");
    (void)gen;
    if (s.state == SlotState::Done) {
      const Response response = s.response;
      free_slot_locked(slot);
      return response;
    }
    if (!pumping_ && !queue_.empty()) {
      // Caller participation: no active pumper, so drive a batch ourselves.
      // Skip the batch window — a waiting client gains nothing by idling,
      // and batch composition never changes any result. pump_one never
      // throws (a failed forward resolves Internal), so the slot is always
      // collected.
      pump_one(lock, /*wait_window=*/false);
      continue;
    }
    cv_done_.wait(lock);
  }
}

void InferenceServer::background_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  bool idle_trimmed = false;
  auto idle_since = Clock::now();
  while (!stop_) {
    if (!queue_.empty() || pumping_) {
      // Activity — whether this loop drives the batch or a waiting client
      // beat it to the pump role — re-arms the idle-trim trigger, so the
      // grace period always measures genuine quiet, not just time since
      // the loop's own last pump.
      idle_trimmed = false;
      if (pumping_)
        cv_done_.wait(lock);
      else
        pump_one(lock, /*wait_window=*/true);
      idle_since = Clock::now();
      continue;
    }
    if (config_.idle_trim_us > 0 && !idle_trimmed) {
      const auto deadline =
          idle_since + std::chrono::microseconds(config_.idle_trim_us);
      if (Clock::now() >= deadline) {
        // Grace period expired with the queue still empty: hand the
        // arena's cached blocks back to the system. Once per idle
        // episode — the next batch re-arms the trigger.
        lock.unlock();
        support::BufferPool::global().trim();
        lock.lock();
        idle_trimmed = true;
        ++idle_trims_;
        continue;
      }
      cv_queue_.wait_until(lock, deadline);
    } else {
      cv_queue_.wait(lock);
    }
  }
  loop_running_ = false;
  cv_done_.notify_all();
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.forwards = forwards_;
  out.batches = batches_;
  out.max_batch = max_batch_seen_;
  out.model_swaps = model_swaps_;
  out.idle_trims = idle_trims_;
  out.coalesced = coalesced_;
  out.warm_enqueued = warm_enqueued_;
  out.warm_completed = warm_completed_;
  out.warm_shed = warm_shed_;
  out.warm_suppressed = warm_suppressed_;
  out.shed = shed_;
  out.rejected = rejected_;
  out.deadline_exceeded = deadline_exceeded_;
  out.internal_errors = internal_errors_;
  out.peak_queue = peak_queue_;
  out.invalid_arguments = invalid_arguments_.load(std::memory_order_relaxed);
  out.breaker_trips = breaker_trips_;
  out.breaker_probes = breaker_probes_;
  out.breaker_short_circuits = breaker_short_circuits_;
  out.breaker_open = breaker_open_;
  out.cache = cache_.stats();
  // Responses by source — a partition of every resolved client query. Cache
  // hits already count per-shard; source_batch/source_coalesced come from
  // the centralized resolution accounting (warming excluded there, so
  // source_batch <= forwards); every shed-class outcome (dropped, rejected
  // at submit, expired, failed forward — waiters of shed leaders included)
  // reported Source::Shed.
  out.source_cache = out.cache.hits;
  out.source_batch = source_batch_;
  out.source_coalesced = source_coalesced_;
  // Short-circuited misses are shed-class: refused without a forward, like
  // rejections — part of the source partition (invalid_arguments is NOT:
  // those were never counted as queries).
  out.source_shed = shed_ + rejected_ + deadline_exceeded_ +
                    internal_errors_ + breaker_short_circuits_;
  return out;
}

}  // namespace irgnn::serve
