#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "graph/fingerprint.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace irgnn::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::int64_t us_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

InferenceServer::InferenceServer(ModelPtr model, const ServerConfig& config)
    : InferenceServer(
          [&] {
            auto slot = std::make_shared<ModelSlot>();
            slot->publish(std::move(model));
            return slot;
          }(),
          config) {}

InferenceServer::InferenceServer(std::shared_ptr<ModelSlot> slot,
                                 const ServerConfig& config)
    : config_(config),
      slot_(std::move(slot)),
      cache_(config.cache_capacity, config.cache_shards) {
  assert(slot_ && slot_->snapshot()->model &&
         "InferenceServer requires a published model");
  config_.max_batch = std::max(1, config_.max_batch);
  // A worker-less pool would run the loop inline and never return; fall
  // back to client-driven pumping there.
  if (config_.background_loop &&
      support::ThreadPool::global().num_workers() > 0) {
    loop_running_ = true;
    loop_token_ = std::make_shared<LoopToken>();
    support::ThreadPool::global().submit([this, token = loop_token_] {
      {
        std::lock_guard<std::mutex> token_lock(token->mutex);
        if (token->cancelled) return;  // server already shut down
        token->started = true;
      }
      background_loop();
    });
  } else {
    config_.background_loop = false;
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  if (loop_token_) {
    // Settle the race with the loop task's startup: if the pool has not
    // scheduled it yet (all workers busy or parked), cancel it — it will
    // eventually run, see the token, and return without touching this
    // (possibly destroyed) server.
    std::lock_guard<std::mutex> token_lock(loop_token_->mutex);
    if (!loop_token_->started) {
      loop_token_->cancelled = true;
      std::lock_guard<std::mutex> lock(mutex_);
      loop_running_ = false;
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!stop_) {
    stop_ = true;
    cv_queue_.notify_all();
    cv_done_.notify_all();
  }
  // Drain: every admitted query is answered even when nobody waits on it —
  // a then() continuation must fire exactly once, and the background loop
  // exits on stop_ without pumping. Clients blocked in get() help; if a
  // pump is mid-flight we wait for it and re-check.
  while (!queue_.empty() || pumping_) {
    if (!pumping_)
      pump_one(lock, /*wait_window=*/false);
    else
      cv_done_.wait(lock);
  }
  // Wait for a started loop task to unpark and exit so it can never touch
  // a destroyed server.
  while (loop_running_) cv_done_.wait(lock);
}

// --- Future -----------------------------------------------------------------

InferenceServer::Future& InferenceServer::Future::operator=(
    Future&& other) noexcept {
  if (this != &other) {
    abandon();
    server_ = other.server_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    ready_ = other.ready_;
    response_ = other.response_;
    other.server_ = nullptr;
    other.ready_ = false;
  }
  return *this;
}

Response InferenceServer::Future::get() {
  if (ready_) {
    ready_ = false;
    return response_;
  }
  assert(server_ && "get() on an invalid future");
  InferenceServer* server = server_;
  server_ = nullptr;
  return server->wait(slot_, gen_);
}

void InferenceServer::Future::then(ResponseCallback callback) {
  if (ready_) {
    ready_ = false;
    callback(response_);
    return;
  }
  assert(server_ && "then() on an invalid future");
  InferenceServer* server = server_;
  server_ = nullptr;
  server->attach_callback(slot_, gen_, std::move(callback));
}

void InferenceServer::Future::abandon() {
  if (!server_) return;
  std::lock_guard<std::mutex> lock(server_->mutex_);
  QuerySlot& slot = server_->slots_[slot_];
  if (slot.gen == gen_) {
    if (slot.state == SlotState::Done)
      server_->free_slot_locked(slot_);
    else
      slot.abandoned = true;  // the pump frees it after answering
  }
  server_ = nullptr;
}

// --- Admission --------------------------------------------------------------

std::uint32_t InferenceServer::alloc_slot_locked() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void InferenceServer::free_slot_locked(std::uint32_t slot) {
  QuerySlot& s = slots_[slot];
  ++s.gen;
  s.state = SlotState::Free;
  s.abandoned = false;
  s.graph = nullptr;
  s.callback.reset();
  free_slots_.push_back(slot);
}

void InferenceServer::resolve_slot_locked(std::uint32_t slot,
                                          const Response& response,
                                          FiredList& fired) {
  QuerySlot& s = slots_[slot];
  s.response = response;
  s.state = SlotState::Done;
  if (s.abandoned) {
    free_slot_locked(slot);
  } else if (s.callback) {
    // A continuation consumes the result: detach it (to run outside the
    // lock) and recycle the slot now — nobody will wait on it.
    fired.push_back(FiredCallback{std::move(s.callback), response});
    free_slot_locked(slot);
  }
}

Status InferenceServer::admit_locked(std::unique_lock<std::mutex>& lock,
                                     const Request& request, std::uint64_t fp,
                                     std::uint32_t* slot_out,
                                     std::uint64_t* gen_out,
                                     FiredList& fired) {
  if (stop_) return Status::ShuttingDown();
  if (config_.max_queue > 0 && queue_.size() >= config_.max_queue) {
    switch (config_.shed_policy) {
      case ShedPolicy::Reject:
        ++rejected_;
        return Status::Overloaded();
      case ShedPolicy::DropOldest: {
        // Victim: the oldest queued request of the lowest priority class.
        // The queue is FIFO, so the first scan hit of the minimum priority
        // is the oldest of that class.
        std::size_t victim_index = 0;
        Priority victim_priority = slots_[queue_[0]].priority;
        for (std::size_t i = 1; i < queue_.size(); ++i) {
          const Priority p = slots_[queue_[i]].priority;
          if (p < victim_priority) {
            victim_priority = p;
            victim_index = i;
          }
        }
        if (victim_priority > request.priority) {
          // Everything queued outranks the newcomer: shedding never
          // promotes load over requests the queue already chose to carry.
          ++rejected_;
          return Status::Overloaded(
              "admission queue full of higher-priority requests");
        }
        const std::uint32_t victim = queue_[victim_index];
        queue_.erase(queue_.begin() +
                     static_cast<std::ptrdiff_t>(victim_index));
        ++shed_;
        Response dropped;
        dropped.status = Status::Overloaded("shed for a newer request");
        dropped.source = Source::Shed;
        dropped.queue_us = us_between(slots_[victim].admitted, Clock::now());
        resolve_slot_locked(victim, dropped, fired);
        cv_done_.notify_all();
        break;  // room made; fall through to enqueue
      }
      case ShedPolicy::Block: {
        // Wait for space, pumping batches ourselves when nobody else is —
        // the same caller-participates rule as wait(), so a client-driven
        // server (background_loop=false) cannot deadlock on its own bound.
        while (!stop_ && queue_.size() >= config_.max_queue) {
          if (!pumping_ && !queue_.empty())
            pump_one(lock, /*wait_window=*/false);
          else
            cv_done_.wait(lock);
        }
        if (stop_) return Status::ShuttingDown();
        break;
      }
    }
  }
  const std::uint32_t slot = alloc_slot_locked();
  QuerySlot& s = slots_[slot];
  s.graph = request.graph;
  s.fp = fp;
  s.admitted = Clock::now();
  s.deadline_us = request.deadline_us;
  s.priority = request.priority;
  s.response = Response{};
  s.state = SlotState::Queued;
  s.abandoned = false;
  *slot_out = slot;
  *gen_out = s.gen;
  queue_.push_back(slot);
  peak_queue_ = std::max<std::uint64_t>(peak_queue_, queue_.size());
  cv_queue_.notify_all();
  return Status::Ok();
}

StatusOr<InferenceServer::Future> InferenceServer::submit(
    const Request& request) {
  assert(request.graph && "Request without a graph");
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fp = graph::fingerprint(*request.graph);
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  int label = 0;
  if (cache_.lookup(hash_combine64(published->version, fp), &label)) {
    Response response;
    response.label = label;
    response.model_version = published->version;
    response.source = Source::Cache;
    return Future(response);
  }
  std::uint32_t slot = 0;
  std::uint64_t gen = 0;
  FiredList fired;
  Status admitted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    admitted = admit_locked(lock, request, fp, &slot, &gen, fired);
  }
  // A shed victim's continuation runs on the thread that shed it, outside
  // the lock.
  for (FiredCallback& f : fired) f.fn(f.response);
  if (!admitted.ok()) return admitted;
  return Future(this, slot, gen);
}

Response InferenceServer::predict(const Request& request) {
  // Inlined hit path (rather than submit().get()) so a warm cache hit
  // provably performs zero heap allocations: fingerprint, snapshot, lookup
  // and the Response all run off preallocated storage.
  assert(request.graph && "Request without a graph");
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fp = graph::fingerprint(*request.graph);
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  int label = 0;
  if (cache_.lookup(hash_combine64(published->version, fp), &label)) {
    Response response;
    response.label = label;
    response.model_version = published->version;
    response.source = Source::Cache;
    return response;
  }
  std::uint32_t slot = 0;
  std::uint64_t gen = 0;
  FiredList fired;
  Status admitted;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    admitted = admit_locked(lock, request, fp, &slot, &gen, fired);
  }
  for (FiredCallback& f : fired) f.fn(f.response);
  if (!admitted.ok()) {
    // Submit-side failures fold into the one result type sync callers see.
    Response response;
    response.status = admitted;
    response.source = Source::Shed;
    return response;
  }
  return wait(slot, gen);
}

void InferenceServer::predict_batch(
    const std::vector<const graph::ProgramGraph*>& graphs,
    std::vector<Response>& out) {
  out.resize(graphs.size());
  // Admit every miss before waiting on any, so misses share micro-batches;
  // the first get() then pumps a full batch. Scratch recycles via the
  // arena, keeping the steady-state query loops of callers like
  // core::run_experiment off malloc.
  support::PoolVector<std::pair<std::size_t, Future>> pending;
  pending.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    StatusOr<Future> submitted = submit(Request(*graphs[i]));
    if (!submitted.ok()) {
      out[i] = Response{};
      out[i].status = submitted.status();
      out[i].source = Source::Shed;
      continue;
    }
    Future f = std::move(submitted).value();
    if (f.ready_)
      out[i] = f.get();
    else
      pending.emplace_back(i, std::move(f));
  }
  for (auto& [index, future] : pending) out[index] = future.get();
}

std::uint64_t InferenceServer::publish(ModelPtr model) {
  return slot_->publish(std::move(model));
}

void InferenceServer::attach_callback(std::uint32_t slot, std::uint64_t gen,
                                      ResponseCallback callback) {
  Response ready;
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    QuerySlot& s = slots_[slot];
    assert(s.gen == gen && "continuation outlived its slot");
    (void)gen;
    if (s.state == SlotState::Done) {
      ready = s.response;
      free_slot_locked(slot);
      fire = true;
    } else {
      s.callback = std::move(callback);
    }
  }
  if (fire) callback(ready);
}

// --- Serving loop -----------------------------------------------------------

void InferenceServer::pump_one(std::unique_lock<std::mutex>& lock,
                               bool wait_window) {
  assert(!pumping_ && !queue_.empty());
  pumping_ = true;
  if (wait_window && config_.max_wait_us > 0) {
    // Batch window: give concurrent clients max_wait_us to join before
    // flushing a sub-max_batch batch. Early-out as soon as it fills.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(config_.max_wait_us);
    while (static_cast<int>(queue_.size()) < config_.max_batch && !stop_) {
      if (cv_queue_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
  }
  batch_slots_.clear();
  batch_graphs_.clear();
  batch_fps_.clear();
  pump_fired_.clear();
  const auto pickup = Clock::now();
  while (!queue_.empty() &&
         static_cast<int>(batch_slots_.size()) < config_.max_batch) {
    const std::uint32_t slot = queue_.front();
    queue_.pop_front();
    QuerySlot& s = slots_[slot];
    const std::int64_t waited = us_between(s.admitted, pickup);
    if (s.deadline_us > 0 && waited >= s.deadline_us) {
      // Expired while queued: answer DeadlineExceeded instead of spending a
      // forward on a result nobody can use in time. Does not consume batch
      // capacity.
      ++deadline_exceeded_;
      Response response;
      response.status = Status::DeadlineExceeded();
      response.source = Source::Shed;
      response.queue_us = waited;
      resolve_slot_locked(slot, response, pump_fired_);
      continue;
    }
    s.response.queue_us = waited;
    batch_slots_.push_back(slot);
    // Copy graph/fingerprint into pump scratch now: outside the lock the
    // slots_ vector may be reallocated by a concurrent admission.
    batch_graphs_.push_back(s.graph);
    batch_fps_.push_back(s.fp);
  }
  // One consistent (model, version) snapshot answers the whole batch; a
  // concurrent publish only affects later batches. The snapshot's
  // shared_ptr keeps the model alive even if it is retired mid-forward.
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  if (!batch_slots_.empty()) {
    Status forward_status;
    std::int64_t compute_us = 0;
    lock.unlock();
    const auto t0 = Clock::now();
    try {
      published->model->predict_into(batch_graphs_, batch_preds_);
      compute_us = us_between(t0, Clock::now());
      for (std::size_t i = 0; i < batch_slots_.size(); ++i)
        cache_.insert(hash_combine64(published->version, batch_fps_[i]),
                      batch_preds_[i]);
    } catch (...) {
      // The query path is exception-free: a failed forward (realistically
      // allocation pressure) resolves the whole batch Internal instead of
      // unwinding into whichever client happened to be pumping.
      forward_status = Status::Internal("model forward failed");
    }
    lock.lock();
    if (!forward_status.ok()) internal_errors_ += batch_slots_.size();
    for (std::size_t i = 0; i < batch_slots_.size(); ++i) {
      Response response = slots_[batch_slots_[i]].response;  // queue_us
      response.model_version = published->version;
      response.compute_us = compute_us;
      response.status = forward_status;
      if (forward_status.ok()) {
        response.label = batch_preds_[i];
        response.source = Source::Batch;
      } else {
        // Not answered: shed-class, so the per-source buckets stay a
        // partition of every resolved response.
        response.source = Source::Shed;
      }
      resolve_slot_locked(batch_slots_[i], response, pump_fired_);
    }
    if (forward_status.ok()) {
      ++batches_;
      forwards_ += batch_slots_.size();
      max_batch_seen_ =
          std::max<std::uint64_t>(max_batch_seen_, batch_slots_.size());
      if (published->version != last_served_version_) {
        if (last_served_version_ != 0) ++model_swaps_;
        last_served_version_ = published->version;
      }
    }
  }
  // Hand the pump role back before running continuations: another pumper
  // may start (and reuse the scratch) as soon as pumping_ drops, so the
  // fired list moves to the stack first.
  FiredList fired = std::move(pump_fired_);
  pump_fired_.clear();
  pumping_ = false;
  cv_done_.notify_all();
  if (!fired.empty()) {
    lock.unlock();
    for (FiredCallback& f : fired) f.fn(f.response);
    lock.lock();
  }
}

Response InferenceServer::wait(std::uint32_t slot, std::uint64_t gen) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    QuerySlot& s = slots_[slot];
    assert(s.gen == gen && "future outlived its slot");
    (void)gen;
    if (s.state == SlotState::Done) {
      const Response response = s.response;
      free_slot_locked(slot);
      return response;
    }
    if (!pumping_ && !queue_.empty()) {
      // Caller participation: no active pumper, so drive a batch ourselves.
      // Skip the batch window — a waiting client gains nothing by idling,
      // and batch composition never changes any result. pump_one never
      // throws (a failed forward resolves Internal), so the slot is always
      // collected.
      pump_one(lock, /*wait_window=*/false);
      continue;
    }
    cv_done_.wait(lock);
  }
}

void InferenceServer::background_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  bool idle_trimmed = false;
  auto idle_since = Clock::now();
  while (!stop_) {
    if (!queue_.empty() || pumping_) {
      // Activity — whether this loop drives the batch or a waiting client
      // beat it to the pump role — re-arms the idle-trim trigger, so the
      // grace period always measures genuine quiet, not just time since
      // the loop's own last pump.
      idle_trimmed = false;
      if (pumping_)
        cv_done_.wait(lock);
      else
        pump_one(lock, /*wait_window=*/true);
      idle_since = Clock::now();
      continue;
    }
    if (config_.idle_trim_us > 0 && !idle_trimmed) {
      const auto deadline =
          idle_since + std::chrono::microseconds(config_.idle_trim_us);
      if (Clock::now() >= deadline) {
        // Grace period expired with the queue still empty: hand the
        // arena's cached blocks back to the system. Once per idle
        // episode — the next batch re-arms the trigger.
        lock.unlock();
        support::BufferPool::global().trim();
        lock.lock();
        idle_trimmed = true;
        ++idle_trims_;
        continue;
      }
      cv_queue_.wait_until(lock, deadline);
    } else {
      cv_queue_.wait(lock);
    }
  }
  loop_running_ = false;
  cv_done_.notify_all();
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.forwards = forwards_;
  out.batches = batches_;
  out.max_batch = max_batch_seen_;
  out.model_swaps = model_swaps_;
  out.idle_trims = idle_trims_;
  out.shed = shed_;
  out.rejected = rejected_;
  out.deadline_exceeded = deadline_exceeded_;
  out.internal_errors = internal_errors_;
  out.peak_queue = peak_queue_;
  out.cache = cache_.stats();
  // Responses by source — a partition of every resolved query. Cache hits
  // already count per-shard; forwards are exactly the Source::Batch
  // responses; every shed-class outcome (dropped, rejected at submit,
  // expired, failed forward) reported Source::Shed.
  out.source_cache = out.cache.hits;
  out.source_batch = forwards_;
  out.source_shed = shed_ + rejected_ + deadline_exceeded_ + internal_errors_;
  return out;
}

}  // namespace irgnn::serve
