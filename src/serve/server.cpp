#include "serve/server.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "graph/fingerprint.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace irgnn::serve {

namespace {
using Clock = std::chrono::steady_clock;
}

InferenceServer::InferenceServer(ModelPtr model, const ServerConfig& config)
    : InferenceServer(
          [&] {
            auto slot = std::make_shared<ModelSlot>();
            slot->publish(std::move(model));
            return slot;
          }(),
          config) {}

InferenceServer::InferenceServer(std::shared_ptr<ModelSlot> slot,
                                 const ServerConfig& config)
    : config_(config),
      slot_(std::move(slot)),
      cache_(config.cache_capacity, config.cache_shards) {
  assert(slot_ && slot_->snapshot()->model &&
         "InferenceServer requires a published model");
  config_.max_batch = std::max(1, config_.max_batch);
  // A worker-less pool would run the loop inline and never return; fall
  // back to client-driven pumping there.
  if (config_.background_loop &&
      support::ThreadPool::global().num_workers() > 0) {
    loop_running_ = true;
    loop_token_ = std::make_shared<LoopToken>();
    support::ThreadPool::global().submit([this, token = loop_token_] {
      {
        std::lock_guard<std::mutex> token_lock(token->mutex);
        if (token->cancelled) return;  // server already shut down
        token->started = true;
      }
      background_loop();
    });
  } else {
    config_.background_loop = false;
  }
}

InferenceServer::~InferenceServer() { shutdown(); }

void InferenceServer::shutdown() {
  if (loop_token_) {
    // Settle the race with the loop task's startup: if the pool has not
    // scheduled it yet (all workers busy or parked), cancel it — it will
    // eventually run, see the token, and return without touching this
    // (possibly destroyed) server.
    std::lock_guard<std::mutex> token_lock(loop_token_->mutex);
    if (!loop_token_->started) {
      loop_token_->cancelled = true;
      std::lock_guard<std::mutex> lock(mutex_);
      loop_running_ = false;
    }
  }
  std::unique_lock<std::mutex> lock(mutex_);
  if (!stop_) {
    stop_ = true;
    cv_queue_.notify_all();
    cv_done_.notify_all();
  }
  // Wait for a started loop task to unpark and exit so it can never touch
  // a destroyed server. Clients still waiting on futures drain the queue
  // themselves via the pump-while-waiting path.
  while (loop_running_) cv_done_.wait(lock);
}

// --- Future -----------------------------------------------------------------

InferenceServer::Future& InferenceServer::Future::operator=(
    Future&& other) noexcept {
  if (this != &other) {
    abandon();
    server_ = other.server_;
    slot_ = other.slot_;
    gen_ = other.gen_;
    ready_ = other.ready_;
    value_ = other.value_;
    other.server_ = nullptr;
    other.ready_ = false;
  }
  return *this;
}

int InferenceServer::Future::get() {
  if (ready_) {
    ready_ = false;
    return value_;
  }
  assert(server_ && "get() on an invalid future");
  InferenceServer* server = server_;
  server_ = nullptr;
  return server->wait(slot_, gen_);
}

void InferenceServer::Future::abandon() {
  if (!server_) return;
  std::lock_guard<std::mutex> lock(server_->mutex_);
  QuerySlot& slot = server_->slots_[slot_];
  if (slot.gen == gen_) {
    if (slot.state == SlotState::Done)
      server_->free_slot_locked(slot_);
    else
      slot.abandoned = true;  // the pump frees it after answering
  }
  server_ = nullptr;
}

// --- Admission --------------------------------------------------------------

std::uint32_t InferenceServer::alloc_slot_locked() {
  if (!free_slots_.empty()) {
    std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void InferenceServer::free_slot_locked(std::uint32_t slot) {
  QuerySlot& s = slots_[slot];
  ++s.gen;
  s.state = SlotState::Free;
  s.abandoned = false;
  s.graph = nullptr;
  free_slots_.push_back(slot);
}

InferenceServer::Future InferenceServer::submit(
    const graph::ProgramGraph& graph) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fp = graph::fingerprint(graph);
  const std::uint64_t version = slot_->snapshot()->version;
  int label = 0;
  if (cache_.lookup(hash_combine64(version, fp), &label))
    return Future(label);
  std::lock_guard<std::mutex> lock(mutex_);
  assert(!stop_ && "submit() after shutdown()");
  const std::uint32_t slot = alloc_slot_locked();
  QuerySlot& s = slots_[slot];
  s.graph = &graph;
  s.fp = fp;
  s.result = 0;
  s.state = SlotState::Queued;
  s.abandoned = false;
  queue_.push_back(slot);
  cv_queue_.notify_all();
  return Future(this, slot, s.gen);
}

int InferenceServer::predict(const graph::ProgramGraph& graph) {
  // Inlined hit path (rather than submit().get()) so a warm cache hit
  // provably performs zero heap allocations: fingerprint, snapshot and
  // lookup all run off preallocated storage.
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t fp = graph::fingerprint(graph);
  const std::uint64_t version = slot_->snapshot()->version;
  int label = 0;
  if (cache_.lookup(hash_combine64(version, fp), &label)) return label;
  std::uint32_t slot;
  std::uint64_t gen;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(!stop_ && "predict() after shutdown()");
    slot = alloc_slot_locked();
    QuerySlot& s = slots_[slot];
    s.graph = &graph;
    s.fp = fp;
    s.result = 0;
    s.state = SlotState::Queued;
    s.abandoned = false;
    gen = s.gen;
    queue_.push_back(slot);
    cv_queue_.notify_all();
  }
  return wait(slot, gen);
}

void InferenceServer::predict_batch(
    const std::vector<const graph::ProgramGraph*>& graphs,
    std::vector<int>& out) {
  out.resize(graphs.size());
  // Admit every miss before waiting on any, so misses share micro-batches;
  // the first get() then pumps a full batch. Scratch recycles via the
  // arena, keeping the steady-state query loops of callers like
  // core::run_experiment off malloc.
  support::PoolVector<std::pair<std::size_t, Future>> pending;
  pending.reserve(graphs.size());
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    Future f = submit(*graphs[i]);
    if (f.ready_)
      out[i] = f.get();
    else
      pending.emplace_back(i, std::move(f));
  }
  for (auto& [index, future] : pending) out[index] = future.get();
}

std::uint64_t InferenceServer::publish(ModelPtr model) {
  return slot_->publish(std::move(model));
}

// --- Serving loop -----------------------------------------------------------

void InferenceServer::pump_one(std::unique_lock<std::mutex>& lock,
                               bool wait_window) {
  assert(!pumping_ && !queue_.empty());
  pumping_ = true;
  if (wait_window && config_.max_wait_us > 0) {
    // Batch window: give concurrent clients max_wait_us to join before
    // flushing a sub-max_batch batch. Early-out as soon as it fills.
    const auto deadline =
        Clock::now() + std::chrono::microseconds(config_.max_wait_us);
    while (static_cast<int>(queue_.size()) < config_.max_batch && !stop_) {
      if (cv_queue_.wait_until(lock, deadline) == std::cv_status::timeout)
        break;
    }
  }
  batch_slots_.clear();
  batch_graphs_.clear();
  batch_fps_.clear();
  while (!queue_.empty() &&
         static_cast<int>(batch_slots_.size()) < config_.max_batch) {
    const std::uint32_t slot = queue_.front();
    queue_.pop_front();
    batch_slots_.push_back(slot);
    // Copy graph/fingerprint into pump scratch now: outside the lock the
    // slots_ vector may be reallocated by a concurrent admission.
    batch_graphs_.push_back(slots_[slot].graph);
    batch_fps_.push_back(slots_[slot].fp);
  }
  // One consistent (model, version) snapshot answers the whole batch; a
  // concurrent publish only affects later batches. The snapshot's
  // shared_ptr keeps the model alive even if it is retired mid-forward.
  const std::shared_ptr<const PublishedModel> published = slot_->snapshot();
  lock.unlock();
  try {
    published->model->predict_into(batch_graphs_, batch_preds_);
    for (std::size_t i = 0; i < batch_slots_.size(); ++i)
      cache_.insert(hash_combine64(published->version, batch_fps_[i]),
                    batch_preds_[i]);
  } catch (...) {
    // Return the batch to the front of the queue in admission order so no
    // query is lost, hand the pump role back, and wake everyone: another
    // pumper retries while the error surfaces from whoever drove this one.
    lock.lock();
    for (auto it = batch_slots_.rbegin(); it != batch_slots_.rend(); ++it)
      queue_.push_front(*it);
    pumping_ = false;
    cv_queue_.notify_all();
    cv_done_.notify_all();
    throw;
  }
  lock.lock();
  for (std::size_t i = 0; i < batch_slots_.size(); ++i) {
    QuerySlot& s = slots_[batch_slots_[i]];
    s.result = batch_preds_[i];
    s.state = SlotState::Done;
    if (s.abandoned) free_slot_locked(batch_slots_[i]);
  }
  ++batches_;
  forwards_ += batch_slots_.size();
  max_batch_seen_ = std::max<std::uint64_t>(max_batch_seen_,
                                            batch_slots_.size());
  if (published->version != last_served_version_) {
    if (last_served_version_ != 0) ++model_swaps_;
    last_served_version_ = published->version;
  }
  pumping_ = false;
  cv_done_.notify_all();
}

int InferenceServer::wait(std::uint32_t slot, std::uint64_t gen) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    QuerySlot& s = slots_[slot];
    assert(s.gen == gen && "future outlived its slot");
    (void)gen;
    if (s.state == SlotState::Done) {
      const int result = s.result;
      free_slot_locked(slot);
      return result;
    }
    if (!pumping_ && !queue_.empty()) {
      // Caller participation: no active pumper, so drive a batch ourselves.
      // Skip the batch window — a waiting client gains nothing by idling,
      // and batch composition never changes any result.
      try {
        pump_one(lock, /*wait_window=*/false);
      } catch (...) {
        // Our own query went back into the queue with the rest of the
        // batch; disown it so whichever pump answers it also frees the
        // slot, then surface the error (pump_one re-locked before
        // throwing, so the lock is held here).
        QuerySlot& own = slots_[slot];
        if (own.gen == gen) {
          if (own.state == SlotState::Done)
            free_slot_locked(slot);
          else
            own.abandoned = true;
        }
        throw;
      }
      continue;
    }
    cv_done_.wait(lock);
  }
}

void InferenceServer::background_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  bool idle_trimmed = false;
  auto idle_since = Clock::now();
  while (!stop_) {
    if (!queue_.empty() || pumping_) {
      // Activity — whether this loop drives the batch or a waiting client
      // beat it to the pump role — re-arms the idle-trim trigger, so the
      // grace period always measures genuine quiet, not just time since
      // the loop's own last pump.
      idle_trimmed = false;
      if (pumping_) {
        cv_done_.wait(lock);
      } else {
        try {
          pump_one(lock, /*wait_window=*/true);
        } catch (...) {
          // Nobody observes an exception thrown on the loop task, and the
          // batch was re-queued by pump_one. Stay alive (waiting clients
          // drive and surface their own failures; a later retry may
          // succeed, e.g. after transient memory pressure) but back off so
          // a persistent failure cannot hot-spin the worker.
          cv_queue_.wait_for(lock, std::chrono::milliseconds(1));
        }
      }
      idle_since = Clock::now();
      continue;
    }
    if (config_.idle_trim_us > 0 && !idle_trimmed) {
      const auto deadline =
          idle_since + std::chrono::microseconds(config_.idle_trim_us);
      if (Clock::now() >= deadline) {
        // Grace period expired with the queue still empty: hand the
        // arena's cached blocks back to the system. Once per idle
        // episode — the next batch re-arms the trigger.
        lock.unlock();
        support::BufferPool::global().trim();
        lock.lock();
        idle_trimmed = true;
        ++idle_trims_;
        continue;
      }
      cv_queue_.wait_until(lock, deadline);
    } else {
      cv_queue_.wait(lock);
    }
  }
  loop_running_ = false;
  cv_done_.notify_all();
}

ServerStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ServerStats out;
  out.queries = queries_.load(std::memory_order_relaxed);
  out.forwards = forwards_;
  out.batches = batches_;
  out.max_batch = max_batch_seen_;
  out.model_swaps = model_swaps_;
  out.idle_trims = idle_trims_;
  out.cache = cache_.stats();
  return out;
}

}  // namespace irgnn::serve
