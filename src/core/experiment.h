// The end-to-end evaluation harness reproducing the paper's Section IV.
//
// run_experiment() executes the full workflow for one machine:
//   step A/B  dataset augmentation + region graphs        (core/dataset)
//   step C    exhaustive exploration + label reduction    (sim/exploration)
//   step D    static GNN model, 10-fold cross-validation  (gnn/model)
//   step E    flag-sequence selection (explored / overall / predicted /
//             oracle)                                     (ml/decision_tree + GA)
//   baseline  dynamic counters model (Sanchez Barrera's classification tree
//             on package power + L3 miss ratio)           (ml/decision_tree)
//   hybrid    static/dynamic delegation with a 20% error threshold
//
// Every fig3..fig11 bench consumes the ExperimentResult; fig8 uses
// run_cross_architecture(); fig10/fig12 have dedicated helpers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "gnn/model.h"
#include "sim/exploration.h"

namespace irgnn::core {

struct ExperimentOptions {
  // Scale knobs (paper-scale: 1000 sequences; defaults keep benches fast).
  std::size_t num_sequences = 12;
  int num_labels = 13;
  int folds = 10;
  std::uint64_t seed = 0x5EED;
  double size_scale = 1.0;

  /// Max threads for every parallel stage (dataset compilation, exhaustive
  /// exploration, CV folds, minibatch gradient shards; <= 0: all workers of
  /// the global pool). The determinism contract guarantees bit-identical
  /// results for every value — this knob only trades wall-clock for cores.
  int num_threads = 0;

  // GNN hyper-parameters.
  int hidden_dim = 32;
  int num_layers = 2;
  int epochs = 24;
  float learning_rate = 5e-3f;

  // Hybrid model.
  double hybrid_threshold = 0.20;  // paper: 20% error triggers profiling
  int ga_population = 40;          // paper: 500 (scaled for wall-clock)
  int ga_generations = 8;
  int ga_subset = 10;              // paper: 10-of-256 feature subsets

  // Flag-prediction model label budget (paper: 2 on SKL, 4 on SNB).
  int flag_label_budget = 4;
};

struct RegionOutcome {
  std::string name;
  int fold = -1;
  int oracle_label = -1;       // best of the reduced label set
  int static_label = -1;       // GNN prediction via the explored flag seq
  int dynamic_label = -1;      // counters decision tree
  double full_time = 0;        // best time in the whole space
  double static_error = 0;     // reldiff(full_time, time[static])
  double dynamic_error = 0;
  double static_speedup = 0;   // vs the default configuration
  double dynamic_speedup = 0;
  double oracle_speedup = 0;   // best label in the reduced set
  double full_speedup = 0;     // full exploration
  // Hybrid routing.
  bool needs_profiling = false;     // truth: static_error > threshold
  bool hybrid_profiled = false;     // router decision
  double hybrid_error = 0;
  double hybrid_speedup = 0;
  std::vector<float> embedding;     // out-of-fold graph vector
  float static_confidence = 0;      // max softmax prob of the static model
};

struct ExperimentResult {
  sim::ExplorationTable table;
  std::vector<int> labels;  // configuration indices of the reduced labels
  std::vector<RegionOutcome> regions;

  // Per-fold mean errors (Fig. 4).
  std::vector<double> fold_static_error;
  std::vector<double> fold_dynamic_error;

  // Flag-sequence landscape (Fig. 5 / Fig. 11).
  std::vector<double> sequence_speedup;  // avg speedup when predicting with s
  int explored_sequence = 0;             // chosen from training regions only
  double explored_speedup = 0;
  double overall_speedup = 0;    // best single sequence, train+validation
  double predicted_speedup = 0;  // per-program flag prediction model
  double oracle_seq_speedup = 0;  // per-region best sequence

  // Aggregates.
  double static_speedup = 0;       // == explored_speedup
  double dynamic_speedup = 0;
  double hybrid_speedup = 0;
  double full_speedup = 0;
  double label_oracle_speedup = 0;
  double static_accuracy = 0;      // label-exact accuracy
  double dynamic_accuracy = 0;
  double hybrid_router_accuracy = 0;
  double hybrid_profiled_fraction = 0;

  // Serving-layer traffic (summed over folds in fold order). The fold query
  // loops stream their region queries through serve::InferenceServer, so
  // flag variants that optimize to structurally identical graphs are
  // answered from the fingerprint-keyed prediction cache instead of a
  // forward; deterministic for every thread count like everything above.
  // The fold servers run unbounded (max_queue = 0), so the admission-
  // control counters must read 0 — every query is admitted and answered;
  // they are surfaced (fig11's serve table) precisely to pin that no
  // experiment traffic is ever shed.
  std::uint64_t serve_queries = 0;
  std::uint64_t serve_forwards = 0;
  std::uint64_t serve_batches = 0;
  std::uint64_t serve_cache_hits = 0;
  std::uint64_t serve_shed = 0;
  std::uint64_t serve_rejected = 0;
  std::uint64_t serve_deadline_exceeded = 0;
};

ExperimentResult run_experiment(const sim::MachineDesc& machine,
                                const ExperimentOptions& options);

/// Cross-architecture transfer (Fig. 8): reuses `source`'s trained outcome,
/// translating each region's predicted configuration onto `target`'s space.
/// Returns (cross static speedup, cross dynamic speedup) on the target.
struct CrossArchResult {
  double cross_static_speedup = 0;
  double cross_dynamic_speedup = 0;
  double native_static_speedup = 0;
  double native_dynamic_speedup = 0;
};
CrossArchResult run_cross_architecture(const sim::MachineDesc& source,
                                       const sim::MachineDesc& target,
                                       const ExperimentOptions& options);

/// Input-size sensitivity (Fig. 10): optimizing with size-2's best
/// configurations and running size-1. Returns per-region speedup losses
///   L = S(size1, best-config(size1)) - S(size1, best-config(size2)).
struct InputSizeResult {
  std::vector<std::string> regions;
  std::vector<double> speedup_loss;
  double native_speedup = 0;     // size-1 optimized natively
  double transferred_speedup = 0;  // size-2 configs applied to size-1
};
InputSizeResult run_input_size_study(const sim::MachineDesc& machine,
                                     const ExperimentOptions& options);

}  // namespace irgnn::core
