#include "core/experiment.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "ml/cross_validation.h"
#include "ml/decision_tree.h"
#include "ml/genetic_selector.h"
#include "serve/server.h"
#include "support/statistics.h"
#include "support/thread_pool.h"
#include "tensor/tensor.h"

namespace irgnn::core {

namespace {

/// time of a region under the l-th reduced label.
double label_time(const sim::ExplorationTable& table,
                  const std::vector<int>& labels, std::size_t region,
                  int label) {
  return table.time[region][labels[label]];
}

/// The fold servers run unbounded, so every Response must come back Ok; a
/// non-Ok response (a failed forward surfacing as Internal) means the
/// experiment's numbers would be built on a label of -1 — fail loudly
/// instead, in Release too (an assert would compile out under NDEBUG and
/// let labels[-1] read out of bounds).
void check_served(const serve::Response& response) {
  if (response.ok()) return;
  std::fprintf(stderr,
               "run_experiment: fold server returned %s (%s); aborting "
               "rather than folding a shed/failed query into the results\n",
               response.status.code_name(), response.status.message());
  std::abort();
}

gnn::ModelConfig model_config(const ExperimentOptions& options,
                              int num_labels, std::uint64_t fold_seed) {
  gnn::ModelConfig cfg;
  cfg.vocab_size = graph::vocabulary_size();
  cfg.num_labels = num_labels;
  cfg.hidden_dim = options.hidden_dim;
  cfg.num_layers = options.num_layers;
  cfg.epochs = options.epochs;
  cfg.learning_rate = options.learning_rate;
  cfg.seed = fold_seed;
  cfg.num_threads = options.num_threads;
  return cfg;
}

/// Greedy subset of sequences covering the per-region best-sequence gains
/// (the paper's procedure for selecting the flag-model's label set).
std::vector<int> reduce_sequences(
    const std::vector<std::vector<double>>& speedup_by_region_seq,
    int budget) {
  const std::size_t R = speedup_by_region_seq.size();
  const std::size_t S = R ? speedup_by_region_seq[0].size() : 0;
  std::vector<int> chosen;
  std::vector<double> covered(R, 0.0);
  while (static_cast<int>(chosen.size()) < budget &&
         chosen.size() < S) {
    int best_seq = -1;
    double best_total = -1;
    for (std::size_t s = 0; s < S; ++s) {
      if (std::find(chosen.begin(), chosen.end(), static_cast<int>(s)) !=
          chosen.end())
        continue;
      double total = 0;
      for (std::size_t r = 0; r < R; ++r)
        total += std::max(covered[r], speedup_by_region_seq[r][s]);
      if (total > best_total) {
        best_total = total;
        best_seq = static_cast<int>(s);
      }
    }
    chosen.push_back(best_seq);
    for (std::size_t r = 0; r < R; ++r)
      covered[r] =
          std::max(covered[r], speedup_by_region_seq[r][best_seq]);
  }
  return chosen;
}

}  // namespace

ExperimentResult run_experiment(const sim::MachineDesc& machine,
                                const ExperimentOptions& options) {
  ExperimentResult result;

  // The tensor kernels read a process-global parallelism cap; apply the
  // experiment's knob so "num_threads caps every parallel stage" holds for
  // library callers too, not just for benches that set it themselves.
  tensor::set_kernel_parallelism(options.num_threads);

  // Steps A+B: augmentation and graphs. The shared form pools storage, so
  // every figure of a bench run reuses one compiled dataset.
  const std::shared_ptr<const Dataset> dataset_ptr = build_dataset_shared(
      {options.num_sequences, options.seed, options.num_threads});
  const Dataset& dataset = *dataset_ptr;
  const std::size_t R = dataset.num_regions();
  const std::size_t S = dataset.num_sequences();

  // Step C: exhaustive exploration once, label reduction.
  result.table = sim::explore(machine, workloads::suite_traits(),
                              options.size_scale, options.num_threads);
  result.labels = sim::reduce_labels(result.table, options.num_labels);
  const int L = static_cast<int>(result.labels.size());
  std::vector<int> oracle = sim::best_labels(result.table, result.labels);

  result.regions.assign(R, RegionOutcome{});
  for (std::size_t r = 0; r < R; ++r) {
    RegionOutcome& out = result.regions[r];
    out.name = dataset.regions[r];
    out.oracle_label = oracle[r];
    out.full_time = result.table.time[r][result.table.best_config(r)];
    out.full_speedup = result.table.speedup(r, result.table.best_config(r));
    out.oracle_speedup =
        result.table.time[r][result.table.default_index] /
        label_time(result.table, result.labels, r, oracle[r]);
  }

  // Step D: 10-fold cross-validated static model.
  auto folds = ml::k_fold(static_cast<int>(R), options.folds, options.seed);
  // Per-(region, sequence) predicted label from the fold where the region
  // was in validation (drives Fig. 5 and the flag-selection strategies).
  std::vector<std::vector<int>> pred_by_seq(R, std::vector<int>(S, 0));

  // Folds are embarrassingly parallel: each writes only the RegionOutcome /
  // pred_by_seq rows of its own (disjoint) validation regions, and every
  // model seeds from (seed, fold) — so fold order and thread count never
  // change a single bit of the result.
  std::vector<serve::ServerStats> fold_serve_stats(folds.size());
  ml::for_each_fold(folds.size(), options.num_threads, [&](std::size_t f) {
    const ml::Fold& fold = folds[f];
    // Training set: every augmented variant of every training region.
    std::vector<const graph::ProgramGraph*> train_graphs;
    std::vector<int> train_labels;
    for (int r : fold.train_indices) {
      for (std::size_t s = 0; s < S; ++s) {
        train_graphs.push_back(&dataset.graph(r, s));
        train_labels.push_back(oracle[r]);
      }
    }
    gnn::StaticModel model(
        model_config(options, L, hash_combine64(options.seed, f)));
    model.train(train_graphs, train_labels);

    // The fold's label queries stream through an inference server pinned to
    // the freshly trained model: flag variants that optimized a region to
    // the same IR share a structural fingerprint and are answered from the
    // prediction cache instead of a second forward. background_loop stays
    // off — the fold already runs inside the pool, so the querying thread
    // drives the micro-batches itself; answers are bit-identical to the
    // direct predict_into calls this replaces, for every batch composition.
    // max_queue stays 0 (unbounded): experiment traffic is cooperative and
    // may never be shed — every Response must come back Ok, which the
    // asserts below and the zeroed shed counters in fig11's table pin.
    serve::ServerConfig serve_config;
    serve_config.background_loop = false;
    serve_config.cache_capacity = 4096;
    serve_config.max_queue = 0;
    serve::InferenceServer server(serve::borrow_model(model), serve_config);

    // Step E (explored method): best average sequence on training regions.
    // The query loop reuses one graph-pointer batch and one response
    // buffer; the model's persistent inference context recycles the packed
    // GraphBatch underneath, so the S*folds queries stop rebuilding state.
    double best_seq_speedup = -1;
    int explored_seq = 0;
    std::vector<const graph::ProgramGraph*> batch;
    std::vector<serve::Response> responses;
    for (std::size_t s = 0; s < S; ++s) {
      batch.clear();
      for (int r : fold.train_indices) batch.push_back(&dataset.graph(r, s));
      server.predict_batch(batch, responses);
      double total = 0;
      for (std::size_t i = 0; i < responses.size(); ++i) {
        check_served(responses[i]);
        int r = fold.train_indices[i];
        total += result.table.time[r][result.table.default_index] /
                 label_time(result.table, result.labels, r,
                            responses[i].label);
      }
      double avg = total / responses.size();
      if (avg > best_seq_speedup) {
        best_seq_speedup = avg;
        explored_seq = static_cast<int>(s);
      }
    }

    // Validation predictions: all sequences (Fig. 5) + the explored one.
    for (std::size_t s = 0; s < S; ++s) {
      batch.clear();
      for (int r : fold.validation_indices)
        batch.push_back(&dataset.graph(r, s));
      server.predict_batch(batch, responses);
      for (std::size_t i = 0; i < responses.size(); ++i) {
        check_served(responses[i]);
        pred_by_seq[fold.validation_indices[i]][s] = responses[i].label;
      }
    }
    fold_serve_stats[f] = server.stats();
    // Out-of-fold embeddings (graph vectors) from the fixed sequence 0 —
    // the features of the hybrid and flag-prediction models. One evaluate()
    // call shares a single batch build between the log-probs and the
    // embeddings instead of re-packing the same graphs twice.
    batch.clear();
    for (int r : fold.validation_indices) batch.push_back(&dataset.graph(r, 0));
    gnn::Evaluation eval;
    model.evaluate(batch, eval, /*want_embeddings=*/true);
    const int L_model = model.config().num_labels;
    const int H = model.config().hidden_dim;
    for (std::size_t i = 0; i < fold.validation_indices.size(); ++i) {
      int r = fold.validation_indices[i];
      result.regions[r].fold = static_cast<int>(f);
      result.regions[r].static_label = pred_by_seq[r][explored_seq];
      result.regions[r].embedding.assign(
          eval.embeddings.begin() + i * static_cast<std::size_t>(H),
          eval.embeddings.begin() + (i + 1) * static_cast<std::size_t>(H));
      float best = -1e30f;
      for (int l = 0; l < L_model; ++l)
        best = std::max(best,
                        eval.log_probs[i * static_cast<std::size_t>(L_model) +
                                       static_cast<std::size_t>(l)]);
      result.regions[r].static_confidence = std::exp(best);
    }
    if (f == 0) result.explored_sequence = explored_seq;
  });
  // Serve traffic folds in fold order (counters, not floats, but the same
  // deterministic-reduction discipline as everything else).
  for (const serve::ServerStats& st : fold_serve_stats) {
    result.serve_queries += st.queries;
    result.serve_forwards += st.forwards;
    result.serve_batches += st.batches;
    result.serve_cache_hits += st.cache.hits;
    result.serve_shed += st.shed;
    result.serve_rejected += st.rejected;
    result.serve_deadline_exceeded += st.deadline_exceeded;
  }

  // Static errors/speedups from the explored-sequence predictions.
  for (std::size_t r = 0; r < R; ++r) {
    RegionOutcome& out = result.regions[r];
    double t = label_time(result.table, result.labels, r, out.static_label);
    out.static_error = relative_difference(out.full_time, t);
    out.static_speedup =
        result.table.time[r][result.table.default_index] / t;
    out.needs_profiling = out.static_error > options.hybrid_threshold;
  }

  // Dynamic baseline: classification tree on (package power, L3 miss ratio)
  // collected at the default configuration — Sanchez Barrera et al.'s best
  // reaction-based model.
  {
    // The counter pair of Sanchez Barrera et al.'s best model (package
    // power + L3 miss ratio), observed at each reaction probe.
    std::vector<std::vector<float>> features(R);
    for (std::size_t r = 0; r < R; ++r) {
      for (const auto& counters : result.table.probe_counters[r]) {
        features[r].push_back(static_cast<float>(counters.package_power));
        features[r].push_back(static_cast<float>(counters.l3_miss_ratio));
      }
    }
    // Each fold scores only its own validation regions — parallel-safe.
    ml::for_each_fold(folds.size(), options.num_threads, [&](std::size_t f) {
      const ml::Fold& fold = folds[f];
      std::vector<std::vector<float>> X;
      std::vector<int> y;
      for (int r : fold.train_indices) {
        X.push_back(features[r]);
        y.push_back(oracle[r]);
      }
      ml::DecisionTree tree;
      tree.fit(X, y);
      for (int r : fold.validation_indices) {
        RegionOutcome& out = result.regions[r];
        out.dynamic_label = tree.predict(features[r]);
        double t =
            label_time(result.table, result.labels, r, out.dynamic_label);
        out.dynamic_error = relative_difference(out.full_time, t);
        out.dynamic_speedup =
            result.table.time[r][result.table.default_index] / t;
      }
    });
  }

  // Per-fold mean errors (Fig. 4).
  result.fold_static_error.assign(folds.size(), 0.0);
  result.fold_dynamic_error.assign(folds.size(), 0.0);
  for (std::size_t f = 0; f < folds.size(); ++f) {
    double se = 0, de = 0;
    for (int r : folds[f].validation_indices) {
      se += result.regions[r].static_error;
      de += result.regions[r].dynamic_error;
    }
    double n = static_cast<double>(folds[f].validation_indices.size());
    result.fold_static_error[f] = se / n;
    result.fold_dynamic_error[f] = de / n;
  }

  // Flag-sequence landscape over validation predictions (Fig. 5).
  std::vector<std::vector<double>> seq_speedup_matrix(
      R, std::vector<double>(S, 0.0));
  result.sequence_speedup.assign(S, 0.0);
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t s = 0; s < S; ++s) {
      double sp = result.table.time[r][result.table.default_index] /
                  label_time(result.table, result.labels, r,
                             pred_by_seq[r][s]);
      seq_speedup_matrix[r][s] = sp;
      result.sequence_speedup[s] += sp / static_cast<double>(R);
    }
  }
  result.overall_speedup = *std::max_element(result.sequence_speedup.begin(),
                                             result.sequence_speedup.end());
  double oracle_seq_total = 0;
  for (std::size_t r = 0; r < R; ++r)
    oracle_seq_total += *std::max_element(seq_speedup_matrix[r].begin(),
                                          seq_speedup_matrix[r].end());
  result.oracle_seq_speedup = oracle_seq_total / static_cast<double>(R);

  // Flag-prediction model (Sec. III-E second method): decision tree over the
  // GA-subset graph vectors predicting which sequence to use.
  {
    auto seq_labels = reduce_sequences(seq_speedup_matrix,
                                       options.flag_label_budget);
    // Per-region best sequence among the selected set.
    std::vector<int> best_seq_label(R, 0);
    for (std::size_t r = 0; r < R; ++r) {
      double best = -1;
      for (std::size_t l = 0; l < seq_labels.size(); ++l) {
        double sp = seq_speedup_matrix[r][seq_labels[l]];
        if (sp > best) {
          best = sp;
          best_seq_label[r] = static_cast<int>(l);
        }
      }
    }
    std::vector<std::vector<float>> X(R);
    for (std::size_t r = 0; r < R; ++r) X[r] = result.regions[r].embedding;
    // Per-fold partial speedups fold in fold order below: a deterministic
    // reduction no matter which threads ran the folds.
    std::vector<double> fold_total(folds.size(), 0.0);
    ml::for_each_fold(folds.size(), options.num_threads, [&](std::size_t f) {
      const ml::Fold& fold = folds[f];
      std::vector<std::vector<float>> train_x;
      std::vector<int> train_y;
      for (int r : fold.train_indices) {
        train_x.push_back(X[r]);
        train_y.push_back(best_seq_label[r]);
      }
      // GA feature-subset selection, then the final tree on the subset.
      const int num_features = static_cast<int>(train_x[0].size());
      ml::GeneticSelectorOptions ga;
      ga.population_size = options.ga_population;
      ga.generations = options.ga_generations;
      ga.subset_size = std::min(options.ga_subset, num_features);
      ga.seed = hash_combine64(options.seed, 0xF1A6);
      auto selected = ml::select_features(
          num_features, ml::decision_tree_cv_fitness(train_x, train_y), ga);
      auto restrict_row = [&](const std::vector<float>& row) {
        std::vector<float> out;
        for (int fidx : selected.best_subset) out.push_back(row[fidx]);
        return out;
      };
      std::vector<std::vector<float>> train_sub;
      for (const auto& row : train_x) train_sub.push_back(restrict_row(row));
      ml::DecisionTree tree;
      tree.fit(train_sub, train_y);
      for (int r : fold.validation_indices) {
        int pred = tree.predict(restrict_row(X[r]));
        fold_total[f] += seq_speedup_matrix[r][seq_labels[pred]];
      }
    });
    double total = 0;
    for (double t : fold_total) total += t;
    result.predicted_speedup = total / static_cast<double>(R);
  }

  // Hybrid model (Sec. III-D2): route regions whose predicted static error
  // exceeds the threshold to the dynamic model.
  {
    // Router features: the graph vector plus the static model's own
    // confidence (an unsure model is precisely what needs profiling).
    std::vector<std::vector<float>> X(R);
    std::vector<int> route(R);
    for (std::size_t r = 0; r < R; ++r) {
      X[r] = result.regions[r].embedding;
      X[r].push_back(result.regions[r].static_confidence);
      route[r] = result.regions[r].needs_profiling ? 1 : 0;
    }
    std::vector<int> fold_correct(folds.size(), 0);
    ml::for_each_fold(folds.size(), options.num_threads, [&](std::size_t f) {
      const ml::Fold& fold = folds[f];
      std::vector<std::vector<float>> train_x;
      std::vector<int> train_y;
      for (int r : fold.train_indices) {
        train_x.push_back(X[r]);
        train_y.push_back(route[r]);
      }
      const int num_features = static_cast<int>(train_x[0].size());
      ml::GeneticSelectorOptions ga;
      ga.population_size = options.ga_population;
      ga.generations = options.ga_generations;
      ga.subset_size = std::min(options.ga_subset, num_features);
      ga.seed = hash_combine64(options.seed, 0x6A6A);
      auto selected = ml::select_features(
          num_features, ml::decision_tree_cv_fitness(train_x, train_y), ga);
      auto restrict_row = [&](const std::vector<float>& row) {
        std::vector<float> out;
        for (int fidx : selected.best_subset) out.push_back(row[fidx]);
        return out;
      };
      std::vector<std::vector<float>> train_sub;
      for (const auto& row : train_x) train_sub.push_back(restrict_row(row));
      ml::DecisionTree router;
      router.fit(train_sub, train_y);
      for (int r : fold.validation_indices) {
        RegionOutcome& out = result.regions[r];
        out.hybrid_profiled = router.predict(restrict_row(X[r])) == 1;
        fold_correct[f] += (out.hybrid_profiled == out.needs_profiling);
        int label = out.hybrid_profiled ? out.dynamic_label
                                        : out.static_label;
        double t = label_time(result.table, result.labels, r, label);
        out.hybrid_error = relative_difference(out.full_time, t);
        out.hybrid_speedup =
            result.table.time[r][result.table.default_index] / t;
      }
    });
    int correct_routing = 0;
    for (int c : fold_correct) correct_routing += c;
    result.hybrid_router_accuracy =
        static_cast<double>(correct_routing) / static_cast<double>(R);
  }

  // Aggregates.
  double stat = 0, dyn = 0, hyb = 0, full = 0, orc = 0;
  int stat_ok = 0, dyn_ok = 0, profiled = 0;
  for (const RegionOutcome& out : result.regions) {
    stat += out.static_speedup;
    dyn += out.dynamic_speedup;
    hyb += out.hybrid_speedup;
    full += out.full_speedup;
    orc += out.oracle_speedup;
    stat_ok += (out.static_label == out.oracle_label);
    dyn_ok += (out.dynamic_label == out.oracle_label);
    profiled += out.hybrid_profiled;
  }
  double n = static_cast<double>(R);
  result.static_speedup = stat / n;
  result.explored_speedup = result.static_speedup;
  result.dynamic_speedup = dyn / n;
  result.hybrid_speedup = hyb / n;
  result.full_speedup = full / n;
  result.label_oracle_speedup = orc / n;
  result.static_accuracy = stat_ok / n;
  result.dynamic_accuracy = dyn_ok / n;
  result.hybrid_profiled_fraction = profiled / n;
  return result;
}

CrossArchResult run_cross_architecture(const sim::MachineDesc& source,
                                       const sim::MachineDesc& target,
                                       const ExperimentOptions& options) {
  ExperimentResult src = run_experiment(source, options);
  ExperimentResult tgt = run_experiment(target, options);

  auto find_config = [&](const sim::Configuration& c) -> int {
    for (std::size_t i = 0; i < tgt.table.configurations.size(); ++i)
      if (tgt.table.configurations[i] == c) return static_cast<int>(i);
    return tgt.table.default_index;
  };
  auto cross_speedup = [&](auto label_of) {
    double total = 0;
    for (std::size_t r = 0; r < src.regions.size(); ++r) {
      sim::Configuration c =
          src.table.configurations[src.labels[label_of(src.regions[r])]];
      int idx = find_config(sim::translate_configuration(c, source, target));
      total += tgt.table.speedup(r, idx);
    }
    return total / static_cast<double>(src.regions.size());
  };

  CrossArchResult out;
  out.native_static_speedup = tgt.static_speedup;
  out.native_dynamic_speedup = tgt.dynamic_speedup;
  out.cross_static_speedup =
      cross_speedup([](const RegionOutcome& r) { return r.static_label; });
  out.cross_dynamic_speedup =
      cross_speedup([](const RegionOutcome& r) { return r.dynamic_label; });
  return out;
}

InputSizeResult run_input_size_study(const sim::MachineDesc& machine,
                                     const ExperimentOptions& options) {
  InputSizeResult out;
  out.regions = workloads::input_size_subset();
  std::vector<sim::WorkloadTraits> traits;
  for (const auto& name : out.regions) {
    const workloads::RegionSpec* spec = workloads::find_region(name);
    assert(spec && "unknown region in input-size subset");
    traits.push_back(spec->traits);
  }
  sim::ExplorationTable size1 =
      sim::explore(machine, traits, 1.0, options.num_threads);
  // Each region owns its result slots; the means fold in region order after.
  const std::size_t R = out.regions.size();
  out.speedup_loss.assign(R, 0.0);
  std::vector<double> region_native(R, 0.0), region_transfer(R, 0.0);
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(R), options.num_threads,
      [&](std::int64_t r) {
        double size2_scale =
            workloads::find_region(out.regions[r])->traits.size2_scale;
        // Explore size-2 with the same configuration enumeration.
        sim::Simulator simulator(machine);
        std::size_t best2 = 0;
        double best2_time = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < size1.configurations.size(); ++c) {
          double t = simulator
                         .simulate(traits[r], size1.configurations[c],
                                   size2_scale)
                         .cycles;
          if (t < best2_time) {
            best2_time = t;
            best2 = c;
          }
        }
        region_native[r] = size1.speedup(r, size1.best_config(r));
        region_transfer[r] = size1.speedup(r, best2);
        out.speedup_loss[r] = region_native[r] - region_transfer[r];
      });
  double native = 0, transferred = 0;
  for (std::size_t r = 0; r < R; ++r) {
    native += region_native[r];
    transferred += region_transfer[r];
  }
  out.native_speedup = native / static_cast<double>(R);
  out.transferred_speedup = transferred / static_cast<double>(R);
  return out;
}

}  // namespace irgnn::core
