// Dataset construction (steps A + B of the paper's workflow): every region
// is compiled under every flag sequence; the OpenMP-outlined region is
// extracted from each variant and turned into a ProGraML-style graph.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/program_graph.h"
#include "passes/flag_sequence.h"
#include "workloads/suite.h"

namespace irgnn::core {

struct Dataset {
  std::vector<std::string> regions;              // suite order
  std::vector<passes::FlagSequence> sequences;   // augmentation sequences
  /// graphs[r][s] = graph of region r compiled under sequence s.
  std::vector<std::vector<graph::ProgramGraph>> graphs;

  const graph::ProgramGraph& graph(std::size_t region,
                                   std::size_t sequence) const {
    return graphs[region][sequence];
  }
  std::size_t num_regions() const { return regions.size(); }
  std::size_t num_sequences() const { return sequences.size(); }
};

struct DatasetOptions {
  std::size_t num_sequences = 12;
  std::uint64_t seed = 0xDA7A;
  /// Max threads for variant compilation (<= 0: all pool workers).
  int num_threads = 0;
};

/// Builds the dataset for the whole benchmark suite. Compilation of the
/// variants is parallelized across regions.
Dataset build_dataset(const DatasetOptions& options = {});

}  // namespace irgnn::core
