// Dataset construction (steps A + B of the paper's workflow): every region
// is compiled under every flag sequence; the OpenMP-outlined region is
// extracted from each variant and turned into a ProGraML-style graph.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/program_graph.h"
#include "passes/flag_sequence.h"
#include "support/status.h"
#include "workloads/suite.h"

namespace irgnn::core {

struct Dataset {
  std::vector<std::string> regions;              // suite order
  std::vector<passes::FlagSequence> sequences;   // augmentation sequences
  /// graphs[r][s] = graph of region r compiled under sequence s.
  std::vector<std::vector<graph::ProgramGraph>> graphs;

  const graph::ProgramGraph& graph(std::size_t region,
                                   std::size_t sequence) const {
    return graphs[region][sequence];
  }
  std::size_t num_regions() const { return regions.size(); }
  std::size_t num_sequences() const { return sequences.size(); }
};

struct DatasetOptions {
  std::size_t num_sequences = 12;
  std::uint64_t seed = 0xDA7A;
  /// Max threads for variant compilation (<= 0: all pool workers).
  int num_threads = 0;
};

/// Builds the dataset for the whole benchmark suite. Compilation of the
/// variants is parallelized across regions. Returns a copy of the pooled
/// dataset (see build_dataset_shared) — callers that only read should
/// prefer the shared form and skip the copy.
Dataset build_dataset(const DatasetOptions& options = {});

/// Pooled dataset construction: repeated calls with identical options in
/// one process share one immutable Dataset instead of re-running the
/// compile/extract/build pipeline and re-allocating graphs[r][s]. The memo
/// is keyed on every DatasetOptions field (num_threads included, so
/// determinism tests that compare thread counts still exercise separate
/// builds) and keeps the most recently used handful of datasets alive.
std::shared_ptr<const Dataset> build_dataset_shared(
    const DatasetOptions& options = {});

/// Loads a dataset from a .irds corpus cache (corpus/dataset_cache.h):
/// one region per cached graph, a single empty flag sequence, zero graph
/// rebuilds. Malformed or truncated caches are a Status, never a crash.
support::Status load_corpus_dataset(const std::string& path, Dataset* out);

}  // namespace irgnn::core
