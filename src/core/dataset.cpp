#include "core/dataset.h"

#include <cassert>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "support/thread_pool.h"

#include "corpus/dataset_cache.h"
#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/verifier.h"
#include "passes/pass.h"

namespace irgnn::core {

namespace {

Dataset build_dataset_uncached(const DatasetOptions& options) {
  const auto& suite = workloads::benchmark_suite();
  Dataset dataset;
  dataset.sequences =
      passes::sample_flag_sequences(options.num_sequences, options.seed);
  dataset.regions.reserve(suite.size());
  for (const auto& spec : suite) dataset.regions.push_back(spec.name);
  dataset.graphs.assign(suite.size(), {});

  passes::register_builtin_passes();

  // Regions compile independently; each writes only its own graphs slot.
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(suite.size()), options.num_threads,
      [&](std::int64_t r) {
        const auto base_module = workloads::build_region_module(suite[r]);
        std::vector<graph::ProgramGraph> variants;
        variants.reserve(dataset.sequences.size());
        for (const auto& sequence : dataset.sequences) {
          auto variant = base_module->clone();
          passes::PassManager pm(sequence.passes);
          pm.run(*variant);
          assert(ir::verify(*variant) && "flag sequence broke the region IR");
          auto region_module = graph::extract_region(
              *variant, workloads::outlined_name(suite[r].kernel.name));
          if (!region_module)
            throw std::runtime_error("missing outlined region for " +
                                     suite[r].name);
          graph::ProgramGraph g = graph::build_graph(*region_module);
          g.name = suite[r].name + "@" +
                   std::to_string(&sequence - dataset.sequences.data());
          variants.push_back(std::move(g));
        }
        dataset.graphs[r] = std::move(variants);
      });
  return dataset;
}

struct MemoEntry {
  DatasetOptions options;
  std::shared_ptr<const Dataset> dataset;
};

bool same_options(const DatasetOptions& a, const DatasetOptions& b) {
  return a.num_sequences == b.num_sequences && a.seed == b.seed &&
         a.num_threads == b.num_threads;
}

}  // namespace

std::shared_ptr<const Dataset> build_dataset_shared(
    const DatasetOptions& options) {
  // Small MRU pool: experiments re-enter with the same options many times
  // (run_experiment per figure, tests, benches); a handful of distinct
  // option sets covers them all without pinning unbounded graph storage.
  static std::mutex mutex;
  static std::vector<MemoEntry> pool;  // back = most recently used
  constexpr std::size_t kPoolCap = 4;

  {
    std::lock_guard<std::mutex> lock(mutex);
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (same_options(pool[i].options, options)) {
        MemoEntry hit = pool[i];
        pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
        pool.push_back(hit);
        return hit.dataset;
      }
    }
  }

  // Build outside the lock: a second thread asking for different options
  // must not serialize behind this compile, and the pipeline itself uses
  // the shared pool's workers. A racing identical request may build twice;
  // both results are bit-identical and the memo keeps one.
  auto built = std::make_shared<const Dataset>(build_dataset_uncached(options));

  std::lock_guard<std::mutex> lock(mutex);
  for (const auto& entry : pool)
    if (same_options(entry.options, options)) return entry.dataset;
  if (pool.size() == kPoolCap) pool.erase(pool.begin());
  pool.push_back(MemoEntry{options, built});
  return built;
}

Dataset build_dataset(const DatasetOptions& options) {
  return *build_dataset_shared(options);
}

support::Status load_corpus_dataset(const std::string& path, Dataset* out) {
  corpus::CacheLimits limits;
  limits.max_feature = static_cast<std::int32_t>(graph::vocabulary_size()) - 1;
  corpus::DatasetCacheReader reader;
  support::Status status = reader.open(path, limits);
  if (!status.ok()) return status;

  *out = Dataset{};
  // The cache is flat (regions only — augmentation sequences are a property
  // of the synthetic pipeline, not of ingested code), so the dataset has
  // one unnamed "as ingested" sequence and graphs[r] of size 1.
  out->sequences.resize(1);
  out->regions.reserve(static_cast<std::size_t>(reader.num_graphs()));
  out->graphs.resize(static_cast<std::size_t>(reader.num_graphs()));
  for (std::uint64_t i = 0; i < reader.num_graphs(); ++i) {
    out->regions.emplace_back(reader.graph_name(i));
    out->graphs[i].resize(1);
    reader.materialize(i, &out->graphs[i][0]);
  }
  return support::Status::Ok();
}

}  // namespace irgnn::core
