#include "core/dataset.h"

#include <cassert>
#include <cstdint>
#include <stdexcept>

#include "support/thread_pool.h"

#include "graph/graph_builder.h"
#include "graph/region_extractor.h"
#include "ir/verifier.h"
#include "passes/pass.h"

namespace irgnn::core {

Dataset build_dataset(const DatasetOptions& options) {
  const auto& suite = workloads::benchmark_suite();
  Dataset dataset;
  dataset.sequences =
      passes::sample_flag_sequences(options.num_sequences, options.seed);
  dataset.regions.reserve(suite.size());
  for (const auto& spec : suite) dataset.regions.push_back(spec.name);
  dataset.graphs.assign(suite.size(), {});

  passes::register_builtin_passes();

  // Regions compile independently; each writes only its own graphs slot.
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(suite.size()), options.num_threads,
      [&](std::int64_t r) {
        const auto base_module = workloads::build_region_module(suite[r]);
        std::vector<graph::ProgramGraph> variants;
        variants.reserve(dataset.sequences.size());
        for (const auto& sequence : dataset.sequences) {
          auto variant = base_module->clone();
          passes::PassManager pm(sequence.passes);
          pm.run(*variant);
          assert(ir::verify(*variant) && "flag sequence broke the region IR");
          auto region_module = graph::extract_region(
              *variant, workloads::outlined_name(suite[r].kernel.name));
          if (!region_module)
            throw std::runtime_error("missing outlined region for " +
                                     suite[r].name);
          graph::ProgramGraph g = graph::build_graph(*region_module);
          g.name = suite[r].name + "@" +
                   std::to_string(&sequence - dataset.sequences.data());
          variants.push_back(std::move(g));
        }
        dataset.graphs[r] = std::move(variants);
      });
  return dataset;
}

}  // namespace irgnn::core
