#include "sim/exploration.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>

#include "support/thread_pool.h"

namespace irgnn::sim {

std::size_t ExplorationTable::region_index(const std::string& name) const {
  for (std::size_t r = 0; r < regions.size(); ++r)
    if (regions[r] == name) return r;
  return npos;
}

std::size_t ExplorationTable::best_config(std::size_t region) const {
  const auto& row = time[region];
  return static_cast<std::size_t>(
      std::min_element(row.begin(), row.end()) - row.begin());
}

double ExplorationTable::full_exploration_speedup() const {
  double acc = 0;
  for (std::size_t r = 0; r < regions.size(); ++r)
    acc += speedup(r, best_config(r));
  return regions.empty() ? 0.0 : acc / static_cast<double>(regions.size());
}

ExplorationTable explore(const MachineDesc& machine,
                         const std::vector<WorkloadTraits>& regions,
                         double size_scale, int num_threads) {
  ExplorationTable table;
  table.configurations = enumerate_configurations(machine);
  Configuration def = default_configuration(machine);
  for (std::size_t c = 0; c < table.configurations.size(); ++c)
    if (table.configurations[c] == def)
      table.default_index = static_cast<int>(c);
  assert(table.default_index >= 0 &&
         "baseline configuration missing from the enumerated space");

  table.regions.reserve(regions.size());
  for (const auto& traits : regions) table.regions.push_back(traits.region);
  table.time.assign(regions.size(),
                    std::vector<double>(table.configurations.size(), 0.0));
  table.default_counters.assign(regions.size(), PerfCounters{});

  // Reaction probes: default + packed single node + interleaved all-nodes.
  Configuration packed;
  packed.threads = machine.single_node_degrees.back();
  packed.nodes = 1;
  packed.thread_mapping = ThreadMapping::Contiguous;
  packed.page_mapping = PageMapping::Locality;
  Configuration interleaved = default_configuration(machine);
  interleaved.thread_mapping = ThreadMapping::Contiguous;
  interleaved.page_mapping = PageMapping::Interleave;
  table.probe_indices.push_back(table.default_index);
  for (const Configuration& probe : {packed, interleaved})
    for (std::size_t c = 0; c < table.configurations.size(); ++c)
      if (table.configurations[c] == probe)
        table.probe_indices.push_back(static_cast<int>(c));
  table.probe_counters.assign(
      regions.size(),
      std::vector<PerfCounters>(table.probe_indices.size()));

  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(regions.size()), num_threads,
      [&](std::int64_t r) {
        Simulator simulator(machine);  // one per region: memoization w/o sharing
        for (std::size_t c = 0; c < table.configurations.size(); ++c) {
          SimResult result = simulator.simulate(regions[r],
                                                table.configurations[c],
                                                size_scale);
          table.time[r][c] = result.cycles;
          if (static_cast<int>(c) == table.default_index)
            table.default_counters[r] = result.counters;
          for (std::size_t p = 0; p < table.probe_indices.size(); ++p)
            if (static_cast<int>(c) == table.probe_indices[p])
              table.probe_counters[r][p] = result.counters;
        }
      });
  return table;
}

std::vector<int> reduce_labels(const ExplorationTable& table, int k) {
  const std::size_t R = table.regions.size();
  const std::size_t C = table.configurations.size();
  std::vector<int> chosen;
  std::vector<double> best_so_far(R, std::numeric_limits<double>::max());

  // The default configuration seeds the subset: a model predicting any label
  // can then never be worse than not optimizing at all. (It also matches the
  // paper's observation that the baseline is "already optimized".)
  auto add = [&](int config) {
    chosen.push_back(config);
    for (std::size_t r = 0; r < R; ++r)
      best_so_far[r] = std::min(best_so_far[r], table.time[r][config]);
  };
  add(table.default_index);

  while (static_cast<int>(chosen.size()) < k) {
    int best_config = -1;
    double best_total = std::numeric_limits<double>::max();
    for (std::size_t c = 0; c < C; ++c) {
      if (std::find(chosen.begin(), chosen.end(), static_cast<int>(c)) !=
          chosen.end())
        continue;
      // Total normalized time if c joins the subset.
      double total = 0;
      for (std::size_t r = 0; r < R; ++r)
        total += std::min(best_so_far[r], table.time[r][c]) /
                 table.time[r][table.default_index];
      if (total < best_total) {
        best_total = total;
        best_config = static_cast<int>(c);
      }
    }
    if (best_config < 0) break;
    add(best_config);
  }
  return chosen;
}

std::vector<int> best_labels(const ExplorationTable& table,
                             const std::vector<int>& labels) {
  std::vector<int> out(table.regions.size(), 0);
  for (std::size_t r = 0; r < table.regions.size(); ++r) {
    double best = std::numeric_limits<double>::max();
    for (std::size_t l = 0; l < labels.size(); ++l) {
      double t = table.time[r][labels[l]];
      if (t < best) {
        best = t;
        out[r] = static_cast<int>(l);
      }
    }
  }
  return out;
}

double label_assignment_speedup(const ExplorationTable& table,
                                const std::vector<int>& labels,
                                const std::vector<int>& label_choice) {
  assert(label_choice.size() == table.regions.size());
  double acc = 0;
  for (std::size_t r = 0; r < table.regions.size(); ++r)
    acc += table.speedup(r, labels[label_choice[r]]);
  return table.regions.empty()
             ? 0.0
             : acc / static_cast<double>(table.regions.size());
}

}  // namespace irgnn::sim
