// Exhaustive configuration-space exploration (step C of the paper's
// workflow) and the label-space reduction of Sanchez Barrera et al.:
// a greedy max-coverage selection of k configurations that preserves the
// attainable gains (13 labels keep ~99% of the full space's gains).
#pragma once

#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/simulator.h"
#include "sim/workload_model.h"

namespace irgnn::sim {

struct ExplorationTable {
  std::vector<std::string> regions;
  std::vector<Configuration> configurations;
  int default_index = -1;  // the baseline configuration's position
  /// time[r][c] = average cycles per call of region r under configuration c.
  std::vector<std::vector<double>> time;
  /// Counters collected while profiling at the default configuration.
  std::vector<PerfCounters> default_counters;
  /// Reaction-based probes: counters at a few strategically different
  /// configurations (default, one-node packed, interleaved). The dynamic
  /// baseline model reads these, mirroring Sanchez Barrera's scheme of
  /// executing a handful of configurations and reacting to the counters.
  std::vector<int> probe_indices;
  std::vector<std::vector<PerfCounters>> probe_counters;  // [region][probe]

  double speedup(std::size_t region, std::size_t config) const {
    return time[region][default_index] / time[region][config];
  }
  std::size_t best_config(std::size_t region) const;
  /// Row index of a region by name; npos if absent. The serve-driven
  /// drivers explore the whole suite once and then score individual
  /// regions' predicted labels against their row.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t region_index(const std::string& name) const;
  /// Arithmetic-average speedup of per-region best configurations.
  double full_exploration_speedup() const;
};

/// Simulates every (region, configuration) pair; parallelized over regions
/// on the shared pool (num_threads <= 0: all workers). Each region owns its
/// table row and simulates with a private memoizing Simulator, so the table
/// is bit-identical for every thread count.
ExplorationTable explore(const MachineDesc& machine,
                         const std::vector<WorkloadTraits>& regions,
                         double size_scale = 1.0, int num_threads = 0);

/// Greedily selects `k` configuration indices so that assigning each region
/// its best configuration *within the subset* minimizes total time. The
/// default configuration is always a candidate member so the subset never
/// loses to the baseline.
std::vector<int> reduce_labels(const ExplorationTable& table, int k);

/// Best label (index into `labels`) per region.
std::vector<int> best_labels(const ExplorationTable& table,
                             const std::vector<int>& labels);

/// Arithmetic-average speedup of choosing labels[label_choice[r]] per region.
double label_assignment_speedup(const ExplorationTable& table,
                                const std::vector<int>& labels,
                                const std::vector<int>& label_choice);

}  // namespace irgnn::sim
