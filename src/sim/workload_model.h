// Workload behaviour model: what the simulator executes.
//
// Each benchmark region is described by one or more phases; a phase carries
// a set of memory streams (stride, footprint, irregularity, sharing,
// read/write mix), an arithmetic intensity, branch behaviour and OpenMP
// synchronization cost. The trace generator lowers one phase into a
// per-thread synthetic access trace that the CoreCacheModel consumes; the
// NUMA-level Simulator combines the cache statistics with the machine's
// latency/bandwidth/topology model.
//
// This is the substitution for the paper's physical testbed: regions' traits
// are chosen to mirror the loop nests the IR generators emit, so the static
// (IR) view and the dynamic (execution) view stay causally coupled — the
// premise that makes IR-based prediction possible at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace irgnn::sim {

/// One memory reference of the synthetic trace.
struct MemoryAccess {
  std::uint64_t address = 0;  // byte address
  std::uint32_t pc = 0;       // access-site id (drives the IP prefetcher)
  bool is_write = false;
};

struct MemoryStream {
  std::int64_t stride_bytes = 8;      // dominant advance per access
  std::uint64_t footprint_bytes = 1 << 20;  // per-thread at the base size
  double irregularity = 0.0;          // P(random jump within footprint)
  double temporal_reuse = 0.0;        // P(revisit one of the recent lines)
  double write_fraction = 0.0;
  bool shared = false;                // one copy shared by all threads
};

struct Phase {
  std::vector<MemoryStream> streams;
  double flops_per_access = 1.0;      // arithmetic intensity
  /// Total memory accesses per region call (across all threads) at size-1.
  std::uint64_t accesses_per_call = 2000000;
  double branch_irregularity = 0.0;   // 0..1, degrades IPC
  /// Synchronization cycles charged per access, scaled by ln(threads) — the
  /// CLOMP-style overhead term.
  double sync_cost = 0.0;
  /// Fraction of writes to lines shared with neighbouring threads (false
  /// sharing / coherence traffic).
  double false_sharing = 0.0;
};

struct WorkloadTraits {
  std::string region;
  std::vector<Phase> phases;
  /// Footprint and access-count multiplier for input size-2 (size-1 == 1.0).
  double size2_scale = 4.0;
  /// Serial (non-parallelizable) fraction of the region, Amdahl-style.
  double serial_fraction = 0.02;
  /// Per-call behaviour drift: 0 = perfectly stable across invocations;
  /// higher values morph stream irregularity/footprint call to call. These
  /// are the paper's "dynamic behaviour" regions (Fig. 12) that static
  /// models inherently mispredict.
  double call_variability = 0.0;
  int calls = 10;
};

/// A compact per-thread trace for one phase.
struct Trace {
  std::vector<MemoryAccess> accesses;
};

struct TraceOptions {
  std::size_t max_length = 12000;  // sampled accesses per phase
};

/// Deterministically generates the representative trace of `phase` for a
/// thread owning a 1/num_threads share of partitioned streams. `size_scale`
/// scales footprints (input size), `call_index` applies the traits'
/// call-to-call drift.
Trace generate_trace(const WorkloadTraits& traits, std::size_t phase_index,
                     int num_threads, double size_scale, int call_index,
                     const TraceOptions& options = {});

/// Effective (possibly call-drifted) view of a phase used by both the trace
/// generator and the analytic parts of the simulator.
Phase effective_phase(const WorkloadTraits& traits, std::size_t phase_index,
                      int call_index);

}  // namespace irgnn::sim
