#include "sim/cache.h"

#include <cassert>

namespace irgnn::sim {

SetAssociativeCache::SetAssociativeCache(int size_bytes, int associativity,
                                         int line_bytes)
    : associativity_(associativity) {
  num_sets_ = size_bytes / (associativity * line_bytes);
  assert(num_sets_ > 0);
  ways_.assign(static_cast<std::size_t>(num_sets_) * associativity_, Way{});
}

bool SetAssociativeCache::access(std::uint64_t line) {
  Way* set = &ways_[static_cast<std::size_t>(set_of(line)) * associativity_];
  for (int w = 0; w < associativity_; ++w) {
    if (set[w].valid && set[w].line == line) {
      set[w].lru = ++tick_;
      set[w].prefetched = false;  // demand touch clears the tag
      return true;
    }
  }
  return false;
}

void SetAssociativeCache::insert(std::uint64_t line, bool prefetched) {
  Way* set = &ways_[static_cast<std::size_t>(set_of(line)) * associativity_];
  Way* victim = &set[0];
  for (int w = 0; w < associativity_; ++w) {
    if (set[w].valid && set[w].line == line) {
      set[w].lru = ++tick_;
      return;  // already present
    }
    if (!set[w].valid) {
      victim = &set[w];
      break;
    }
    if (set[w].lru < victim->lru) victim = &set[w];
  }
  if (victim->valid && victim->prefetched) ++polluting_evictions_;
  victim->valid = true;
  victim->line = line;
  victim->lru = ++tick_;
  victim->prefetched = prefetched;
}

bool SetAssociativeCache::contains(std::uint64_t line) const {
  const Way* set =
      &ways_[static_cast<std::size_t>(set_of(line)) * associativity_];
  for (int w = 0; w < associativity_; ++w)
    if (set[w].valid && set[w].line == line) return true;
  return false;
}

bool SetAssociativeCache::is_prefetched(std::uint64_t line) const {
  const Way* set =
      &ways_[static_cast<std::size_t>(set_of(line)) * associativity_];
  for (int w = 0; w < associativity_; ++w)
    if (set[w].valid && set[w].line == line) return set[w].prefetched;
  return false;
}

CoreCacheModel::CoreCacheModel(const MachineDesc& machine,
                               const PrefetcherConfig& prefetch)
    : line_bytes_(machine.line_bytes),
      prefetch_(prefetch),
      l1_(machine.l1_size_bytes, machine.l1_assoc, machine.line_bytes),
      l2_(machine.l2_size_bytes, machine.l2_assoc, machine.line_bytes) {}

void CoreCacheModel::l2_fill(std::uint64_t line, bool prefetched) {
  l2_.insert(line, prefetched);
  if (prefetch_.l2_adjacent && !prefetched) {
    // Fetch the 128-byte buddy (pair line) alongside demand fills.
    std::uint64_t buddy = line ^ 1ull;
    if (!l2_.contains(buddy)) {
      l2_.insert(buddy, /*prefetched=*/true);
      ++stats_.prefetches_issued;
    }
  }
}

void CoreCacheModel::issue_l1_prefetch(std::uint64_t line) {
  if (!l1_.contains(line)) {
    ++stats_.prefetches_issued;
    l1_.insert(line, /*prefetched=*/true);
    if (!l2_.contains(line)) l2_.insert(line, /*prefetched=*/true);
  }
}

void CoreCacheModel::issue_l2_prefetch(std::uint64_t line) {
  if (!l2_.contains(line)) {
    ++stats_.prefetches_issued;
    l2_.insert(line, /*prefetched=*/true);
  }
}

void CoreCacheModel::streamer_observe(std::uint64_t line) {
  std::uint64_t page = line / (4096 / line_bytes_);
  if (stream_table_.size() > kMaxStreams && !stream_table_.count(page))
    stream_table_.clear();  // crude monitor recycling
  StreamEntry& entry = stream_table_[page];
  if (entry.confidence > 0) {
    int direction = line > entry.last_line   ? 1
                    : line < entry.last_line ? -1
                                             : 0;
    if (direction != 0 && direction == entry.direction) {
      if (++entry.confidence >= 2) {
        for (int d = 1; d <= kStreamDistance; ++d)
          issue_l2_prefetch(line + static_cast<std::uint64_t>(
                                       direction * d));
      }
    } else if (direction != 0) {
      entry.direction = direction;
      entry.confidence = 1;
    }
  } else {
    entry.confidence = 1;
    entry.direction = 1;
  }
  entry.last_line = line;
}

void CoreCacheModel::access(const MemoryAccess& access) {
  ++stats_.accesses;
  std::uint64_t line = access.address / static_cast<std::uint64_t>(line_bytes_);

  // DCU IP-correlated prefetcher trains on every access.
  if (prefetch_.dcu_ip) {
    StrideEntry& entry = stride_table_[access.pc];
    std::int64_t stride = static_cast<std::int64_t>(access.address) -
                          static_cast<std::int64_t>(entry.last_address);
    if (entry.last_address != 0 && stride != 0 && stride == entry.stride) {
      if (++entry.confidence >= 2) {
        std::uint64_t target =
            (access.address + 2 * stride) / line_bytes_;
        issue_l1_prefetch(target);
      }
    } else {
      entry.stride = stride;
      entry.confidence = 0;
    }
    entry.last_address = access.address;
  }

  bool was_prefetched = l1_.is_prefetched(line);
  if (l1_.access(line)) {
    ++stats_.l1_hits;
    if (was_prefetched) ++stats_.prefetch_hits;
    return;
  }

  // DCU next-line prefetcher triggers on L1 demand misses.
  if (prefetch_.dcu_next_line) issue_l1_prefetch(line + 1);

  // L2 lookup.
  if (prefetch_.l2_streamer) streamer_observe(line);
  bool l2_was_prefetched = l2_.is_prefetched(line);
  if (l2_.access(line)) {
    ++stats_.l2_hits;
    if (l2_was_prefetched) ++stats_.prefetch_hits;
    l1_.insert(line, /*prefetched=*/false);
    return;
  }

  // Demand miss beyond L2: fill both levels.
  ++stats_.l2_misses;
  l2_fill(line, /*prefetched=*/false);
  l1_.insert(line, /*prefetched=*/false);
}

}  // namespace irgnn::sim
