// The coupled NUMA + hardware-prefetcher configuration space (Sec. II-C).
//
// NUMA dimensions follow Popov et al.: degree of parallelism, number of
// NUMA nodes, thread mapping (contiguous / round-robin a.k.a. scatter) and
// page mapping (first-touch / locality / interleave / balance). Prefetcher
// dimensions are the four per-core Intel prefetchers toggled through MSR
// 0x1A4: DCU next-line, DCU IP-correlated, L2 adjacent-line, L2 streamer —
// 16 masks. The full space has 320 (Sandy Bridge) or 288 (Skylake) points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.h"

namespace irgnn::sim {

enum class ThreadMapping { Contiguous, RoundRobin };
enum class PageMapping { FirstTouch, Locality, Interleave, Balance };

const char* thread_mapping_name(ThreadMapping m);
const char* page_mapping_name(PageMapping m);

struct PrefetcherConfig {
  bool dcu_next_line = true;
  bool dcu_ip = true;
  bool l2_adjacent = true;
  bool l2_streamer = true;

  /// MSR-0x1A4-style bit mask (bit set = prefetcher DISABLED, as on the real
  /// register). Mask 0 means everything enabled.
  int msr_mask() const {
    return (l2_streamer ? 0 : 1) | (l2_adjacent ? 0 : 2) |
           (dcu_next_line ? 0 : 4) | (dcu_ip ? 0 : 8);
  }
  static PrefetcherConfig from_msr_mask(int mask) {
    PrefetcherConfig c;
    c.l2_streamer = !(mask & 1);
    c.l2_adjacent = !(mask & 2);
    c.dcu_next_line = !(mask & 4);
    c.dcu_ip = !(mask & 8);
    return c;
  }
  bool operator==(const PrefetcherConfig& o) const {
    return dcu_next_line == o.dcu_next_line && dcu_ip == o.dcu_ip &&
           l2_adjacent == o.l2_adjacent && l2_streamer == o.l2_streamer;
  }
};

struct Configuration {
  int threads = 1;
  int nodes = 1;
  ThreadMapping thread_mapping = ThreadMapping::Contiguous;
  PageMapping page_mapping = PageMapping::Locality;
  PrefetcherConfig prefetch;

  bool operator==(const Configuration& o) const {
    return threads == o.threads && nodes == o.nodes &&
           thread_mapping == o.thread_mapping &&
           page_mapping == o.page_mapping && prefetch == o.prefetch;
  }
  std::string to_string() const;
};

/// Enumerates the full space for a machine: 320 on Sandy Bridge, 288 on
/// Skylake. Single-node entries use (Contiguous, Locality) since mappings
/// collapse there.
std::vector<Configuration> enumerate_configurations(const MachineDesc& m);

/// The paper's baseline "already optimized default": all cores and NUMA
/// nodes, data locality, threads scattered, all prefetchers on. Speedups
/// everywhere in the evaluation are measured against this point.
Configuration default_configuration(const MachineDesc& m);

/// Translates a configuration between micro-architectures for the
/// cross-architecture experiment (Sec. IV-D): prefetch and mapping policies
/// carry over; thread/node counts rescale to the target's saturation points.
Configuration translate_configuration(const Configuration& c,
                                      const MachineDesc& from,
                                      const MachineDesc& to);

}  // namespace irgnn::sim
