#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace irgnn::sim {

namespace {

/// Threads placed on each used node under a thread mapping.
std::vector<int> threads_per_node(const MachineDesc& m,
                                  const Configuration& c) {
  std::vector<int> tpn(c.nodes, 0);
  if (c.thread_mapping == ThreadMapping::Contiguous) {
    int remaining = c.threads;
    for (int n = 0; n < c.nodes && remaining > 0; ++n) {
      tpn[n] = std::min(remaining, m.cores_per_node);
      remaining -= tpn[n];
    }
  } else {  // round robin / scatter
    for (int t = 0; t < c.threads; ++t) ++tpn[t % c.nodes];
  }
  return tpn;
}

double sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) s += x;
  return s;
}

}  // namespace

Simulator::PhaseCacheStats Simulator::core_stats(
    const WorkloadTraits& traits, std::size_t phase_index, int threads,
    const PrefetcherConfig& prefetch, double size_scale, int call_index) {
  int drift_call = traits.call_variability > 0.0 ? call_index : 0;
  auto key = std::make_tuple(traits.region, phase_index, threads,
                             prefetch.msr_mask(),
                             static_cast<int>(size_scale * 100), drift_call);
  auto it = stats_cache_.find(key);
  if (it != stats_cache_.end()) return it->second;

  Trace trace =
      generate_trace(traits, phase_index, threads, size_scale, drift_call);
  CoreCacheModel core(machine_, prefetch);
  for (const MemoryAccess& access : trace.accesses) core.access(access);
  const CacheStats& cs = core.stats();

  PhaseCacheStats out;
  out.l1_hit_rate = cs.l1_hit_rate();
  out.l2_hit_rate = cs.l2_local_hit_rate();
  out.beyond_l2_per_access = cs.beyond_l2_per_access();
  out.prefetch_traffic_per_access = cs.prefetch_traffic_per_access();
  out.prefetch_accuracy = cs.prefetch_accuracy();
  stats_cache_.emplace(key, out);
  return out;
}

SimResult Simulator::simulate_call(const WorkloadTraits& traits,
                                   const Configuration& config,
                                   double size_scale, int call_index) {
  const MachineDesc& m = machine_;
  const int T = config.threads;
  const int N = config.nodes;
  std::vector<int> tpn = threads_per_node(m, config);
  const int busiest_tpn = *std::max_element(tpn.begin(), tpn.end());
  const int nodes_with_threads =
      static_cast<int>(std::count_if(tpn.begin(), tpn.end(),
                                     [](int t) { return t > 0; }));

  double total_cycles = 0;
  double total_instructions = 0;
  double acc_l1_miss = 0, acc_l2_miss = 0, acc_l3_miss = 0;
  double acc_remote = 0, acc_weight = 0;
  double max_bw_util = 0;
  double power_accum = 0;

  for (std::size_t p = 0; p < traits.phases.size(); ++p) {
    const Phase phase = effective_phase(
        traits, p, traits.call_variability > 0.0 ? call_index : 0);
    PhaseCacheStats cs =
        core_stats(traits, p, T, config.prefetch, size_scale, call_index);

    const double n_acc =
        static_cast<double>(phase.accesses_per_call) * size_scale / T;

    // --- Shared L3, per node -------------------------------------------------
    double shared_frac = 0;
    double avg_irregularity = 0;
    double write_frac = 0;
    double ws_private = 0, ws_shared = 0;
    for (const MemoryStream& s : phase.streams) {
      double fp = static_cast<double>(s.footprint_bytes) * size_scale;
      if (s.shared) {
        shared_frac += 1.0;
        ws_shared += fp;
      } else {
        ws_private += fp;
      }
      avg_irregularity += s.irregularity;
      write_frac += s.write_fraction;
    }
    const double num_streams = static_cast<double>(phase.streams.size());
    shared_frac /= num_streams;
    avg_irregularity /= num_streams;
    write_frac /= num_streams;

    // Working set landing on the busiest node's L3 beyond the private L2s.
    double ws_node = ws_private * (static_cast<double>(busiest_tpn) / T) +
                     ws_shared;
    double ws_beyond_l2 =
        std::max(0.0, ws_node - busiest_tpn * static_cast<double>(
                                                  m.l2_size_bytes));
    double l3_hit;
    double l3_size = static_cast<double>(m.l3_size_bytes_per_node);
    if (ws_beyond_l2 <= l3_size * 0.9) {
      l3_hit = 0.92;
    } else {
      l3_hit = 0.92 * std::pow(l3_size / ws_beyond_l2, 0.7);
    }
    // Useless prefetch traffic pollutes the shared cache.
    double pollution =
        cs.prefetch_traffic_per_access * (1.0 - cs.prefetch_accuracy);
    l3_hit = std::max(0.0, l3_hit * (1.0 - 0.35 * std::min(1.0, pollution)));

    const double mem_per_access =
        cs.beyond_l2_per_access * (1.0 - l3_hit);
    const double l3_miss_ratio =
        cs.beyond_l2_per_access > 1e-12
            ? mem_per_access / cs.beyond_l2_per_access
            : 0.0;

    // --- Local / remote split by page mapping -------------------------------
    double t0_frac = static_cast<double>(tpn[0]) / T;  // threads on node 0
    double local_frac;
    switch (config.page_mapping) {
      case PageMapping::FirstTouch:
        // The master thread's node hosts every page.
        local_frac = N == 1 ? 1.0 : t0_frac;
        break;
      case PageMapping::Locality:
        // Private pages land on the accessor's node; shared pages have one
        // home node (the first toucher's, node 0).
        local_frac =
            N == 1 ? 1.0 : (1.0 - shared_frac) + shared_frac * t0_frac;
        break;
      case PageMapping::Interleave:
        local_frac = 1.0 / nodes_with_threads;
        break;
      case PageMapping::Balance:
        // Pages distributed proportionally to the per-node thread load.
        local_frac = 0;
        for (int n = 0; n < N; ++n) {
          double share = static_cast<double>(tpn[n]) / T;
          local_frac += share * share;
        }
        break;
    }
    if (N == 1) local_frac = 1.0;
    const double remote_frac = 1.0 - local_frac;
    const double avg_mem_lat =
        local_frac * m.lat_local_mem + remote_frac * m.lat_remote_mem;

    // --- Per-thread latency & compute ---------------------------------------
    const double avg_access_cycles =
        cs.l1_hit_rate * m.lat_l1 +
        (1.0 - cs.l1_hit_rate) * cs.l2_hit_rate * m.lat_l2 +
        cs.beyond_l2_per_access * l3_hit * m.lat_l3 +
        mem_per_access * avg_mem_lat;
    const double mlp = 1.2 + 3.0 * (1.0 - avg_irregularity);
    const double lat_cycles = n_acc * avg_access_cycles / mlp;

    const double instr_per_access = 2.0 + phase.flops_per_access;
    const double ipc_eff =
        m.base_ipc * (1.0 - 0.45 * phase.branch_irregularity);
    const double compute_cycles = n_acc * instr_per_access / ipc_eff;

    double per_thread_cycles = std::max(compute_cycles, lat_cycles);

    // False sharing: writers invalidating neighbours' lines.
    if (T > 1 && phase.false_sharing > 0.0) {
      per_thread_cycles += n_acc * phase.false_sharing * write_frac *
                           0.5 * m.lat_remote_mem *
                           std::min(1.0, (T - 1) / 8.0);
    }

    // --- Bandwidth ceilings ---------------------------------------------------
    const double bytes_per_thread =
        n_acc *
        (mem_per_access +
         cs.prefetch_traffic_per_access * (1.0 - l3_hit)) *
        m.line_bytes;
    // Controller load distribution mirrors the page mapping.
    std::vector<double> controller_bytes(N, 0.0);
    const double total_bytes = bytes_per_thread * T;
    switch (config.page_mapping) {
      case PageMapping::FirstTouch:
        controller_bytes[0] = total_bytes;
        break;
      case PageMapping::Locality:
        for (int n = 0; n < N; ++n)
          controller_bytes[n] =
              bytes_per_thread * tpn[n] * (1.0 - shared_frac);
        controller_bytes[0] += total_bytes * shared_frac;
        break;
      case PageMapping::Interleave:
        for (int n = 0; n < N; ++n)
          controller_bytes[n] = total_bytes / nodes_with_threads;
        break;
      case PageMapping::Balance:
        for (int n = 0; n < N; ++n)
          controller_bytes[n] = total_bytes * tpn[n] / T;
        break;
    }
    double busiest_controller =
        *std::max_element(controller_bytes.begin(), controller_bytes.end());
    double t_bw = busiest_controller / m.node_bandwidth;
    double remote_bytes = total_bytes * remote_frac;
    double t_interconnect =
        remote_bytes / (m.interconnect_bandwidth *
                        std::max(1, nodes_with_threads));

    double parallel_cycles =
        std::max({per_thread_cycles, t_bw, t_interconnect});

    // --- Synchronization & serial fraction ----------------------------------
    // Synchronization does NOT amortize with more threads: the number of
    // barrier episodes is fixed by the loop structure and each costs
    // O(T log T) under contention. This is what makes CLOMP-style regions
    // prefer low parallelism degrees (a headline effect of the paper's
    // configuration space).
    const double total_accesses = n_acc * T;
    const double barrier_cycles = 500.0 * T + 2000.0 * std::log2(1.0 + T);
    const double sync_cycles =
        phase.sync_cost * total_accesses * 0.02 * T * std::log2(1.0 + T) +
        barrier_cycles;
    const double serial_cycles =
        traits.serial_fraction * per_thread_cycles * T;
    const double phase_cycles = (1.0 - traits.serial_fraction) *
                                    (parallel_cycles + sync_cycles) +
                                serial_cycles;

    total_cycles += phase_cycles;
    const double phase_instr = n_acc * T * instr_per_access;
    total_instructions += phase_instr;
    acc_l1_miss += (1.0 - cs.l1_hit_rate) * n_acc * T;
    acc_l2_miss += cs.beyond_l2_per_access * n_acc * T;  // L3 lookups
    acc_l3_miss += mem_per_access * n_acc * T;           // L3 misses
    acc_remote += remote_frac * n_acc * T;
    acc_weight += n_acc * T;
    max_bw_util = std::max(
        max_bw_util, parallel_cycles > 0
                         ? busiest_controller /
                               (m.node_bandwidth * parallel_cycles)
                         : 0.0);
    // Power proxy: per-package static + active-core dynamic + memory I/O.
    double util = parallel_cycles > 0
                      ? std::min(1.0, compute_cycles / parallel_cycles)
                      : 1.0;
    power_accum +=
        phase_cycles *
        (22.0 * nodes_with_threads + 3.2 * T * (0.35 + 0.65 * util) +
         28.0 * std::min(1.5, total_bytes /
                                  (m.node_bandwidth * parallel_cycles + 1)));
  }

  SimResult result;
  result.cycles = total_cycles;
  PerfCounters& pc = result.counters;
  pc.instructions = total_instructions;
  pc.cycles = total_cycles;
  pc.ipc = total_cycles > 0 ? total_instructions / (total_cycles * T) : 0;
  if (acc_weight > 0) {
    pc.l1_miss_ratio = acc_l1_miss / acc_weight;
    pc.l2_miss_ratio = acc_l2_miss / acc_weight;
    pc.l3_miss_ratio = acc_l2_miss > 0 ? acc_l3_miss / acc_l2_miss : 0.0;
    pc.remote_access_ratio = acc_remote / acc_weight;
  }
  pc.bandwidth_utilization = max_bw_util;
  pc.package_power = total_cycles > 0 ? power_accum / total_cycles : 0;
  return result;
}

SimResult Simulator::simulate(const WorkloadTraits& traits,
                              const Configuration& config,
                              double size_scale) {
  if (traits.call_variability <= 0.0)
    return simulate_call(traits, config, size_scale, 0);
  SimResult avg;
  for (int call = 0; call < traits.calls; ++call) {
    SimResult r = simulate_call(traits, config, size_scale, call);
    avg.cycles += r.cycles;
    PerfCounters& a = avg.counters;
    const PerfCounters& c = r.counters;
    a.instructions += c.instructions;
    a.cycles += c.cycles;
    a.ipc += c.ipc;
    a.l1_miss_ratio += c.l1_miss_ratio;
    a.l2_miss_ratio += c.l2_miss_ratio;
    a.l3_miss_ratio += c.l3_miss_ratio;
    a.remote_access_ratio += c.remote_access_ratio;
    a.bandwidth_utilization += c.bandwidth_utilization;
    a.package_power += c.package_power;
  }
  double inv = 1.0 / traits.calls;
  avg.cycles *= inv;
  PerfCounters& a = avg.counters;
  a.instructions *= inv;
  a.cycles *= inv;
  a.ipc *= inv;
  a.l1_miss_ratio *= inv;
  a.l2_miss_ratio *= inv;
  a.l3_miss_ratio *= inv;
  a.remote_access_ratio *= inv;
  a.bandwidth_utilization *= inv;
  a.package_power *= inv;
  return avg;
}

std::vector<double> Simulator::per_call_cycles(const WorkloadTraits& traits,
                                               const Configuration& config,
                                               double size_scale) {
  std::vector<double> out;
  out.reserve(traits.calls);
  for (int call = 0; call < traits.calls; ++call)
    out.push_back(simulate_call(traits, config, size_scale, call).cycles);
  return out;
}

}  // namespace irgnn::sim
