// NUMA-level timing simulator.
//
// For one (workload, configuration, input size, call) the simulator:
//   1. runs the phase's synthetic per-thread trace through the private
//      L1/L2 + prefetcher model (memoized — cache behaviour only depends on
//      threads/prefetchers/size/call, not on NUMA placement),
//   2. models the shared per-node L3 by capacity pressure from the threads
//      placed on the node,
//   3. splits memory traffic into local/remote according to the page
//      mapping, stream sharing and node count,
//   4. converts to cycles through a latency term (with memory-level
//      parallelism), per-node and interconnect bandwidth ceilings, OpenMP
//      synchronization cost and an Amdahl serial fraction,
//   5. produces the performance counters the dynamic baseline model
//      consumes (package power and L3 miss ratio, per Sanchez Barrera et
//      al., plus auxiliary ratios).
//
// The simulator is deterministic; a Simulator instance is not thread-safe
// (it memoizes trace results), so parallel drivers use one instance per
// region.
#pragma once

#include <map>
#include <vector>

#include "sim/cache.h"
#include "sim/config.h"
#include "sim/machine.h"
#include "sim/workload_model.h"

namespace irgnn::sim {

struct PerfCounters {
  double instructions = 0;
  double cycles = 0;
  double ipc = 0;
  double l1_miss_ratio = 0;      // misses / accesses
  double l2_miss_ratio = 0;      // misses beyond L2 / accesses below L1
  double l3_miss_ratio = 0;      // memory accesses / L3 lookups
  double remote_access_ratio = 0;
  double bandwidth_utilization = 0;  // busiest node, 0..1+
  double package_power = 0;          // watts proxy, summed over packages

  /// The counter pair driving the paper's best dynamic model (power package
  /// + L3 miss ratio), extended with the auxiliary ratios.
  std::vector<float> feature_vector() const {
    return {static_cast<float>(package_power),
            static_cast<float>(l3_miss_ratio),
            static_cast<float>(remote_access_ratio),
            static_cast<float>(bandwidth_utilization),
            static_cast<float>(ipc)};
  }
  static std::vector<std::string> feature_names() {
    return {"package_power", "l3_miss_ratio", "remote_access_ratio",
            "bandwidth_utilization", "ipc"};
  }
};

struct SimResult {
  double cycles = 0;  // one call
  PerfCounters counters;
};

class Simulator {
 public:
  explicit Simulator(const MachineDesc& machine) : machine_(machine) {}

  const MachineDesc& machine() const { return machine_; }

  /// Simulates one call of the region under `config`.
  SimResult simulate_call(const WorkloadTraits& traits,
                          const Configuration& config, double size_scale,
                          int call_index);

  /// Averages over the region's `calls` invocations (skipping the per-call
  /// drift machinery when the region is static).
  SimResult simulate(const WorkloadTraits& traits, const Configuration& config,
                     double size_scale = 1.0);

  /// Cycles of each call (Fig. 12's time-per-call series).
  std::vector<double> per_call_cycles(const WorkloadTraits& traits,
                                      const Configuration& config,
                                      double size_scale = 1.0);

 private:
  struct PhaseCacheStats {
    double l1_hit_rate = 0;
    double l2_hit_rate = 0;         // of accesses below L1
    double beyond_l2_per_access = 0;
    double prefetch_traffic_per_access = 0;
    double prefetch_accuracy = 0;
  };

  PhaseCacheStats core_stats(const WorkloadTraits& traits,
                             std::size_t phase_index, int threads,
                             const PrefetcherConfig& prefetch,
                             double size_scale, int call_index);

  MachineDesc machine_;
  // Memoized per-thread cache statistics.
  std::map<std::tuple<std::string, std::size_t, int, int, int, int>,
           PhaseCacheStats>
      stats_cache_;
};

}  // namespace irgnn::sim
