// Machine descriptions for the two testbeds of the paper: the four-node
// Intel Sandy Bridge EP E5-4650 and the dual-node Intel Skylake Platinum
// 8168. Parameters (cache geometry, latencies, bandwidths) follow public
// figures for the parts; they drive the trace-driven cache model and the
// NUMA timing model.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace irgnn::sim {

struct MachineDesc {
  std::string name;
  int num_nodes = 0;
  int cores_per_node = 0;

  // Cache geometry (per core for L1/L2; per node for the shared L3).
  int line_bytes = 64;
  int l1_size_bytes = 32 * 1024;
  int l1_assoc = 8;
  int l2_size_bytes = 0;
  int l2_assoc = 8;
  std::int64_t l3_size_bytes_per_node = 0;
  int l3_assoc = 16;

  // Access latencies in cycles.
  double lat_l1 = 4;
  double lat_l2 = 12;
  double lat_l3 = 40;
  double lat_local_mem = 180;
  double lat_remote_mem = 0;

  // Sustainable bandwidth, bytes per cycle.
  double node_bandwidth = 0;          // one memory controller
  double interconnect_bandwidth = 0;  // cross-node links (per node)

  // Core model.
  double base_ipc = 2.0;  // per-core peak instructions/cycle
  double smt_threads = 1; // modeled without SMT (paper pins one per core)

  /// Thread-degree options on a single node (thread/page mapping collapse
  /// there, so each counts once in the configuration space).
  std::vector<int> single_node_degrees;
  /// (threads, nodes) options spanning several nodes; these cross with the
  /// 2 thread mappings x 4 page mappings.
  std::vector<std::pair<int, int>> multi_node_degrees;

  int total_cores() const { return num_nodes * cores_per_node; }

  static MachineDesc sandy_bridge();
  static MachineDesc skylake();
};

}  // namespace irgnn::sim
