#include "sim/config.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace irgnn::sim {

const char* thread_mapping_name(ThreadMapping m) {
  return m == ThreadMapping::Contiguous ? "contiguous" : "round_robin";
}

const char* page_mapping_name(PageMapping m) {
  switch (m) {
    case PageMapping::FirstTouch: return "first_touch";
    case PageMapping::Locality: return "locality";
    case PageMapping::Interleave: return "interleave";
    case PageMapping::Balance: return "balance";
  }
  return "<invalid>";
}

std::string Configuration::to_string() const {
  std::ostringstream os;
  os << threads << "T/" << nodes << "N " << thread_mapping_name(thread_mapping)
     << " " << page_mapping_name(page_mapping) << " pf=";
  os << (prefetch.dcu_next_line ? "D" : "-")
     << (prefetch.dcu_ip ? "I" : "-") << (prefetch.l2_adjacent ? "A" : "-")
     << (prefetch.l2_streamer ? "S" : "-");
  return os.str();
}

std::vector<Configuration> enumerate_configurations(const MachineDesc& m) {
  std::vector<Configuration> numa_part;
  for (int degree : m.single_node_degrees) {
    Configuration c;
    c.threads = degree;
    c.nodes = 1;
    c.thread_mapping = ThreadMapping::Contiguous;
    c.page_mapping = PageMapping::Locality;
    numa_part.push_back(c);
  }
  for (auto [threads, nodes] : m.multi_node_degrees) {
    for (ThreadMapping tm : {ThreadMapping::Contiguous,
                             ThreadMapping::RoundRobin}) {
      for (PageMapping pm : {PageMapping::FirstTouch, PageMapping::Locality,
                             PageMapping::Interleave, PageMapping::Balance}) {
        Configuration c;
        c.threads = threads;
        c.nodes = nodes;
        c.thread_mapping = tm;
        c.page_mapping = pm;
        numa_part.push_back(c);
      }
    }
  }
  std::vector<Configuration> out;
  out.reserve(numa_part.size() * 16);
  for (int mask = 0; mask < 16; ++mask) {
    for (Configuration c : numa_part) {
      c.prefetch = PrefetcherConfig::from_msr_mask(mask);
      out.push_back(c);
    }
  }
  return out;
}

Configuration default_configuration(const MachineDesc& m) {
  Configuration c;
  c.threads = m.total_cores();
  c.nodes = m.num_nodes;
  c.thread_mapping = ThreadMapping::RoundRobin;  // "threads: scatter"
  c.page_mapping = PageMapping::Locality;        // "data: locality"
  c.prefetch = PrefetcherConfig::from_msr_mask(0);
  return c;
}

Configuration translate_configuration(const Configuration& c,
                                      const MachineDesc& from,
                                      const MachineDesc& to) {
  Configuration out = c;
  // Scale the degree of parallelism by the saturation ratio and snap to the
  // target's legal degrees (Sec. IV-D: a 48-thread Skylake configuration
  // becomes a 32-thread Sandy Bridge one, and vice versa).
  double ratio = static_cast<double>(to.total_cores()) /
                 static_cast<double>(from.total_cores());
  int want_threads = std::max(1, static_cast<int>(
                                     std::lround(c.threads * ratio)));
  double node_ratio =
      static_cast<double>(to.num_nodes) / static_cast<double>(from.num_nodes);
  int want_nodes = std::clamp(
      static_cast<int>(std::lround(c.nodes * node_ratio)), 1, to.num_nodes);

  // Snap to the nearest legal configuration point.
  long best_cost = -1;
  for (int degree : to.single_node_degrees) {
    long cost = std::labs(degree - want_threads) +
                std::labs(1 - want_nodes) * to.cores_per_node;
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      out.threads = degree;
      out.nodes = 1;
    }
  }
  for (auto [threads, nodes] : to.multi_node_degrees) {
    long cost = std::labs(threads - want_threads) +
                std::labs(nodes - want_nodes) * to.cores_per_node;
    if (cost < best_cost) {
      best_cost = cost;
      out.threads = threads;
      out.nodes = nodes;
    }
  }
  if (out.nodes == 1) {
    out.thread_mapping = ThreadMapping::Contiguous;
    out.page_mapping = PageMapping::Locality;
  }
  return out;
}

}  // namespace irgnn::sim
