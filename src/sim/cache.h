// Set-associative caches with LRU replacement and the four per-core Intel
// hardware prefetchers toggled by MSR 0x1A4:
//   * DCU next-line    — on an L1 demand access, fetch line+1 into L1.
//   * DCU IP-correlated— per-PC stride detector prefetching into L1.
//   * L2 adjacent-line — on an L2 fill, also fetch the 128-byte buddy line.
//   * L2 streamer      — per-4KB-page stream detector running ahead of the
//                        access stream into L2 (forward and backward).
//
// The hierarchy is private L1+L2 per core (as on both testbeds); the shared
// L3 and memory system are modeled at the NUMA level by the Simulator.
// Prefetched lines are tagged so the statistics distinguish useful
// prefetches (later demand-hit) from cache-polluting ones, and prefetch
// traffic is accounted — this is what makes prefetchers *hurt* irregular
// workloads, the effect the configuration space exploits.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/config.h"
#include "sim/workload_model.h"

namespace irgnn::sim {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;           // demand misses going below L2
  std::uint64_t prefetches_issued = 0;   // lines requested by any prefetcher
  std::uint64_t prefetch_hits = 0;       // demand hits on prefetched lines
  std::uint64_t prefetch_unused = 0;     // prefetched lines evicted untouched

  double l1_hit_rate() const {
    return accesses ? static_cast<double>(l1_hits) / accesses : 0.0;
  }
  double l2_local_hit_rate() const {
    std::uint64_t below_l1 = accesses - l1_hits;
    return below_l1 ? static_cast<double>(l2_hits) / below_l1 : 0.0;
  }
  double beyond_l2_per_access() const {
    return accesses ? static_cast<double>(l2_misses) / accesses : 0.0;
  }
  double prefetch_traffic_per_access() const {
    return accesses ? static_cast<double>(prefetches_issued) / accesses : 0.0;
  }
  double prefetch_accuracy() const {
    return prefetches_issued
               ? static_cast<double>(prefetch_hits) / prefetches_issued
               : 0.0;
  }
};

/// LRU set-associative cache of 64-byte lines.
class SetAssociativeCache {
 public:
  SetAssociativeCache(int size_bytes, int associativity, int line_bytes);

  /// Looks up a line; on hit, updates LRU and returns true.
  bool access(std::uint64_t line);
  /// Inserts a line (evicting LRU); `prefetched` tags the line.
  void insert(std::uint64_t line, bool prefetched);
  bool contains(std::uint64_t line) const;
  /// True iff the line is present and still carries the prefetch tag; the
  /// tag is cleared by a demand access.
  bool is_prefetched(std::uint64_t line) const;

  /// Number of prefetched-but-never-touched lines evicted so far.
  std::uint64_t polluting_evictions() const { return polluting_evictions_; }

  int num_sets() const { return num_sets_; }

 private:
  struct Way {
    std::uint64_t line = ~0ull;
    std::uint64_t lru = 0;
    bool valid = false;
    bool prefetched = false;
  };
  int set_of(std::uint64_t line) const {
    return static_cast<int>(line % static_cast<std::uint64_t>(num_sets_));
  }

  int num_sets_;
  int associativity_;
  std::vector<Way> ways_;  // num_sets_ * associativity_
  std::uint64_t tick_ = 0;
  std::uint64_t polluting_evictions_ = 0;
};

/// One core's private cache hierarchy plus prefetchers. Feed it a trace;
/// read the stats.
class CoreCacheModel {
 public:
  CoreCacheModel(const MachineDesc& machine, const PrefetcherConfig& prefetch);

  void access(const MemoryAccess& access);
  const CacheStats& stats() const { return stats_; }

 private:
  void l2_fill(std::uint64_t line, bool prefetched);
  void issue_l1_prefetch(std::uint64_t line);
  void issue_l2_prefetch(std::uint64_t line);
  void streamer_observe(std::uint64_t line);

  const int line_bytes_;
  PrefetcherConfig prefetch_;
  SetAssociativeCache l1_;
  SetAssociativeCache l2_;
  CacheStats stats_;

  // DCU IP-correlated stride table (per access-site).
  struct StrideEntry {
    std::uint64_t last_address = 0;
    std::int64_t stride = 0;
    int confidence = 0;
  };
  std::unordered_map<std::uint32_t, StrideEntry> stride_table_;

  // L2 streamer: per-4KB-page monitors.
  struct StreamEntry {
    std::uint64_t last_line = 0;
    int direction = 0;  // +1 forward, -1 backward
    int confidence = 0;
  };
  std::unordered_map<std::uint64_t, StreamEntry> stream_table_;
  static constexpr int kStreamDistance = 4;  // lines run-ahead
  static constexpr int kMaxStreams = 32;
};

}  // namespace irgnn::sim
