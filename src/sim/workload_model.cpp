#include "sim/workload_model.h"

#include <algorithm>
#include <cmath>

#include "support/rng.h"

namespace irgnn::sim {

Phase effective_phase(const WorkloadTraits& traits, std::size_t phase_index,
                      int call_index) {
  Phase phase = traits.phases[phase_index];
  if (traits.call_variability <= 0.0 || call_index <= 0) return phase;
  // Deterministic per-call drift: irregularity and footprint oscillate with
  // an amplitude set by call_variability. Mimics convergence phases
  // (kmeans), data-dependent frontiers (bfs) and residual sweeps (mg).
  Rng rng(hash_combine64(0xD21F7ull, static_cast<std::uint64_t>(call_index)));
  // Each region drifts along its own trajectory: two regions with identical
  // static structure can diverge dynamically (the effect the IR cannot
  // show, which is what routes them to the dynamic model in the paper).
  double region_angle = static_cast<double>(
      hash_combine64(std::hash<std::string>{}(traits.region), 0x9E37ull) %
      628) / 100.0;
  double swing =
      traits.call_variability *
      std::sin(1.7 * call_index + 0.9 * static_cast<double>(phase_index) +
               region_angle);
  for (MemoryStream& stream : phase.streams) {
    stream.irregularity =
        std::clamp(stream.irregularity + traits.call_variability *
                                             rng.uniform(-1.0, 1.0) +
                       0.6 * swing,
                   0.0, 1.0);
    // Footprints swing by up to 3x around the nominal value: convergence
    // phases, shrinking frontiers and multigrid levels all behave this way.
    double footprint_factor = 1.0 + 2.0 * swing;
    stream.footprint_bytes = static_cast<std::uint64_t>(
        std::max(4096.0, stream.footprint_bytes * footprint_factor));
    // Sharing pressure also drifts: growing frontiers touch more remote data.
    stream.temporal_reuse =
        std::clamp(stream.temporal_reuse - 0.4 * swing, 0.0, 1.0);
  }
  phase.sync_cost *= std::max(0.1, 1.0 + 1.2 * swing);
  phase.flops_per_access *= std::max(0.25, 1.0 - 0.5 * swing);
  return phase;
}

Trace generate_trace(const WorkloadTraits& traits, std::size_t phase_index,
                     int num_threads, double size_scale, int call_index,
                     const TraceOptions& options) {
  const Phase phase = effective_phase(traits, phase_index, call_index);
  Trace trace;
  if (phase.streams.empty()) return trace;

  Rng rng(hash_combine64(
      hash_combine64(std::hash<std::string>{}(traits.region), phase_index),
      hash_combine64(static_cast<std::uint64_t>(num_threads),
                     static_cast<std::uint64_t>(call_index * 977 + 13))));

  struct Cursor {
    std::uint64_t base = 0;
    std::uint64_t footprint = 0;
    std::uint64_t position = 0;  // byte offset within footprint
    std::uint32_t pc = 0;
  };
  std::vector<Cursor> cursors(phase.streams.size());
  std::uint64_t next_base = 1ull << 30;  // streams live in disjoint ranges
  for (std::size_t s = 0; s < phase.streams.size(); ++s) {
    const MemoryStream& stream = phase.streams[s];
    double fp = static_cast<double>(stream.footprint_bytes) * size_scale;
    if (!stream.shared) fp /= std::max(1, num_threads);  // partitioned
    cursors[s].footprint =
        std::max<std::uint64_t>(4096, static_cast<std::uint64_t>(fp));
    cursors[s].base = next_base;
    next_base += cursors[s].footprint + (1ull << 22);  // pad ranges apart
    cursors[s].pc = static_cast<std::uint32_t>(s + 1);
  }

  std::size_t length = std::min<std::size_t>(
      options.max_length,
      static_cast<std::size_t>(std::max<std::uint64_t>(
          64, static_cast<std::uint64_t>(
                  static_cast<double>(phase.accesses_per_call) * size_scale /
                  std::max(1, num_threads)))));
  trace.accesses.reserve(length);

  // Recent lines ring for temporal-reuse modelling.
  std::vector<std::uint64_t> recent(64, 0);
  std::size_t recent_head = 0;

  for (std::size_t i = 0; i < length; ++i) {
    std::size_t s = i % phase.streams.size();
    const MemoryStream& stream = phase.streams[s];
    Cursor& cursor = cursors[s];

    std::uint64_t address;
    if (stream.temporal_reuse > 0.0 && rng.bernoulli(stream.temporal_reuse) &&
        i > 8) {
      address = recent[rng.next_below(recent.size())];
      if (address == 0) address = cursor.base;
    } else if (stream.irregularity > 0.0 &&
               rng.bernoulli(stream.irregularity)) {
      // Random jump within the footprint (pointer chase / indirection).
      address = cursor.base + rng.next_below(cursor.footprint);
      cursor.position = address - cursor.base;
    } else {
      cursor.position = (cursor.position +
                         static_cast<std::uint64_t>(
                             std::llabs(stream.stride_bytes))) %
                        cursor.footprint;
      address = cursor.base + cursor.position;
    }
    recent[recent_head] = address;
    recent_head = (recent_head + 1) % recent.size();

    MemoryAccess access;
    access.address = address;
    access.pc = cursor.pc;
    access.is_write = rng.bernoulli(stream.write_fraction);
    trace.accesses.push_back(access);
  }
  return trace;
}

}  // namespace irgnn::sim
