#include "sim/machine.h"

namespace irgnn::sim {

MachineDesc MachineDesc::sandy_bridge() {
  MachineDesc m;
  m.name = "SandyBridge";
  m.num_nodes = 4;
  m.cores_per_node = 8;
  m.l2_size_bytes = 256 * 1024;
  m.l3_size_bytes_per_node = 20ll * 1024 * 1024;
  m.lat_l1 = 4;
  m.lat_l2 = 12;
  m.lat_l3 = 42;
  m.lat_local_mem = 190;
  m.lat_remote_mem = 380;  // two QPI hops on the 4-socket topology
  m.node_bandwidth = 12.0;
  m.interconnect_bandwidth = 6.0;
  m.base_ipc = 1.8;
  // 4 single-node + 2 multi-node x (2 thread maps x 4 page maps)
  //   = 4 + 16 = 20 NUMA configurations; x16 prefetcher masks = 320.
  m.single_node_degrees = {1, 2, 4, 8};
  m.multi_node_degrees = {{16, 2}, {32, 4}};
  return m;
}

MachineDesc MachineDesc::skylake() {
  MachineDesc m;
  m.name = "Skylake";
  m.num_nodes = 2;
  m.cores_per_node = 24;
  m.l2_size_bytes = 1024 * 1024;
  m.l3_size_bytes_per_node = 33ll * 1024 * 1024;
  m.lat_l1 = 4;
  m.lat_l2 = 14;
  m.lat_l3 = 50;
  m.lat_local_mem = 170;
  m.lat_remote_mem = 290;  // single UPI hop
  m.node_bandwidth = 32.0;
  m.interconnect_bandwidth = 14.0;
  m.base_ipc = 2.2;
  // 2 single-node + 2 multi-node x 8 = 18 NUMA configurations; x16 = 288.
  m.single_node_degrees = {12, 24};
  m.multi_node_degrees = {{24, 2}, {48, 2}};
  return m;
}

}  // namespace irgnn::sim
