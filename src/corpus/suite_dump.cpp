#include "corpus/suite_dump.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <vector>

#include "graph/region_extractor.h"
#include "ir/printer.h"
#include "passes/flag_sequence.h"
#include "passes/pass.h"
#include "workloads/suite.h"

namespace irgnn::corpus {

namespace {

namespace fs = std::filesystem;

/// "bt xsolve" -> "bt_xsolve", "b+tree find" -> "b_tree_find": filenames
/// stay portable and sort the same everywhere.
std::string slug(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

support::Status write_file(const fs::path& path, const std::string& text) {
  std::FILE* fp = std::fopen(path.c_str(), "wb");
  if (!fp) return support::Status::Internal("dump file open failed");
  const bool ok =
      text.empty() || std::fwrite(text.data(), 1, text.size(), fp) ==
                          text.size();
  if (std::fclose(fp) != 0 || !ok)
    return support::Status::Internal("dump file write failed");
  return support::Status::Ok();
}

std::string file_name(std::size_t r, const std::string& region) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "r%03zu_", r);
  return std::string(buf) + slug(region) + ".ir";
}

std::string file_name(std::size_t r, std::size_t s,
                      const std::string& region) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "r%03zu_s%02zu_", r, s);
  return std::string(buf) + slug(region) + ".ir";
}

}  // namespace

support::Status dump_suite(const std::string& dir,
                           const SuiteDumpOptions& options,
                           std::size_t* files_written) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec || !fs::is_directory(dir))
    return support::Status::InvalidArgument("dump directory not creatable");

  const auto& suite = workloads::benchmark_suite();
  std::size_t written = 0;

  if (options.num_sequences == 0) {
    for (std::size_t r = 0; r < suite.size(); ++r) {
      const auto module = workloads::build_region_module(suite[r]);
      support::Status status = write_file(
          fs::path(dir) / file_name(r, suite[r].name),
          ir::print_module(*module));
      if (!status.ok()) return status;
      ++written;
    }
    if (files_written) *files_written = written;
    return support::Status::Ok();
  }

  // Mirror core::build_dataset exactly: same sequence sampling, same
  // clone → PassManager → extract_region per variant. The dumped module is
  // the one build_dataset feeds build_graph, so the two paths must agree.
  const std::vector<passes::FlagSequence> sequences =
      passes::sample_flag_sequences(options.num_sequences, options.seed);
  passes::register_builtin_passes();

  for (std::size_t r = 0; r < suite.size(); ++r) {
    const auto base_module = workloads::build_region_module(suite[r]);
    for (std::size_t s = 0; s < sequences.size(); ++s) {
      auto variant = base_module->clone();
      passes::PassManager pm(sequences[s].passes);
      pm.run(*variant);
      auto region_module = graph::extract_region(
          *variant, workloads::outlined_name(suite[r].kernel.name));
      if (!region_module)
        return support::Status::Internal("suite region failed to extract");
      support::Status status = write_file(
          fs::path(dir) / file_name(r, s, suite[r].name),
          ir::print_module(*region_module));
      if (!status.ok()) return status;
      ++written;
    }
  }
  if (files_written) *files_written = written;
  return support::Status::Ok();
}

}  // namespace irgnn::corpus
