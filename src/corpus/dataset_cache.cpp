#include "corpus/dataset_cache.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "support/rng.h"

namespace irgnn::corpus {

namespace {

// --- Little-endian packing (explicit shifts: no host-order dependence) -----

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

std::int32_t get_i32(const std::uint8_t* p) {
  return static_cast<std::int32_t>(get_u32(p));
}

/// Deterministic hash over a byte range (payload integrity sweep).
std::uint64_t hash_bytes(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = hash_combine64(0x12D5ull, size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) h = hash_combine64(h, get_u64(data + i));
  std::uint64_t tail = 0;
  for (std::size_t k = 0; i + k < size; ++k)
    tail |= static_cast<std::uint64_t>(data[i + k]) << (8 * k);
  if (i < size) h = hash_combine64(h, tail);
  return h;
}

std::size_t pad8(std::uint64_t n) {
  return static_cast<std::size_t>((n + 7) & ~std::uint64_t{7});
}

}  // namespace

// --- Writer -----------------------------------------------------------------

Status write_dataset_cache(const std::string& path,
                           const std::vector<graph::ProgramGraph>& graphs,
                           const std::vector<std::uint64_t>& fingerprints,
                           std::uint64_t corpus_hash,
                           std::uint64_t options_hash) {
  if (graphs.size() != fingerprints.size())
    return Status::InvalidArgument("graphs/fingerprints size mismatch");

  std::uint64_t total_nodes = 0;
  std::uint64_t total_edges = 0;
  std::uint64_t names_bytes = 0;
  for (const auto& g : graphs) {
    if (g.nodes.size() > 0xFFFFFFFFull || g.edges.size() > 0xFFFFFFFFull ||
        g.name.size() > 0xFFFFFFFFull)
      return Status::InvalidArgument("graph too large for the .irds format");
    total_nodes += g.nodes.size();
    total_edges += g.edges.size();
    names_bytes += g.name.size();
  }
  if (names_bytes > 0xFFFFFFFFull)
    return Status::InvalidArgument("name blob too large for the .irds format");

  // Payload: index, nodes, edges, names (+ zero pad to 8).
  std::vector<std::uint8_t> payload;
  payload.reserve(static_cast<std::size_t>(
      kIndexRecordBytes * graphs.size() + kNodeRecordBytes * total_nodes +
      kEdgeRecordBytes * total_edges + pad8(names_bytes)));
  std::uint64_t node_off = 0;
  std::uint64_t edge_off = 0;
  std::uint64_t name_off = 0;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto& g = graphs[i];
    put_u64(payload, fingerprints[i]);
    put_u64(payload, node_off);
    put_u64(payload, edge_off);
    put_u32(payload, static_cast<std::uint32_t>(g.nodes.size()));
    put_u32(payload, static_cast<std::uint32_t>(g.edges.size()));
    put_u32(payload, static_cast<std::uint32_t>(name_off));
    put_u32(payload, static_cast<std::uint32_t>(g.name.size()));
    node_off += g.nodes.size();
    edge_off += g.edges.size();
    name_off += g.name.size();
  }
  for (const auto& g : graphs)
    for (const auto& n : g.nodes) {
      put_u32(payload, static_cast<std::uint32_t>(n.kind));
      put_i32(payload, n.feature);
    }
  for (const auto& g : graphs)
    for (const auto& e : g.edges) {
      put_i32(payload, e.src);
      put_i32(payload, e.dst);
      put_u32(payload, static_cast<std::uint32_t>(e.kind));
      put_i32(payload, e.position);
    }
  for (const auto& g : graphs)
    payload.insert(payload.end(), g.name.begin(), g.name.end());
  while (payload.size() % 8) payload.push_back(0);

  std::vector<std::uint8_t> header;
  header.reserve(kCacheHeaderBytes);
  put_u32(header, kCacheMagic);
  put_u32(header, kCacheVersion);
  put_u64(header, corpus_hash);
  put_u64(header, options_hash);
  put_u64(header, graphs.size());
  put_u64(header, total_nodes);
  put_u64(header, total_edges);
  put_u64(header, names_bytes);
  put_u64(header, hash_bytes(payload.data(), payload.size()));

  // Atomic publish: a reader never maps a half-written cache.
  const std::string tmp = path + ".tmp";
  std::FILE* fp = std::fopen(tmp.c_str(), "wb");
  if (!fp) return Status::Internal("cache temp file open failed");
  const bool ok =
      std::fwrite(header.data(), 1, header.size(), fp) == header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), fp) == payload.size());
  if (std::fclose(fp) != 0 || !ok) {
    std::remove(tmp.c_str());
    return Status::Internal("cache write failed");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cache rename failed");
  }
  return Status::Ok();
}

// --- Reader -----------------------------------------------------------------

DatasetCacheReader::~DatasetCacheReader() { close(); }

DatasetCacheReader::DatasetCacheReader(DatasetCacheReader&& other) noexcept {
  *this = std::move(other);
}

DatasetCacheReader& DatasetCacheReader::operator=(
    DatasetCacheReader&& other) noexcept {
  if (this != &other) {
    close();
    std::memcpy(static_cast<void*>(this), &other, sizeof(*this));
    other.mapping_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void DatasetCacheReader::close() {
  if (mapping_) ::munmap(mapping_, mapping_size_);
  mapping_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  num_graphs_ = total_nodes_ = total_edges_ = names_bytes_ = 0;
}

Status DatasetCacheReader::attach(const std::uint8_t* data, std::size_t size,
                                  const CacheLimits& limits) {
  close();
  if (size < kCacheHeaderBytes)
    return Status::InvalidArgument("cache file shorter than its header");
  if (get_u32(data) != kCacheMagic)
    return Status::InvalidArgument("bad cache magic");
  if (get_u32(data + 4) != kCacheVersion)
    return Status::InvalidArgument("unsupported cache version");

  const std::uint64_t corpus_hash = get_u64(data + 8);
  const std::uint64_t options_hash = get_u64(data + 16);
  const std::uint64_t num_graphs = get_u64(data + 24);
  const std::uint64_t total_nodes = get_u64(data + 32);
  const std::uint64_t total_edges = get_u64(data + 40);
  const std::uint64_t names_bytes = get_u64(data + 48);
  const std::uint64_t payload_hash = get_u64(data + 56);

  // Count caps come first: under them, every section-size product below
  // fits comfortably in 64 bits, so the offset arithmetic cannot wrap.
  if (num_graphs > limits.max_graphs)
    return Status::InvalidArgument("cache graph count exceeds limits");
  if (total_nodes > limits.max_total_nodes)
    return Status::InvalidArgument("cache node count exceeds limits");
  if (total_edges > limits.max_total_edges)
    return Status::InvalidArgument("cache edge count exceeds limits");
  if (names_bytes > 0xFFFFFFFFull)
    return Status::InvalidArgument("cache name blob exceeds limits");

  const std::uint64_t index_off = kCacheHeaderBytes;
  const std::uint64_t nodes_off = index_off + kIndexRecordBytes * num_graphs;
  const std::uint64_t edges_off = nodes_off + kNodeRecordBytes * total_nodes;
  const std::uint64_t names_off = edges_off + kEdgeRecordBytes * total_edges;
  const std::uint64_t end = names_off + pad8(names_bytes);
  if (end != size)
    return Status::InvalidArgument("cache size disagrees with its header");

  // Index records must tile the node/edge arrays exactly, in order — this
  // pins both bounds and the deterministic layout the writer emits.
  std::uint64_t want_node = 0;
  std::uint64_t want_edge = 0;
  std::uint64_t want_name = 0;
  for (std::uint64_t i = 0; i < num_graphs; ++i) {
    const std::uint8_t* rec = data + index_off + i * kIndexRecordBytes;
    const std::uint64_t node_off = get_u64(rec + 8);
    const std::uint64_t edge_off = get_u64(rec + 16);
    const std::uint32_t node_count = get_u32(rec + 24);
    const std::uint32_t edge_count = get_u32(rec + 28);
    const std::uint32_t name_off = get_u32(rec + 32);
    const std::uint32_t name_len = get_u32(rec + 36);
    if (node_off != want_node || edge_off != want_edge ||
        name_off != want_name)
      return Status::InvalidArgument("cache index records do not tile");
    want_node += node_count;
    want_edge += edge_count;
    want_name += name_len;
  }
  if (want_node != total_nodes || want_edge != total_edges ||
      want_name != names_bytes)
    return Status::InvalidArgument("cache index totals disagree with header");

  // Full record validation before anything is materialized: a corrupt kind,
  // feature or edge endpoint is refused here, not discovered by the model.
  std::uint64_t graph_idx = 0;
  std::uint64_t graph_end = num_graphs
                                ? get_u64(data + index_off + 24) +
                                      get_u32(data + index_off + 24)
                                : 0;
  (void)graph_end;
  std::uint64_t node_cursor = 0;
  for (std::uint64_t i = 0; i < total_nodes; ++i) {
    const std::uint8_t* rec = data + nodes_off + i * kNodeRecordBytes;
    if (get_u32(rec) > 2u)
      return Status::InvalidArgument("cache node kind out of range");
    const std::int32_t feature = get_i32(rec + 4);
    if (feature < 0 || feature > limits.max_feature)
      return Status::InvalidArgument("cache node feature out of range");
  }
  (void)node_cursor;
  for (std::uint64_t g = 0; g < num_graphs; ++g) {
    const std::uint8_t* rec = data + index_off + g * kIndexRecordBytes;
    const std::uint64_t edge_off = get_u64(rec + 16);
    const std::uint32_t node_count = get_u32(rec + 24);
    const std::uint32_t edge_count = get_u32(rec + 28);
    for (std::uint32_t e = 0; e < edge_count; ++e) {
      const std::uint8_t* erec =
          data + edges_off + (edge_off + e) * kEdgeRecordBytes;
      const std::int32_t src = get_i32(erec);
      const std::int32_t dst = get_i32(erec + 4);
      if (src < 0 || dst < 0 ||
          static_cast<std::uint32_t>(src) >= node_count ||
          static_cast<std::uint32_t>(dst) >= node_count)
        return Status::InvalidArgument("cache edge endpoint out of range");
      if (get_u32(erec + 8) > 2u)
        return Status::InvalidArgument("cache edge kind out of range");
    }
  }
  (void)graph_idx;

  data_ = data;
  size_ = size;
  num_graphs_ = num_graphs;
  total_nodes_ = total_nodes;
  total_edges_ = total_edges;
  names_bytes_ = names_bytes;
  corpus_hash_ = corpus_hash;
  options_hash_ = options_hash;
  payload_hash_ = payload_hash;
  index_off_ = static_cast<std::size_t>(index_off);
  nodes_off_ = static_cast<std::size_t>(nodes_off);
  edges_off_ = static_cast<std::size_t>(edges_off);
  names_off_ = static_cast<std::size_t>(names_off);
  return Status::Ok();
}

Status DatasetCacheReader::open(const std::string& path,
                                const CacheLimits& limits) {
  close();
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::InvalidArgument("cache file not readable");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal("cache stat failed");
  }
  const std::size_t size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("cache file is empty");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) return Status::Internal("cache mmap failed");

  Status status = attach(static_cast<const std::uint8_t*>(map), size, limits);
  if (!status.ok()) {
    ::munmap(map, size);
    return status;
  }
  mapping_ = map;
  mapping_size_ = size;
  return Status::Ok();
}

const std::uint8_t* DatasetCacheReader::index_record(std::uint64_t i) const {
  return data_ + index_off_ + static_cast<std::size_t>(i) * kIndexRecordBytes;
}

std::uint64_t DatasetCacheReader::fingerprint(std::uint64_t i) const {
  return get_u64(index_record(i));
}

std::uint32_t DatasetCacheReader::graph_nodes(std::uint64_t i) const {
  return get_u32(index_record(i) + 24);
}

std::uint32_t DatasetCacheReader::graph_edges(std::uint64_t i) const {
  return get_u32(index_record(i) + 28);
}

std::string_view DatasetCacheReader::graph_name(std::uint64_t i) const {
  const std::uint8_t* rec = index_record(i);
  return std::string_view(
      reinterpret_cast<const char*>(data_ + names_off_ + get_u32(rec + 32)),
      get_u32(rec + 36));
}

void DatasetCacheReader::materialize(std::uint64_t i,
                                     graph::ProgramGraph* out) const {
  const std::uint8_t* rec = index_record(i);
  const std::uint64_t node_off = get_u64(rec + 8);
  const std::uint64_t edge_off = get_u64(rec + 16);
  const std::uint32_t node_count = get_u32(rec + 24);
  const std::uint32_t edge_count = get_u32(rec + 28);

  out->name.assign(graph_name(i));
  out->nodes.resize(node_count);
  const std::uint8_t* nbase =
      data_ + nodes_off_ +
      static_cast<std::size_t>(node_off) * kNodeRecordBytes;
  for (std::uint32_t n = 0; n < node_count; ++n) {
    const std::uint8_t* nrec = nbase + n * kNodeRecordBytes;
    out->nodes[n].kind = static_cast<graph::NodeKind>(get_u32(nrec));
    out->nodes[n].feature = get_i32(nrec + 4);
    out->nodes[n].text.clear();  // debug text does not persist (by design)
  }
  out->edges.resize(edge_count);
  const std::uint8_t* ebase =
      data_ + edges_off_ +
      static_cast<std::size_t>(edge_off) * kEdgeRecordBytes;
  for (std::uint32_t e = 0; e < edge_count; ++e) {
    const std::uint8_t* erec = ebase + e * kEdgeRecordBytes;
    out->edges[e].src = get_i32(erec);
    out->edges[e].dst = get_i32(erec + 4);
    out->edges[e].kind = static_cast<graph::EdgeKind>(get_u32(erec + 8));
    out->edges[e].position = get_i32(erec + 12);
  }
}

Status DatasetCacheReader::verify_payload_hash() const {
  if (!is_open()) return Status::Internal("reader is not open");
  const std::uint64_t got =
      hash_bytes(data_ + kCacheHeaderBytes, size_ - kCacheHeaderBytes);
  if (got != payload_hash_)
    return Status::InvalidArgument("cache payload hash mismatch");
  return Status::Ok();
}

}  // namespace irgnn::corpus
