// Serializes the synthetic benchmark suite to a directory of textual-IR
// files — the reference corpus for the ingestion frontend (ingest.h) and
// the irgnn_ingest CLI's `dump` subcommand.
//
// Two modes:
//
//   num_sequences == 0: one file per region, holding the raw region module
//   (host + outlined kernel) from workloads::build_region_module. This is
//   the "external code drop" shape: multi-function modules whose OpenMP
//   regions ingest must find and extract itself.
//
//   num_sequences == N > 0: one file per (region, sequence) holding the
//   *extracted* post-pass region module — exactly the module
//   core::build_dataset builds graphs[r][s] from (clone → PassManager →
//   extract_region). Ingesting such a dump therefore reproduces
//   build_dataset({N, seed}) bit-for-bit, which CI gates.
//
// Filenames are deterministic ("r012_s03_<slug>.ir"), so a dump is
// byte-stable and its ingest order equals suite order.
#pragma once

#include <cstdint>
#include <string>

#include "support/status.h"

namespace irgnn::corpus {

struct SuiteDumpOptions {
  /// 0: raw region modules; N: extracted post-pass variants (see above).
  std::size_t num_sequences = 0;
  /// Flag-sequence sampling seed (must match the DatasetOptions seed the
  /// dump is meant to reproduce).
  std::uint64_t seed = 0xDA7A;
};

/// Writes the suite corpus under `dir` (created if absent). Returns the
/// first file-system or pipeline failure; on success `*files_written` (if
/// non-null) is the file count.
support::Status dump_suite(const std::string& dir,
                           const SuiteDumpOptions& options,
                           std::size_t* files_written = nullptr);

}  // namespace irgnn::corpus
