// Versioned, mmap-able on-disk dataset cache (".irds").
//
// The cache stores an ingested corpus's deduplicated graphs as flat
// node/edge arrays so benches and experiments load a dataset in
// milliseconds instead of re-running parse/extract/build. File layout
// (all fields little-endian, sections 8-byte aligned, append-only — new
// sections go after the existing ones and bump kCacheVersion):
//
//   offset  size            field
//   0       4               magic 0x53445249 ("IRDS")
//   4       4               version (currently 1)
//   8       8               corpus_hash   (ingest content key)
//   16      8               options_hash  (ingest options key)
//   24      8               num_graphs
//   32      8               total_nodes
//   40      8               total_edges
//   48      8               names_bytes
//   56      8               payload_hash (over everything after the header)
//   64      40*num_graphs   graph index: fingerprint u64, node_off u64,
//                           edge_off u64, node_count u32, edge_count u32,
//                           name_off u32, name_len u32
//   ...     8*total_nodes   nodes: kind u32, feature i32
//   ...     16*total_edges  edges: src i32, dst i32, kind u32, position i32
//   ...     names_bytes     name blob (not NUL-terminated), padded to 8
//
// Node text deliberately does not persist, for the same reason it stays off
// the wire (net/codec.h): it never reaches the model, and shipping it would
// only bloat the file and split identical queries. Reloaded graphs carry
// empty node text; fingerprints, features and edges are bit-identical.
//
// Writes are deterministic — no timestamps, no pointer-order iteration — so
// ingesting the same corpus twice produces byte-identical files (CI gates
// this with cmp). Reads are hostile-input safe: every count, offset and
// range is validated against the mapped size under CacheLimits *before* any
// allocation or array walk, truncated or mutated files fail with a Status
// (never a crash — corpus_test sweeps both), and materialization bounds
// node features so a corrupt cache can never drive an out-of-range
// embedding lookup.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/program_graph.h"
#include "support/status.h"

namespace irgnn::corpus {

using support::Status;

inline constexpr std::uint32_t kCacheMagic = 0x53445249u;  // "IRDS"
inline constexpr std::uint32_t kCacheVersion = 1;
inline constexpr std::size_t kCacheHeaderBytes = 64;
inline constexpr std::size_t kIndexRecordBytes = 40;
inline constexpr std::size_t kNodeRecordBytes = 8;
inline constexpr std::size_t kEdgeRecordBytes = 16;

/// Hostile-input bounds applied before any allocation, the .irds analogue
/// of net::DecodeLimits. Serving callers tighten max_feature to the model
/// vocabulary.
struct CacheLimits {
  std::uint64_t max_graphs = 1u << 24;
  std::uint64_t max_total_nodes = 1u << 28;
  std::uint64_t max_total_edges = 1u << 29;
  std::int32_t max_feature = 0x7FFFFFFF;  // inclusive upper bound
};

/// Writes `graphs` (+ parallel `fingerprints`) as one .irds file, keyed by
/// (corpus_hash, options_hash). The write is atomic (temp file + rename)
/// and deterministic: identical inputs produce identical bytes.
Status write_dataset_cache(const std::string& path,
                           const std::vector<graph::ProgramGraph>& graphs,
                           const std::vector<std::uint64_t>& fingerprints,
                           std::uint64_t corpus_hash,
                           std::uint64_t options_hash);

/// Read-only view of a .irds file. open() maps the file and validates every
/// header field, index record and edge endpoint against CacheLimits; after
/// an ok() open, the accessors are bounds-safe by construction. Move-only
/// (owns the mapping).
class DatasetCacheReader {
 public:
  DatasetCacheReader() = default;
  ~DatasetCacheReader();
  DatasetCacheReader(DatasetCacheReader&& other) noexcept;
  DatasetCacheReader& operator=(DatasetCacheReader&& other) noexcept;
  DatasetCacheReader(const DatasetCacheReader&) = delete;
  DatasetCacheReader& operator=(const DatasetCacheReader&) = delete;

  /// Maps `path` and validates it. On error the reader stays closed.
  Status open(const std::string& path, const CacheLimits& limits = {});

  /// Validates an in-memory image without mapping (the fuzz harness's
  /// entry point; open() uses it on the mapping). `data` must outlive the
  /// reader unless it is closed first.
  Status attach(const std::uint8_t* data, std::size_t size,
                const CacheLimits& limits = {});

  void close();
  bool is_open() const { return data_ != nullptr; }

  std::uint64_t num_graphs() const { return num_graphs_; }
  std::uint64_t total_nodes() const { return total_nodes_; }
  std::uint64_t total_edges() const { return total_edges_; }
  std::uint64_t corpus_hash() const { return corpus_hash_; }
  std::uint64_t options_hash() const { return options_hash_; }

  std::uint64_t fingerprint(std::uint64_t i) const;
  std::uint32_t graph_nodes(std::uint64_t i) const;
  std::uint32_t graph_edges(std::uint64_t i) const;
  std::string_view graph_name(std::uint64_t i) const;

  /// Rebuilds graph i into *out, reusing its node/edge capacity (a warm
  /// loop over a cache loads without allocating). Node text is empty by
  /// design; `out->name` is the stored name.
  void materialize(std::uint64_t i, graph::ProgramGraph* out) const;

  /// Full payload-hash sweep (irgnn_ingest verify; not run on open, which
  /// only validates structure).
  Status verify_payload_hash() const;

 private:
  const std::uint8_t* index_record(std::uint64_t i) const;

  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  void* mapping_ = nullptr;  // non-null only when open() mapped a file
  std::size_t mapping_size_ = 0;
  std::uint64_t num_graphs_ = 0;
  std::uint64_t total_nodes_ = 0;
  std::uint64_t total_edges_ = 0;
  std::uint64_t names_bytes_ = 0;
  std::uint64_t corpus_hash_ = 0;
  std::uint64_t options_hash_ = 0;
  std::uint64_t payload_hash_ = 0;
  std::size_t index_off_ = 0;
  std::size_t nodes_off_ = 0;
  std::size_t edges_off_ = 0;
  std::size_t names_off_ = 0;
};

}  // namespace irgnn::corpus
