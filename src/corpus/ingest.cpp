#include "corpus/ingest.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_map>

#include "graph/fingerprint.h"
#include "graph/region_extractor.h"
#include "ir/parser.h"
#include "ir/verifier.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace irgnn::corpus {

namespace {

namespace fs = std::filesystem;

std::atomic<std::uint64_t> g_graphs_built{0};

/// Deterministic hash over a byte range (same fold the fingerprint uses).
std::uint64_t hash_bytes(const char* data, std::size_t size) {
  std::uint64_t h = hash_combine64(0xC0DEC0DEull, size);
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t word = 0;
    std::memcpy(&word, data + i, 8);
    h = hash_combine64(h, word);
  }
  std::uint64_t tail = 0;
  for (std::size_t k = 0; i + k < size; ++k)
    tail |= static_cast<std::uint64_t>(static_cast<unsigned char>(data[i + k]))
            << (8 * k);
  if (i < size) h = hash_combine64(h, tail);
  return h;
}

std::uint64_t hash_string(const std::string& s) {
  return hash_bytes(s.data(), s.size());
}

/// The per-file pipeline output, produced in parallel, consumed serially.
struct FileWork {
  Status status = Status::Ok();
  std::string detail;
  std::uint64_t content_hash = 0;
  std::vector<std::string> region_names;
  std::vector<graph::ProgramGraph> region_graphs;
  std::vector<std::uint64_t> region_fingerprints;
};

/// parse → verify → region-extract → graph-build → fingerprint for one
/// file's bytes. Never throws out: every failure lands in work->status.
void pipeline_one(const std::string& contents, const IngestOptions& options,
                  FileWork* work) {
  work->content_hash = hash_string(contents);

  std::string parse_error;
  auto module = ir::parse_module(contents, &parse_error);
  if (!module) {
    work->status = Status::InvalidArgument("textual IR failed to parse");
    work->detail = parse_error;
    return;
  }
  std::string verify_errors;
  if (!ir::verify(*module, &verify_errors)) {
    work->status = Status::InvalidArgument("module failed verification");
    work->detail = verify_errors;
    return;
  }

  // OpenMP-outlined functions are the regions of interest (the paper's unit
  // of prediction); a module without any — external IR that was not
  // produced by an OpenMP frontend — contributes its whole-module graph.
  std::vector<std::string> regions = graph::find_omp_regions(*module);
  if (regions.empty()) {
    graph::ProgramGraph g = graph::build_graph(*module, options.graph_options);
    g_graphs_built.fetch_add(1, std::memory_order_relaxed);
    if (g.nodes.empty()) {
      work->status = Status::InvalidArgument("module yields an empty graph");
      work->detail = "no instructions in module '" + module->name() + "'";
      return;
    }
    work->region_fingerprints.push_back(graph::fingerprint(g));
    work->region_names.push_back(module->name());
    work->region_graphs.push_back(std::move(g));
    return;
  }
  for (const std::string& region : regions) {
    auto region_module = graph::extract_region(*module, region);
    if (!region_module) {  // unreachable: find_omp_regions listed it
      work->status = Status::Internal("region extraction failed");
      work->detail = "region '" + region + "' vanished from the module";
      return;
    }
    graph::ProgramGraph g =
        graph::build_graph(*region_module, options.graph_options);
    g_graphs_built.fetch_add(1, std::memory_order_relaxed);
    if (g.nodes.empty()) {
      work->status = Status::InvalidArgument("region yields an empty graph");
      work->detail = "region '" + region + "' has no instructions";
      return;
    }
    work->region_fingerprints.push_back(graph::fingerprint(g));
    work->region_names.push_back(region_module->name());
    work->region_graphs.push_back(std::move(g));
  }
}

bool structurally_equal(const graph::ProgramGraph& a,
                        const graph::ProgramGraph& b) {
  if (a.nodes.size() != b.nodes.size() || a.edges.size() != b.edges.size())
    return false;
  for (std::size_t i = 0; i < a.nodes.size(); ++i)
    if (a.nodes[i].kind != b.nodes[i].kind ||
        a.nodes[i].feature != b.nodes[i].feature)
      return false;
  for (std::size_t i = 0; i < a.edges.size(); ++i)
    if (a.edges[i].src != b.edges[i].src || a.edges[i].dst != b.edges[i].dst ||
        a.edges[i].kind != b.edges[i].kind ||
        a.edges[i].position != b.edges[i].position)
      return false;
  return true;
}

/// Serial fold of the parallel per-file results: dedup in index order,
/// record construction, corpus_hash accumulation.
void fold_results(const std::vector<std::string>& names,
                  std::vector<FileWork>& works, const IngestOptions& options,
                  IngestResult* out) {
  // fingerprint -> indices into out->graphs holding that fingerprint
  // (a vector, not a single slot, so fingerprint collisions keep both).
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> seen;
  std::uint64_t corpus_hash = hash_combine64(0x1D5C00ull, names.size());

  out->files.reserve(names.size());
  for (std::size_t f = 0; f < names.size(); ++f) {
    FileWork& work = works[f];
    corpus_hash = hash_combine64(corpus_hash, hash_string(names[f]));
    corpus_hash = hash_combine64(corpus_hash, work.content_hash);

    FileRecord record;
    record.path = names[f];
    record.status = work.status;
    record.detail = std::move(work.detail);
    ++out->stats.files_scanned;
    if (!work.status.ok()) {
      ++out->stats.files_failed;
      out->files.push_back(std::move(record));
      continue;
    }
    ++out->stats.files_ok;

    for (std::size_t r = 0; r < work.region_graphs.size(); ++r) {
      CorpusEntry entry;
      entry.name = std::move(work.region_names[r]);
      entry.fingerprint = work.region_fingerprints[r];
      entry.file_index = static_cast<std::uint32_t>(f);
      ++record.regions;
      ++out->stats.regions_total;

      graph::ProgramGraph& g = work.region_graphs[r];
      std::uint32_t winner = 0;
      bool found = false;
      if (options.dedup) {
        for (std::uint32_t candidate : seen[entry.fingerprint]) {
          if (structurally_equal(out->graphs[candidate], g)) {
            winner = candidate;
            found = true;
            break;
          }
        }
      }
      if (found) {
        entry.duplicate = true;
        entry.graph_index = winner;
        ++record.duplicates;
        ++out->stats.duplicates;
      } else {
        entry.graph_index = static_cast<std::uint32_t>(out->graphs.size());
        seen[entry.fingerprint].push_back(entry.graph_index);
        out->stats.nodes_total += g.nodes.size();
        out->stats.edges_total += g.edges.size();
        g.name = entry.name;
        out->fingerprints.push_back(entry.fingerprint);
        out->graphs.push_back(std::move(g));
      }
      out->entries.push_back(std::move(entry));
    }
    out->files.push_back(std::move(record));
  }
  out->stats.graphs_unique = out->graphs.size();
  out->corpus_hash = corpus_hash;
  out->options_hash = options_hash(options);
}

}  // namespace

std::uint64_t options_hash(const IngestOptions& options) {
  std::uint64_t h = hash_combine64(0x0971ull, options.dedup ? 1 : 0);
  h = hash_combine64(h, options.graph_options.control_edges ? 1 : 0);
  h = hash_combine64(h, options.graph_options.data_edges ? 1 : 0);
  h = hash_combine64(h, options.graph_options.call_edges ? 1 : 0);
  return h;
}

std::uint64_t graphs_built() {
  return g_graphs_built.load(std::memory_order_relaxed);
}

Status ingest_buffers(const std::vector<std::string>& names,
                      const std::vector<std::string>& contents,
                      const IngestOptions& options, IngestResult* out) {
  if (names.size() != contents.size())
    return Status::InvalidArgument("names/contents size mismatch");
  *out = IngestResult{};

  std::vector<FileWork> works(names.size());
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(names.size()), options.num_threads,
      [&](std::int64_t i) {
        if (contents[i].size() > options.max_file_bytes) {
          works[i].status = Status::InvalidArgument("file exceeds size bound");
          works[i].detail = "size " + std::to_string(contents[i].size()) +
                            " > max_file_bytes";
          works[i].content_hash = hash_combine64(0xB16F11Eull,
                                                 contents[i].size());
          return;
        }
        pipeline_one(contents[i], options, &works[i]);
      });

  fold_results(names, works, options, out);
  return Status::Ok();
}

namespace {

/// The sorted-relative-path walk ingest and hash_corpus_dir share: readdir
/// order never leaks into results.
Status list_corpus(const std::string& dir, std::vector<std::string>* names,
                   std::vector<fs::path>* paths) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec)
    return Status::InvalidArgument("corpus path is not a readable directory");
  std::vector<fs::path> found;
  for (auto it = fs::recursive_directory_iterator(
           dir, fs::directory_options::skip_permission_denied, ec);
       it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (ec) return Status::Internal("corpus directory walk failed");
    if (!it->is_regular_file(ec) || ec) {
      ec.clear();
      continue;
    }
    found.push_back(it->path());
  }
  std::vector<std::size_t> order(found.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::vector<std::string> rel(found.size());
  for (std::size_t i = 0; i < found.size(); ++i)
    rel[i] = fs::relative(found[i], dir, ec).generic_string();
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return rel[a] < rel[b]; });
  names->resize(order.size());
  paths->resize(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    (*names)[i] = std::move(rel[order[i]]);
    (*paths)[i] = std::move(found[order[i]]);
  }
  return Status::Ok();
}

/// Reads one corpus file's bytes into `contents`, applying the size bound.
/// On any failure `work` carries the record ingest will report, and
/// work.content_hash matches what the fold expects for that failure mode.
bool read_corpus_file(const fs::path& path, std::uint64_t max_file_bytes,
                      std::string* contents, FileWork* work) {
  std::error_code sec;
  const std::uint64_t size = fs::file_size(path, sec);
  if (sec) {
    work->status = Status::Internal("file size unreadable");
    work->detail = "stat failed";
    return false;
  }
  if (size > max_file_bytes) {
    work->status = Status::InvalidArgument("file exceeds size bound");
    work->detail = "size " + std::to_string(size) + " > max_file_bytes";
    work->content_hash = hash_combine64(0xB16F11Eull, size);
    return false;
  }
  contents->assign(size, '\0');
  std::FILE* fp = std::fopen(path.c_str(), "rb");
  if (!fp) {
    work->status = Status::Internal("file open failed");
    work->detail = "fopen failed";
    return false;
  }
  const std::size_t got = size ? std::fread(&(*contents)[0], 1, size, fp) : 0;
  std::fclose(fp);
  if (got != size) {
    work->status = Status::Internal("file read failed");
    work->detail = "short read";
    return false;
  }
  return true;
}

}  // namespace

Status ingest_directory(const std::string& dir, const IngestOptions& options,
                        IngestResult* out) {
  *out = IngestResult{};
  std::vector<std::string> names;
  std::vector<fs::path> paths;
  Status status = list_corpus(dir, &names, &paths);
  if (!status.ok()) return status;

  // The parallel stage reads file bytes itself (streaming: no whole-corpus
  // buffer), but record order and dedup stay index-driven.
  std::vector<FileWork> works(paths.size());
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(paths.size()), options.num_threads,
      [&](std::int64_t i) {
        std::string contents;
        if (read_corpus_file(paths[i], options.max_file_bytes, &contents,
                             &works[i]))
          pipeline_one(contents, options, &works[i]);
      });

  fold_results(names, works, options, out);
  return Status::Ok();
}

Status hash_corpus_dir(const std::string& dir, std::uint64_t max_file_bytes,
                       std::uint64_t* out) {
  std::vector<std::string> names;
  std::vector<fs::path> paths;
  Status status = list_corpus(dir, &names, &paths);
  if (!status.ok()) return status;

  // Bytes only — no parse, no graphs — folded exactly as fold_results does,
  // so the result equals IngestResult::corpus_hash for the same directory.
  std::vector<FileWork> works(paths.size());
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(paths.size()), 0, [&](std::int64_t i) {
        std::string contents;
        if (read_corpus_file(paths[i], max_file_bytes, &contents, &works[i]))
          works[i].content_hash = hash_string(contents);
      });

  std::uint64_t h = hash_combine64(0x1D5C00ull, names.size());
  for (std::size_t f = 0; f < names.size(); ++f) {
    h = hash_combine64(h, hash_string(names[f]));
    h = hash_combine64(h, works[f].content_hash);
  }
  *out = h;
  return Status::Ok();
}

}  // namespace irgnn::corpus
