// Streaming code-ingestion frontend (ROADMAP: "Real-code ingestion frontend
// for scenario diversity").
//
// ingest_directory walks a directory of textual-IR files — the format
// ir::print_module emits and ir::parse_module round-trips — and runs every
// file through the parse → verify → region-extract → graph-build →
// fingerprint-dedup pipeline. Three contracts:
//
//   Deterministic at every thread count. Files are sorted by relative path
//   and the pipeline is partitioned by file *index* across the shared
//   support::ThreadPool; the dedup pass runs serially in that index order,
//   so graph order, dedup winners and every per-file Status record are
//   bit-identical whether one thread ingests or sixteen do.
//
//   Malformed input is a record, never a crash. A file that fails to read,
//   parse or verify becomes a FileRecord carrying a Status code plus the
//   diagnostic detail ("line 12, col 7: unknown opcode ..."), and the run
//   continues — the same discipline net/codec applies to hostile frames.
//
//   Dedup is collision-safe. Two regions merge only when their fingerprints
//   AND their full structural contents match; a 64-bit fingerprint collision
//   between genuinely different graphs keeps both.
//
// The result feeds the mmap-able on-disk dataset cache (dataset_cache.h),
// core::load_corpus_dataset, and the --corpus traffic source of
// serve_throughput / net_loadgen.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/program_graph.h"
#include "support/status.h"

namespace irgnn::corpus {

using support::Status;

struct IngestOptions {
  /// Max threads for the per-file pipeline (<= 0: all pool workers).
  /// Excluded from options_hash: results are identical for every value.
  int num_threads = 0;
  /// Collapse structurally identical regions to one graph (first occurrence
  /// in file order wins). OFF keeps every extracted region.
  bool dedup = true;
  /// Files larger than this are refused before any read (hostile-input
  /// bound, the ingest-side analogue of net::DecodeLimits).
  std::uint64_t max_file_bytes = 64ull << 20;
  /// Edge relations the built graphs carry.
  graph::GraphBuilderOptions graph_options{};
};

/// One extracted region, in deterministic global order (file index, then
/// region order within the file's module).
struct CorpusEntry {
  std::string name;            // "<module>:<region function>"
  std::uint64_t fingerprint = 0;
  std::uint32_t file_index = 0;   // into IngestResult::files
  std::uint32_t graph_index = 0;  // into IngestResult::graphs (dedup winner)
  bool duplicate = false;         // true: graph_index points at the winner
};

/// Per-input-file outcome. status.ok() means every region of the file made
/// it into the corpus; otherwise `detail` carries the diagnostic.
struct FileRecord {
  std::string path;  // relative to the corpus root (sorted key)
  Status status = Status::Ok();
  std::string detail;
  std::uint32_t regions = 0;     // regions extracted from this file
  std::uint32_t duplicates = 0;  // of those, dedup'd against earlier graphs
};

struct IngestStats {
  std::uint64_t files_scanned = 0;
  std::uint64_t files_ok = 0;
  std::uint64_t files_failed = 0;
  std::uint64_t regions_total = 0;
  std::uint64_t graphs_unique = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t nodes_total = 0;  // over unique graphs
  std::uint64_t edges_total = 0;
};

struct IngestResult {
  /// Deduplicated graphs, in first-occurrence order.
  std::vector<graph::ProgramGraph> graphs;
  /// fingerprints[i] == graph::fingerprint(graphs[i]).
  std::vector<std::uint64_t> fingerprints;
  /// Every extracted region (pre-dedup), in deterministic global order.
  std::vector<CorpusEntry> entries;
  /// One record per input file, in sorted-path order.
  std::vector<FileRecord> files;
  IngestStats stats;
  /// Content hash over (relative path, bytes) of every readable input file,
  /// in sorted order — the cache key that detects a changed corpus.
  std::uint64_t corpus_hash = 0;
  /// Hash of the ingest options that shape the output (dedup, relations).
  std::uint64_t options_hash = 0;
};

/// Hash of the IngestOptions fields that change the output (num_threads and
/// max_file_bytes deliberately excluded). Part of the .irds cache key.
std::uint64_t options_hash(const IngestOptions& options);

/// Ingests every regular file under `dir` (recursively; sorted by relative
/// path). Returns non-Ok only when the directory itself is unusable —
/// per-file failures are FileRecords, and an ingest over a readable
/// directory always completes.
Status ingest_directory(const std::string& dir, const IngestOptions& options,
                        IngestResult* out);

/// Ingest over an explicit (path, contents) list — the directory walk
/// without the filesystem, used by tests and by callers that already hold
/// the bytes. `names` are the sorted keys folded into corpus_hash.
Status ingest_buffers(const std::vector<std::string>& names,
                      const std::vector<std::string>& contents,
                      const IngestOptions& options, IngestResult* out);

/// Content hash of a corpus directory — the corpus_hash an ingest over it
/// would produce — computed from file bytes alone (no parsing, no graph
/// builds). Benches use it to decide whether a .irds cache is still warm.
Status hash_corpus_dir(const std::string& dir, std::uint64_t max_file_bytes,
                       std::uint64_t* out);

/// Process-global count of build_graph calls made by ingest pipelines.
/// A warm dataset-cache load leaves it untouched — the "zero graph
/// rebuilds" acceptance gate reads it before and after.
std::uint64_t graphs_built();

}  // namespace irgnn::corpus
