#include "gnn/graph_batch.h"

namespace irgnn::gnn {

GraphBatch make_batch(const std::vector<const graph::ProgramGraph*>& graphs) {
  GraphBatch batch;
  batch.relations.resize(graph::kNumEdgeKinds);
  batch.num_graphs = static_cast<int>(graphs.size());

  int offset = 0;
  for (int g = 0; g < batch.num_graphs; ++g) {
    const graph::ProgramGraph& pg = *graphs[g];
    for (const auto& node : pg.nodes) {
      batch.features.push_back(node.feature);
      batch.segment.push_back(g);
    }
    for (const auto& edge : pg.edges) {
      RelationEdges& rel = batch.relations[static_cast<int>(edge.kind)];
      rel.src.push_back(offset + edge.src);
      rel.dst.push_back(offset + edge.dst);
    }
    offset += static_cast<int>(pg.nodes.size());
  }

  // RGCN normalization: 1/c_{i,r} with c the in-degree of i under r.
  for (RelationEdges& rel : batch.relations) {
    std::vector<float> in_degree(batch.features.size(), 0.0f);
    for (int dst : rel.dst) in_degree[dst] += 1.0f;
    rel.coeff.reserve(rel.dst.size());
    for (int dst : rel.dst) rel.coeff.push_back(1.0f / in_degree[dst]);
  }
  return batch;
}

}  // namespace irgnn::gnn
