#include "gnn/graph_batch.h"

#include <array>
#include <cstdint>

#include "support/arena.h"
#include "support/thread_pool.h"

namespace irgnn::gnn {

namespace {

/// Below this many graphs the two-pass parallel assembly costs more than it
/// saves; fall back to the straight serial concatenation.
constexpr std::size_t kParallelBatchThreshold = 8;

/// Empties the batch while keeping every buffer's capacity, so a reused
/// batch assembles without reallocating.
void reset_batch(GraphBatch& batch, int num_graphs) {
  batch.relations.resize(graph::kNumEdgeKinds);
  batch.features.clear();
  batch.segment.clear();
  for (RelationEdges& rel : batch.relations) {
    rel.src.clear();
    rel.dst.clear();
    rel.coeff.clear();
  }
  batch.num_graphs = num_graphs;
}

void fill_batch_serial(GraphBatch& batch,
                       const std::vector<const graph::ProgramGraph*>& graphs) {
  int offset = 0;
  for (int g = 0; g < batch.num_graphs; ++g) {
    const graph::ProgramGraph& pg = *graphs[g];
    for (const auto& node : pg.nodes) {
      batch.features.push_back(node.feature);
      batch.segment.push_back(g);
    }
    for (const auto& edge : pg.edges) {
      RelationEdges& rel = batch.relations[static_cast<int>(edge.kind)];
      rel.src.push_back(offset + edge.src);
      rel.dst.push_back(offset + edge.dst);
    }
    offset += static_cast<int>(pg.nodes.size());
  }
}

void fill_batch_parallel(GraphBatch& batch,
                         const std::vector<const graph::ProgramGraph*>& graphs,
                         int num_threads) {
  support::ThreadPool& pool = support::ThreadPool::global();
  const std::size_t G = graphs.size();

  // Pass 1: per-graph node and per-relation edge counts.
  support::PoolVector<int> node_count(G);
  support::PoolVector<std::array<int, graph::kNumEdgeKinds>> edge_count(
      G, std::array<int, graph::kNumEdgeKinds>{});
  pool.parallel_for(0, static_cast<std::int64_t>(G), num_threads,
                    [&](std::int64_t g) {
                      const graph::ProgramGraph& pg = *graphs[g];
                      node_count[g] = static_cast<int>(pg.nodes.size());
                      for (const auto& edge : pg.edges)
                        ++edge_count[g][static_cast<int>(edge.kind)];
                    });

  // Prefix sums: node offsets and per-relation edge offsets.
  support::PoolVector<int> node_offset(G + 1, 0);
  support::PoolVector<std::array<int, graph::kNumEdgeKinds>> edge_offset(
      G + 1, std::array<int, graph::kNumEdgeKinds>{});
  for (std::size_t g = 0; g < G; ++g) {
    node_offset[g + 1] = node_offset[g] + node_count[g];
    for (int r = 0; r < graph::kNumEdgeKinds; ++r)
      edge_offset[g + 1][r] = edge_offset[g][r] + edge_count[g][r];
  }
  batch.features.resize(node_offset[G]);
  batch.segment.resize(node_offset[G]);
  for (int r = 0; r < graph::kNumEdgeKinds; ++r) {
    batch.relations[r].src.resize(edge_offset[G][r]);
    batch.relations[r].dst.resize(edge_offset[G][r]);
  }

  // Pass 2: every graph fills its disjoint slices.
  pool.parallel_for(
      0, static_cast<std::int64_t>(G), num_threads, [&](std::int64_t g) {
        const graph::ProgramGraph& pg = *graphs[g];
        const int base = node_offset[g];
        for (std::size_t i = 0; i < pg.nodes.size(); ++i) {
          batch.features[base + i] = pg.nodes[i].feature;
          batch.segment[base + i] = static_cast<int>(g);
        }
        std::array<int, graph::kNumEdgeKinds> cursor = edge_offset[g];
        for (const auto& edge : pg.edges) {
          const int r = static_cast<int>(edge.kind);
          RelationEdges& rel = batch.relations[r];
          rel.src[cursor[r]] = base + edge.src;
          rel.dst[cursor[r]] = base + edge.dst;
          ++cursor[r];
        }
      });
}

}  // namespace

void make_batch_into(GraphBatch& batch,
                     const std::vector<const graph::ProgramGraph*>& graphs,
                     int num_threads) {
  reset_batch(batch, static_cast<int>(graphs.size()));
  if (graphs.size() < kParallelBatchThreshold || num_threads == 1)
    fill_batch_serial(batch, graphs);
  else
    fill_batch_parallel(batch, graphs, num_threads);

  // RGCN normalization: 1/c_{i,r} with c the in-degree of i under r.
  // Relations are few and independent; coefficients per relation fill in
  // edge order either way, so this is deterministic too.
  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(batch.relations.size()),
      batch.num_nodes() >= 1024 ? num_threads : 1, [&](std::int64_t r) {
        RelationEdges& rel = batch.relations[r];
        support::PoolVector<float> in_degree(batch.features.size(), 0.0f);
        for (int dst : rel.dst) in_degree[dst] += 1.0f;
        rel.coeff.assign(rel.dst.size(), 0.0f);
        for (std::size_t e = 0; e < rel.dst.size(); ++e)
          rel.coeff[e] = 1.0f / in_degree[rel.dst[e]];
      });
}

GraphBatch make_batch(const std::vector<const graph::ProgramGraph*>& graphs,
                      int num_threads) {
  GraphBatch batch;
  make_batch_into(batch, graphs, num_threads);
  return batch;
}

}  // namespace irgnn::gnn
