// Batching of ProgramGraphs for the GNN: node features concatenate with an
// offset, edges split per relation with RGCN normalization coefficients, and
// a segment vector maps nodes back to their graph for pooling.
//
// Batch assembly parallelizes over graphs: a counting pass sizes every
// per-graph slice, prefix sums fix the offsets, and a fill pass writes the
// disjoint slices concurrently. Output ordering equals the serial
// concatenation, so batches are byte-identical for every num_threads.
#pragma once

#include <vector>

#include "gnn/modules.h"
#include "graph/program_graph.h"

namespace irgnn::gnn {

struct GraphBatch {
  std::vector<int> features;                 // per node, vocabulary index
  std::vector<RelationEdges> relations;      // size kNumEdgeKinds
  std::vector<int> segment;                  // node -> graph index
  int num_graphs = 0;
  int num_nodes() const { return static_cast<int>(features.size()); }
};

/// Builds a batch from a set of graphs (order defines the segment ids).
/// num_threads caps the assembly parallelism (<= 0: all pool workers).
GraphBatch make_batch(const std::vector<const graph::ProgramGraph*>& graphs,
                      int num_threads = 0);

/// Rebuilds `batch` in place from `graphs`, producing exactly what
/// make_batch returns but reusing the batch's existing buffers (clear keeps
/// capacity). The training loop holds one scratch batch per gradient shard
/// so steady-state batch assembly performs no heap allocations.
void make_batch_into(GraphBatch& batch,
                     const std::vector<const graph::ProgramGraph*>& graphs,
                     int num_threads = 0);

}  // namespace irgnn::gnn
