// Batching of ProgramGraphs for the GNN: node features concatenate with an
// offset, edges split per relation with RGCN normalization coefficients, and
// a segment vector maps nodes back to their graph for pooling.
#pragma once

#include <vector>

#include "gnn/modules.h"
#include "graph/program_graph.h"

namespace irgnn::gnn {

struct GraphBatch {
  std::vector<int> features;                 // per node, vocabulary index
  std::vector<RelationEdges> relations;      // size kNumEdgeKinds
  std::vector<int> segment;                  // node -> graph index
  int num_graphs = 0;
  int num_nodes() const { return static_cast<int>(features.size()); }
};

/// Builds a batch from a set of graphs (order defines the segment ids).
GraphBatch make_batch(const std::vector<const graph::ProgramGraph*>& graphs);

}  // namespace irgnn::gnn
