// The paper's static prediction network (Fig. 2a):
//
//   program graph -> node Embedding -> RGCN layers -> residual link +
//   Add&Norm -> mean Pooling -> Fully Connected (graph embedding vector) ->
//   Feed Forward head -> predicted configuration logits
//
// The vector after the fully-connected layer is the "graph vector" consumed
// by the hybrid model and the flag-prediction model (Sec. III-D/E).
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/graph_batch.h"
#include "gnn/modules.h"
#include "graph/program_graph.h"
#include "tensor/optimizer.h"

namespace irgnn::gnn {

struct ModelConfig {
  int vocab_size = 0;      // set from graph::vocabulary_size()
  int num_labels = 13;
  int hidden_dim = 64;     // paper uses a 256-d graph vector; configurable
  int num_layers = 3;
  float learning_rate = 5e-3f;
  float dropout = 0.1f;
  int epochs = 60;
  int batch_size = 32;
  std::uint64_t seed = 0x5EED;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double final_train_accuracy = 0.0;
};

class StaticModel {
 public:
  explicit StaticModel(const ModelConfig& config);

  /// Trains on (graph, label) pairs with minibatched Adam.
  TrainStats train(const std::vector<const graph::ProgramGraph*>& graphs,
                   const std::vector<int>& labels);

  /// Predicted label per graph.
  std::vector<int> predict(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  /// Per-graph log-probabilities [G, num_labels] (row-major).
  std::vector<std::vector<float>> predict_log_probs(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  /// Graph embedding vectors [G, hidden_dim] — the static feature vectors
  /// the hybrid and flag models consume.
  std::vector<std::vector<float>> embed(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  const ModelConfig& config() const { return config_; }
  std::vector<tensor::Tensor> parameters() const;

 private:
  /// Returns logits [G, num_labels]; fills `embeddings` with the pooled
  /// post-FC representation when non-null.
  tensor::Tensor forward(const GraphBatch& batch, bool training,
                         tensor::Tensor* embeddings) const;

  ModelConfig config_;
  mutable Rng rng_;
  Embedding node_embedding_;
  std::vector<RGCNLayer> layers_;
  LayerNorm norm_;
  Linear fc_;
  Linear head_;
};

}  // namespace irgnn::gnn
