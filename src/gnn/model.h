// The paper's static prediction network (Fig. 2a):
//
//   program graph -> node Embedding -> RGCN layers -> residual link +
//   Add&Norm -> mean Pooling -> Fully Connected (graph embedding vector) ->
//   Feed Forward head -> predicted configuration logits
//
// The vector after the fully-connected layer is the "graph vector" consumed
// by the hybrid model and the flag-prediction model (Sec. III-D/E).
//
// Training parallelizes inside each minibatch: the batch splits into a fixed
// number of gradient shards (independent of num_threads), every shard runs
// forward/backward against its own parameter replica, and shard gradients
// fold into the optimizer in shard order. Because the partition, the
// per-shard dropout streams (derived from (seed, epoch, batch, shard) via
// splitmix64) and the reduction order never depend on the thread count,
// TrainStats and predictions are bit-identical for every num_threads.
//
// The loop is allocation-free in steady state: replicas, their parameter
// handle vectors and each shard's chunk/batch scratch persist across
// minibatches (cleared, never freed), tensor ops recycle node and buffer
// storage through the arena, and the gradient reduction runs 8-wide over
// the cached handles.
//
// Inference is a separate fast path: predict / predict_log_probs / embed /
// evaluate run tape-free under tensor::InferenceGuard (no autograd nodes,
// no gradient buffers), shard the graph set in fixed 16-graph chunks across
// the shared pool against a persistent per-model context of pooled
// GraphBatch scratch, and concatenate per-shard results in shard order.
// Results are bit-identical to a serial full-batch forward for every thread
// count, and a warm query into caller-reused storage performs zero heap
// allocations.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "gnn/graph_batch.h"
#include "gnn/inference_model.h"
#include "gnn/modules.h"
#include "graph/program_graph.h"
#include "support/inline_function.h"
#include "support/status.h"
#include "tensor/optimizer.h"

namespace irgnn::gnn {

class QuantizedModel;

struct ModelConfig {
  int vocab_size = 0;      // set from graph::vocabulary_size()
  int num_labels = 13;
  int hidden_dim = 64;     // paper uses a 256-d graph vector; configurable
  int num_layers = 3;
  float learning_rate = 5e-3f;
  float dropout = 0.1f;
  int epochs = 60;
  int batch_size = 32;
  std::uint64_t seed = 0x5EED;
  /// Max threads for this model's shard dispatch and batch assembly (<= 0:
  /// every worker of the global pool). The tensor kernels inside read the
  /// process-global tensor::set_kernel_parallelism cap instead — set both
  /// to bound total fan-out (core::run_experiment does). Results are
  /// bit-identical for every value of either knob.
  int num_threads = 0;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double final_train_accuracy = 0.0;
};

class StaticModel : public InferenceModel {
 public:
  explicit StaticModel(const ModelConfig& config);

  /// Trains on (graph, label) pairs with minibatched Adam.
  TrainStats train(const std::vector<const graph::ProgramGraph*>& graphs,
                   const std::vector<int>& labels);

  // --- Inference fast path --------------------------------------------------
  // Every query below runs tape-free (tensor::InferenceGuard): forward
  // records no autograd nodes and touches no gradient buffers. Graph sets
  // shard across the shared ThreadPool in fixed-size index chunks against a
  // persistent per-model context (pooled GraphBatch scratch reused via
  // make_batch_into), and per-shard results concatenate in shard order —
  // so results are bit-identical to a serial full-batch forward for every
  // thread count, and a warm call into caller-reused output storage
  // performs zero heap allocations (tests/arena_test.cpp enforces it).
  // Queries are serialized per model by an internal lock; distinct models
  // (e.g. one per CV fold) run concurrently.

  /// predict() into caller-owned storage (resized to the graph count). The
  /// allocation-free form for hot query loops.
  void predict_into(const std::vector<const graph::ProgramGraph*>& graphs,
                    std::vector<int>& out) const override;

  /// Predictions + log-probabilities (+ graph embeddings when requested)
  /// from one batch build and one forward per shard. The allocation-free
  /// workhorse behind predict_log_probs()/embed() and the experiment's
  /// evaluation path.
  void evaluate(const std::vector<const graph::ProgramGraph*>& graphs,
                Evaluation& out, bool want_embeddings = false) const override;

  /// Per-graph log-probabilities [G, num_labels] (row-major).
  std::vector<std::vector<float>> predict_log_probs(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  /// Graph embedding vectors [G, hidden_dim] — the static feature vectors
  /// the hybrid and flag models consume.
  std::vector<std::vector<float>> embed(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  const ModelConfig& config() const { return config_; }
  int num_labels() const override { return config_.num_labels; }
  int hidden_dim() const override { return config_.hidden_dim; }
  std::vector<tensor::Tensor> parameters() const;

  /// Post-training int8 quantization (gnn/quantize.cpp): calibrates
  /// activation ranges by streaming `calibration` (typically one CV fold)
  /// through this model tape-free, quantizes every Linear/RGCN weight to
  /// per-output-channel int8, and returns a servable QuantizedModel
  /// implementing the same InferenceModel surface. Fails InvalidArgument on
  /// an empty calibration set and Internal on an injected "gnn.quantize"
  /// failpoint fault — on any failure nothing servable is produced, so a
  /// caller can never publish a partially quantized model.
  support::StatusOr<std::shared_ptr<const QuantizedModel>> quantize(
      const std::vector<const graph::ProgramGraph*>& calibration) const;

 private:
  /// The full parameter stack. Gradient shards train against deep-copied
  /// replicas so concurrent backward passes never share gradient buffers.
  struct Stack {
    Embedding embedding;
    std::vector<RGCNLayer> layers;
    LayerNorm norm;
    Linear fc;
    Linear head;

    std::vector<tensor::Tensor> parameters() const;
  };

  /// Returns logits [G, num_labels]; fills `embeddings` with the pooled
  /// post-FC representation when non-null. A non-null `dropout_rng` enables
  /// training-mode dropout drawing from that stream.
  tensor::Tensor forward(const Stack& stack, const GraphBatch& batch,
                         Rng* dropout_rng, tensor::Tensor* embeddings) const;

  /// Deep copy of the stack whose parameters carry fresh gradient buffers.
  Stack make_grad_replica() const;

  /// Re-syncs an existing replica through its cached parameter handles:
  /// copies the current weights in and zeroes its gradients, reusing the
  /// buffers allocated by make_grad_replica(). Allocation-free.
  static void refresh_replica(const std::vector<tensor::Tensor>& src,
                              std::vector<tensor::Tensor>& dst);

  /// Graphs per inference shard. A fixed constant (never derived from the
  /// thread count) so the shard partition — and with it every float — is
  /// identical no matter how many workers run the shards.
  static constexpr std::size_t kInferenceShardGraphs = 16;

  /// One shard's persistent scratch: the graph chunk and its pooled batch,
  /// reused across queries so a warm shard assembles allocation-free.
  struct InferenceShard {
    std::vector<const graph::ProgramGraph*> chunk;
    GraphBatch batch;
  };

  /// Shards `graphs` in fixed chunks across the pool; each shard builds its
  /// batch into persistent scratch and runs one tape-free forward, then
  /// `consume(first_graph_index, logits, embeddings)` fires per shard
  /// (embeddings is undefined unless want_embeddings). consume runs
  /// concurrently for distinct shards and must only write state owned by
  /// its shard's graph indices; it executes under the shard's
  /// InferenceGuard, so tensor ops inside stay tape-free too.
  void forward_shards(
      const std::vector<const graph::ProgramGraph*>& graphs,
      bool want_embeddings,
      support::FunctionRef<void(std::size_t, const tensor::Tensor&,
                                const tensor::Tensor&)>
          consume) const;

  ModelConfig config_;
  mutable Rng rng_;
  Stack stack_;
  /// Persistent inference context; the mutex serializes queries on one
  /// model (predict is const and models are queried from parallel folds).
  mutable std::mutex infer_mutex_;
  mutable std::vector<InferenceShard> infer_shards_;
};

}  // namespace irgnn::gnn
