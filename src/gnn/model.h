// The paper's static prediction network (Fig. 2a):
//
//   program graph -> node Embedding -> RGCN layers -> residual link +
//   Add&Norm -> mean Pooling -> Fully Connected (graph embedding vector) ->
//   Feed Forward head -> predicted configuration logits
//
// The vector after the fully-connected layer is the "graph vector" consumed
// by the hybrid model and the flag-prediction model (Sec. III-D/E).
//
// Training parallelizes inside each minibatch: the batch splits into a fixed
// number of gradient shards (independent of num_threads), every shard runs
// forward/backward against its own parameter replica, and shard gradients
// fold into the optimizer in shard order. Because the partition, the
// per-shard dropout streams (derived from (seed, epoch, batch, shard) via
// splitmix64) and the reduction order never depend on the thread count,
// TrainStats and predictions are bit-identical for every num_threads.
//
// The loop is allocation-free in steady state: replicas, their parameter
// handle vectors and each shard's chunk/batch scratch persist across
// minibatches (cleared, never freed), tensor ops recycle node and buffer
// storage through the arena, and the gradient reduction runs 8-wide over
// the cached handles.
#pragma once

#include <cstdint>
#include <vector>

#include "gnn/graph_batch.h"
#include "gnn/modules.h"
#include "graph/program_graph.h"
#include "tensor/optimizer.h"

namespace irgnn::gnn {

struct ModelConfig {
  int vocab_size = 0;      // set from graph::vocabulary_size()
  int num_labels = 13;
  int hidden_dim = 64;     // paper uses a 256-d graph vector; configurable
  int num_layers = 3;
  float learning_rate = 5e-3f;
  float dropout = 0.1f;
  int epochs = 60;
  int batch_size = 32;
  std::uint64_t seed = 0x5EED;
  /// Max threads for this model's shard dispatch and batch assembly (<= 0:
  /// every worker of the global pool). The tensor kernels inside read the
  /// process-global tensor::set_kernel_parallelism cap instead — set both
  /// to bound total fan-out (core::run_experiment does). Results are
  /// bit-identical for every value of either knob.
  int num_threads = 0;
};

struct TrainStats {
  std::vector<double> epoch_loss;
  double final_train_accuracy = 0.0;
};

class StaticModel {
 public:
  explicit StaticModel(const ModelConfig& config);

  /// Trains on (graph, label) pairs with minibatched Adam.
  TrainStats train(const std::vector<const graph::ProgramGraph*>& graphs,
                   const std::vector<int>& labels);

  /// Predicted label per graph.
  std::vector<int> predict(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  /// Per-graph log-probabilities [G, num_labels] (row-major).
  std::vector<std::vector<float>> predict_log_probs(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  /// Graph embedding vectors [G, hidden_dim] — the static feature vectors
  /// the hybrid and flag models consume.
  std::vector<std::vector<float>> embed(
      const std::vector<const graph::ProgramGraph*>& graphs) const;

  const ModelConfig& config() const { return config_; }
  std::vector<tensor::Tensor> parameters() const;

 private:
  /// The full parameter stack. Gradient shards train against deep-copied
  /// replicas so concurrent backward passes never share gradient buffers.
  struct Stack {
    Embedding embedding;
    std::vector<RGCNLayer> layers;
    LayerNorm norm;
    Linear fc;
    Linear head;

    std::vector<tensor::Tensor> parameters() const;
  };

  /// Returns logits [G, num_labels]; fills `embeddings` with the pooled
  /// post-FC representation when non-null. A non-null `dropout_rng` enables
  /// training-mode dropout drawing from that stream.
  tensor::Tensor forward(const Stack& stack, const GraphBatch& batch,
                         Rng* dropout_rng, tensor::Tensor* embeddings) const;

  /// Deep copy of the stack whose parameters carry fresh gradient buffers.
  Stack make_grad_replica() const;

  /// Re-syncs an existing replica through its cached parameter handles:
  /// copies the current weights in and zeroes its gradients, reusing the
  /// buffers allocated by make_grad_replica(). Allocation-free.
  static void refresh_replica(const std::vector<tensor::Tensor>& src,
                              std::vector<tensor::Tensor>& dst);

  ModelConfig config_;
  mutable Rng rng_;
  Stack stack_;
};

}  // namespace irgnn::gnn
