// The servable-model interface: what the serving layer (serve::ModelRegistry,
// serve::InferenceServer, serve::Router) requires of anything it publishes.
//
// Two implementations exist: the float gnn::StaticModel (gnn/model.h) and the
// post-training int8 gnn::QuantizedModel (gnn/quantize.h) it produces. The
// serving layer holds models as shared_ptr<const InferenceModel> and only
// ever calls the virtual surface below — one virtual dispatch per batched
// forward, noise against the forward itself — so float and quantized
// versions publish, hot-swap and mix behind the same Router with no
// serve-side type knowledge.
//
// Every implementation owes the serving layer the same contract the float
// model established: predict_into / evaluate are const and thread-compatible
// (internally serialized per model), results are bit-identical to a serial
// full-batch forward for every thread count and batch composition, and a
// warm call into caller-reused output storage performs zero heap
// allocations.
#pragma once

#include <vector>

#include "graph/program_graph.h"

namespace irgnn::gnn {

/// Everything one inference pass can report, in flat caller-owned storage so
/// a warm evaluate() performs no heap allocations. All three members come
/// from the same batch build + forward per shard — logits, log-probs and
/// embeddings are never computed from separately re-packed batches.
struct Evaluation {
  std::vector<int> predictions;  // [G] argmax label per graph
  std::vector<float> log_probs;  // [G * num_labels], row-major
  std::vector<float> embeddings; // [G * hidden_dim] when requested, else empty
};

class InferenceModel {
 public:
  virtual ~InferenceModel() = default;

  /// Predicted label per graph into caller-owned storage (resized to the
  /// graph count). The allocation-free form for hot query loops.
  virtual void predict_into(
      const std::vector<const graph::ProgramGraph*>& graphs,
      std::vector<int>& out) const = 0;

  /// Predictions + log-probabilities (+ graph embeddings when requested)
  /// from one batch build and one forward per shard.
  virtual void evaluate(const std::vector<const graph::ProgramGraph*>& graphs,
                        Evaluation& out,
                        bool want_embeddings = false) const = 0;

  virtual int num_labels() const = 0;
  virtual int hidden_dim() const = 0;

  /// Convenience allocating form of predict_into.
  std::vector<int> predict(
      const std::vector<const graph::ProgramGraph*>& graphs) const {
    std::vector<int> out;
    predict_into(graphs, out);
    return out;
  }
};

}  // namespace irgnn::gnn
