#include "gnn/model.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "support/simd.h"
#include "support/thread_pool.h"

namespace irgnn::gnn {

using tensor::Tensor;

namespace {

/// A minibatch splits into this many gradient shards. The count is a
/// constant — never derived from num_threads — so the partition, and with it
/// every float, is identical no matter how many workers execute the shards.
constexpr std::size_t kGradShards = 8;

Tensor clone_param(const Tensor& p) {
  return Tensor::from_data(p.shape(),
                           std::vector<float>(p.data(), p.data() + p.numel()),
                           /*requires_grad=*/true);
}

}  // namespace

std::vector<Tensor> StaticModel::Stack::parameters() const {
  std::vector<Tensor> params = embedding.parameters();
  for (const RGCNLayer& layer : layers) {
    auto lp = layer.parameters();
    params.insert(params.end(), lp.begin(), lp.end());
  }
  for (const auto& mod_params :
       {norm.parameters(), fc.parameters(), head.parameters()})
    params.insert(params.end(), mod_params.begin(), mod_params.end());
  return params;
}

StaticModel::StaticModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  assert(config_.vocab_size > 0 && config_.num_labels > 0);
  stack_.embedding = Embedding(config_.vocab_size, config_.hidden_dim, rng_);
  for (int l = 0; l < config_.num_layers; ++l)
    stack_.layers.emplace_back(config_.hidden_dim, graph::kNumEdgeKinds, rng_);
  stack_.norm = LayerNorm(config_.hidden_dim);
  stack_.fc = Linear(config_.hidden_dim, config_.hidden_dim, rng_);
  stack_.head = Linear(config_.hidden_dim, config_.num_labels, rng_);
}

std::vector<Tensor> StaticModel::parameters() const {
  return stack_.parameters();
}

void StaticModel::refresh_replica(const std::vector<Tensor>& src,
                                  std::vector<Tensor>& dst) {
  for (std::size_t k = 0; k < src.size(); ++k) {
    std::copy(src[k].data(), src[k].data() + src[k].numel(), dst[k].data());
    dst[k].zero_grad();
  }
}

StaticModel::Stack StaticModel::make_grad_replica() const {
  Stack replica;
  replica.embedding = Embedding(clone_param(stack_.embedding.parameters()[0]));
  for (const RGCNLayer& layer : stack_.layers) {
    auto lp = layer.parameters();  // {self_weight, relation_weights...}
    std::vector<Tensor> relations;
    for (std::size_t r = 1; r < lp.size(); ++r)
      relations.push_back(clone_param(lp[r]));
    replica.layers.emplace_back(clone_param(lp[0]), std::move(relations));
  }
  auto np = stack_.norm.parameters();
  replica.norm = LayerNorm(clone_param(np[0]), clone_param(np[1]));
  auto fp = stack_.fc.parameters();
  replica.fc = Linear(clone_param(fp[0]), clone_param(fp[1]));
  auto hp = stack_.head.parameters();
  replica.head = Linear(clone_param(hp[0]), clone_param(hp[1]));
  return replica;
}

Tensor StaticModel::forward(const Stack& stack, const GraphBatch& batch,
                            Rng* dropout_rng, Tensor* embeddings) const {
  Tensor h0 = stack.embedding.forward(batch.features);
  Tensor h = h0;
  for (const RGCNLayer& layer : stack.layers)
    h = layer.forward(h, batch.relations);
  // Residual link from the initial embedding, then Add & Norm (Fig. 2a).
  h = stack.norm.forward(tensor::add(h, h0));
  if (dropout_rng && config_.dropout > 0.0f)
    h = tensor::dropout(h, config_.dropout, *dropout_rng, true);
  Tensor pooled = tensor::segment_mean(h, batch.segment, batch.num_graphs);
  Tensor vec = stack.fc.forward(pooled, tensor::Act::Relu);
  if (embeddings) *embeddings = vec;
  return stack.head.forward(vec);
}

TrainStats StaticModel::train(
    const std::vector<const graph::ProgramGraph*>& graphs,
    const std::vector<int>& labels) {
  assert(graphs.size() == labels.size());
  TrainStats stats;
  tensor::Adam optimizer(parameters(), {.lr = config_.learning_rate});
  std::vector<Tensor> main_params = parameters();
  support::ThreadPool& pool = support::ThreadPool::global();

  std::vector<std::size_t> order(graphs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Shard replicas allocate once and are refreshed (weights re-copied,
  // gradients zeroed) every batch — the optimizer moved the weights in
  // between, but the buffers themselves are reusable. The parameter handle
  // vectors and the per-shard chunk/batch scratch persist for the same
  // reason: after the first few minibatches every buffer a step needs
  // already exists, and a full train step touches malloc zero times.
  std::vector<Stack> replicas(kGradShards);
  std::vector<std::vector<Tensor>> replica_params(kGradShards);
  std::vector<char> replica_ready(kGradShards, 0);

  struct ShardScratch {
    std::vector<const graph::ProgramGraph*> chunk;
    std::vector<int> labels;
    GraphBatch batch;
  };
  std::vector<ShardScratch> scratch(kGradShards);
  std::vector<double> shard_loss(kGradShards, 0.0);
  std::vector<std::size_t> shard_count(kGradShards, 0);

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    std::size_t batch_index = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size),
                     ++batch_index) {
      std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(config_.batch_size));
      const std::size_t n = end - start;
      // Recompute the shard count from the rounded-up shard size: a partial
      // minibatch (e.g. n=9 against 8 target shards) would otherwise leave
      // trailing shards empty, and an empty nll_loss is 0/0 = NaN.
      const std::size_t target_shards = std::min(kGradShards, n);
      const std::size_t shard_size = (n + target_shards - 1) / target_shards;
      const std::size_t num_shards = (n + shard_size - 1) / shard_size;

      // Every shard forwards/backwards against its own replica; the shard
      // key (not the executing thread) seeds its dropout stream.
      const std::uint64_t batch_key = hash_combine64(
          hash_combine64(config_.seed, static_cast<std::uint64_t>(epoch)),
          static_cast<std::uint64_t>(batch_index));
      pool.parallel_for_seeded(
          0, static_cast<std::int64_t>(num_shards), config_.num_threads,
          batch_key, [&](std::int64_t s, Rng& dropout_rng) {
            std::size_t s0 = start + static_cast<std::size_t>(s) * shard_size;
            std::size_t s1 = std::min(end, s0 + shard_size);
            ShardScratch& sc = scratch[s];
            sc.chunk.clear();
            sc.labels.clear();
            for (std::size_t i = s0; i < s1; ++i) {
              sc.chunk.push_back(graphs[order[i]]);
              sc.labels.push_back(labels[order[i]]);
            }
            // Shards are small; keep the batch build serial and spend the
            // workers on whole shards instead.
            make_batch_into(sc.batch, sc.chunk, /*num_threads=*/1);
            if (replica_ready[s]) {
              refresh_replica(main_params, replica_params[s]);
            } else {
              replicas[s] = make_grad_replica();
              replica_params[s] = replicas[s].parameters();
              replica_ready[s] = 1;
            }
            Tensor logits = forward(replicas[s], sc.batch, &dropout_rng,
                                    nullptr);
            Tensor loss = tensor::nll_loss(tensor::log_softmax(logits),
                                           sc.labels);
            loss.backward();
            shard_loss[s] = loss.item();
            shard_count[s] = s1 - s0;
          });

      // Deterministic reduction: shard gradients fold in shard order with
      // weights shard_n / batch_n, then one optimizer step for the batch.
      // Shard gradients are read through the const accessor — a parameter a
      // shard never touched (e.g. a relation with no edges in its chunk)
      // has no gradient buffer, contributes zero, and must not be forced to
      // allocate one here.
      optimizer.zero_grad();
      double batch_loss = 0.0;
      for (std::size_t s = 0; s < num_shards; ++s) {
        const float weight = static_cast<float>(shard_count[s]) /
                             static_cast<float>(n);
        const std::vector<Tensor>& shard_params = replica_params[s];
        for (std::size_t k = 0; k < main_params.size(); ++k) {
          const float* src = shard_params[k].grad();
          if (src == nullptr) continue;
          simd::axpy(main_params[k].grad(), weight, src,
                     main_params[k].numel());
        }
        batch_loss += shard_loss[s] * static_cast<double>(shard_count[s]) /
                      static_cast<double>(n);
      }
      optimizer.step();
      epoch_loss += batch_loss;
      ++batches;
    }
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(batches));
  }

  // Final training accuracy (diagnostic).
  std::vector<int> predictions = predict(graphs);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    correct += (predictions[i] == labels[i]);
  stats.final_train_accuracy =
      labels.empty() ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(labels.size());
  return stats;
}

void StaticModel::forward_shards(
    const std::vector<const graph::ProgramGraph*>& graphs,
    bool want_embeddings,
    support::FunctionRef<void(std::size_t, const Tensor&, const Tensor&)>
        consume) const {
  if (graphs.empty()) return;
  std::lock_guard<std::mutex> lock(infer_mutex_);
  const std::size_t G = graphs.size();
  const std::size_t num_shards =
      (G + kInferenceShardGraphs - 1) / kInferenceShardGraphs;
  if (infer_shards_.size() < num_shards) infer_shards_.resize(num_shards);

  auto run_shard = [&](std::int64_t s) {
    // Arm the tape switch on whichever thread runs this shard: forward
    // records no nodes, touches no grad buffers, builds no backward scratch.
    tensor::InferenceGuard guard;
    const std::size_t g0 =
        static_cast<std::size_t>(s) * kInferenceShardGraphs;
    const std::size_t g1 = std::min(G, g0 + kInferenceShardGraphs);
    InferenceShard& shard = infer_shards_[s];
    shard.chunk.clear();
    for (std::size_t g = g0; g < g1; ++g) shard.chunk.push_back(graphs[g]);
    // Shards are small; build serially and spend workers on whole shards.
    make_batch_into(shard.batch, shard.chunk, /*num_threads=*/1);
    Tensor embeddings;
    Tensor logits = forward(stack_, shard.batch, nullptr,
                            want_embeddings ? &embeddings : nullptr);
    consume(g0, logits, embeddings);
  };

  // Per-graph outputs never depend on which other graphs share a batch
  // (message passing stays inside a graph, pooling is per segment, and
  // every kernel's reduction order is per output element), so the sharded
  // results are bit-identical to one full-batch forward — and to each
  // other for every thread count, since shards partition by index.
  if (num_shards == 1)
    run_shard(0);
  else
    support::ThreadPool::global().parallel_for(
        0, static_cast<std::int64_t>(num_shards), config_.num_threads,
        run_shard);
}

void StaticModel::predict_into(
    const std::vector<const graph::ProgramGraph*>& graphs,
    std::vector<int>& out) const {
  out.resize(graphs.size());
  const int L = config_.num_labels;
  forward_shards(
      graphs, /*want_embeddings=*/false,
      [&](std::size_t g0, const Tensor& logits, const Tensor&) {
        for (int i = 0; i < logits.rows(); ++i)
          out[g0 + static_cast<std::size_t>(i)] = tensor::argmax_row(
              logits.data() + static_cast<std::int64_t>(i) * L, L);
      });
}

void StaticModel::evaluate(
    const std::vector<const graph::ProgramGraph*>& graphs, Evaluation& out,
    bool want_embeddings) const {
  const int L = config_.num_labels;
  const int H = config_.hidden_dim;
  const std::size_t G = graphs.size();
  out.predictions.resize(G);
  out.log_probs.resize(G * static_cast<std::size_t>(L));
  out.embeddings.resize(want_embeddings ? G * static_cast<std::size_t>(H)
                                        : 0);
  forward_shards(
      graphs, want_embeddings,
      [&](std::size_t g0, const Tensor& logits, const Tensor& embeddings) {
        // Still inside the shard's InferenceGuard: tape-free log_softmax.
        Tensor logp = tensor::log_softmax(logits);
        const std::int64_t rows = logits.rows();
        std::copy(logp.data(), logp.data() + rows * L,
                  out.log_probs.begin() + g0 * static_cast<std::size_t>(L));
        for (std::int64_t i = 0; i < rows; ++i)
          out.predictions[g0 + static_cast<std::size_t>(i)] =
              tensor::argmax_row(logits.data() + i * L, L);
        if (want_embeddings)
          std::copy(embeddings.data(), embeddings.data() + rows * H,
                    out.embeddings.begin() + g0 * static_cast<std::size_t>(H));
      });
}

std::vector<std::vector<float>> StaticModel::predict_log_probs(
    const std::vector<const graph::ProgramGraph*>& graphs) const {
  const int L = config_.num_labels;
  std::vector<std::vector<float>> out(graphs.size());
  forward_shards(
      graphs, /*want_embeddings=*/false,
      [&](std::size_t g0, const Tensor& logits, const Tensor&) {
        Tensor logp = tensor::log_softmax(logits);
        for (int i = 0; i < logits.rows(); ++i)
          out[g0 + static_cast<std::size_t>(i)].assign(
              logp.data() + static_cast<std::int64_t>(i) * L,
              logp.data() + static_cast<std::int64_t>(i + 1) * L);
      });
  return out;
}

std::vector<std::vector<float>> StaticModel::embed(
    const std::vector<const graph::ProgramGraph*>& graphs) const {
  const int H = config_.hidden_dim;
  std::vector<std::vector<float>> out(graphs.size());
  forward_shards(
      graphs, /*want_embeddings=*/true,
      [&](std::size_t g0, const Tensor&, const Tensor& embeddings) {
        for (std::int64_t i = 0;
             i < static_cast<std::int64_t>(embeddings.rows()); ++i)
          out[g0 + static_cast<std::size_t>(i)].assign(
              embeddings.data() + i * H, embeddings.data() + (i + 1) * H);
      });
  return out;
}

}  // namespace irgnn::gnn
