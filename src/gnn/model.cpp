#include "gnn/model.h"

#include <algorithm>
#include <cassert>

namespace irgnn::gnn {

using tensor::Tensor;

StaticModel::StaticModel(const ModelConfig& config)
    : config_(config), rng_(config.seed) {
  assert(config_.vocab_size > 0 && config_.num_labels > 0);
  node_embedding_ = Embedding(config_.vocab_size, config_.hidden_dim, rng_);
  for (int l = 0; l < config_.num_layers; ++l)
    layers_.emplace_back(config_.hidden_dim, graph::kNumEdgeKinds, rng_);
  norm_ = LayerNorm(config_.hidden_dim);
  fc_ = Linear(config_.hidden_dim, config_.hidden_dim, rng_);
  head_ = Linear(config_.hidden_dim, config_.num_labels, rng_);
}

std::vector<Tensor> StaticModel::parameters() const {
  std::vector<Tensor> params = node_embedding_.parameters();
  for (const RGCNLayer& layer : layers_) {
    auto lp = layer.parameters();
    params.insert(params.end(), lp.begin(), lp.end());
  }
  for (const auto& mod_params :
       {norm_.parameters(), fc_.parameters(), head_.parameters()})
    params.insert(params.end(), mod_params.begin(), mod_params.end());
  return params;
}

Tensor StaticModel::forward(const GraphBatch& batch, bool training,
                            Tensor* embeddings) const {
  Tensor h0 = node_embedding_.forward(batch.features);
  Tensor h = h0;
  for (const RGCNLayer& layer : layers_)
    h = layer.forward(h, batch.relations);
  // Residual link from the initial embedding, then Add & Norm (Fig. 2a).
  h = norm_.forward(tensor::add(h, h0));
  if (training && config_.dropout > 0.0f)
    h = tensor::dropout(h, config_.dropout, rng_, true);
  Tensor pooled = tensor::segment_mean(h, batch.segment, batch.num_graphs);
  Tensor vec = tensor::relu(fc_.forward(pooled));
  if (embeddings) *embeddings = vec;
  return head_.forward(vec);
}

TrainStats StaticModel::train(
    const std::vector<const graph::ProgramGraph*>& graphs,
    const std::vector<int>& labels) {
  assert(graphs.size() == labels.size());
  TrainStats stats;
  tensor::Adam optimizer(parameters(), {.lr = config_.learning_rate});

  std::vector<std::size_t> order(graphs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.shuffle(order);
    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config_.batch_size)) {
      std::size_t end = std::min(
          order.size(), start + static_cast<std::size_t>(config_.batch_size));
      std::vector<const graph::ProgramGraph*> chunk;
      std::vector<int> chunk_labels;
      for (std::size_t i = start; i < end; ++i) {
        chunk.push_back(graphs[order[i]]);
        chunk_labels.push_back(labels[order[i]]);
      }
      GraphBatch batch = make_batch(chunk);
      optimizer.zero_grad();
      Tensor logits = forward(batch, /*training=*/true, nullptr);
      Tensor loss = tensor::nll_loss(tensor::log_softmax(logits),
                                     chunk_labels);
      loss.backward();
      optimizer.step();
      epoch_loss += loss.item();
      ++batches;
    }
    stats.epoch_loss.push_back(epoch_loss / static_cast<double>(batches));
  }

  // Final training accuracy (diagnostic).
  std::vector<int> predictions = predict(graphs);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i)
    correct += (predictions[i] == labels[i]);
  stats.final_train_accuracy =
      labels.empty() ? 0.0
                     : static_cast<double>(correct) /
                           static_cast<double>(labels.size());
  return stats;
}

std::vector<int> StaticModel::predict(
    const std::vector<const graph::ProgramGraph*>& graphs) const {
  GraphBatch batch = make_batch(graphs);
  Tensor logits = forward(batch, /*training=*/false, nullptr);
  return tensor::argmax_rows(logits);
}

std::vector<std::vector<float>> StaticModel::predict_log_probs(
    const std::vector<const graph::ProgramGraph*>& graphs) const {
  GraphBatch batch = make_batch(graphs);
  Tensor logp =
      tensor::log_softmax(forward(batch, /*training=*/false, nullptr));
  std::vector<std::vector<float>> out(graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g) {
    out[g].assign(logp.data() + g * config_.num_labels,
                  logp.data() + (g + 1) * config_.num_labels);
  }
  return out;
}

std::vector<std::vector<float>> StaticModel::embed(
    const std::vector<const graph::ProgramGraph*>& graphs) const {
  GraphBatch batch = make_batch(graphs);
  Tensor embeddings;
  forward(batch, /*training=*/false, &embeddings);
  std::vector<std::vector<float>> out(graphs.size());
  for (std::size_t g = 0; g < graphs.size(); ++g)
    out[g].assign(embeddings.data() + g * config_.hidden_dim,
                  embeddings.data() + (g + 1) * config_.hidden_dim);
  return out;
}

}  // namespace irgnn::gnn
