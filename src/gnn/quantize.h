// Post-training int8 quantization of the static prediction network.
//
// StaticModel::quantize() (declared in gnn/model.h, defined in quantize.cpp)
// streams a calibration fold through the float model tape-free, recording
// the min/max range of every activation that will be quantized — each RGCN
// layer's input, the pooled FC input and the FC-output head input — then
// quantizes every matmul weight to per-output-channel int8 and returns a
// QuantizedModel serving the same InferenceModel surface.
//
// Quantization scheme (chosen so the int8 kernels are *exact*, see
// tensor/gemm_int8.h):
//
//   activations - asymmetric uint8 restricted to [0, 127]:
//                   q = clamp(zero + round(x / scale), 0, 127)
//                 with scale = (hi - lo) / 127 over the zero-inclusive
//                 calibrated range. The 7-bit ceiling makes AVX2 maddubs
//                 saturation unreachable, which is what buys the int8 path
//                 its across-ISA bit-identity.
//   weights     - symmetric per-output-channel int8 in [-127, 127]:
//                   wq = clamp(round(w / w_scale[j])),
//                 packed transposed ([out, in]) so the kernel streams one
//                 output channel contiguously.
//   epilogue    - out[i,j] = dequant[j] * (acc[i,j] - zp_colsum[j]) + bias[j]
//                 where dequant[j] = act.scale * w_scale[j] and
//                 zp_colsum[j] = act.zero * sum_k wq[j,k], both precomputed
//                 at quantize time; one fixed float expression per output
//                 element keeps the dequantized floats deterministic.
//
// Determinism: calibration ranges are min/max reductions — commutative and
// exact — so the derived scales are bit-identical for every thread count,
// shard partition and calibration-set ordering; the int8 accumulation is
// exact integer math; and the dequantize/norm/pool float ops follow the
// library's fixed-order kernels. Quantized predictions are therefore
// bit-identical across thread counts and batch compositions, pinned by
// tests/determinism_test.cpp.
//
// The warm query path allocates nothing: packed weights, scales and
// epilogue tables are owned by the model (PoolVector), and per-shard
// quantized-activation / int32-accumulator scratch persists across queries
// exactly like StaticModel's inference shards.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "gnn/graph_batch.h"
#include "gnn/model.h"
#include "support/arena.h"

namespace irgnn::gnn {

/// Quantization parameters of one activation site, derived from its
/// calibrated (zero-inclusive) range.
struct ActQuant {
  float lo = 0.0f;         // calibrated minimum (<= 0)
  float hi = 0.0f;         // calibrated maximum (>= 0)
  float scale = 1.0f;      // (hi - lo) / 127, or 1 for a degenerate range
  float inv_scale = 1.0f;  // 1 / scale, the factor the quantizer multiplies by
  int zero = 0;            // zero point in [0, 127]
};

/// One matmul's quantized weights plus the precomputed dequantize epilogue.
struct QuantizedLinear {
  int in = 0;
  int out = 0;
  support::PoolVector<std::int8_t> weights;      // packed transposed [out, in]
  support::PoolVector<float> w_scale;            // [out] per-channel scale
  support::PoolVector<float> dequant;            // [out] act.scale * w_scale
  support::PoolVector<std::int32_t> zp_colsum;   // [out] act.zero * colsum
  support::PoolVector<float> bias;               // [out]; empty when none
};

/// The int8 counterpart of StaticModel: embedding, layer norm, pooling and
/// the residual link stay float (they are memory-bound and carry no
/// weights worth quantizing), every matmul runs through the register-blocked
/// int8 kernels. Immutable snapshot — quantize() deep-copies the float
/// parameters it keeps, so retraining the source model never perturbs a
/// published quantized version.
class QuantizedModel : public InferenceModel {
 public:
  void predict_into(const std::vector<const graph::ProgramGraph*>& graphs,
                    std::vector<int>& out) const override;
  void evaluate(const std::vector<const graph::ProgramGraph*>& graphs,
                Evaluation& out, bool want_embeddings = false) const override;
  int num_labels() const override { return config_.num_labels; }
  int hidden_dim() const override { return config_.hidden_dim; }

  const ModelConfig& config() const { return config_; }

  /// Every activation scale in a fixed order (layer 0..L-1 inputs, FC
  /// input, head input) followed by every per-channel weight scale in stack
  /// order — the flat fingerprint the determinism tests compare across
  /// thread counts and calibration orderings. Diagnostic path; allocates.
  std::vector<float> scales() const;

  /// Activation zero points in the same site order as scales().
  std::vector<int> zero_points() const;

 private:
  friend class StaticModel;  // sole builder (StaticModel::quantize)
  QuantizedModel() = default;

  /// One quantized RGCN layer: the input quantizer is shared by the self
  /// transform and every relation transform (they all consume the same h).
  struct QuantizedLayer {
    ActQuant act;
    QuantizedLinear self;
    std::vector<QuantizedLinear> relations;
  };

  /// Per-shard int8 scratch, pooled and persistent across queries.
  struct Scratch {
    support::PoolVector<std::uint8_t> aq;        // quantized activations
    support::PoolVector<std::uint8_t> gathered;  // gathered u8 message rows
    support::PoolVector<std::int32_t> acc;       // widened accumulators
  };

  struct InferenceShard {
    std::vector<const graph::ProgramGraph*> chunk;
    GraphBatch batch;
    Scratch scratch;
  };

  tensor::Tensor forward(const GraphBatch& batch, Scratch& scratch,
                         tensor::Tensor* embeddings) const;

  /// Same sharded dispatch contract as StaticModel::forward_shards: fixed
  /// 16-graph chunks, persistent per-shard scratch, consume(first_graph,
  /// logits, embeddings) under the shard's InferenceGuard.
  void forward_shards(
      const std::vector<const graph::ProgramGraph*>& graphs,
      bool want_embeddings,
      support::FunctionRef<void(std::size_t, const tensor::Tensor&,
                                const tensor::Tensor&)>
          consume) const;

  ModelConfig config_;
  Embedding embedding_;  // float, deep-copied from the source model
  std::vector<QuantizedLayer> layers_;
  LayerNorm norm_;       // float, deep-copied
  ActQuant fc_act_;
  QuantizedLinear fc_;
  ActQuant head_act_;
  QuantizedLinear head_;

  mutable std::mutex infer_mutex_;
  mutable std::vector<InferenceShard> infer_shards_;
};

}  // namespace irgnn::gnn
