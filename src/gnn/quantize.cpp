#include "gnn/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <utility>

#include "support/failpoint.h"
#include "support/thread_pool.h"
#include "tensor/gemm_int8.h"
#include "tensor/tensor.h"

namespace irgnn::gnn {

using tensor::Tensor;

namespace {

/// Graphs per inference/calibration shard — the same fixed constant as
/// StaticModel's partition, never derived from the thread count.
constexpr std::size_t kShardGraphs = 16;

/// Round-half-up via floor, independent of the FPU rounding mode (lrintf
/// would follow it), so quantized codes are identical on every build. The
/// clamp happens in the float domain before the int cast — an activation far
/// outside its calibrated range must saturate, not overflow the cast.
inline std::uint8_t quantize_one(float x, const ActQuant& a) {
  float q = static_cast<float>(a.zero) + std::floor(x * a.inv_scale + 0.5f);
  q = q < 0.0f ? 0.0f : (q > 127.0f ? 127.0f : q);
  return static_cast<std::uint8_t>(q);
}

void quantize_buffer(const float* x, std::int64_t n, const ActQuant& a,
                     std::uint8_t* out) {
  for (std::int64_t i = 0; i < n; ++i) out[i] = quantize_one(x[i], a);
}

/// Observed min/max of one activation site. min/max is commutative and
/// exact, so merge order — shard order, thread count, calibration-set
/// permutation — cannot change the final range.
struct Range {
  float lo = std::numeric_limits<float>::max();
  float hi = std::numeric_limits<float>::lowest();

  void see(const Tensor& t) {
    const float* d = t.data();
    const std::int64_t n = t.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      lo = std::min(lo, d[i]);
      hi = std::max(hi, d[i]);
    }
  }
  void merge(const Range& o) {
    lo = std::min(lo, o.lo);
    hi = std::max(hi, o.hi);
  }
};

ActQuant make_act_quant(const Range& r) {
  ActQuant q;
  // Zero-inclusive range: zero must be exactly representable (it is the
  // padding/ReLU value), and this also absorbs a never-touched site.
  q.lo = std::min(r.lo, 0.0f);
  q.hi = std::max(r.hi, 0.0f);
  float scale = (q.hi - q.lo) / 127.0f;
  if (!(scale > 0.0f)) scale = 1.0f;  // degenerate all-zero site
  q.scale = scale;
  q.inv_scale = 1.0f / scale;
  int zero = static_cast<int>(std::floor(-q.lo / scale + 0.5f));
  q.zero = zero < 0 ? 0 : (zero > 127 ? 127 : zero);
  return q;
}

/// Quantizes one weight matrix w [in, out] (bias [1, out] or null) to
/// symmetric per-output-channel int8, packed transposed, with the dequantize
/// epilogue tables precomputed against the layer's input quantizer.
QuantizedLinear quantize_weights(const Tensor& w, const ActQuant& act,
                                 const Tensor* bias) {
  QuantizedLinear q;
  q.in = w.rows();
  q.out = w.cols();
  q.weights.resize(static_cast<std::size_t>(q.in) * q.out);
  q.w_scale.resize(q.out);
  q.dequant.resize(q.out);
  q.zp_colsum.resize(q.out);
  const float* wd = w.data();
  for (int j = 0; j < q.out; ++j) {
    float wmax = 0.0f;
    for (int i = 0; i < q.in; ++i)
      wmax = std::max(wmax,
                      std::fabs(wd[static_cast<std::int64_t>(i) * q.out + j]));
    const float ws = wmax > 0.0f ? wmax / 127.0f : 1.0f;
    const float inv = 1.0f / ws;
    std::int32_t colsum = 0;
    std::int8_t* wrow = q.weights.data() + static_cast<std::size_t>(j) * q.in;
    for (int i = 0; i < q.in; ++i) {
      float v =
          std::floor(wd[static_cast<std::int64_t>(i) * q.out + j] * inv + 0.5f);
      v = v < -127.0f ? -127.0f : (v > 127.0f ? 127.0f : v);
      const std::int8_t code = static_cast<std::int8_t>(v);
      wrow[i] = code;
      colsum += code;
    }
    q.w_scale[j] = ws;
    q.dequant[j] = act.scale * ws;
    q.zp_colsum[j] = act.zero * colsum;
  }
  if (bias != nullptr) {
    q.bias.resize(q.out);
    std::copy(bias->data(), bias->data() + q.out, q.bias.begin());
  }
  return q;
}

/// The fixed dequantize epilogue: one float expression per output element
/// (dequant * (acc - zp_colsum), then bias, then ReLU), so the floats the
/// int8 path hands back to the float ops are deterministic.
void dequantize_into(const std::int32_t* acc, const QuantizedLinear& q,
                     std::int64_t m, bool relu, float* out) {
  const bool has_bias = !q.bias.empty();
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int32_t* arow = acc + i * q.out;
    float* orow = out + i * q.out;
    for (int j = 0; j < q.out; ++j) {
      float v = q.dequant[j] * static_cast<float>(arow[j] - q.zp_colsum[j]);
      if (has_bias) v += q.bias[j];
      if (relu) v = v > 0.0f ? v : 0.0f;
      orow[j] = v;
    }
  }
}

/// aq [m, q.in] (quantized activations) times q, dequantized into a fresh
/// pooled tensor. Serial inside a shard — parallelism comes from the shard
/// dispatch, matching the float path's granularity.
Tensor qmatmul(const std::uint8_t* aq, std::int64_t m, const QuantizedLinear& q,
               bool relu, support::PoolVector<std::int32_t>& acc) {
  Tensor out = Tensor::zeros({static_cast<int>(m), q.out});
  acc.resize(static_cast<std::size_t>(m) * q.out);
  tensor::detail::gemm_s8_panels<false>(aq, q.in, q.weights.data(), q.in, m,
                                        q.out, q.in, acc.data(), q.out);
  dequantize_into(acc.data(), q, m, relu, out.data());
  return out;
}

Tensor clone_const(const Tensor& p) {
  return Tensor::from_data(p.shape(),
                           std::vector<float>(p.data(), p.data() + p.numel()));
}

}  // namespace

// --- QuantizedModel inference -----------------------------------------------

Tensor QuantizedModel::forward(const GraphBatch& batch, Scratch& s,
                               Tensor* embeddings) const {
  const int dim = config_.hidden_dim;
  Tensor h0 = embedding_.forward(batch.features);
  Tensor h = h0;
  for (const QuantizedLayer& layer : layers_) {
    const std::int64_t m = h.rows();
    s.aq.resize(static_cast<std::size_t>(m) * dim);
    quantize_buffer(h.data(), m * dim, layer.act, s.aq.data());
    Tensor out = qmatmul(s.aq.data(), m, layer.self, /*relu=*/false, s.acc);
    for (std::size_t r = 0; r < layer.relations.size(); ++r) {
      const RelationEdges& edges = batch.relations[r];
      if (edges.src.empty()) continue;
      const std::int64_t e = static_cast<std::int64_t>(edges.src.size());
      // Gather message rows in the quantized domain: quantization is
      // per-element, so gathering codes equals quantizing gathered rows.
      s.gathered.resize(static_cast<std::size_t>(e) * dim);
      for (std::int64_t i = 0; i < e; ++i)
        std::memcpy(
            s.gathered.data() + i * dim,
            s.aq.data() + static_cast<std::int64_t>(edges.src[i]) * dim,
            static_cast<std::size_t>(dim));
      Tensor messages = qmatmul(s.gathered.data(), e, layer.relations[r],
                                /*relu=*/false, s.acc);
      Tensor aggregated =
          tensor::index_add_rows(messages, edges.dst, edges.coeff, h.rows());
      out = tensor::add(out, aggregated);
    }
    h = tensor::relu(out);
  }
  h = norm_.forward(tensor::add(h, h0));
  Tensor pooled = tensor::segment_mean(h, batch.segment, batch.num_graphs);
  const std::int64_t g = pooled.rows();
  s.aq.resize(static_cast<std::size_t>(g) * dim);
  quantize_buffer(pooled.data(), g * dim, fc_act_, s.aq.data());
  Tensor vec = qmatmul(s.aq.data(), g, fc_, /*relu=*/true, s.acc);
  if (embeddings) *embeddings = vec;
  s.aq.resize(static_cast<std::size_t>(g) * dim);
  quantize_buffer(vec.data(), g * dim, head_act_, s.aq.data());
  return qmatmul(s.aq.data(), g, head_, /*relu=*/false, s.acc);
}

void QuantizedModel::forward_shards(
    const std::vector<const graph::ProgramGraph*>& graphs, bool want_embeddings,
    support::FunctionRef<void(std::size_t, const Tensor&, const Tensor&)>
        consume) const {
  if (graphs.empty()) return;
  std::lock_guard<std::mutex> lock(infer_mutex_);
  const std::size_t G = graphs.size();
  const std::size_t num_shards = (G + kShardGraphs - 1) / kShardGraphs;
  if (infer_shards_.size() < num_shards) infer_shards_.resize(num_shards);

  auto run_shard = [&](std::int64_t s) {
    tensor::InferenceGuard guard;
    const std::size_t g0 = static_cast<std::size_t>(s) * kShardGraphs;
    const std::size_t g1 = std::min(G, g0 + kShardGraphs);
    InferenceShard& shard = infer_shards_[s];
    shard.chunk.clear();
    for (std::size_t g = g0; g < g1; ++g) shard.chunk.push_back(graphs[g]);
    make_batch_into(shard.batch, shard.chunk, /*num_threads=*/1);
    Tensor embeddings;
    Tensor logits = forward(shard.batch, shard.scratch,
                            want_embeddings ? &embeddings : nullptr);
    consume(g0, logits, embeddings);
  };

  // Shards partition by index and int8 accumulation is exact integer math,
  // so the sharded results are bit-identical to a serial full-batch forward
  // for every thread count (same argument as StaticModel::forward_shards,
  // with the float-kernel fixed-order clause replaced by exactness).
  if (num_shards == 1)
    run_shard(0);
  else
    support::ThreadPool::global().parallel_for(
        0, static_cast<std::int64_t>(num_shards), config_.num_threads,
        run_shard);
}

void QuantizedModel::predict_into(
    const std::vector<const graph::ProgramGraph*>& graphs,
    std::vector<int>& out) const {
  out.resize(graphs.size());
  const int L = config_.num_labels;
  forward_shards(graphs, /*want_embeddings=*/false,
                 [&](std::size_t g0, const Tensor& logits, const Tensor&) {
                   for (int i = 0; i < logits.rows(); ++i)
                     out[g0 + static_cast<std::size_t>(i)] = tensor::argmax_row(
                         logits.data() + static_cast<std::int64_t>(i) * L, L);
                 });
}

void QuantizedModel::evaluate(
    const std::vector<const graph::ProgramGraph*>& graphs, Evaluation& out,
    bool want_embeddings) const {
  const int L = config_.num_labels;
  const int H = config_.hidden_dim;
  const std::size_t G = graphs.size();
  out.predictions.resize(G);
  out.log_probs.resize(G * static_cast<std::size_t>(L));
  out.embeddings.resize(want_embeddings ? G * static_cast<std::size_t>(H) : 0);
  forward_shards(
      graphs, want_embeddings,
      [&](std::size_t g0, const Tensor& logits, const Tensor& embeddings) {
        Tensor logp = tensor::log_softmax(logits);
        const std::int64_t rows = logits.rows();
        std::copy(logp.data(), logp.data() + rows * L,
                  out.log_probs.begin() + g0 * static_cast<std::size_t>(L));
        for (std::int64_t i = 0; i < rows; ++i)
          out.predictions[g0 + static_cast<std::size_t>(i)] =
              tensor::argmax_row(logits.data() + i * L, L);
        if (want_embeddings)
          std::copy(embeddings.data(), embeddings.data() + rows * H,
                    out.embeddings.begin() + g0 * static_cast<std::size_t>(H));
      });
}

std::vector<float> QuantizedModel::scales() const {
  std::vector<float> out;
  for (const QuantizedLayer& layer : layers_) out.push_back(layer.act.scale);
  out.push_back(fc_act_.scale);
  out.push_back(head_act_.scale);
  auto dump = [&](const QuantizedLinear& q) {
    out.insert(out.end(), q.w_scale.begin(), q.w_scale.end());
  };
  for (const QuantizedLayer& layer : layers_) {
    dump(layer.self);
    for (const QuantizedLinear& rel : layer.relations) dump(rel);
  }
  dump(fc_);
  dump(head_);
  return out;
}

std::vector<int> QuantizedModel::zero_points() const {
  std::vector<int> out;
  for (const QuantizedLayer& layer : layers_) out.push_back(layer.act.zero);
  out.push_back(fc_act_.zero);
  out.push_back(head_act_.zero);
  return out;
}

// --- Calibration + quantization (the StaticModel entry point) ---------------

support::StatusOr<std::shared_ptr<const QuantizedModel>> StaticModel::quantize(
    const std::vector<const graph::ProgramGraph*>& calibration) const {
  if (calibration.empty())
    return support::Status::InvalidArgument(
        "quantization requires a non-empty calibration fold");

  // Calibration: stream the fold through the float stack tape-free,
  // recording the range of every to-be-quantized activation. Sites in
  // order: each layer's input h, the pooled FC input, the head input.
  const std::size_t L = stack_.layers.size();
  const std::size_t sites = L + 2;
  const std::size_t G = calibration.size();
  const std::size_t num_shards = (G + kShardGraphs - 1) / kShardGraphs;
  std::vector<std::vector<Range>> shard_ranges(num_shards,
                                               std::vector<Range>(sites));

  support::ThreadPool::global().parallel_for(
      0, static_cast<std::int64_t>(num_shards), config_.num_threads,
      [&](std::int64_t s) {
        tensor::InferenceGuard guard;
        const std::size_t g0 = static_cast<std::size_t>(s) * kShardGraphs;
        const std::size_t g1 = std::min(G, g0 + kShardGraphs);
        std::vector<const graph::ProgramGraph*> chunk(
            calibration.begin() + g0, calibration.begin() + g1);
        GraphBatch batch;
        make_batch_into(batch, chunk, /*num_threads=*/1);
        std::vector<Range>& ranges = shard_ranges[s];
        Tensor h0 = stack_.embedding.forward(batch.features);
        Tensor h = h0;
        for (std::size_t l = 0; l < L; ++l) {
          ranges[l].see(h);
          h = stack_.layers[l].forward(h, batch.relations);
        }
        h = stack_.norm.forward(tensor::add(h, h0));
        Tensor pooled =
            tensor::segment_mean(h, batch.segment, batch.num_graphs);
        ranges[L].see(pooled);
        Tensor vec = stack_.fc.forward(pooled, tensor::Act::Relu);
        ranges[L + 1].see(vec);
      });

  std::vector<Range> merged(sites);
  for (const std::vector<Range>& sr : shard_ranges)
    for (std::size_t i = 0; i < sites; ++i) merged[i].merge(sr[i]);

  // Deterministic fault-injection site: a quantization that fails here has
  // already done the calibration work, and the caller must end up with only
  // a Status — never a half-built, publishable model (chaos_test pins that
  // the Router is untouched after an injected failure).
  IRGNN_FAILPOINT("gnn.quantize", return support::Status::Internal(
                                      "injected quantization fault"));

  auto qm = std::shared_ptr<QuantizedModel>(new QuantizedModel());
  qm->config_ = config_;
  qm->embedding_ = Embedding(clone_const(stack_.embedding.parameters()[0]));
  auto np = stack_.norm.parameters();
  qm->norm_ = LayerNorm(clone_const(np[0]), clone_const(np[1]));
  for (std::size_t l = 0; l < L; ++l) {
    QuantizedModel::QuantizedLayer layer;
    layer.act = make_act_quant(merged[l]);
    auto lp = stack_.layers[l].parameters();  // {self_weight, relations...}
    layer.self = quantize_weights(lp[0], layer.act, nullptr);
    for (std::size_t r = 1; r < lp.size(); ++r)
      layer.relations.push_back(quantize_weights(lp[r], layer.act, nullptr));
    qm->layers_.push_back(std::move(layer));
  }
  qm->fc_act_ = make_act_quant(merged[L]);
  auto fp = stack_.fc.parameters();  // {weight, bias}
  qm->fc_ = quantize_weights(fp[0], qm->fc_act_, &fp[1]);
  qm->head_act_ = make_act_quant(merged[L + 1]);
  auto hp = stack_.head.parameters();
  qm->head_ = quantize_weights(hp[0], qm->head_act_, &hp[1]);
  return std::shared_ptr<const QuantizedModel>(std::move(qm));
}

}  // namespace irgnn::gnn
