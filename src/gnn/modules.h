// Neural-network modules composed from tensor ops: Embedding, Linear,
// LayerNorm and the relation-typed graph convolution (RGCN) of
// Schlichtkrull et al. that the paper's equation (1) specifies.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace irgnn::gnn {

using tensor::Tensor;

class Linear {
 public:
  Linear() = default;
  Linear(int in, int out, Rng& rng)
      : weight_(Tensor::xavier({in, out}, rng)),
        bias_(Tensor::zeros({1, out}, /*requires_grad=*/true)) {}

  /// Constructs over existing parameter tensors (gradient-shard replicas).
  Linear(Tensor weight, Tensor bias)
      : weight_(std::move(weight)), bias_(std::move(bias)) {}

  /// y = act(x W + b); the bias add and activation run as one fused kernel.
  Tensor forward(const Tensor& x, tensor::Act act = tensor::Act::None) const {
    return tensor::add_bias_act(tensor::matmul(x, weight_), bias_, act);
  }

  std::vector<Tensor> parameters() const { return {weight_, bias_}; }

 private:
  Tensor weight_;
  Tensor bias_;
};

class Embedding {
 public:
  Embedding() = default;
  Embedding(int vocab, int dim, Rng& rng)
      : table_(Tensor::xavier({vocab, dim}, rng)) {}
  explicit Embedding(Tensor table) : table_(std::move(table)) {}

  Tensor forward(const std::vector<int>& indices) const {
    return tensor::embedding(table_, indices);
  }

  std::vector<Tensor> parameters() const { return {table_}; }

 private:
  Tensor table_;
};

class LayerNorm {
 public:
  LayerNorm() = default;
  explicit LayerNorm(int dim)
      : gamma_(Tensor::full({1, dim}, 1.0f, /*requires_grad=*/true)),
        beta_(Tensor::zeros({1, dim}, /*requires_grad=*/true)) {}
  LayerNorm(Tensor gamma, Tensor beta)
      : gamma_(std::move(gamma)), beta_(std::move(beta)) {}

  Tensor forward(const Tensor& x) const {
    return tensor::layer_norm(x, gamma_, beta_);
  }

  std::vector<Tensor> parameters() const { return {gamma_, beta_}; }

 private:
  Tensor gamma_;
  Tensor beta_;
};

/// Edge lists of one relation inside a (batched) graph, plus the RGCN
/// normalization coefficients 1/c_{i,r} (inverse in-degree under relation r).
struct RelationEdges {
  std::vector<int> src;
  std::vector<int> dst;
  std::vector<float> coeff;  // per-edge 1/c_{dst,r}
};

/// One RGCN layer:  h_i' = sigma( W_0 h_i + sum_r sum_{j in N_r(i)}
///                               (1/c_{i,r}) W_r h_j )
class RGCNLayer {
 public:
  RGCNLayer() = default;
  RGCNLayer(int dim, int num_relations, Rng& rng)
      : self_weight_(Tensor::xavier({dim, dim}, rng)) {
    for (int r = 0; r < num_relations; ++r)
      relation_weights_.push_back(Tensor::xavier({dim, dim}, rng));
  }
  RGCNLayer(Tensor self_weight, std::vector<Tensor> relation_weights)
      : self_weight_(std::move(self_weight)),
        relation_weights_(std::move(relation_weights)) {}

  /// `h` is [num_nodes, dim]; `relations` has one entry per relation.
  Tensor forward(const Tensor& h,
                 const std::vector<RelationEdges>& relations) const {
    Tensor out = tensor::matmul(h, self_weight_);
    for (std::size_t r = 0; r < relation_weights_.size(); ++r) {
      const RelationEdges& edges = relations[r];
      if (edges.src.empty()) continue;
      Tensor gathered = tensor::gather_rows(h, edges.src);
      Tensor messages = tensor::matmul(gathered, relation_weights_[r]);
      Tensor aggregated = tensor::index_add_rows(messages, edges.dst,
                                                 edges.coeff, h.rows());
      out = tensor::add(out, aggregated);
    }
    return tensor::relu(out);
  }

  std::vector<Tensor> parameters() const {
    std::vector<Tensor> out{self_weight_};
    out.insert(out.end(), relation_weights_.begin(), relation_weights_.end());
    return out;
  }

 private:
  Tensor self_weight_;
  std::vector<Tensor> relation_weights_;
};

}  // namespace irgnn::gnn
